// Comparison engine behind tools/perf_diff: loads two paragraph-bench-v1
// JSON artefacts (bench_common.h's BenchReporter emits them) and flags
// per-metric regressions with a noise-aware rule.
//
// The rule: the baseline is represented by its median, the candidate by
// its *best* repetition (min for lower-is-better metrics, max for
// higher-is-better). A machine that can still hit the baseline median in
// any repetition has not regressed — one noisy rep can't fail a PR, while
// a genuine slowdown shifts every rep and trips the relative threshold.
// Header-only so tests/perf_diff_test.cpp exercises the logic in-process.
#pragma once

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace paragraph::perfdiff {

struct Metric {
  std::string name;
  std::string unit;
  bool higher_better = false;
  double median = 0.0;
  double best = 0.0;  // min of reps when lower is better, max otherwise
  std::size_t reps = 0;
};

struct BenchFile {
  std::string bench;
  std::string build_type;
  std::vector<Metric> metrics;

  const Metric* find(const std::string& name) const {
    for (const Metric& m : metrics)
      if (m.name == name) return &m;
    return nullptr;
  }
};

inline std::optional<BenchFile> parse_bench_json(const std::string& text, std::string* error) {
  const auto parsed = obs::JsonValue::parse(text, error);
  if (!parsed) return std::nullopt;
  const auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  const obs::JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || schema->as_string() != "paragraph-bench-v1")
    return fail("not a paragraph-bench-v1 document");
  const obs::JsonValue* metrics = parsed->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) return fail("missing metrics array");
  BenchFile out;
  if (const auto* b = parsed->find("bench")) out.bench = b->as_string();
  if (const auto* b = parsed->find("build_type")) out.build_type = b->as_string();
  for (const obs::JsonValue& m : metrics->elements()) {
    const obs::JsonValue* name = m.find("name");
    const obs::JsonValue* median = m.find("median");
    const obs::JsonValue* reps = m.find("reps");
    if (name == nullptr || median == nullptr || reps == nullptr || !reps->is_array() ||
        reps->size() == 0)
      return fail("metric missing name/median/reps");
    Metric metric;
    metric.name = name->as_string();
    if (const auto* u = m.find("unit")) metric.unit = u->as_string();
    if (const auto* d = m.find("better")) metric.higher_better = d->as_string() == "higher";
    metric.median = median->as_double();
    metric.reps = reps->size();
    metric.best = (*reps)[0].as_double();
    for (const obs::JsonValue& r : reps->elements())
      metric.best = metric.higher_better ? std::max(metric.best, r.as_double())
                                         : std::min(metric.best, r.as_double());
    out.metrics.push_back(std::move(metric));
  }
  return out;
}

inline std::optional<BenchFile> load_bench_file(const std::string& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_bench_json(ss.str(), error);
}

enum class Status { kOk, kImproved, kRegression, kNewMetric };

struct Comparison {
  std::string name;
  Status status = Status::kOk;
  double baseline = 0.0;  // baseline median
  double current = 0.0;   // candidate best rep
  double delta = 0.0;     // signed relative change, + = worse
};

struct DiffResult {
  std::vector<Comparison> rows;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t new_metrics = 0;  // present in candidate only: neutral
};

// Compares every candidate metric against the baseline. `threshold` is the
// relative change that counts as a regression (0.25 = 25% worse); the same
// margin symmetric around zero reports improvements (informational only).
// Metrics absent from the baseline are neutral (kNewMetric), so adding a
// benchmark never fails the gate until a new baseline is recorded.
inline DiffResult diff(const BenchFile& baseline, const BenchFile& candidate,
                       double threshold) {
  DiffResult out;
  for (const Metric& cur : candidate.metrics) {
    Comparison row;
    row.name = cur.name;
    const Metric* base = baseline.find(cur.name);
    if (base == nullptr) {
      row.status = Status::kNewMetric;
      row.current = cur.best;
      ++out.new_metrics;
      out.rows.push_back(std::move(row));
      continue;
    }
    row.baseline = base->median;
    row.current = cur.best;
    if (base->median != 0.0) {
      const double rel = (cur.best - base->median) / std::abs(base->median);
      row.delta = cur.higher_better ? -rel : rel;  // + = worse either way
    }
    if (row.delta > threshold) {
      row.status = Status::kRegression;
      ++out.regressions;
    } else if (row.delta < -threshold) {
      row.status = Status::kImproved;
      ++out.improvements;
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace paragraph::perfdiff
