// paragraph — command-line front end to the library.
//
//   paragraph generate --out DIR [--seed N] [--scale F]
//       Generate the Table IV-style circuit suite as SPICE files with
//       ground-truth annotations.
//   paragraph train --save MODEL.bin [--target CAP] [--model ParaGraph]
//                   [--epochs N] [--scale F] [--seed N] [--max-v FF]
//                   [--eval-every N] [--batch-size B]
//                   [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
//       Train a predictor on the synthetic suite and save it. The --scale
//       used here is persisted in the model file and reused by
//       predict/evaluate. --batch-size B runs B circuits' forward/backward
//       concurrently per optimiser step with gradients averaged in circuit
//       order (1 = the classic one-step-per-graph schedule).
//       --checkpoint-every N writes a crash-safe checkpoint (model + Adam
//       moments + RNG stream + schedule state) every N epochs to
//       --checkpoint PATH (default: MODEL.bin.ckpt). --resume PATH picks a
//       run back up from such a checkpoint; the resumed run is
//       bit-identical to an uninterrupted one, and the model/target/seed
//       options are taken from the checkpoint, not the command line.
//   paragraph predict --model MODEL.bin --netlist FILE.sp
//       Predict the model's target for every net/transistor of a SPICE
//       netlist (pre-layout: no annotation needed).
//   paragraph evaluate --model MODEL.bin [--scale F] [--seed N]
//                      [--quality-out PATH] [--drift-warn X]
//       Evaluate a saved model on the generated test circuits.
//       --quality-out writes the paragraph-quality-v1 JSON block
//       (per-decade/target/edge-type accounting, worst nets); with
//       --metrics-out the same accounting also lands as quality.* gauges.
//       Models saved as format v5 carry training-set distribution
//       sketches; evaluate and predict score the incoming graphs against
//       them (PSI per feature), publish drift.<feature>/drift.max gauges,
//       and warn once when drift.max crosses --drift-warn (default 0.25).
//   paragraph report --model MODEL.bin --out PREFIX [--prior METRICS.json]
//                    [--scale F] [--seed N] [--drift-warn X]
//       Join the model and the generated test circuits into a quality
//       dashboard: PREFIX.md (human-readable) and PREFIX.json
//       (paragraph-quality-v1). --prior compares against a previous run's
//       --metrics-out dump. --ensemble ENS reads a CapEnsemble manifest
//       instead of a single model.
//   paragraph annotate --netlist FILE.sp [--seed N]
//       Run the procedural layout and emit the annotated netlist to stdout.
//   paragraph dataset pack --out DIR [--seed N] [--scale F]
//       Build the synthetic suite and pack it as paragraph-shard-v1 shards
//       (one binary file per sample + manifest.json with checksums and the
//       fitted normaliser). train/evaluate stream from such a directory
//       via --shards, holding at most --max-resident-mb of materialised
//       samples at a time instead of the whole dataset (DESIGN.md §11).
//   paragraph serve --socket PATH [--tcp PORT] [--ensemble ENS]
//                   [--models A.bin,B.bin] [--queue-cap N] [--max-batch N]
//                   [--no-batching] [--slow-ms MS] [--slo-p99-ms MS]
//                   [--slo-target F] [--recent N] [--io-timeout-ms MS]
//                   [--max-conns N] [--client-queue-cap N]
//                   [--auth-token TOK]
//       Long-lived inference daemon (DESIGN.md §12): loads the models
//       once, answers length-prefixed JSON requests on a unix-domain
//       socket (and loopback TCP with --tcp; port 0 picks one and prints
//       it). Concurrent requests are micro-batched (up to --max-batch per
//       pass; --no-batching = 1) through a bounded priority queue of
//       --queue-cap entries; an over-full queue rejects with a typed
//       `queue_full` error instead of stalling. SIGHUP (or the `reload`
//       admin command) hot-swaps the model from the same paths: in-flight
//       requests finish on the old generation, a corrupt ensemble member
//       degrades the ensemble (warning names the file), a corrupt
//       manifest keeps the old generation serving. SIGTERM/SIGINT drain
//       the queue, answer everything admitted, then exit 0. A socket path
//       or TCP port already in use exits 3.
//       Live telemetry (DESIGN.md §13): every request gets a stable
//       request id (client-propagated or server-assigned) with a
//       queue/parse/plan/predict/serialize phase breakdown; --slow-ms MS
//       warn-logs requests slower than MS with that breakdown; the SLO
//       windows count a request good when it succeeded within
//       --slo-p99-ms MS (default 50) against availability --slo-target F
//       (default 0.999); --recent N sizes the recent-requests ring
//       (default 64).
//       Hostile-conditions hardening (DESIGN.md §14): --io-timeout-ms MS
//       (default 5000, 0 disables) bounds every in-progress frame read
//       and response write per connection, so slowloris peers are cut
//       off; --max-conns N (default 256) caps concurrent connections —
//       excess connects get a typed `overloaded` rejection and a close;
//       --client-queue-cap N caps queued requests per fairness key
//       (default 0 = half the queue capacity) and the worker dequeues
//       round-robin across clients within each priority lane, so one
//       flooder cannot starve polite clients; --auth-token TOK (or the
//       PARAGRAPH_AUTH_TOKEN environment variable) requires that token
//       on every TCP request (typed `unauthorized` otherwise; the unix
//       socket, being filesystem-permissioned, stays token-free).
//       Requests carrying `deadline_ms` are shed with a typed
//       `deadline_exceeded` — before any parsing or model work — once
//       their deadline passes while queued; sheds are client-attributed
//       (they never count against the server's SLO windows).
//   paragraph client --socket PATH | --tcp HOST:PORT
//                    (--netlist FILE.sp [--priority P] [--request-id RID]
//                     | --admin CMD) [--json] [--deadline-ms MS]
//                    [--client KEY] [--auth-token TOK] [--retries N]
//                    [--timeout-ms MS]
//       One round-trip against a running serve daemon: send one netlist
//       (or admin command: stats, healthz, reload, shutdown), print the
//       predictions (or the stats/ack JSON), exit 0. Any server-side
//       error response prints its code and message and exits 3. --json
//       prints one machine-readable object (request_id, ok, latency_ms,
//       error code, predictions) instead of the human text; --request-id
//       propagates a caller-chosen trace id into the server's telemetry.
//       --deadline-ms MS asks the server to shed the request (typed
//       `deadline_exceeded`) rather than start it late; --client KEY
//       sets the fairness key (default: per-connection identity);
//       --auth-token TOK (or PARAGRAPH_AUTH_TOKEN) authenticates against
//       a token-guarded TCP listener; --retries N retries idempotent
//       rejections (connect failure, queue_full, overloaded) with
//       full-jitter exponential backoff, reusing one request id across
//       attempts (default 0 = single attempt); --timeout-ms MS bounds
//       each frame read/write on the wire.
//   paragraph top --socket PATH | --tcp HOST:PORT
//                 [--interval-ms N] [--count N] [--once] [--json]
//       Live one-screen view of a running daemon, polled from the `stats`
//       admin verb every --interval-ms (default 1000): req/s,
//       p50/p95/p99 latency, queue depth per lane, in-flight and batch
//       sizes, reloads, SLO windows and error-budget remaining. --once
//       prints a single snapshot and exits; --json emits the raw
//       paragraph-stats-v1 document per poll (for scripts); --count N
//       stops after N polls.
//
// Out-of-core options (train, evaluate):
//   --shards DIR         stream samples from a packed shard directory
//                        instead of rebuilding the dataset in memory;
//                        results are bit-identical to the in-memory run
//                        on the same data
//   --max-resident-mb N  LRU working-set budget for materialised samples
//                        (default 512). Prepared plans/batches are priced
//                        into the same budget during training.
//
// Runtime options (every command):
//   --threads N        parallel runtime thread count (default: the
//                      PARAGRAPH_THREADS environment variable, then the
//                      hardware concurrency; 1 = serial). Results are
//                      identical at any thread count.
//
// Observability options (every command):
//   --log-level L      trace|debug|info|warn|error|off (default: info, or
//                      the PARAGRAPH_LOG environment variable)
//   --log-jsonl PATH   mirror log records to PATH as JSON lines
//   --metrics-out PATH write counters/gauges/histograms (p50/p95/p99),
//                      per-epoch records, and the phase-time profile as JSON
//   --trace-out PATH   write a Chrome trace-event file (chrome://tracing,
//                      Perfetto) with per-worker region:<name> spans
//   --mem-stats        print a one-line peak-RSS / peak-Matrix-bytes
//                      summary on exit (works without --metrics-out)
// --metrics-out/--trace-out/--mem-stats enable the instrumentation layer,
// which is otherwise off and costs nothing.
//
// Crash flight recorder (every command): fatal signals and std::terminate
// dump the last N log/metric/phase events plus the active phase stack to
// crash-<pid>.json (in PARAGRAPH_CRASH_DIR, default the working
// directory) before the process dies with its original signal.
//
// Exit codes:
//   0  success
//   1  internal error (unexpected exception)
//   2  usage error (unknown command, bad option value)
//   3  bad input or artifact (unreadable/corrupt model, checkpoint, or
//      netlist; SPICE parse errors)
//   4  training diverged (persistent non-finite loss/gradients)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "circuit/spice_parser.h"
#include "circuit/spice_writer.h"
#include "core/checkpoint.h"
#include "core/ensemble.h"
#include "core/learners.h"
#include "core/report.h"
#include "core/serialize.h"
#include "dataset/dataset.h"
#include "dataset/shards.h"
#include "eval/drift.h"
#include "layout/annotator.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/errors.h"
#include "util/faultinject.h"

using namespace paragraph;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: paragraph <generate|train|predict|evaluate|report|annotate|dataset|serve|client|top> [options]\n"
               "run with a command and --help for the option list in the file header\n");
  return 2;
}

// Drift check shared by predict/evaluate/report: score live input sketches
// against the model's persisted training reference (format v5; older
// models have none and the check is skipped). Publishes drift.* gauges and
// the one-line warning via eval::check_drift.
std::optional<obs::DriftReport> run_drift_check(const std::vector<obs::FeatureSketch>& ref,
                                                std::span<const dataset::Sample> live_samples,
                                                double warn_threshold) {
  if (ref.empty()) return std::nullopt;
  const auto live = eval::sketch_graphs(live_samples, &ref);
  return eval::check_drift(ref, live, warn_threshold);
}

dataset::TargetKind parse_target(const std::string& name) {
  for (const auto t : dataset::all_targets()) {
    if (name == dataset::target_name(t)) return t;
  }
  throw std::invalid_argument("unknown target '" + name + "' (use CAP, LDE1..LDE8, SA, DA, SP, DP, RES)");
}

gnn::ModelKind parse_model(const std::string& name) {
  for (const auto k : {gnn::ModelKind::kGcn, gnn::ModelKind::kGraphSage, gnn::ModelKind::kRgcn,
                       gnn::ModelKind::kGat, gnn::ModelKind::kParaGraph}) {
    if (name == gnn::model_kind_name(k)) return k;
  }
  throw std::invalid_argument("unknown model '" + name +
                              "' (use GCN, GraphSage, RGCN, GAT, ParaGraph)");
}

dataset::Sample sample_from_netlist(circuit::Netlist nl) {
  dataset::Sample s;
  s.name = nl.name();
  s.graph = graph::build_graph(nl);
  s.netlist = std::move(nl);
  return s;
}

// Observability wiring shared by every command: --log-level/--log-jsonl
// configure the logger; --metrics-out/--trace-out pick output paths and
// switch the (default-off) instrumentation layer on.
struct ObsOutputs {
  std::string metrics_out;
  std::string trace_out;
  bool mem_stats = false;
};

ObsOutputs setup_observability(const util::ArgParser& args) {
  if (args.has("log-level")) {
    const std::string name = args.get("log-level");
    const auto level = obs::parse_log_level(name);
    if (!level)
      throw std::invalid_argument("unknown --log-level '" + name +
                                  "' (use trace, debug, info, warn, error, off)");
    obs::Logger::instance().set_level(*level);
  }
  if (args.has("log-jsonl")) {
    const std::string path = args.get("log-jsonl");
    if (!obs::Logger::instance().open_jsonl(path))
      throw std::runtime_error("cannot open --log-jsonl file '" + path + "'");
  }
  ObsOutputs out{args.get("metrics-out"), args.get("trace-out"), args.has("mem-stats")};
  if (!out.metrics_out.empty() || !out.trace_out.empty() || out.mem_stats)
    obs::set_enabled(true);
  if (!out.trace_out.empty()) obs::TraceCollector::instance().set_enabled(true);
  return out;
}

// --threads N (then PARAGRAPH_THREADS, then hardware concurrency)
// configures the parallel runtime; shared by every command. The effective
// count is recorded as the runtime.threads gauge so it lands in the
// metrics JSON alongside the training series.
void setup_runtime(const util::ArgParser& args) {
  runtime::init_from_env();
  if (args.has("threads")) {
    const long t = args.get_int("threads", 0);
    if (t <= 0) throw std::invalid_argument("--threads must be a positive integer");
    runtime::set_num_threads(static_cast<std::size_t>(t));
  }
  if (obs::enabled())
    obs::MetricsRegistry::instance()
        .gauge("runtime.threads")
        .set(static_cast<double>(runtime::num_threads()));
}

void flush_observability(const ObsOutputs& out) {
  // Dump-time telemetry: memory gauges and pool utilization are computed
  // lazily, so they have to be published into the registry before the dump.
  if (obs::enabled()) {
    obs::publish_memory_metrics();
    runtime::publish_runtime_metrics();
  }
  if (!out.metrics_out.empty()) {
    // The hierarchical phase profile rides along in the metrics document.
    obs::JsonValue doc = obs::MetricsRegistry::instance().to_json();
    doc.set("profile", obs::Profiler::instance().to_json());
    if (util::try_write_file_atomic(out.metrics_out, doc.dump() + '\n')) {
      std::printf("wrote metrics to %s\n", out.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "paragraph: cannot write metrics to '%s'\n", out.metrics_out.c_str());
    }
  }
  if (!out.trace_out.empty()) {
    if (obs::TraceCollector::instance().write_json(out.trace_out)) {
      std::printf("wrote trace to %s (%zu events)\n", out.trace_out.c_str(),
                  obs::TraceCollector::instance().size());
    } else {
      std::fprintf(stderr, "paragraph: cannot write trace to '%s'\n", out.trace_out.c_str());
    }
  }
  if (out.mem_stats) {
    // One line, independent of --metrics-out, so a quick `--mem-stats` run
    // answers "how much memory did that take" without a JSON detour.
    const obs::ProcMemory pm = obs::sample_process_memory();
    const auto& mt = obs::MemTracker::instance();
    std::printf("mem-stats: peak_rss=%llu KB  matrix_peak=%llu bytes  "
                "matrix_allocs=%llu  matrix_frees=%llu\n",
                static_cast<unsigned long long>(pm.ok ? pm.vm_hwm_kb : 0),
                static_cast<unsigned long long>(mt.peak_bytes()),
                static_cast<unsigned long long>(mt.allocs()),
                static_cast<unsigned long long>(mt.frees()));
  }
  obs::Logger::instance().close_jsonl();
}

// --max-resident-mb N (default 512) -> ShardStore byte budget.
dataset::ShardStore::Config shard_store_config(const util::ArgParser& args) {
  const long mb = args.get_int("max-resident-mb", 512);
  if (mb <= 0) throw std::invalid_argument("--max-resident-mb must be a positive integer");
  dataset::ShardStore::Config cfg;
  cfg.max_resident_bytes = static_cast<std::size_t>(mb) << 20;
  return cfg;
}

int cmd_dataset(const util::ArgParser& args) {
  const auto& pos = args.positional();
  if (pos.empty() || pos[0] != "pack") {
    std::fprintf(stderr, "dataset: unknown subcommand (use `paragraph dataset pack --out DIR`)\n");
    return 2;
  }
  const std::string out_dir = args.get("out");
  if (out_dir.empty()) {
    std::fprintf(stderr, "dataset pack: --out DIR is required\n");
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double scale = args.get_double("scale", 0.25);
  std::printf("building dataset (seed %llu, scale %.2f)...\n",
              static_cast<unsigned long long>(seed), scale);
  const auto ds = dataset::build_dataset(seed, scale);
  const auto r = dataset::write_shards(ds, out_dir);
  std::printf("packed %zu train + %zu test samples into %s (%zu shards, %llu bytes)\n",
              ds.train.size(), ds.test.size(), out_dir.c_str(), r.files,
              static_cast<unsigned long long>(r.bytes));
  return 0;
}

int cmd_generate(const util::ArgParser& args) {
  const std::string out_dir = args.get("out", "suite");
  std::filesystem::create_directories(out_dir);
  auto suite = circuitgen::build_paper_suite(
      static_cast<std::uint64_t>(args.get_int("seed", 42)), args.get_double("scale", 0.25));
  auto emit = [&](circuit::Netlist& nl) {
    layout::annotate_layout(nl, static_cast<std::uint64_t>(args.get_int("seed", 42)) + 7);
    std::unordered_map<circuit::NetId, double> caps;
    for (circuit::NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id)
      if (nl.net(id).ground_truth_cap) caps.emplace(id, *nl.net(id).ground_truth_cap);
    circuit::WriteOptions opts;
    opts.net_caps = &caps;
    opts.emit_layout_params = true;
    std::ofstream f(out_dir + "/" + nl.name() + ".sp");
    circuit::write_spice(f, nl, opts);
    std::printf("wrote %s/%s.sp (%zu devices)\n", out_dir.c_str(), nl.name().c_str(),
                nl.num_devices());
  };
  for (auto& nl : suite.train) emit(nl);
  for (auto& nl : suite.test) emit(nl);
  return 0;
}

int cmd_train(const util::ArgParser& args) {
  const std::string save_path = args.get("save");
  if (save_path.empty()) {
    std::fprintf(stderr, "train: --save PATH is required\n");
    return 2;
  }
  const long ck_every = args.get_int("checkpoint-every", 0);
  if (ck_every < 0) {
    std::fprintf(stderr, "train: --checkpoint-every must be >= 0\n");
    return 2;
  }
  core::TrainOptions topts;
  topts.checkpoint_every = static_cast<int>(ck_every);
  if (topts.checkpoint_every > 0)
    topts.checkpoint_path = args.get("checkpoint", save_path + ".ckpt");

  core::PredictorConfig pc;
  core::TrainCheckpoint resume_ck;
  std::optional<core::GnnPredictor> predictor_slot;
  if (args.has("resume")) {
    const std::string resume_path = args.get("resume");
    resume_ck = core::load_checkpoint(resume_path);
    predictor_slot.emplace(
        core::predictor_from_bytes(resume_ck.model_bytes, "resume: '" + resume_path + "'"));
    // The checkpoint's config is authoritative: the dataset, architecture,
    // and schedule must match the interrupted run for bit-identity.
    pc = predictor_slot->config();
    topts.resume = &resume_ck;
    std::printf("resuming from %s at epoch %d/%d\n", resume_path.c_str(), resume_ck.next_epoch,
                pc.epochs);
  } else {
    pc.target = parse_target(args.get("target", "CAP"));
    pc.model = parse_model(args.get("model", "ParaGraph"));
    pc.epochs = static_cast<int>(args.get_int("epochs", 150));
    pc.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    pc.max_v_ff = args.get_double("max-v", 1e4);
    pc.scale = args.get_double("scale", 0.25);
    const long batch = args.get_int("batch-size", 1);
    if (batch <= 0) {
      std::fprintf(stderr, "train: --batch-size must be a positive integer\n");
      return 2;
    }
    pc.batch_size = static_cast<std::size_t>(batch);
    pc.train_threads = runtime::num_threads();
    predictor_slot.emplace(pc);
  }
  // Data source: the in-memory dataset (default) or an out-of-core shard
  // directory (--shards). The streamed run is bit-identical to the
  // in-memory run on the same data; only peak memory differs.
  std::optional<dataset::SuiteDataset> ds_slot;
  std::optional<dataset::ShardStore> store;
  if (args.has("shards")) {
    store.emplace(args.get("shards"), shard_store_config(args));
    std::printf("streaming %zu train + %zu test samples from %s (budget %zu MB)\n",
                store->num_train(), store->num_test(), args.get("shards").c_str(),
                store->config().max_resident_bytes >> 20);
  } else {
    std::printf("building dataset (scale %.2f)...\n", pc.scale);
    ds_slot.emplace(dataset::build_dataset(pc.seed, pc.scale));
  }
  std::printf("training %s for %s (%d epochs)...\n", gnn::model_kind_name(pc.model),
              dataset::target_name(pc.target), pc.epochs);
  core::GnnPredictor& predictor = *predictor_slot;
  const auto eval_pooled = [&]() {
    return (store ? predictor.evaluate(*store)
                  : predictor.evaluate(*ds_slot, ds_slot->test))
        .pooled();
  };
  // Per-epoch telemetry: every record lands in the metrics series /
  // debug log from inside train(); this callback adds periodic test-set
  // evaluation (--eval-every N epochs, 0 = only implicitly at the end).
  const int eval_every = static_cast<int>(args.get_int("eval-every", 0));
  const core::EpochCallback on_epoch = [&](const core::EpochRecord& rec) {
    if (eval_every <= 0 || (rec.epoch + 1) % eval_every != 0) return;
    const auto em = eval_pooled();
    obs::log_info("train", "eval",
                  {{"epoch", rec.epoch},
                   {"loss", rec.loss},
                   {"test_r2", em.r2},
                   {"test_mae", em.mae}});
    if (obs::enabled()) {
      obs::JsonValue r = obs::JsonValue::object();
      r.set("epoch", rec.epoch);
      r.set("test_r2", em.r2);
      r.set("test_mae", em.mae);
      r.set("test_mape", em.mape);
      obs::MetricsRegistry::instance().append_record("train.eval", std::move(r));
    }
  };
  const auto losses =
      store ? predictor.train(*store, on_epoch, topts) : predictor.train(*ds_slot, on_epoch, topts);
  const auto m = eval_pooled();
  // A resume at the final epoch runs zero epochs and reports no loss.
  const double final_loss = losses.empty() ? 0.0 : losses.back();
  std::printf("final loss %.6f; test R2=%.3f MAE=%.4f MAPE=%.1f%% over %zu nodes\n",
              final_loss, m.r2, m.mae, m.mape, m.count);
  // Final-epoch eval record, unless the --eval-every cadence already
  // produced one for the last epoch.
  if (obs::enabled() && !(eval_every > 0 && pc.epochs % eval_every == 0)) {
    obs::JsonValue r = obs::JsonValue::object();
    r.set("epoch", pc.epochs - 1);
    r.set("test_r2", m.r2);
    r.set("test_mae", m.mae);
    r.set("test_mape", m.mape);
    obs::MetricsRegistry::instance().append_record("train.eval", std::move(r));
  }
  core::save_predictor(predictor, save_path);
  std::printf("saved model to %s\n", save_path.c_str());
  return 0;
}

int cmd_predict(const util::ArgParser& args) {
  const std::string model_path = args.get("model");
  const std::string netlist_path = args.get("netlist");
  if (model_path.empty() || netlist_path.empty()) {
    std::fprintf(stderr, "predict: --model and --netlist are required\n");
    return 2;
  }
  const core::GnnPredictor predictor = core::load_predictor(model_path);
  // The saved model's normaliser statistics live in the dataset; rebuild it
  // with the seed and scale recorded in the model config (an explicit
  // --scale overrides, e.g. for models saved before scale was persisted).
  const double scale =
      args.has("scale") ? args.get_double("scale", 0.25) : predictor.config().scale;
  const auto ds = dataset::build_dataset(predictor.config().seed, scale);
  const auto sample = sample_from_netlist(circuit::parse_spice_file(netlist_path));
  run_drift_check(predictor.feature_sketches(), std::span(&sample, 1),
                  args.get_double("drift-warn", eval::kDefaultDriftWarnThreshold));
  const auto preds = predictor.predict_all(ds, sample);
  const auto target = predictor.config().target;
  std::printf("# %s predictions for %s\n", dataset::target_name(target), netlist_path.c_str());
  std::size_t k = 0;
  for (const auto nt : dataset::target_node_types(target)) {
    for (const auto origin : sample.graph.origins(nt)) {
      const std::string& name = nt == graph::NodeType::kNet
                                    ? sample.netlist.net(origin).name
                                    : sample.netlist.device(origin).name;
      std::printf("%-32s %g\n", name.c_str(), preds[k++]);
    }
  }
  return 0;
}

int cmd_evaluate(const util::ArgParser& args) {
  const std::string model_path = args.get("model");
  if (model_path.empty()) {
    std::fprintf(stderr, "evaluate: --model is required\n");
    return 2;
  }
  const core::GnnPredictor predictor = core::load_predictor(model_path);
  const std::string quality_out = args.get("quality-out");
  const auto print_result = [](const core::EvalResult& res) {
    for (const auto& c : res.circuits) {
      const auto cm = c.metrics();
      std::printf("%-6s R2=%7.3f MAE=%10.4f MAPE=%7.1f%% n=%zu\n", c.name.c_str(), cm.r2, cm.mae,
                  cm.mape, cm.count);
    }
    const auto pm = res.pooled();
    std::printf("%-6s R2=%7.3f MAE=%10.4f MAPE=%7.1f%% n=%zu\n", "all", pm.r2, pm.mae, pm.mape,
                pm.count);
  };

  // Out-of-core path: stream the packed test split through the working
  // set. Quality accounting and the drift check both need the whole test
  // split resident, so they stay with the in-memory path.
  if (args.has("shards")) {
    if (!quality_out.empty()) {
      std::fprintf(stderr, "evaluate: --quality-out requires the in-memory dataset (drop --shards)\n");
      return 2;
    }
    dataset::ShardStore store(args.get("shards"), shard_store_config(args));
    print_result(predictor.evaluate(store));
    return 0;
  }

  const double scale =
      args.has("scale") ? args.get_double("scale", 0.25) : predictor.config().scale;
  const auto ds = dataset::build_dataset(
      static_cast<std::uint64_t>(args.get_int("seed", static_cast<long>(predictor.config().seed))),
      scale);
  // Quality accounting is post-processing over the evaluation results the
  // command produces anyway, so it runs whenever anyone can see it: an
  // explicit --quality-out, or the obs layer (gauges land in
  // --metrics-out). Plain `paragraph evaluate` skips it entirely.
  const bool want_quality = !quality_out.empty() || obs::enabled();

  const auto drift = run_drift_check(predictor.feature_sketches(), ds.test,
                                     args.get_double("drift-warn", eval::kDefaultDriftWarnThreshold));

  core::EvalResult res;
  if (want_quality) {
    const eval::QualityAccumulator q = core::collect_quality(predictor, ds, ds.test, &res);
    q.publish();
    if (!quality_out.empty()) {
      const obs::JsonValue doc =
          core::quality_report_json(q, drift ? &*drift : nullptr, model_path,
                                    dataset::target_name(predictor.config().target),
                                    ds.test.size());
      if (util::try_write_file_atomic(quality_out, doc.dump() + '\n'))
        std::printf("wrote quality report to %s\n", quality_out.c_str());
      else
        std::fprintf(stderr, "paragraph: cannot write quality report to '%s'\n",
                     quality_out.c_str());
    }
  } else {
    res = predictor.evaluate(ds, ds.test);
  }
  print_result(res);
  return 0;
}

int cmd_report(const util::ArgParser& args) {
  const std::string model_path = args.get("model");
  const std::string ensemble_path = args.get("ensemble");
  const std::string out_prefix = args.get("out");
  if ((model_path.empty() == ensemble_path.empty()) || out_prefix.empty()) {
    std::fprintf(stderr, "report: exactly one of --model/--ensemble, plus --out PREFIX, required\n");
    return 2;
  }
  const double drift_warn = args.get_double("drift-warn", eval::kDefaultDriftWarnThreshold);

  // Load the model(s), rebuild the recorded dataset, collect quality.
  std::optional<core::GnnPredictor> model;
  std::optional<core::CapEnsemble> ensemble;
  const core::PredictorConfig* cfg;
  const std::vector<obs::FeatureSketch>* drift_ref;
  if (!model_path.empty()) {
    model.emplace(core::load_predictor(model_path));
    cfg = &model->config();
    drift_ref = &model->feature_sketches();
  } else {
    ensemble.emplace(core::CapEnsemble::load(ensemble_path));
    cfg = &ensemble->model(0).config();
    drift_ref = &ensemble->model(0).feature_sketches();
  }
  const double scale = args.has("scale") ? args.get_double("scale", 0.25) : cfg->scale;
  const auto ds = dataset::build_dataset(
      static_cast<std::uint64_t>(args.get_int("seed", static_cast<long>(cfg->seed))), scale);

  const auto drift = run_drift_check(*drift_ref, ds.test, drift_warn);
  eval::QualityAccumulator q = model ? core::collect_quality(*model, ds, ds.test)
                                     : core::collect_quality(*ensemble, ds, ds.test);
  q.publish();

  const std::string source = !model_path.empty() ? model_path : ensemble_path;
  obs::JsonValue doc = core::quality_report_json(q, drift ? &*drift : nullptr, source,
                                                 dataset::target_name(cfg->target),
                                                 ds.test.size());

  // Optional prior metrics JSON (--metrics-out format) for then-vs-now.
  std::optional<obs::JsonValue> prior;
  if (args.has("prior")) {
    const std::string prior_path = args.get("prior");
    const std::string text = core::read_artifact_file(prior_path, "report --prior");
    std::string err;
    prior = obs::JsonValue::parse(text, &err);
    if (!prior)
      throw util::CorruptArtifactError("report: --prior '" + prior_path + "': " + err);
  }

  const std::string markdown = core::render_quality_markdown(doc, prior ? &*prior : nullptr);
  const std::string json_path = out_prefix + ".json";
  const std::string md_path = out_prefix + ".md";
  util::write_file_atomic(json_path, doc.dump() + '\n');
  util::write_file_atomic(md_path, markdown);
  std::printf("wrote %s and %s\n", json_path.c_str(), md_path.c_str());
  if (drift && drift->max_psi >= drift_warn)
    std::printf("drift.max %.3f >= %.3f (%s)\n", drift->max_psi, drift_warn,
                drift->max_feature.c_str());
  return 0;
}

int cmd_annotate(const util::ArgParser& args) {
  const std::string netlist_path = args.get("netlist");
  if (netlist_path.empty()) {
    std::fprintf(stderr, "annotate: --netlist is required\n");
    return 2;
  }
  circuit::Netlist nl = circuit::parse_spice_file(netlist_path);
  layout::annotate_layout(nl, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  std::unordered_map<circuit::NetId, double> caps;
  for (circuit::NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id)
    if (nl.net(id).ground_truth_cap) caps.emplace(id, *nl.net(id).ground_truth_cap);
  circuit::WriteOptions opts;
  opts.net_caps = &caps;
  opts.emit_layout_params = true;
  circuit::write_spice(std::cout, nl, opts);
  return 0;
}

// ---- serve / client ------------------------------------------------------

// The serve daemon's async-signal bridge: handlers may only write a byte
// to the server's self-pipe, so the fd is parked in a global the moment
// the server starts. SIGHUP = reload, SIGTERM/SIGINT = drain and exit.
std::atomic<int> g_serve_notify_fd{-1};

extern "C" void serve_signal_handler(int sig) {
  const int fd = g_serve_notify_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  const char c = sig == SIGHUP ? 'H' : 'T';
  (void)!::write(fd, &c, 1);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string part = s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int cmd_serve(const util::ArgParser& args) {
  serve::ServeConfig cfg;
  cfg.socket_path = args.get("socket");
  if (cfg.socket_path.empty()) {
    std::fprintf(stderr, "serve: --socket PATH is required\n");
    return 2;
  }
  if (args.has("tcp")) cfg.tcp_port = static_cast<int>(args.get_int("tcp", 0));
  cfg.registry.ensemble_path = args.get("ensemble");
  cfg.registry.model_paths = split_commas(args.get("models", args.get("model")));
  const long qcap = args.get_int("queue-cap", 64);
  const long mbatch = args.has("no-batching") ? 1 : args.get_int("max-batch", 8);
  if (qcap <= 0 || mbatch <= 0) {
    std::fprintf(stderr, "serve: --queue-cap and --max-batch must be positive\n");
    return 2;
  }
  cfg.queue_capacity = static_cast<std::size_t>(qcap);
  cfg.max_batch = static_cast<std::size_t>(mbatch);
  cfg.slow_ms = args.get_double("slow-ms", 0.0);
  cfg.slo_latency_ms = args.get_double("slo-p99-ms", 50.0);
  cfg.slo_target = args.get_double("slo-target", 0.999);
  const long recent = args.get_int("recent", 64);
  if (recent <= 0) {
    std::fprintf(stderr, "serve: --recent must be positive\n");
    return 2;
  }
  cfg.recent_capacity = static_cast<std::size_t>(recent);
  const long io_timeout = args.get_int("io-timeout-ms", 5000);
  if (io_timeout < 0) {
    std::fprintf(stderr, "serve: --io-timeout-ms must be >= 0 (0 disables)\n");
    return 2;
  }
  cfg.io_timeout_ms = static_cast<int>(io_timeout);
  const long max_conns = args.get_int("max-conns", 256);
  const long client_cap = args.get_int("client-queue-cap", 0);
  if (max_conns <= 0 || client_cap < 0) {
    std::fprintf(stderr,
                 "serve: --max-conns must be positive, --client-queue-cap >= 0 (0 = auto)\n");
    return 2;
  }
  cfg.max_conns = static_cast<std::size_t>(max_conns);
  cfg.client_queue_cap = static_cast<std::size_t>(client_cap);
  cfg.auth_token = args.get("auth-token");
  if (cfg.auth_token.empty())
    if (const char* tok = std::getenv("PARAGRAPH_AUTH_TOKEN"); tok != nullptr)
      cfg.auth_token = tok;
  if (!cfg.auth_token.empty() && cfg.tcp_port < 0)
    std::fprintf(stderr,
                 "serve: note: --auth-token only guards the TCP listener (none is enabled)\n");

  serve::Server server(std::move(cfg));
  server.start();
  g_serve_notify_fd.store(server.notify_fd(), std::memory_order_relaxed);
  std::signal(SIGHUP, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("serving on %s", server.config().socket_path.c_str());
  if (server.tcp_port() >= 0) std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf(" (generation %llu%s); SIGHUP reloads, SIGTERM drains\n",
              static_cast<unsigned long long>(server.registry().current()->generation),
              server.registry().current()->degraded ? ", DEGRADED" : "");
  std::fflush(stdout);

  server.wait();
  std::signal(SIGHUP, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_notify_fd.store(-1, std::memory_order_relaxed);
  server.stop();
  const auto& st = server.stats();
  std::printf("served %llu responses (%llu errors, %llu rejected) in %llu batches\n",
              static_cast<unsigned long long>(st.responses.load()),
              static_cast<unsigned long long>(st.errors.load()),
              static_cast<unsigned long long>(st.rejected.load()),
              static_cast<unsigned long long>(st.batches.load()));
  return 0;
}

// Shared by client/top: --socket PATH or --tcp HOST:PORT.
serve::ServeClient connect_serve(const util::ArgParser& args, const char* cmd) {
  const std::string socket_path = args.get("socket");
  const std::string tcp = args.get("tcp");
  if (socket_path.empty() == tcp.empty())
    throw std::invalid_argument(std::string(cmd) +
                                ": exactly one of --socket PATH or --tcp HOST:PORT is required");
  if (!socket_path.empty()) return serve::ServeClient::connect_unix(socket_path);
  const std::size_t colon = tcp.rfind(':');
  if (colon == std::string::npos || colon + 1 == tcp.size())
    throw std::invalid_argument(std::string(cmd) + ": --tcp needs HOST:PORT, got '" + tcp + "'");
  return serve::ServeClient::connect_tcp(tcp.substr(0, colon), std::stoi(tcp.substr(colon + 1)));
}

int cmd_client(const util::ArgParser& args) {
  const std::string netlist_path = args.get("netlist");
  const std::string admin = args.get("admin");
  if (netlist_path.empty() == admin.empty()) {
    std::fprintf(stderr, "client: exactly one of --netlist FILE or --admin CMD is required\n");
    return 2;
  }
  const std::string socket_path = args.get("socket");
  const std::string tcp = args.get("tcp");
  if (socket_path.empty() == tcp.empty()) {
    std::fprintf(stderr, "client: exactly one of --socket PATH or --tcp HOST:PORT is required\n");
    return 2;
  }
  const long retries = args.get_int("retries", 0);
  const long timeout_ms = args.get_int("timeout-ms", 0);
  const double deadline_ms = args.get_double("deadline-ms", 0.0);
  if (retries < 0 || timeout_ms < 0 || deadline_ms < 0.0) {
    std::fprintf(stderr, "client: --retries, --timeout-ms, and --deadline-ms must be >= 0\n");
    return 2;
  }
  serve::RetryPolicy policy;
  policy.max_attempts = 1 + static_cast<int>(retries);
  serve::RetryingClient client = [&] {
    if (!socket_path.empty()) return serve::RetryingClient::unix_target(socket_path, policy);
    const std::size_t colon = tcp.rfind(':');
    if (colon == std::string::npos || colon + 1 == tcp.size())
      throw std::invalid_argument("client: --tcp needs HOST:PORT, got '" + tcp + "'");
    return serve::RetryingClient::tcp_target(tcp.substr(0, colon),
                                             std::stoi(tcp.substr(colon + 1)), policy);
  }();
  if (timeout_ms > 0) client.set_io_timeout_ms(static_cast<int>(timeout_ms));

  serve::RequestOptions options;
  options.id = static_cast<std::int64_t>(args.get_int("id", 1));
  options.request_id = args.get("request-id");
  options.deadline_ms = deadline_ms;
  options.client = args.get("client");
  options.auth_token = args.get("auth-token");
  if (options.auth_token.empty())
    if (const char* tok = std::getenv("PARAGRAPH_AUTH_TOKEN"); tok != nullptr)
      options.auth_token = tok;
  const bool json = args.has("json");
  obs::JsonValue resp;
  const auto sent_at = std::chrono::steady_clock::now();
  if (!admin.empty()) {
    resp = client.admin(admin, options);
  } else {
    const std::string pname = args.get("priority", "normal");
    if (!serve::parse_priority(pname, &options.priority))
      throw std::invalid_argument("client: unknown --priority '" + pname +
                                  "' (use low, normal, high)");
    std::ifstream f(netlist_path);
    if (!f) throw util::IoError("client: cannot read netlist '" + netlist_path + "'");
    std::ostringstream text;
    text << f.rdbuf();
    resp = client.predict(text.str(), options);
  }
  const double latency_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - sent_at)
          .count();

  const obs::JsonValue* ok = resp.find("ok");
  const bool succeeded = ok != nullptr && ok->is_bool() && ok->as_bool();
  const obs::JsonValue* err = resp.find("error");
  const obs::JsonValue* code = err != nullptr ? err->find("code") : nullptr;
  const obs::JsonValue* msg = err != nullptr ? err->find("message") : nullptr;

  if (json) {
    // One machine-readable envelope per round-trip: what scripts and the
    // bench harness consume instead of scraping the human text.
    obs::JsonValue out = obs::JsonValue::object();
    const obs::JsonValue* rid = resp.find("request_id");
    if (rid != nullptr && rid->is_string()) out.set("request_id", rid->as_string());
    out.set("ok", succeeded);
    out.set("latency_ms", latency_ms);
    if (const obs::JsonValue* gen = resp.find("model_generation"); gen != nullptr)
      out.set("model_generation", gen->as_int());
    if (const obs::JsonValue* degraded = resp.find("degraded"); degraded != nullptr)
      out.set("degraded", degraded->as_bool());
    if (!succeeded) {
      out.set("error_code", code != nullptr && code->is_string() ? code->as_string() : "unknown");
      out.set("error_message", msg != nullptr && msg->is_string() ? msg->as_string() : "");
    }
    for (const char* member : {"predictions", "stats", "health"})
      if (const obs::JsonValue* v = resp.find(member); v != nullptr) out.set(member, *v);
    std::printf("%s\n", out.dump().c_str());
    return succeeded ? 0 : util::kExitBadInput;
  }

  if (!succeeded) {
    std::fprintf(stderr, "client: server error [%s] %s\n",
                 code != nullptr && code->is_string() ? code->as_string().c_str() : "unknown",
                 msg != nullptr && msg->is_string() ? msg->as_string().c_str() : "(no message)");
    return util::kExitBadInput;
  }
  if (const obs::JsonValue* preds = resp.find("predictions"); preds != nullptr) {
    const obs::JsonValue* gen = resp.find("model_generation");
    const obs::JsonValue* degraded = resp.find("degraded");
    const obs::JsonValue* rid = resp.find("request_id");
    std::printf("# predictions from generation %lld%s (request %s)\n",
                gen != nullptr ? static_cast<long long>(gen->as_int()) : -1LL,
                degraded != nullptr && degraded->as_bool() ? " (degraded)" : "",
                rid != nullptr && rid->is_string() ? rid->as_string().c_str() : "?");
    for (const auto& [target, values] : preds->items()) {
      std::printf("## %s\n", target.c_str());
      for (const auto& [name, value] : values.items())
        std::printf("%-32s %g\n", name.c_str(), value.as_double());
    }
  } else {
    // Admin responses print verbatim: stats payloads are for scripts.
    std::printf("%s\n", resp.dump().c_str());
  }
  return 0;
}

// ---- top -----------------------------------------------------------------

// Safe nested lookup into a stats document; nullptr when any key along
// the path is missing (daemons that have not served yet have no latency
// histogram, for instance).
const obs::JsonValue* stats_path(const obs::JsonValue& root,
                                 std::initializer_list<const char*> keys) {
  const obs::JsonValue* v = &root;
  for (const char* key : keys) {
    if (!v->is_object()) return nullptr;
    v = v->find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

double stats_num(const obs::JsonValue& root, std::initializer_list<const char*> keys) {
  const obs::JsonValue* v = stats_path(root, keys);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

// One screenful of the stats document, plus req/s computed from the
// previous poll's response counter.
void render_top(const obs::JsonValue& stats, double reqs_per_sec, bool have_rate) {
  const double p50 = stats_num(stats, {"metrics", "histograms", "serve.latency_us", "p50"});
  const double p95 = stats_num(stats, {"metrics", "histograms", "serve.latency_us", "p95"});
  const double p99 = stats_num(stats, {"metrics", "histograms", "serve.latency_us", "p99"});
  const obs::JsonValue* degraded = stats_path(stats, {"model", "degraded"});
  std::printf("paragraph top — generation %lld%s\n",
              static_cast<long long>(stats_num(stats, {"model", "generation"})),
              degraded != nullptr && degraded->is_bool() && degraded->as_bool() ? " (DEGRADED)"
                                                                                : "");
  if (have_rate)
    std::printf("rate:     %.1f req/s\n", reqs_per_sec);
  else
    std::printf("rate:     (first sample)\n");
  std::printf("requests: %.0f admitted, %.0f answered, %.0f errors, %.0f rejected\n",
              stats_num(stats, {"server", "requests"}), stats_num(stats, {"server", "responses"}),
              stats_num(stats, {"server", "errors"}), stats_num(stats, {"server", "rejected"}));
  std::printf("latency:  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n", p50 / 1000.0, p95 / 1000.0,
              p99 / 1000.0);
  std::printf("queue:    depth %.0f/%.0f (low %.0f, normal %.0f, high %.0f)  inflight %.0f\n",
              stats_num(stats, {"server", "queue_depth"}),
              stats_num(stats, {"server", "queue_capacity"}),
              stats_num(stats, {"server", "queue_lanes", "low"}),
              stats_num(stats, {"server", "queue_lanes", "normal"}),
              stats_num(stats, {"server", "queue_lanes", "high"}),
              stats_num(stats, {"server", "inflight"}));
  std::printf("batches:  %.0f (largest %.0f, coalesced %.0f)  reloads %.0f\n",
              stats_num(stats, {"server", "batches"}),
              stats_num(stats, {"server", "max_batch_seen"}),
              stats_num(stats, {"server", "coalesced"}), stats_num(stats, {"server", "reloads"}));
  std::printf("slo:      1m availability %.4f (burn %.2f)  5m availability %.4f  "
              "budget remaining %.0f%%\n",
              stats_num(stats, {"slo", "windows", "1m", "availability"}),
              stats_num(stats, {"slo", "windows", "1m", "burn_rate"}),
              stats_num(stats, {"slo", "windows", "5m", "availability"}),
              stats_num(stats, {"slo", "budget_remaining"}) * 100.0);
  std::printf("memory:   rss %.0f KB (peak %.0f KB)\n", stats_num(stats, {"process", "rss_kb"}),
              stats_num(stats, {"process", "peak_rss_kb"}));
}

int cmd_top(const util::ArgParser& args) {
  const bool once = args.has("once");
  const bool json = args.has("json");
  const long interval_ms = args.get_int("interval-ms", 1000);
  if (interval_ms <= 0) {
    std::fprintf(stderr, "top: --interval-ms must be positive\n");
    return 2;
  }
  const long count = once ? 1 : args.get_int("count", 0);  // 0 = until killed
  serve::ServeClient client = connect_serve(args, "top");

  double prev_responses = 0.0;
  auto prev_at = std::chrono::steady_clock::now();
  bool have_prev = false;
  for (long i = 0; count == 0 || i < count; ++i) {
    if (i > 0) std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const obs::JsonValue resp = client.admin("stats", i + 1);
    const obs::JsonValue* ok = resp.find("ok");
    const obs::JsonValue* stats = resp.find("stats");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool() || stats == nullptr) {
      std::fprintf(stderr, "top: bad stats response: %s\n", resp.dump().c_str());
      return util::kExitBadInput;
    }
    if (json) {
      std::printf("%s\n", stats->dump().c_str());
      std::fflush(stdout);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    const double responses = stats_num(*stats, {"server", "responses"});
    const double dt = std::chrono::duration<double>(now - prev_at).count();
    const double rate = have_prev && dt > 0.0 ? (responses - prev_responses) / dt : 0.0;
    if (!once) std::printf("\033[H\033[2J");  // clear screen between polls
    render_top(*stats, rate, have_prev);
    std::fflush(stdout);
    prev_responses = responses;
    prev_at = now;
    have_prev = true;
  }
  return 0;
}

// Maps a thrown exception to the documented exit-code taxonomy.
int exit_code_for(const std::exception& e) {
  if (dynamic_cast<const util::DivergenceError*>(&e) != nullptr) return util::kExitDiverged;
  if (dynamic_cast<const util::CorruptArtifactError*>(&e) != nullptr) return util::kExitBadInput;
  if (dynamic_cast<const util::IoError*>(&e) != nullptr) return util::kExitBadInput;
  if (dynamic_cast<const circuit::ParseError*>(&e) != nullptr) return util::kExitBadInput;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) return util::kExitUsage;
  return util::kExitInternal;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::ArgParser args(argc - 1, argv + 1);
  obs::init_from_env();
  util::fault::init_from_env();
  // Crash context costs nothing on the happy path: a fatal signal or
  // std::terminate dumps the recent event ring + phase stack to
  // crash-<pid>.json. The command-level phase is pushed explicitly so a
  // dump names at least the command even with instrumentation off.
  obs::FlightRecorder::install_crash_handlers();
  static char command_phase[64];
  std::snprintf(command_phase, sizeof command_phase, "cmd:%s", command.c_str());
  obs::FlightRecorder::instance().phase_enter(command_phase);
  ObsOutputs obs_out;
  try {
    obs_out = setup_observability(args);
    setup_runtime(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "paragraph %s: %s\n", command.c_str(), e.what());
    return util::kExitUsage;
  }
  int rc = -1;
  try {
    if (command == "generate") rc = cmd_generate(args);
    else if (command == "train") rc = cmd_train(args);
    else if (command == "predict") rc = cmd_predict(args);
    else if (command == "evaluate") rc = cmd_evaluate(args);
    else if (command == "report") rc = cmd_report(args);
    else if (command == "annotate") rc = cmd_annotate(args);
    else if (command == "dataset") rc = cmd_dataset(args);
    else if (command == "serve") rc = cmd_serve(args);
    else if (command == "client") rc = cmd_client(args);
    else if (command == "top") rc = cmd_top(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "paragraph %s: %s\n", command.c_str(), e.what());
    // Flush whatever was collected before the failure; partial metrics and
    // traces are exactly what you want when diagnosing a crash.
    flush_observability(obs_out);
    return exit_code_for(e);
  }
  if (rc < 0) return usage();
  flush_observability(obs_out);
  return rc;
}
