// perf_diff — the PR perf-regression gate over paragraph-bench-v1 JSON.
//
//   perf_diff [--threshold PCT] [--advisory] BASELINE.json CANDIDATE.json
//
// Compares every candidate metric against the baseline median using the
// noise-aware rule in perf_diff.h (candidate best rep vs baseline median,
// relative threshold, default 25% — generous because the recorded
// baselines come from a noisy shared single-core container; see
// bench_results/obs/RUNTIME_SPEEDUP.md). Exit codes:
//   0  no regression (including: baseline file absent — neutral, so the
//      gate cannot fail before a baseline has ever been recorded)
//   1  at least one metric regressed beyond the threshold
//   2  usage or parse error
// --advisory reports regressions but always exits 0 (CI smoke mode).
// PARAGRAPH_PERF_THRESHOLD overrides the default threshold (percent).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "perf_diff.h"

using namespace paragraph;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: perf_diff [--threshold PCT] [--advisory] BASELINE.json CANDIDATE.json\n");
  return 2;
}

const char* status_str(perfdiff::Status s) {
  switch (s) {
    case perfdiff::Status::kRegression: return "REGRESSION";
    case perfdiff::Status::kImproved: return "improved";
    case perfdiff::Status::kNewMetric: return "new";
    case perfdiff::Status::kOk: return "ok";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.25;
  if (const char* env = std::getenv("PARAGRAPH_PERF_THRESHOLD"))
    threshold = std::atof(env) / 100.0;
  bool advisory = false;
  std::string paths[2];
  std::size_t n_paths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--advisory") == 0) {
      advisory = true;
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]) / 100.0;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (n_paths < 2) {
      paths[n_paths++] = argv[i];
    } else {
      return usage();
    }
  }
  if (n_paths != 2 || threshold <= 0.0) return usage();

  std::string error;
  const auto baseline = perfdiff::load_bench_file(paths[0], &error);
  if (!baseline) {
    // A missing or unreadable baseline is neutral: record one with
    // scripts/run_benchmarks.sh before the gate can bite.
    std::printf("perf_diff: no usable baseline (%s) — skipping comparison\n", error.c_str());
    return 0;
  }
  const auto candidate = perfdiff::load_bench_file(paths[1], &error);
  if (!candidate) {
    std::fprintf(stderr, "perf_diff: cannot load candidate: %s\n", error.c_str());
    return 2;
  }
  if (!baseline->build_type.empty() && !candidate->build_type.empty() &&
      baseline->build_type != candidate->build_type) {
    std::printf("perf_diff: build types differ (%s vs %s) — skipping comparison\n",
                baseline->build_type.c_str(), candidate->build_type.c_str());
    return 0;
  }

  const auto result = perfdiff::diff(*baseline, *candidate, threshold);
  std::printf("perf_diff: %s vs %s (threshold %.0f%%, candidate best rep vs baseline median)\n",
              paths[0].c_str(), paths[1].c_str(), threshold * 100.0);
  for (const auto& row : result.rows) {
    if (row.status == perfdiff::Status::kNewMetric) {
      std::printf("  %-44s %10s  (no baseline)\n", row.name.c_str(), status_str(row.status));
    } else {
      std::printf("  %-44s %10s  base %12.4g  now %12.4g  %+6.1f%%\n", row.name.c_str(),
                  status_str(row.status), row.baseline, row.current, row.delta * 100.0);
    }
  }
  std::printf("perf_diff: %zu metric%s, %zu regression%s, %zu improved, %zu new\n",
              result.rows.size(), result.rows.size() == 1 ? "" : "s", result.regressions,
              result.regressions == 1 ? "" : "s", result.improvements, result.new_metrics);
  if (result.regressions > 0 && advisory) {
    std::printf("perf_diff: advisory mode — regressions reported, exit 0\n");
    return 0;
  }
  return result.regressions > 0 ? 1 : 0;
}
