// Regenerates the golden equivalence fixtures under tests/golden/.
//
// For every ModelKind (plus a 2-head ParaGraph variant) this runs a
// seed-fixed forward + backward on a deterministic generated circuit and
// writes the per-type embeddings and every parameter gradient to a binary
// fixture. The committed fixtures were produced by the pre-refactor
// per-model implementations; tests/golden_equivalence_test.cpp replays the
// same computation against the current message-passing engine and demands
// max-abs agreement within 1e-5.
//
// Usage: gen_golden <output-dir>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "circuitgen/generator.h"
#include "gnn/golden.h"
#include "gnn/models.h"

using namespace paragraph;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& c : gnn::golden_cases()) {
    const gnn::GoldenResult r = gnn::run_golden_case(c);
    const std::string path = dir + "/" + c.file_stem + ".bin";
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    gnn::write_golden(os, r);
    if (!os) {
      std::fprintf(stderr, "write failed for %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu embedding blocks, %zu params, loss %.6f)\n", path.c_str(),
                r.embeddings.size(), r.param_grads.size(), r.loss);
  }
  return 0;
}
