
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/paragraph_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/paragraph_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/spice_parser.cpp" "src/circuit/CMakeFiles/paragraph_circuit.dir/spice_parser.cpp.o" "gcc" "src/circuit/CMakeFiles/paragraph_circuit.dir/spice_parser.cpp.o.d"
  "/root/repo/src/circuit/spice_writer.cpp" "src/circuit/CMakeFiles/paragraph_circuit.dir/spice_writer.cpp.o" "gcc" "src/circuit/CMakeFiles/paragraph_circuit.dir/spice_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
