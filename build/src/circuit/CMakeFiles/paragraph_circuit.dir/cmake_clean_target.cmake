file(REMOVE_RECURSE
  "libparagraph_circuit.a"
)
