# Empty dependencies file for paragraph_circuit.
# This may be replaced when dependencies are built.
