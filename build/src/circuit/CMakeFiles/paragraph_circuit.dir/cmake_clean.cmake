file(REMOVE_RECURSE
  "CMakeFiles/paragraph_circuit.dir/netlist.cpp.o"
  "CMakeFiles/paragraph_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/paragraph_circuit.dir/spice_parser.cpp.o"
  "CMakeFiles/paragraph_circuit.dir/spice_parser.cpp.o.d"
  "CMakeFiles/paragraph_circuit.dir/spice_writer.cpp.o"
  "CMakeFiles/paragraph_circuit.dir/spice_writer.cpp.o.d"
  "libparagraph_circuit.a"
  "libparagraph_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
