# Empty compiler generated dependencies file for paragraph_core.
# This may be replaced when dependencies are built.
