file(REMOVE_RECURSE
  "libparagraph_core.a"
)
