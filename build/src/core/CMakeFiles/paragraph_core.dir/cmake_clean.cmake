file(REMOVE_RECURSE
  "CMakeFiles/paragraph_core.dir/ensemble.cpp.o"
  "CMakeFiles/paragraph_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/paragraph_core.dir/intervals.cpp.o"
  "CMakeFiles/paragraph_core.dir/intervals.cpp.o.d"
  "CMakeFiles/paragraph_core.dir/learners.cpp.o"
  "CMakeFiles/paragraph_core.dir/learners.cpp.o.d"
  "CMakeFiles/paragraph_core.dir/predictor.cpp.o"
  "CMakeFiles/paragraph_core.dir/predictor.cpp.o.d"
  "CMakeFiles/paragraph_core.dir/serialize.cpp.o"
  "CMakeFiles/paragraph_core.dir/serialize.cpp.o.d"
  "libparagraph_core.a"
  "libparagraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
