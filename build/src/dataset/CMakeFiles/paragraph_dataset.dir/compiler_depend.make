# Empty compiler generated dependencies file for paragraph_dataset.
# This may be replaced when dependencies are built.
