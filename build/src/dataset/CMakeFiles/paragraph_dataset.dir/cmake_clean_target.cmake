file(REMOVE_RECURSE
  "libparagraph_dataset.a"
)
