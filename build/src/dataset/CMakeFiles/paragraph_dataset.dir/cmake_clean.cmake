file(REMOVE_RECURSE
  "CMakeFiles/paragraph_dataset.dir/dataset.cpp.o"
  "CMakeFiles/paragraph_dataset.dir/dataset.cpp.o.d"
  "libparagraph_dataset.a"
  "libparagraph_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
