file(REMOVE_RECURSE
  "libparagraph_util.a"
)
