# Empty compiler generated dependencies file for paragraph_util.
# This may be replaced when dependencies are built.
