file(REMOVE_RECURSE
  "CMakeFiles/paragraph_util.dir/args.cpp.o"
  "CMakeFiles/paragraph_util.dir/args.cpp.o.d"
  "CMakeFiles/paragraph_util.dir/rng.cpp.o"
  "CMakeFiles/paragraph_util.dir/rng.cpp.o.d"
  "CMakeFiles/paragraph_util.dir/stats.cpp.o"
  "CMakeFiles/paragraph_util.dir/stats.cpp.o.d"
  "CMakeFiles/paragraph_util.dir/strings.cpp.o"
  "CMakeFiles/paragraph_util.dir/strings.cpp.o.d"
  "CMakeFiles/paragraph_util.dir/table.cpp.o"
  "CMakeFiles/paragraph_util.dir/table.cpp.o.d"
  "libparagraph_util.a"
  "libparagraph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
