# Empty compiler generated dependencies file for paragraph_nn.
# This may be replaced when dependencies are built.
