file(REMOVE_RECURSE
  "CMakeFiles/paragraph_nn.dir/graph_ops.cpp.o"
  "CMakeFiles/paragraph_nn.dir/graph_ops.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/init.cpp.o"
  "CMakeFiles/paragraph_nn.dir/init.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/matrix.cpp.o"
  "CMakeFiles/paragraph_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/module.cpp.o"
  "CMakeFiles/paragraph_nn.dir/module.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/ops.cpp.o"
  "CMakeFiles/paragraph_nn.dir/ops.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/optim.cpp.o"
  "CMakeFiles/paragraph_nn.dir/optim.cpp.o.d"
  "CMakeFiles/paragraph_nn.dir/tensor.cpp.o"
  "CMakeFiles/paragraph_nn.dir/tensor.cpp.o.d"
  "libparagraph_nn.a"
  "libparagraph_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
