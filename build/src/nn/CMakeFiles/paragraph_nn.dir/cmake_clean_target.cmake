file(REMOVE_RECURSE
  "libparagraph_nn.a"
)
