# Empty compiler generated dependencies file for paragraph_gnn.
# This may be replaced when dependencies are built.
