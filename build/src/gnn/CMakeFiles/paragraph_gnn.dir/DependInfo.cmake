
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/common.cpp" "src/gnn/CMakeFiles/paragraph_gnn.dir/common.cpp.o" "gcc" "src/gnn/CMakeFiles/paragraph_gnn.dir/common.cpp.o.d"
  "/root/repo/src/gnn/models.cpp" "src/gnn/CMakeFiles/paragraph_gnn.dir/models.cpp.o" "gcc" "src/gnn/CMakeFiles/paragraph_gnn.dir/models.cpp.o.d"
  "/root/repo/src/gnn/sampler.cpp" "src/gnn/CMakeFiles/paragraph_gnn.dir/sampler.cpp.o" "gcc" "src/gnn/CMakeFiles/paragraph_gnn.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/paragraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/paragraph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/paragraph_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
