file(REMOVE_RECURSE
  "CMakeFiles/paragraph_gnn.dir/common.cpp.o"
  "CMakeFiles/paragraph_gnn.dir/common.cpp.o.d"
  "CMakeFiles/paragraph_gnn.dir/models.cpp.o"
  "CMakeFiles/paragraph_gnn.dir/models.cpp.o.d"
  "CMakeFiles/paragraph_gnn.dir/sampler.cpp.o"
  "CMakeFiles/paragraph_gnn.dir/sampler.cpp.o.d"
  "libparagraph_gnn.a"
  "libparagraph_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
