file(REMOVE_RECURSE
  "libparagraph_gnn.a"
)
