# Empty compiler generated dependencies file for paragraph_sim.
# This may be replaced when dependencies are built.
