file(REMOVE_RECURSE
  "CMakeFiles/paragraph_sim.dir/annotation.cpp.o"
  "CMakeFiles/paragraph_sim.dir/annotation.cpp.o.d"
  "CMakeFiles/paragraph_sim.dir/elmore.cpp.o"
  "CMakeFiles/paragraph_sim.dir/elmore.cpp.o.d"
  "CMakeFiles/paragraph_sim.dir/expand.cpp.o"
  "CMakeFiles/paragraph_sim.dir/expand.cpp.o.d"
  "CMakeFiles/paragraph_sim.dir/metrics.cpp.o"
  "CMakeFiles/paragraph_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/paragraph_sim.dir/mna.cpp.o"
  "CMakeFiles/paragraph_sim.dir/mna.cpp.o.d"
  "libparagraph_sim.a"
  "libparagraph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
