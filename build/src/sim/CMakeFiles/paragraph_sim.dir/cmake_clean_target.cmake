file(REMOVE_RECURSE
  "libparagraph_sim.a"
)
