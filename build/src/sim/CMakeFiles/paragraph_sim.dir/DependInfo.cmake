
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/annotation.cpp" "src/sim/CMakeFiles/paragraph_sim.dir/annotation.cpp.o" "gcc" "src/sim/CMakeFiles/paragraph_sim.dir/annotation.cpp.o.d"
  "/root/repo/src/sim/elmore.cpp" "src/sim/CMakeFiles/paragraph_sim.dir/elmore.cpp.o" "gcc" "src/sim/CMakeFiles/paragraph_sim.dir/elmore.cpp.o.d"
  "/root/repo/src/sim/expand.cpp" "src/sim/CMakeFiles/paragraph_sim.dir/expand.cpp.o" "gcc" "src/sim/CMakeFiles/paragraph_sim.dir/expand.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/paragraph_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/paragraph_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/mna.cpp" "src/sim/CMakeFiles/paragraph_sim.dir/mna.cpp.o" "gcc" "src/sim/CMakeFiles/paragraph_sim.dir/mna.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/paragraph_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/paragraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/paragraph_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/paragraph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
