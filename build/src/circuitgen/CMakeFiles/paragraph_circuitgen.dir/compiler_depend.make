# Empty compiler generated dependencies file for paragraph_circuitgen.
# This may be replaced when dependencies are built.
