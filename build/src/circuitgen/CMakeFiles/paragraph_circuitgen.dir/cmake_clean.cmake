file(REMOVE_RECURSE
  "CMakeFiles/paragraph_circuitgen.dir/blocks.cpp.o"
  "CMakeFiles/paragraph_circuitgen.dir/blocks.cpp.o.d"
  "CMakeFiles/paragraph_circuitgen.dir/generator.cpp.o"
  "CMakeFiles/paragraph_circuitgen.dir/generator.cpp.o.d"
  "libparagraph_circuitgen.a"
  "libparagraph_circuitgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_circuitgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
