file(REMOVE_RECURSE
  "libparagraph_circuitgen.a"
)
