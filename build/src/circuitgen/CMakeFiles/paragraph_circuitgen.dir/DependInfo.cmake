
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuitgen/blocks.cpp" "src/circuitgen/CMakeFiles/paragraph_circuitgen.dir/blocks.cpp.o" "gcc" "src/circuitgen/CMakeFiles/paragraph_circuitgen.dir/blocks.cpp.o.d"
  "/root/repo/src/circuitgen/generator.cpp" "src/circuitgen/CMakeFiles/paragraph_circuitgen.dir/generator.cpp.o" "gcc" "src/circuitgen/CMakeFiles/paragraph_circuitgen.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/paragraph_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
