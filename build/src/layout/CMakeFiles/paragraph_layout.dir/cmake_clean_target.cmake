file(REMOVE_RECURSE
  "libparagraph_layout.a"
)
