# Empty dependencies file for paragraph_layout.
# This may be replaced when dependencies are built.
