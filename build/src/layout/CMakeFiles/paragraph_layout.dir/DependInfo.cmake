
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/annotator.cpp" "src/layout/CMakeFiles/paragraph_layout.dir/annotator.cpp.o" "gcc" "src/layout/CMakeFiles/paragraph_layout.dir/annotator.cpp.o.d"
  "/root/repo/src/layout/diffusion.cpp" "src/layout/CMakeFiles/paragraph_layout.dir/diffusion.cpp.o" "gcc" "src/layout/CMakeFiles/paragraph_layout.dir/diffusion.cpp.o.d"
  "/root/repo/src/layout/placer.cpp" "src/layout/CMakeFiles/paragraph_layout.dir/placer.cpp.o" "gcc" "src/layout/CMakeFiles/paragraph_layout.dir/placer.cpp.o.d"
  "/root/repo/src/layout/wire_model.cpp" "src/layout/CMakeFiles/paragraph_layout.dir/wire_model.cpp.o" "gcc" "src/layout/CMakeFiles/paragraph_layout.dir/wire_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/paragraph_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
