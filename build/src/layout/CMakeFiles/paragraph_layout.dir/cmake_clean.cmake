file(REMOVE_RECURSE
  "CMakeFiles/paragraph_layout.dir/annotator.cpp.o"
  "CMakeFiles/paragraph_layout.dir/annotator.cpp.o.d"
  "CMakeFiles/paragraph_layout.dir/diffusion.cpp.o"
  "CMakeFiles/paragraph_layout.dir/diffusion.cpp.o.d"
  "CMakeFiles/paragraph_layout.dir/placer.cpp.o"
  "CMakeFiles/paragraph_layout.dir/placer.cpp.o.d"
  "CMakeFiles/paragraph_layout.dir/wire_model.cpp.o"
  "CMakeFiles/paragraph_layout.dir/wire_model.cpp.o.d"
  "libparagraph_layout.a"
  "libparagraph_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
