file(REMOVE_RECURSE
  "CMakeFiles/paragraph_graph.dir/hetero_graph.cpp.o"
  "CMakeFiles/paragraph_graph.dir/hetero_graph.cpp.o.d"
  "libparagraph_graph.a"
  "libparagraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
