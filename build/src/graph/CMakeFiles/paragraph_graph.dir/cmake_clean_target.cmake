file(REMOVE_RECURSE
  "libparagraph_graph.a"
)
