# Empty dependencies file for paragraph_graph.
# This may be replaced when dependencies are built.
