# Empty compiler generated dependencies file for paragraph_eval.
# This may be replaced when dependencies are built.
