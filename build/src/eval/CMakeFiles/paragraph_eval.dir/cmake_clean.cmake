file(REMOVE_RECURSE
  "CMakeFiles/paragraph_eval.dir/metrics.cpp.o"
  "CMakeFiles/paragraph_eval.dir/metrics.cpp.o.d"
  "libparagraph_eval.a"
  "libparagraph_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
