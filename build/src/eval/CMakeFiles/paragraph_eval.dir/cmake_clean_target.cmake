file(REMOVE_RECURSE
  "libparagraph_eval.a"
)
