# Empty compiler generated dependencies file for paragraph_baselines.
# This may be replaced when dependencies are built.
