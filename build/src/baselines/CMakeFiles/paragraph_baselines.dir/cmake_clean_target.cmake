file(REMOVE_RECURSE
  "libparagraph_baselines.a"
)
