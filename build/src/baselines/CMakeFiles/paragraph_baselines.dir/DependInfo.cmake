
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gbrt.cpp" "src/baselines/CMakeFiles/paragraph_baselines.dir/gbrt.cpp.o" "gcc" "src/baselines/CMakeFiles/paragraph_baselines.dir/gbrt.cpp.o.d"
  "/root/repo/src/baselines/regressor.cpp" "src/baselines/CMakeFiles/paragraph_baselines.dir/regressor.cpp.o" "gcc" "src/baselines/CMakeFiles/paragraph_baselines.dir/regressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/paragraph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
