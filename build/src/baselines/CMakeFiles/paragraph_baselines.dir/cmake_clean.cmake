file(REMOVE_RECURSE
  "CMakeFiles/paragraph_baselines.dir/gbrt.cpp.o"
  "CMakeFiles/paragraph_baselines.dir/gbrt.cpp.o.d"
  "CMakeFiles/paragraph_baselines.dir/regressor.cpp.o"
  "CMakeFiles/paragraph_baselines.dir/regressor.cpp.o.d"
  "libparagraph_baselines.a"
  "libparagraph_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
