file(REMOVE_RECURSE
  "libparagraph_analysis.a"
)
