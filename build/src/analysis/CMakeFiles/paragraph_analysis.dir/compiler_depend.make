# Empty compiler generated dependencies file for paragraph_analysis.
# This may be replaced when dependencies are built.
