file(REMOVE_RECURSE
  "CMakeFiles/paragraph_analysis.dir/tsne.cpp.o"
  "CMakeFiles/paragraph_analysis.dir/tsne.cpp.o.d"
  "libparagraph_analysis.a"
  "libparagraph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paragraph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
