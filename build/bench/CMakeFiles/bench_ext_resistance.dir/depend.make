# Empty dependencies file for bench_ext_resistance.
# This may be replaced when dependencies are built.
