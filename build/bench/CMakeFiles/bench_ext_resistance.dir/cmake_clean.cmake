file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_resistance.dir/bench_ext_resistance.cpp.o"
  "CMakeFiles/bench_ext_resistance.dir/bench_ext_resistance.cpp.o.d"
  "bench_ext_resistance"
  "bench_ext_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
