file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_sim_error.dir/bench_table5_sim_error.cpp.o"
  "CMakeFiles/bench_table5_sim_error.dir/bench_table5_sim_error.cpp.o.d"
  "bench_table5_sim_error"
  "bench_table5_sim_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sim_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
