# Empty dependencies file for bench_table5_sim_error.
# This may be replaced when dependencies are built.
