file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_attention.dir/bench_ext_attention.cpp.o"
  "CMakeFiles/bench_ext_attention.dir/bench_ext_attention.cpp.o.d"
  "bench_ext_attention"
  "bench_ext_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
