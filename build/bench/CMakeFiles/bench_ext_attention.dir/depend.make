# Empty dependencies file for bench_ext_attention.
# This may be replaced when dependencies are built.
