# Empty dependencies file for bench_ablation_layers.
# This may be replaced when dependencies are built.
