file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pred_vs_truth.dir/bench_fig7_pred_vs_truth.cpp.o"
  "CMakeFiles/bench_fig7_pred_vs_truth.dir/bench_fig7_pred_vs_truth.cpp.o.d"
  "bench_fig7_pred_vs_truth"
  "bench_fig7_pred_vs_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pred_vs_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
