# Empty dependencies file for bench_fig7_pred_vs_truth.
# This may be replaced when dependencies are built.
