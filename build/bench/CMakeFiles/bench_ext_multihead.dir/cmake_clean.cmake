file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multihead.dir/bench_ext_multihead.cpp.o"
  "CMakeFiles/bench_ext_multihead.dir/bench_ext_multihead.cpp.o.d"
  "bench_ext_multihead"
  "bench_ext_multihead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multihead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
