# Empty dependencies file for bench_ext_multihead.
# This may be replaced when dependencies are built.
