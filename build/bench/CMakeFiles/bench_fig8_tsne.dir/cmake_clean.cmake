file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tsne.dir/bench_fig8_tsne.cpp.o"
  "CMakeFiles/bench_fig8_tsne.dir/bench_fig8_tsne.cpp.o.d"
  "bench_fig8_tsne"
  "bench_fig8_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
