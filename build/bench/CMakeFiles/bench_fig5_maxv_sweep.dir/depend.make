# Empty dependencies file for bench_fig5_maxv_sweep.
# This may be replaced when dependencies are built.
