# Empty compiler generated dependencies file for circuitgen_test.
# This may be replaced when dependencies are built.
