file(REMOVE_RECURSE
  "CMakeFiles/circuitgen_test.dir/circuitgen_test.cpp.o"
  "CMakeFiles/circuitgen_test.dir/circuitgen_test.cpp.o.d"
  "circuitgen_test"
  "circuitgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuitgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
