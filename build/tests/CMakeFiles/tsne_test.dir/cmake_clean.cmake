file(REMOVE_RECURSE
  "CMakeFiles/tsne_test.dir/tsne_test.cpp.o"
  "CMakeFiles/tsne_test.dir/tsne_test.cpp.o.d"
  "tsne_test"
  "tsne_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsne_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
