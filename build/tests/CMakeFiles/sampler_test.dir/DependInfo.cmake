
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sampler_test.cpp" "tests/CMakeFiles/sampler_test.dir/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/sampler_test.dir/sampler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/paragraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paragraph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/paragraph_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/paragraph_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/paragraph_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/paragraph_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/paragraph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/circuitgen/CMakeFiles/paragraph_circuitgen.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/paragraph_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/paragraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/paragraph_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/paragraph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/paragraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
