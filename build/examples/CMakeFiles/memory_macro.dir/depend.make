# Empty dependencies file for memory_macro.
# This may be replaced when dependencies are built.
