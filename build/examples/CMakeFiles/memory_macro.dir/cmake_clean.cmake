file(REMOVE_RECURSE
  "CMakeFiles/memory_macro.dir/memory_macro.cpp.o"
  "CMakeFiles/memory_macro.dir/memory_macro.cpp.o.d"
  "memory_macro"
  "memory_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
