file(REMOVE_RECURSE
  "CMakeFiles/spice_annotate.dir/spice_annotate.cpp.o"
  "CMakeFiles/spice_annotate.dir/spice_annotate.cpp.o.d"
  "spice_annotate"
  "spice_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
