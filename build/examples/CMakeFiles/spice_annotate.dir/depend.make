# Empty dependencies file for spice_annotate.
# This may be replaced when dependencies are built.
