# Empty dependencies file for ensemble_sweep.
# This may be replaced when dependencies are built.
