file(REMOVE_RECURSE
  "CMakeFiles/ensemble_sweep.dir/ensemble_sweep.cpp.o"
  "CMakeFiles/ensemble_sweep.dir/ensemble_sweep.cpp.o.d"
  "ensemble_sweep"
  "ensemble_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
