file(REMOVE_RECURSE
  "CMakeFiles/opamp_flow.dir/opamp_flow.cpp.o"
  "CMakeFiles/opamp_flow.dir/opamp_flow.cpp.o.d"
  "opamp_flow"
  "opamp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
