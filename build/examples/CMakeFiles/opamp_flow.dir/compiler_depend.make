# Empty compiler generated dependencies file for opamp_flow.
# This may be replaced when dependencies are built.
