// google-benchmark micro-benchmarks for the kernels the GNN training loop
// spends its time in: GEMM, gather/scatter, segment softmax, and a full
// ParaGraph embedding forward+backward on a realistic circuit graph.
//
// Alongside the console output, every run emits the canonical
// bench_results/BENCH_bench_kernels.json (schema paragraph-bench-v1, see
// bench_common.h) consumed by tools/perf_diff; pass
// --benchmark_repetitions=N for noise-aware medians.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "circuitgen/generator.h"
#include "gnn/models.h"
#include "gnn/plan.h"
#include "nn/graph_ops.h"
#include "nn/ops.h"
#include "util/rng.h"

using namespace paragraph;

namespace {

nn::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Matrix a = random_matrix(n, 32, 1);
  const nn::Matrix b = random_matrix(32, 32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::gemm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 32 * 32 * 2);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_GatherScatter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n * 4;
  util::Rng rng(3);
  nn::Tensor h(random_matrix(n, 32, 4), true);
  std::vector<std::int32_t> src(e), dst(e);
  for (std::size_t i = 0; i < e; ++i) {
    src[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    dst[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
  for (auto _ : state) {
    nn::Tensor msg = nn::gather_rows(h, src);
    benchmark::DoNotOptimize(nn::scatter_add_rows(msg, dst, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_GatherScatter)->Arg(1024)->Arg(16384);

void BM_SegmentSoftmax(benchmark::State& state) {
  const auto segments = static_cast<std::size_t>(state.range(0));
  const std::size_t per_segment = 6;
  nn::SegmentIndex seg;
  seg.offsets.push_back(0);
  for (std::size_t s = 0; s < segments; ++s)
    seg.offsets.push_back(seg.offsets.back() + static_cast<std::int32_t>(per_segment));
  nn::Tensor logits(random_matrix(segments * per_segment, 1, 5), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::segment_softmax(logits, seg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(segments * per_segment));
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1024)->Arg(16384);

// ---------------------------------------------- fused vs composed ops ----
// Each fused kernel benchmarked against the composed chain it replaces,
// same shapes, forward + backward (the backward is where the fused
// hand-derived gradients save tape nodes and intermediate matrices).

void BM_ScatterMeanComposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n * 4;
  util::Rng rng(21);
  nn::Tensor msg(random_matrix(e, 32, 22), true);
  std::vector<std::int32_t> dst(e);
  for (std::size_t i = 0; i < e; ++i)
    dst[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const std::vector<float> inv = nn::inverse_index_counts(dst, n);
  const nn::Matrix target(n, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor agg = nn::scale_rows(nn::scatter_add_rows(msg, dst, n), inv);
    nn::Tensor loss = nn::mse_loss(agg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_ScatterMeanComposed)->Arg(1024)->Arg(16384);

void BM_ScatterMeanFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n * 4;
  util::Rng rng(21);
  nn::Tensor msg(random_matrix(e, 32, 22), true);
  std::vector<std::int32_t> dst(e);
  for (std::size_t i = 0; i < e; ++i)
    dst[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const auto idx = nn::make_index(dst);
  const auto inv = nn::make_coeffs(nn::inverse_index_counts(dst, n));
  const nn::Matrix target(n, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor agg = nn::scatter_mean_rows(msg, idx, inv, n);
    nn::Tensor loss = nn::mse_loss(agg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_ScatterMeanFused)->Arg(1024)->Arg(16384);

// Typed-edge message transform: only a quarter of the rows are touched by
// the edge list, the realistic case for per-relation transforms.
void BM_GatherMatmulComposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n;  // edges touch n/4 distinct rows, 4 edges each
  util::Rng rng(23);
  nn::Tensor h(random_matrix(n, 32, 24), true);
  nn::Tensor w(random_matrix(32, 32, 25), true);
  std::vector<std::int32_t> src(e);
  for (std::size_t i = 0; i < e; ++i)
    src[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) / 4 - 1));
  const nn::Matrix target(e, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor msg = nn::gather_rows(nn::matmul(h, w), src);
    nn::Tensor loss = nn::mse_loss(msg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_GatherMatmulComposed)->Arg(1024)->Arg(16384);

void BM_GatherMatmulFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n;
  util::Rng rng(23);
  nn::Tensor h(random_matrix(n, 32, 24), true);
  nn::Tensor w(random_matrix(32, 32, 25), true);
  std::vector<std::int32_t> src(e);
  for (std::size_t i = 0; i < e; ++i)
    src[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) / 4 - 1));
  const nn::CompactIndex ci = nn::build_compact_index(src, n);
  const nn::Matrix target(e, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor msg = nn::gather_matmul(h, ci, w);
    nn::Tensor loss = nn::mse_loss(msg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_GatherMatmulFused)->Arg(1024)->Arg(16384);

// One GAT-style attention block: 6 incoming edges per destination.
struct AttentionBench {
  std::size_t n, e;
  nn::Tensor el, er, msg;
  std::vector<std::int32_t> src, dst;
  nn::SegmentIndex seg;
  AttentionBench(std::size_t nodes, std::uint64_t seed) : n(nodes), e(nodes * 6) {
    util::Rng rng(seed);
    el = nn::Tensor(random_matrix(n, 1, seed + 1), true);
    er = nn::Tensor(random_matrix(n, 1, seed + 2), true);
    msg = nn::Tensor(random_matrix(e, 32, seed + 3), true);
    seg.offsets.push_back(0);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t k = 0; k < 6; ++k) {
        dst.push_back(static_cast<std::int32_t>(s));
        src.push_back(
            static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
      seg.offsets.push_back(static_cast<std::int32_t>(dst.size()));
    }
  }
};

void BM_EdgeAttentionComposed(benchmark::State& state) {
  AttentionBench b(static_cast<std::size_t>(state.range(0)), 31);
  const nn::Matrix target(b.n, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor logits =
        nn::add(nn::gather_rows(b.el, b.dst), nn::gather_rows(b.er, b.src));
    nn::Tensor alpha = nn::segment_softmax(nn::leaky_relu(logits), b.seg);
    nn::Tensor agg = nn::scatter_add_rows(nn::scale_rows_by(b.msg, alpha), b.dst, b.n);
    nn::Tensor loss = nn::mse_loss(agg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(b.e));
}
BENCHMARK(BM_EdgeAttentionComposed)->Arg(1024)->Arg(16384);

void BM_EdgeAttentionFused(benchmark::State& state) {
  AttentionBench b(static_cast<std::size_t>(state.range(0)), 31);
  const auto eli = nn::make_index(b.dst);
  const auto eri = nn::make_index(b.src);
  const auto di = nn::make_index(b.dst);
  const auto seg = nn::make_segments(b.seg);
  const nn::Matrix target(b.n, 32, 0.1f);
  for (auto _ : state) {
    nn::Tensor agg = nn::edge_attention(b.el, b.er, b.msg, eli, eri, di, seg, b.n);
    nn::Tensor loss = nn::mse_loss(agg, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(b.e));
}
BENCHMARK(BM_EdgeAttentionFused)->Arg(1024)->Arg(16384);

void BM_ParaGraphForwardBackward(benchmark::State& state) {
  circuitgen::CircuitSpec spec;
  spec.name = "bench";
  spec.seed = 9;
  spec.glue_gates = static_cast<int>(state.range(0));
  spec.dffs = static_cast<int>(state.range(0) / 8);
  spec.opamps = 2;
  const auto nl = circuitgen::generate_circuit(spec);
  const auto g = graph::build_graph(nl);
  util::Rng rng(11);
  auto model = gnn::make_model(gnn::ModelKind::kParaGraph, 32, 5, rng);
  gnn::GraphBatch batch;
  batch.graph = &g;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<graph::NodeType>(t);
    if (g.num_nodes(nt) == 0) continue;
    batch.features[t] = nn::Tensor(g.features(nt));
  }
  const std::size_t n_nets = g.num_nodes(graph::NodeType::kNet);
  const nn::Matrix target(n_nets, 1, 0.5f);
  nn::Linear head(32, 1, rng);
  for (auto _ : state) {
    const auto emb = model->embed(batch);
    nn::Tensor pred = head.forward(emb[static_cast<std::size_t>(graph::NodeType::kNet)]);
    nn::Tensor loss = nn::mse_loss(pred, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.counters["nodes"] = static_cast<double>(g.total_nodes());
  state.counters["edges"] = static_cast<double>(g.total_edges());
}
BENCHMARK(BM_ParaGraphForwardBackward)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

// Same workload with the GraphPlan built once outside the loop, the way
// the trainer runs: no per-forward plan construction or degree buffers.
void BM_ParaGraphPlanned(benchmark::State& state) {
  circuitgen::CircuitSpec spec;
  spec.name = "bench";
  spec.seed = 9;
  spec.glue_gates = static_cast<int>(state.range(0));
  spec.dffs = static_cast<int>(state.range(0) / 8);
  spec.opamps = 2;
  const auto nl = circuitgen::generate_circuit(spec);
  const auto g = graph::build_graph(nl);
  util::Rng rng(11);
  auto model = gnn::make_model(gnn::ModelKind::kParaGraph, 32, 5, rng);
  const gnn::GraphPlan plan = gnn::GraphPlan::build(g);
  gnn::GraphBatch batch;
  batch.graph = &g;
  batch.plan = &plan;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<graph::NodeType>(t);
    if (g.num_nodes(nt) == 0) continue;
    batch.features[t] = nn::Tensor(g.features(nt));
  }
  const std::size_t n_nets = g.num_nodes(graph::NodeType::kNet);
  const nn::Matrix target(n_nets, 1, 0.5f);
  nn::Linear head(32, 1, rng);
  for (auto _ : state) {
    const auto emb = model->embed(batch);
    nn::Tensor pred = head.forward(emb[static_cast<std::size_t>(graph::NodeType::kNet)]);
    nn::Tensor loss = nn::mse_loss(pred, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.counters["nodes"] = static_cast<double>(g.total_nodes());
  state.counters["edges"] = static_cast<double>(g.total_edges());
}
BENCHMARK(BM_ParaGraphPlanned)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

// Forwards every per-repetition run to the console reporter unchanged and
// mirrors it into the canonical bench JSON (aggregate rows are skipped —
// perf_diff computes its own median over the reps).
class ProtocolReporter : public benchmark::ConsoleReporter {
 public:
  explicit ProtocolReporter(bench::BenchReporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      out_.add_rep(run.benchmark_name(), benchmark::GetTimeUnitString(run.time_unit),
                   run.GetAdjustedRealTime());
    }
  }

 private:
  bench::BenchReporter& out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReporter reporter("bench_kernels");
  ProtocolReporter display(reporter);
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  if (!reporter.empty()) reporter.write();
  return 0;
}
