// google-benchmark micro-benchmarks for the kernels the GNN training loop
// spends its time in: GEMM, gather/scatter, segment softmax, and a full
// ParaGraph embedding forward+backward on a realistic circuit graph.
#include <benchmark/benchmark.h>

#include "circuitgen/generator.h"
#include "gnn/models.h"
#include "nn/graph_ops.h"
#include "nn/ops.h"
#include "util/rng.h"

using namespace paragraph;

namespace {

nn::Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Matrix a = random_matrix(n, 32, 1);
  const nn::Matrix b = random_matrix(32, 32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::gemm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 32 * 32 * 2);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_GatherScatter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t e = n * 4;
  util::Rng rng(3);
  nn::Tensor h(random_matrix(n, 32, 4), true);
  std::vector<std::int32_t> src(e), dst(e);
  for (std::size_t i = 0; i < e; ++i) {
    src[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    dst[i] = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }
  for (auto _ : state) {
    nn::Tensor msg = nn::gather_rows(h, src);
    benchmark::DoNotOptimize(nn::scatter_add_rows(msg, dst, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(e));
}
BENCHMARK(BM_GatherScatter)->Arg(1024)->Arg(16384);

void BM_SegmentSoftmax(benchmark::State& state) {
  const auto segments = static_cast<std::size_t>(state.range(0));
  const std::size_t per_segment = 6;
  nn::SegmentIndex seg;
  seg.offsets.push_back(0);
  for (std::size_t s = 0; s < segments; ++s)
    seg.offsets.push_back(seg.offsets.back() + static_cast<std::int32_t>(per_segment));
  nn::Tensor logits(random_matrix(segments * per_segment, 1, 5), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::segment_softmax(logits, seg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(segments * per_segment));
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1024)->Arg(16384);

void BM_ParaGraphForwardBackward(benchmark::State& state) {
  circuitgen::CircuitSpec spec;
  spec.name = "bench";
  spec.seed = 9;
  spec.glue_gates = static_cast<int>(state.range(0));
  spec.dffs = static_cast<int>(state.range(0) / 8);
  spec.opamps = 2;
  const auto nl = circuitgen::generate_circuit(spec);
  const auto g = graph::build_graph(nl);
  util::Rng rng(11);
  auto model = gnn::make_model(gnn::ModelKind::kParaGraph, 32, 5, rng);
  gnn::GraphBatch batch;
  batch.graph = &g;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<graph::NodeType>(t);
    if (g.num_nodes(nt) == 0) continue;
    batch.features[t] = nn::Tensor(g.features(nt));
  }
  const std::size_t n_nets = g.num_nodes(graph::NodeType::kNet);
  const nn::Matrix target(n_nets, 1, 0.5f);
  nn::Linear head(32, 1, rng);
  for (auto _ : state) {
    const auto emb = model->embed(batch);
    nn::Tensor pred = head.forward(emb[static_cast<std::size_t>(graph::NodeType::kNet)]);
    nn::Tensor loss = nn::mse_loss(pred, target);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.counters["nodes"] = static_cast<double>(g.total_nodes());
  state.counters["edges"] = static_cast<double>(g.total_edges());
}
BENCHMARK(BM_ParaGraphForwardBackward)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
