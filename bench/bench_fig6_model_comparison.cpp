// Reproduces Fig 6: prediction accuracy (R^2, and MAE relative to the
// XGBoost baseline) for Linear, XGBoost, GCN, RGCN, GAT, GraphSage and
// ParaGraph across the prediction targets.
//
// As in the paper, the CAP model uses a single max_v = 10 fF model so the
// comparison is not biased by ensemble modeling, and results are averaged
// over multiple runs (profile-dependent; the paper uses 10).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/learners.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Fig 6: model comparison");
  const auto ds = bench::build_bench_dataset(profile);

  // Representative target subset for the default profile; the full profile
  // covers every Table I target like the paper.
  std::vector<dataset::TargetKind> targets = {
      dataset::TargetKind::kCap, dataset::TargetKind::kLde1, dataset::TargetKind::kLde5,
      dataset::TargetKind::kSourceArea, dataset::TargetKind::kDrainArea};
  if (profile.name == "full") targets = dataset::all_targets();
  if (profile.name == "smoke")
    targets = {dataset::TargetKind::kCap, dataset::TargetKind::kSourceArea};

  std::map<core::LearnerKind, std::map<dataset::TargetKind, double>> r2;
  std::map<core::LearnerKind, std::map<dataset::TargetKind, double>> mae;

  for (const auto target : targets) {
    for (const auto learner : core::fig6_learners()) {
      double r2_sum = 0.0;
      double mae_sum = 0.0;
      bench::Timer t;
      for (int run = 0; run < profile.runs; ++run) {
        core::LearnerConfig cfg;
        cfg.learner = learner;
        cfg.target = target;
        cfg.max_v_ff = 10.0;  // paper: max_v = 10 fF for this study
        cfg.epochs = profile.gnn_epochs;
        cfg.seed = profile.seed + static_cast<std::uint64_t>(run) * 1000;
        const auto m = core::train_and_evaluate(cfg, ds).pooled();
        r2_sum += m.r2;
        mae_sum += m.mae;
      }
      r2[learner][target] = r2_sum / profile.runs;
      mae[learner][target] = mae_sum / profile.runs;
      std::printf("  %-10s %-5s R2=%6.3f MAE=%9.4f  [%.0fs]\n", core::learner_name(learner),
                  dataset::target_name(target), r2[learner][target], mae[learner][target],
                  t.seconds());
      std::fflush(stdout);
    }
  }

  // ---- Fig 6a: R^2 ----
  std::vector<std::string> header = {"model"};
  for (const auto t : targets) header.push_back(dataset::target_name(t));
  header.push_back("avg");
  util::Table fig6a(header);
  for (const auto learner : core::fig6_learners()) {
    std::vector<double> row;
    double avg = 0.0;
    for (const auto t : targets) {
      row.push_back(r2[learner][t]);
      avg += r2[learner][t];
    }
    row.push_back(avg / targets.size());
    fig6a.add_row(core::learner_name(learner), row, 3);
  }
  std::printf("\nFig 6a: prediction R^2 (paper: ParaGraph avg 0.772, +110%% over XGBoost):\n");
  fig6a.print(std::cout);

  // ---- Fig 6b: MAE relative to XGBoost ----
  util::Table fig6b(header);
  for (const auto learner : core::fig6_learners()) {
    std::vector<double> row;
    double avg = 0.0;
    for (const auto t : targets) {
      const double rel = mae[learner][t] / std::max(mae[core::LearnerKind::kXgb][t], 1e-12);
      row.push_back(rel);
      avg += rel;
    }
    row.push_back(avg / targets.size());
    fig6b.add_row(core::learner_name(learner), row, 3);
  }
  std::printf("\nFig 6b: MAE relative to the XGBoost model (paper: ParaGraph reduces XGB MAE"
              " by 44%%):\n");
  fig6b.print(std::cout);

  const double pg = r2[core::LearnerKind::kParaGraph][targets[0]];
  double best_other = -1e9;
  for (const auto learner : core::fig6_learners()) {
    if (learner == core::LearnerKind::kParaGraph) continue;
    best_other = std::max(best_other, r2[learner][targets[0]]);
  }
  std::printf("\nCAP: ParaGraph R2 %.3f vs best alternative %.3f\n", pg, best_other);
  return 0;
}
