// Extension bench: multi-head attention in ParaGraph.
//
// Section V: "Both GAT and ParaGraph models can potentially use more than
// one attention head, however we are limited by GPU memory to only use one
// attention head on our dataset. We expect more attention heads would lead
// to even better results." This bench tests that conjecture on the
// synthetic suite with 1, 2 and 4 heads per edge-type group.
#include <iostream>

#include "bench_common.h"
#include "core/predictor.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Extension: ParaGraph attention heads");
  const auto ds = bench::build_bench_dataset(profile);

  for (const auto target : {dataset::TargetKind::kCap, dataset::TargetKind::kSourceArea}) {
    util::Table table({"heads", "R2", "MAE", "MAPE [%]", "params", "train s"});
    for (const std::size_t heads : {1u, 2u, 4u}) {
      double r2 = 0.0, mae = 0.0, mape = 0.0, secs = 0.0;
      std::size_t params = 0;
      for (int run = 0; run < profile.runs; ++run) {
        core::PredictorConfig pc;
        pc.target = target;
        pc.max_v_ff = 10.0;
        pc.attention_heads = heads;
        pc.epochs = profile.gnn_epochs;
        pc.seed = profile.seed + static_cast<std::uint64_t>(run) * 13;
        core::GnnPredictor p(pc);
        bench::Timer t;
        p.train(ds);
        secs += t.seconds();
        params = p.num_parameters();
        const auto m = p.evaluate(ds, ds.test).pooled();
        r2 += m.r2;
        mae += m.mae;
        mape += m.mape;
      }
      table.add_row(std::to_string(heads),
                    {r2 / profile.runs, mae / profile.runs, mape / profile.runs,
                     static_cast<double>(params), secs / profile.runs},
                    3);
      std::printf("  %s heads=%zu done\n", dataset::target_name(target), heads);
      std::fflush(stdout);
    }
    std::printf("\ntarget %s:\n", dataset::target_name(target));
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
