// Reproduces Fig 8: t-SNE of the net-node embeddings of the CAP model
// (max_v = 10 fF) on each testing circuit, coloured by log10 of the ground
// truth.
//
// The paper's reading is qualitative ("data points with different colors
// are well separated"); we quantify it with the leave-one-out kNN
// regression R^2 of log10(cap) in the 2-D embedding (1.0 = perfectly
// separated colour bands), and dump per-circuit CSVs for plotting.
#include <cmath>
#include <fstream>
#include <iostream>

#include "analysis/tsne.h"
#include "bench_common.h"
#include "core/predictor.h"
#include "util/strings.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Fig 8: t-SNE of net embeddings");
  const auto ds = bench::build_bench_dataset(profile);

  std::printf("training ParaGraph CAP model (max_v = 10 fF)...\n");
  core::PredictorConfig pc;
  pc.target = dataset::TargetKind::kCap;
  pc.max_v_ff = 10.0;
  pc.epochs = profile.gnn_epochs;
  pc.seed = profile.seed;
  core::GnnPredictor predictor(pc);
  predictor.train(ds);

  util::Table table({"circuit", "#nets", "tsne points", "kNN R2 (2-D tsne)",
                     "kNN R2 (32-D emb)", "csv"});
  for (const auto& s : ds.test) {
    const nn::Matrix emb = predictor.embeddings(ds, s, graph::NodeType::kNet);
    const auto& truth = s.target_values(dataset::TargetKind::kCap);

    // Cap the point count so the exact O(N^2) t-SNE stays fast.
    const std::size_t max_points = profile.name == "full" ? 2000 : 600;
    const std::size_t n = std::min(emb.rows(), max_points);
    nn::Matrix x(n, emb.cols());
    std::vector<float> log_cap(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < emb.cols(); ++c) x(i, c) = emb(i, c);
      log_cap[i] = std::log10(std::max(truth[i], 1e-3f));
    }
    if (n < 16) {
      table.add_row({s.name, std::to_string(truth.size()), std::to_string(n), "(too few)",
                     "(too few)", "-"});
      continue;
    }
    analysis::TsneConfig cfg;
    cfg.iterations = profile.name == "smoke" ? 120 : 400;
    cfg.seed = profile.seed;
    const nn::Matrix y = analysis::tsne(x, cfg);
    const int k = std::min<int>(10, static_cast<int>(n) / 4);
    const double score = analysis::knn_separation_score(y, log_cap, k);
    const double raw_score = analysis::knn_separation_score(x, log_cap, k);

    const std::string csv_name = "fig8_tsne_" + s.name + ".csv";
    std::ofstream csv(csv_name);
    csv << "x,y,log10_cap_ff\n";
    for (std::size_t i = 0; i < n; ++i)
      csv << y(i, 0) << "," << y(i, 1) << "," << log_cap[i] << "\n";
    table.add_row({s.name, std::to_string(truth.size()), std::to_string(n),
                   util::format("%.3f", score), util::format("%.3f", raw_score), csv_name});
  }
  std::printf("\nFig 8 separation scores (well-separated colours => score near 1):\n");
  table.print(std::cout);
  return 0;
}
