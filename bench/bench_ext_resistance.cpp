// Extension bench (the paper's stated future work): predicting net
// parasitic *resistance* from the schematic.
//
// "Future work will focus on extending this model to predict net parasitic
// resistances as well." — Section VI. The layout substrate annotates each
// net with a lumped trunk resistance (wirelength x sheet model + via
// stack); models regress it in log space. Reported like a Fig 6 column.
#include <iostream>

#include "bench_common.h"
#include "core/learners.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Extension: net parasitic resistance (paper future work)");
  const auto ds = bench::build_bench_dataset(profile);

  util::Table table({"model", "R2", "MAE [ohm]", "MAPE [%]", "train s"});
  const std::vector<core::LearnerKind> learners = {
      core::LearnerKind::kLinear, core::LearnerKind::kXgb, core::LearnerKind::kGraphSage,
      core::LearnerKind::kRgcn, core::LearnerKind::kParaGraph};
  for (const auto learner : learners) {
    core::LearnerConfig cfg;
    cfg.learner = learner;
    cfg.target = dataset::TargetKind::kRes;
    cfg.epochs = profile.gnn_epochs;
    cfg.seed = profile.seed;
    bench::Timer t;
    const auto m = core::train_and_evaluate(cfg, ds).pooled();
    table.add_row(core::learner_name(learner), {m.r2, m.mae, m.mape, t.seconds()}, 3);
    std::printf("  %s done\n", core::learner_name(learner));
    std::fflush(stdout);
  }
  std::printf("\nnet parasitic resistance prediction (log-space regression):\n");
  table.print(std::cout);
  return 0;
}
