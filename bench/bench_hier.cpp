// Hierarchy-scaling bench: plan+encode cost on a hier_giant circuit with
// and without the structural plan/embedding cache (gnn/plan_cache.h).
//
// The workload is one circuitgen::build_hier_giant netlist — repeated
// .subckt templates at two levels (cells within columns) — sized by the
// bench profile: smoke stays near 2k graph nodes, default near 16k, and
// full exceeds 100k (the ISSUE's scaling target). Each repetition measures
// the full single-circuit inference path:
//
//   cache_off  GraphPlan::build on the full graph + predict_all(plan)
//   cache_on   predict_all(cache): the model runs on the reduced graph
//              only, interior rows assembled from memoized embeddings
//
// The first cache_on call (reported separately as hier.warm_ms) pays the
// memoization miss; steady-state repetitions are what the gate compares.
// Predictions from both paths are compared bitwise — a mismatch fails the
// bench, so the speedup can never come from silently wrong math.
//
// Honesty notes: this container is single-core, so the win reported here
// is purely algorithmic (smaller reduced graph), not parallelism; and the
// memory metric is the matrix-allocation peak (obs::MemTracker), which
// tracks working-set pressure, not process RSS (the mmap'd model/dataset
// bytes are shared across phases).
//
// Output: console table + bench_results/BENCH_bench_hier.json (schema
// paragraph-bench-v1). `--quick` forces the smoke profile for CI.
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "circuitgen/hier.h"
#include "core/predictor.h"
#include "gnn/plan.h"
#include "gnn/plan_cache.h"
#include "obs/control.h"
#include "obs/metrics.h"
#include "util/table.h"

using namespace paragraph;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  auto profile = bench::BenchProfile::from_env();
  if (quick) profile = bench::BenchProfile{"smoke", 0.08, 30, 1, 42};
  profile.print_banner(quick ? "Hierarchy plan/embedding cache (quick)"
                             : "Hierarchy plan/embedding cache");
  // Matrix-allocation tracking and the plancache counters need the
  // instrumentation layer on.
  obs::set_enabled(true);

  const circuitgen::HierGiantSpec spec =
      circuitgen::hier_giant_spec(profile.suite_scale, profile.seed);
  bench::BenchReporter reporter("bench_hier");
  const std::string tag = "/" + profile.name;

  bench::Timer build_timer;
  circuitgen::Suite suite;
  suite.train.push_back(circuitgen::build_hier_giant(spec));
  const dataset::SuiteDataset ds =
      dataset::build_dataset_from_suite(std::move(suite), profile.seed);
  const dataset::Sample& s = ds.train[0];
  const std::size_t nodes = s.netlist.num_devices() + s.netlist.num_nets();
  std::printf("hier_giant: %d cols x %d cells x %d stages -> %zu devices, %zu nets "
              "(%zu graph nodes), %zu subckt instances; dataset build %.1f ms\n",
              spec.columns, spec.cells_per_column, spec.stages_per_cell,
              s.netlist.num_devices(), s.netlist.num_nets(), nodes,
              s.netlist.instances().size(), build_timer.seconds() * 1000.0);
  reporter.add_rep("hier.nodes" + tag, "nodes", static_cast<double>(nodes),
                   bench::BenchReporter::Better::kHigher);

  core::PredictorConfig pc;
  pc.target = dataset::TargetKind::kCap;
  pc.scale = profile.suite_scale;
  pc.seed = profile.seed;
  core::GnnPredictor predictor(pc);
  // Untrained weights are fine for a timing bench (the forward pass does
  // not depend on training), but the scaler must be valid for inverse().
  predictor.set_scaler(core::TargetScaler::for_cap(pc.max_v_ff));

  const int reps = profile.name == "full" ? 3 : (profile.name == "smoke" ? 3 : 5);

  // Phase 1: no cache. Every repetition plans the full graph and runs the
  // model over all of it — the cost the cache is meant to amortise.
  obs::MemTracker::instance().reset();
  std::vector<float> preds_off;
  std::vector<double> off_ms;
  for (int rep = 0; rep < reps; ++rep) {
    bench::Timer t;
    const gnn::GraphPlan plan = gnn::GraphPlan::build(s.graph, predictor.needs_homo());
    preds_off = predictor.predict_all(ds, s, plan);
    off_ms.push_back(t.seconds() * 1000.0);
    reporter.add_rep("hier.plan_encode_ms" + tag + "/cache_off", "ms", off_ms.back());
  }
  const double off_peak_mb =
      static_cast<double>(obs::MemTracker::instance().peak_bytes()) / (1024.0 * 1024.0);
  reporter.add_rep("hier.matrix_peak_mb" + tag + "/cache_off", "MB", off_peak_mb,
                   bench::BenchReporter::Better::kLower);

  // Phase 2: plan cache. The warm-up call pays every memoization miss
  // (representative subgraphs, plans, interior embeddings); steady-state
  // calls run the reduced graph only. The phase peak includes the warm-up,
  // so the memory comparison is not flattered by a pre-warmed cache.
  obs::MemTracker::instance().reset();
  gnn::PlanCache cache;
  std::vector<float> preds_on;
  std::vector<double> on_ms;
  {
    bench::Timer t;
    preds_on = predictor.predict_all(ds, s, cache);
    reporter.add_rep("hier.warm_ms" + tag + "/cache_on", "ms", t.seconds() * 1000.0);
  }
  for (int rep = 0; rep < reps; ++rep) {
    bench::Timer t;
    preds_on = predictor.predict_all(ds, s, cache);
    on_ms.push_back(t.seconds() * 1000.0);
    reporter.add_rep("hier.plan_encode_ms" + tag + "/cache_on", "ms", on_ms.back());
  }
  const double on_peak_mb =
      static_cast<double>(obs::MemTracker::instance().peak_bytes()) / (1024.0 * 1024.0);
  reporter.add_rep("hier.matrix_peak_mb" + tag + "/cache_on", "MB", on_peak_mb,
                   bench::BenchReporter::Better::kLower);

  // The speedup is only reportable because the outputs are bitwise equal.
  if (preds_off.size() != preds_on.size()) {
    std::fprintf(stderr, "FAIL: cached prediction count %zu != plain %zu\n", preds_on.size(),
                 preds_off.size());
    return 1;
  }
  for (std::size_t i = 0; i < preds_off.size(); ++i) {
    if (std::memcmp(&preds_off[i], &preds_on[i], sizeof(float)) != 0) {
      std::fprintf(stderr, "FAIL: cached prediction %zu = %.9g differs from plain %.9g\n", i,
                   static_cast<double>(preds_on[i]), static_cast<double>(preds_off[i]));
      return 1;
    }
  }

  const double off_med = median(off_ms), on_med = median(on_ms);
  const double speedup = on_med > 0.0 ? off_med / on_med : 0.0;
  const double mem_ratio = on_peak_mb > 0.0 ? off_peak_mb / on_peak_mb : 0.0;
  reporter.add_rep("hier.speedup_x" + tag, "x", speedup,
                   bench::BenchReporter::Better::kHigher);

  auto& reg = obs::MetricsRegistry::instance();
  util::Table table({"phase", "plan_encode_ms", "matrix_peak_mb"});
  char off_t[32], on_t[32], off_m[32], on_m[32];
  std::snprintf(off_t, sizeof(off_t), "%.1f", off_med);
  std::snprintf(on_t, sizeof(on_t), "%.1f", on_med);
  std::snprintf(off_m, sizeof(off_m), "%.1f", off_peak_mb);
  std::snprintf(on_m, sizeof(on_m), "%.1f", on_peak_mb);
  table.add_row({"cache_off", off_t, off_m});
  table.add_row({"cache_on", on_t, on_m});
  table.print(std::cout);
  std::printf("\nspeedup %.2fx, matrix-peak ratio %.2fx (%zu predictions bitwise identical; "
              "plancache hits %llu, misses %llu)\n",
              speedup, mem_ratio, preds_off.size(),
              static_cast<unsigned long long>(reg.counter("plancache.hits").value()),
              static_cast<unsigned long long>(reg.counter("plancache.misses").value()));
  std::printf("single-core container: the win is algorithmic (reduced graph), not parallel; "
              "matrix peak tracks allocation working set, not RSS.\n");
  reporter.write();
  return 0;
}
