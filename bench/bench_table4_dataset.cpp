// Reproduces Table IV: device and net distribution of the circuit dataset.
// The paper lists t1-t18 (training) and e1-e4 (testing); our generated
// suite mirrors each row's device-type profile at the bench profile's
// scale (see DESIGN.md §2 for the substitution rationale).
#include <iostream>

#include "bench_common.h"
#include "circuitgen/generator.h"
#include "layout/annotator.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Table IV: dataset device/net distribution");

  auto suite = circuitgen::build_paper_suite(profile.seed, profile.suite_scale);

  util::Table table({"circuit", "#net", "#tran", "#tran_th", "res", "cap", "bjt", "dio"});
  std::size_t total_devices = 0;
  auto add = [&](circuit::Netlist& nl) {
    layout::annotate_layout(nl, profile.seed + 1);
    const auto st = nl.stats();
    table.add_row({nl.name(), std::to_string(st.num_nets), std::to_string(st.transistors()),
                   std::to_string(st.thick_transistors()),
                   std::to_string(st.device_count[static_cast<std::size_t>(
                       circuit::DeviceKind::kResistor)]),
                   std::to_string(st.device_count[static_cast<std::size_t>(
                       circuit::DeviceKind::kCapacitor)]),
                   std::to_string(st.device_count[static_cast<std::size_t>(
                       circuit::DeviceKind::kBjt)]),
                   std::to_string(st.device_count[static_cast<std::size_t>(
                       circuit::DeviceKind::kDiode)])});
    total_devices += nl.num_devices();
  };
  for (auto& nl : suite.train) add(nl);
  for (auto& nl : suite.test) add(nl);
  table.print(std::cout);
  std::printf("\nt1-t18 train / e1-e4 test; %zu devices total.\n", total_devices);
  std::printf("(Paper row profiles at ~1/%.0f scale; t8/t9 are thick-gate-only, t10/t12/t13/"
              "t16/e1/e3 pure digital, t7/t11/t15/t17 contain BJTs, mirroring Table IV.)\n",
              1.0 / std::max(profile.suite_scale * 0.0125, 1e-9));
  return 0;
}
