// Component ablation of ParaGraph's three ingredients (DESIGN.md §4):
//   - per-edge-type weights/aggregation (RGCN idea),
//   - self-attention inside each edge-type group (GAT idea),
//   - concat(self, aggregated) update (GraphSage idea).
// Each variant removes exactly one ingredient from Algorithm 1.
#include <iostream>

#include "bench_common.h"
#include "core/predictor.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Ablation: ParaGraph components");
  const auto ds = bench::build_bench_dataset(profile);

  const std::vector<std::pair<gnn::ModelKind, const char*>> variants = {
      {gnn::ModelKind::kParaGraph, "ParaGraph (full)"},
      {gnn::ModelKind::kParaGraphNoAttention, "- attention (mean agg)"},
      {gnn::ModelKind::kParaGraphNoEdgeTypes, "- edge types (shared W)"},
      {gnn::ModelKind::kParaGraphNoConcat, "- self concat"},
  };

  for (const auto target : {dataset::TargetKind::kCap, dataset::TargetKind::kSourceArea}) {
    util::Table table({"variant", "R2", "MAE", "MAPE [%]", "params"});
    for (const auto& [kind, label] : variants) {
      double r2 = 0.0, mae = 0.0, mape = 0.0;
      std::size_t params = 0;
      for (int run = 0; run < profile.runs; ++run) {
        core::PredictorConfig pc;
        pc.model = kind;
        pc.target = target;
        pc.max_v_ff = 10.0;
        pc.epochs = profile.gnn_epochs;
        pc.seed = profile.seed + static_cast<std::uint64_t>(run) * 31;
        core::GnnPredictor p(pc);
        p.train(ds);
        params = p.num_parameters();
        const auto m = p.evaluate(ds, ds.test).pooled();
        r2 += m.r2;
        mae += m.mae;
        mape += m.mape;
      }
      table.add_row({label, util::format("%.3f", r2 / profile.runs),
                     util::format("%.4f", mae / profile.runs),
                     util::format("%.1f", mape / profile.runs), std::to_string(params)});
      std::printf("  %s / %s done\n", dataset::target_name(target), label);
      std::fflush(stdout);
    }
    std::printf("\ntarget %s:\n", dataset::target_name(target));
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
