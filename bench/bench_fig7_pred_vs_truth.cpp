// Reproduces Fig 7: ParaGraph prediction vs ground truth for the net
// parasitic capacitance (ensemble), two LDE parameters (LDE1, LDE5) and
// the source diffusion area (SA).
//
// The paper's qualitative finding: CAP and SA track the diagonal tightly
// (MAPE 15.0% / 10.3%) while the LDE parameters scatter (MAPE > 100%,
// attributed to inherent layout uncertainty). The bench reports MAPE and
// log-space correlation per target, dumps a scatter CSV per target for
// plotting, and emits the per-target summary metrics (MAPE/MAE/R²/pearson)
// through the paragraph-bench-v1 reporter so perf_diff can track
// model-quality movements the same way it tracks runtime.
#include <cmath>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "core/predictor.h"
#include "util/stats.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Fig 7: prediction vs ground truth");
  const auto ds = bench::build_bench_dataset(profile);

  util::Table table({"target", "MAPE [%]", "MAE", "R2", "log-log pearson", "n"});
  bench::BenchReporter reporter("bench_fig7_pred_vs_truth");

  auto report = [&table, &reporter](const char* name, const std::vector<float>& truth,
                                    const std::vector<float>& pred) {
    double mape = 0.0, mae = 0.0;
    std::vector<double> lt, lp;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      mape += std::abs(pred[i] - truth[i]) / std::max(std::abs(truth[i]), 1e-6f);
      mae += std::abs(pred[i] - truth[i]);
      lt.push_back(std::log10(std::max(truth[i], 1e-3f)));
      lp.push_back(std::log10(std::max(pred[i], 1e-3f)));
    }
    const double mape_pct = 100.0 * mape / static_cast<double>(truth.size());
    const double mean_ae = mae / static_cast<double>(truth.size());
    const double r2 = eval::r_squared(truth, pred);
    const double corr = util::pearson(lt, lp);
    table.add_row({name, util::format("%.1f", mape_pct), util::format("%.3f", mean_ae),
                   util::format("%.3f", r2), util::format("%.3f", corr),
                   std::to_string(truth.size())});
    const std::string prefix = std::string(name) + ".";
    reporter.add_rep(prefix + "mape", "%", mape_pct);
    reporter.add_rep(prefix + "mae", "abs", mean_ae);
    reporter.add_rep(prefix + "r2", "score", r2, bench::BenchReporter::Better::kHigher);
    reporter.add_rep(prefix + "loglog_pearson", "score", corr,
                     bench::BenchReporter::Better::kHigher);
    std::ofstream csv(std::string("fig7_") + name + ".csv");
    csv << "truth,pred\n";
    for (std::size_t i = 0; i < truth.size(); ++i)
      csv << truth[i] << "," << pred[i] << "\n";
  };

  // ---- CAP via the ensemble (Fig 7's capacitance panel uses it) ----
  {
    std::printf("training CAP ensemble...\n");
    core::EnsembleConfig cfg;
    cfg.max_vs_ff = {1.0, 10.0, 100.0, 1e4};
    cfg.base.epochs = profile.gnn_epochs;
    cfg.base.seed = profile.seed;
    core::CapEnsemble ens(cfg);
    ens.train(ds);
    std::vector<float> truth, pred;
    for (const auto& s : ds.test) {
      const auto& t = s.target_values(dataset::TargetKind::kCap);
      truth.insert(truth.end(), t.begin(), t.end());
      const auto p = ens.predict(ds, s);
      pred.insert(pred.end(), p.begin(), p.end());
    }
    report("CAP", truth, pred);
  }

  // ---- device parameters with per-target ParaGraph models ----
  for (const auto target : {dataset::TargetKind::kLde1, dataset::TargetKind::kLde5,
                            dataset::TargetKind::kSourceArea}) {
    std::printf("training ParaGraph %s model...\n", dataset::target_name(target));
    core::PredictorConfig pc;
    pc.target = target;
    pc.epochs = profile.gnn_epochs;
    pc.seed = profile.seed;
    core::GnnPredictor p(pc);
    p.train(ds);
    std::vector<float> truth, pred;
    for (const auto& s : ds.test) {
      const auto all = p.predict_all(ds, s);
      std::size_t k = 0;
      for (std::size_t slot = 0; slot < dataset::target_node_types(target).size(); ++slot) {
        const auto& t = s.target_values(target, slot);
        for (const float tv : t) {
          truth.push_back(tv);
          pred.push_back(all[k++]);
        }
      }
    }
    report(dataset::target_name(target), truth, pred);
  }

  std::printf("\nFig 7 summary (paper: CAP MAPE 15.0%%, SA MAPE 10.3%%, LDE MAPEs > 100%%):\n");
  table.print(std::cout);
  std::printf("\nscatter data written to fig7_<target>.csv\n");
  reporter.write();
  return 0;
}
