// Reproduces Fig 5 (capacitance prediction with models trained at
// different max_v) and the Section IV ensemble numbers.
//
// The paper shows scatter plots; a terminal bench reports the same
// information numerically: per-decade MAPE and log-space correlation for
// each single-max_v model, demonstrating that the wide-range model loses
// accuracy below ~1% of its max_v, and that Algorithm 2's ensemble is
// accurate over the whole range (paper: ensemble MAE 0.852 fF,
// MAPE 15.0%).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/stats.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Fig 5 + Section IV: max_v sweep and ensemble");
  const auto ds = bench::build_bench_dataset(profile);

  core::EnsembleConfig cfg;
  cfg.max_vs_ff = {1.0, 10.0, 100.0, 1e4};
  cfg.base.epochs = profile.gnn_epochs;
  cfg.base.seed = profile.seed;
  std::printf("training 4 CAP models (max_v = 1 fF, 10 fF, 100 fF, 10 pF)...\n");
  bench::Timer t;
  core::CapEnsemble ensemble(cfg);
  ensemble.train(ds);
  std::printf("trained in %.0fs\n\n", t.seconds());

  // Pool predictions over all test nets.
  std::vector<float> truth;
  std::vector<std::vector<float>> single(cfg.max_vs_ff.size());
  std::vector<float> combined;
  for (const auto& s : ds.test) {
    const auto& tv = s.target_values(dataset::TargetKind::kCap);
    truth.insert(truth.end(), tv.begin(), tv.end());
    const auto e = ensemble.predict(ds, s);
    combined.insert(combined.end(), e.begin(), e.end());
    for (std::size_t m = 0; m < single.size(); ++m) {
      const auto p = ensemble.model(m).predict_all(ds, s);
      single[m].insert(single[m].end(), p.begin(), p.end());
    }
  }

  // Fig 5 analogue: per-decade MAPE for each single model.
  util::Table fig5({"truth decade", "n", "1fF (5d)", "10fF (5c)", "100fF (5b)", "10pF (5a)",
                    "ensemble (7a)"});
  for (int dec = -2; dec <= 3; ++dec) {
    std::size_t n = 0;
    std::vector<double> mape(single.size() + 1, 0.0);
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const int d = std::clamp(static_cast<int>(std::floor(std::log10(truth[i]))), -2, 3);
      if (d != dec) continue;
      ++n;
      for (std::size_t m = 0; m < single.size(); ++m)
        mape[m] += std::abs(single[m][i] - truth[i]) / truth[i];
      mape.back() += std::abs(combined[i] - truth[i]) / truth[i];
    }
    if (n == 0) continue;
    std::vector<std::string> row = {util::format("1e%+d fF", dec), std::to_string(n)};
    for (const double m : mape) row.push_back(util::format("%.0f%%", 100.0 * m / n));
    fig5.add_row(std::move(row));
  }
  std::printf("MAPE by capacitance decade (x-axis of the Fig 5 scatter plots):\n");
  fig5.print(std::cout);

  // Log-space correlation: "how diagonal is the scatter plot".
  util::Table corr({"model", "log-log pearson", "MAE [fF]", "MAPE [%]"});
  auto log_corr = [&](const std::vector<float>& pred) {
    std::vector<double> lt, lp;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      lt.push_back(std::log10(std::max(truth[i], 1e-3f)));
      lp.push_back(std::log10(std::max(pred[i], 1e-3f)));
    }
    return util::pearson(lt, lp);
  };
  auto mae_of = [&](const std::vector<float>& pred) {
    double s = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(pred[i] - truth[i]);
    return s / truth.size();
  };
  auto mape_of = [&](const std::vector<float>& pred) {
    double s = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
      s += std::abs(pred[i] - truth[i]) / truth[i];
    return 100.0 * s / truth.size();
  };
  const char* names[] = {"1fF model", "10fF model", "100fF model", "10pF model"};
  for (std::size_t m = 0; m < single.size(); ++m)
    corr.add_row(names[m], {log_corr(single[m]), mae_of(single[m]), mape_of(single[m])}, 3);
  corr.add_row("ensemble (Alg 2)", {log_corr(combined), mae_of(combined), mape_of(combined)},
               3);
  std::printf("\nfull-range accuracy (paper §IV: ensemble MAE 0.852 fF, MAPE 15.0%%):\n");
  corr.print(std::cout);
  return 0;
}
