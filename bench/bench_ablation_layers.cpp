// Reproduces the paper's layer-count sweep (Section V): "We swept the
// number of layers and found a higher number of layers gives better
// results and plateaus at 5."
#include <iostream>

#include "bench_common.h"
#include "core/predictor.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Ablation: embedding layer count (paper: plateau at L = 5)");
  const auto ds = bench::build_bench_dataset(profile);

  util::Table table({"layers", "CAP R2", "CAP MAE [fF]", "CAP MAPE [%]", "train s"});
  const int max_layers = profile.name == "smoke" ? 3 : 6;
  for (int layers = 1; layers <= max_layers; ++layers) {
    double r2 = 0.0, mae = 0.0, mape = 0.0, secs = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      core::PredictorConfig pc;
      pc.target = dataset::TargetKind::kCap;
      pc.max_v_ff = 10.0;
      pc.num_layers = static_cast<std::size_t>(layers);
      pc.epochs = profile.gnn_epochs;
      pc.seed = profile.seed + static_cast<std::uint64_t>(run) * 97;
      core::GnnPredictor p(pc);
      bench::Timer t;
      p.train(ds);
      secs += t.seconds();
      const auto m = p.evaluate(ds, ds.test).pooled();
      r2 += m.r2;
      mae += m.mae;
      mape += m.mape;
    }
    table.add_row(std::to_string(layers),
                  {r2 / profile.runs, mae / profile.runs, mape / profile.runs,
                   secs / profile.runs},
                  3);
    std::printf("  L=%d done\n", layers);
    std::fflush(stdout);
  }
  std::printf("\nParaGraph CAP accuracy vs embedding depth:\n");
  table.print(std::cout);
  return 0;
}
