// Parallel-runtime throughput bench: training epoch wall time and batched
// inference throughput (nets/sec, graphs/sec) across thread counts.
//
// Inference reuses one cached GraphPlan per circuit across repetitions,
// matching the batched predict/evaluate paths. Results are deterministic
// at every thread count (DESIGN.md §7), so this bench measures speed only;
// runtime_determinism_test covers the equivalence claims.
//
// Speedups depend on the host: on a single-core container every thread
// count resolves to the same core and the ratios stay ~1.0x.
//
// Output: the usual console table plus the canonical
// bench_results/BENCH_bench_throughput.json (schema paragraph-bench-v1,
// see bench_common.h) with per-epoch wall times and per-repetition
// inference throughputs as repetitions, consumed by tools/perf_diff.
// `--quick` shrinks the run for CI smoke (smoke profile, threads {1, 2}).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/predictor.h"
#include "gnn/plan.h"
#include "runtime/thread_pool.h"
#include "util/table.h"

using namespace paragraph;

namespace {

struct Measurement {
  std::size_t threads = 0;
  double epoch_ms = 0.0;      // mean training epoch wall time
  double graphs_per_s = 0.0;  // circuits predicted per second
  double nets_per_s = 0.0;    // net predictions produced per second
};

Measurement measure(const dataset::SuiteDataset& ds, const bench::BenchProfile& profile,
                    std::size_t threads, int epochs, int reps,
                    bench::BenchReporter& reporter) {
  runtime::set_num_threads(threads);
  // Metric names carry the profile so perf_diff never compares a smoke-
  // profile run against a default-profile baseline: mismatched names are
  // neutral (kNewMetric), matching ones gate like-for-like.
  const std::string tag = "/" + profile.name + "/t" + std::to_string(threads);
  Measurement m;
  m.threads = threads;

  core::PredictorConfig pc;
  pc.target = dataset::TargetKind::kCap;
  pc.scale = profile.suite_scale;
  pc.seed = profile.seed;
  pc.epochs = epochs;
  core::GnnPredictor predictor(pc);
  {
    // Each epoch's wall time is one repetition; the median is what
    // perf_diff gates on, so a single slow warm-up epoch cannot fail a PR.
    bench::Timer t;
    predictor.train(ds, [&](const core::EpochRecord& rec) {
      reporter.add_rep("train.epoch_ms" + tag, "ms", rec.wall_ms);
    });
    m.epoch_ms = t.seconds() * 1000.0 / epochs;
  }

  // Batched inference: one plan per circuit, cached across repetitions.
  std::vector<gnn::GraphPlan> plans;
  plans.reserve(ds.test.size());
  for (const auto& s : ds.test)
    plans.push_back(gnn::GraphPlan::build(s.graph, predictor.needs_homo()));

  std::size_t graphs = 0, nets = 0;
  bench::Timer total;
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t rep_graphs = 0, rep_nets = 0;
    bench::Timer t;
    for (std::size_t si = 0; si < ds.test.size(); ++si) {
      const auto preds = predictor.predict_all(ds, ds.test[si], plans[si]);
      ++rep_graphs;
      rep_nets += preds.size();
    }
    const double rep_secs = std::max(t.seconds(), 1e-9);
    reporter.add_rep("infer.graphs_per_s" + tag, "graphs/s",
                     static_cast<double>(rep_graphs) / rep_secs);
    reporter.add_rep("infer.nets_per_s" + tag, "nets/s",
                     static_cast<double>(rep_nets) / rep_secs);
    graphs += rep_graphs;
    nets += rep_nets;
  }
  const double secs = std::max(total.seconds(), 1e-9);
  m.graphs_per_s = static_cast<double>(graphs) / secs;
  m.nets_per_s = static_cast<double>(nets) / secs;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  auto profile = bench::BenchProfile::from_env();
  if (quick) profile = bench::BenchProfile{"smoke", 0.08, 30, 1, 42};
  profile.print_banner(quick ? "Parallel runtime throughput (quick)"
                             : "Parallel runtime throughput");

  const auto ds = bench::build_bench_dataset(profile);
  // Throughput only needs enough epochs for a stable per-epoch median.
  const int epochs = std::max(3, profile.gnn_epochs / 15);
  const int reps = (quick || profile.name == "smoke") ? 3 : 10;
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  bench::BenchReporter reporter("bench_throughput");
  std::vector<Measurement> rows;
  for (const std::size_t threads : thread_counts) {
    std::printf("measuring %zu thread%s...\n", threads, threads == 1 ? "" : "s");
    rows.push_back(measure(ds, profile, threads, epochs, reps, reporter));
  }
  runtime::set_num_threads(0);

  util::Table table({"threads", "epoch_ms", "speedup", "graphs/s", "nets/s", "inf_speedup"});
  const Measurement& base = rows.front();
  for (const auto& m : rows) {
    char epoch_buf[32], su_buf[32], gps_buf[32], nps_buf[32], isu_buf[32];
    std::snprintf(epoch_buf, sizeof(epoch_buf), "%.1f", m.epoch_ms);
    std::snprintf(su_buf, sizeof(su_buf), "%.2fx", base.epoch_ms / m.epoch_ms);
    std::snprintf(gps_buf, sizeof(gps_buf), "%.2f", m.graphs_per_s);
    std::snprintf(nps_buf, sizeof(nps_buf), "%.0f", m.nets_per_s);
    std::snprintf(isu_buf, sizeof(isu_buf), "%.2fx", m.nets_per_s / base.nets_per_s);
    table.add_row({std::to_string(m.threads), epoch_buf, su_buf, gps_buf, nps_buf, isu_buf});
  }
  table.print(std::cout);
  std::printf("\n%d training epochs per point; inference = %d passes over the %zu test "
              "circuits with cached GraphPlans.\n",
              epochs, reps, ds.test.size());
  reporter.write();
  return 0;
}
