// Reproduces Table V: simulation errors between pre-layout predictions and
// post-layout on the circuit metrics of the testing circuits.
//
// Four annotation sources are compared against the post-layout reference:
//   1. layout netlist without parasitics,
//   2. the designer's estimation (rule of thumb with designer-to-designer
//      variability),
//   3. predictions from the XGBoost baseline,
//   4. predictions from ParaGraph (CAP ensemble + SA/DA/LDE1/LDE2 models).
// Metrics (stage delays, slews, total power, Elmore paths) are computed by
// the MNA simulator on the linearised circuits; the paper reports 67
// metrics, our deterministic extraction yields a comparable count.
#include <cmath>
#include <iostream>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/ensemble.h"
#include "core/learners.h"
#include "sim/metrics.h"
#include "util/table.h"

using namespace paragraph;

namespace {

struct DeviceParamPreds {
  std::vector<float> sa, da, lde1, lde2;
};

template <typename PredictFn>
DeviceParamPreds collect_device_preds(PredictFn&& predict, const dataset::Sample& s) {
  DeviceParamPreds out;
  out.sa = predict(dataset::TargetKind::kSourceArea, s);
  out.da = predict(dataset::TargetKind::kDrainArea, s);
  out.lde1 = predict(dataset::TargetKind::kLde1, s);
  out.lde2 = predict(dataset::TargetKind::kLde2, s);
  return out;
}

}  // namespace

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Table V: simulation errors on circuit metrics");
  const auto ds = bench::build_bench_dataset(profile);
  const auto& tech = layout::default_tech();

  // ---- train the ParaGraph predictors ----
  std::printf("training ParaGraph CAP ensemble...\n");
  core::EnsembleConfig ens_cfg;
  ens_cfg.max_vs_ff = {1.0, 10.0, 100.0, 1e4};
  ens_cfg.base.epochs = profile.gnn_epochs;
  ens_cfg.base.seed = profile.seed;
  core::CapEnsemble pg_cap(ens_cfg);
  bench::Timer t1;
  pg_cap.train(ds);
  std::printf("  done [%.0fs]\n", t1.seconds());

  std::map<dataset::TargetKind, std::unique_ptr<core::GnnPredictor>> pg_dev;
  for (const auto target : {dataset::TargetKind::kSourceArea, dataset::TargetKind::kDrainArea,
                            dataset::TargetKind::kLde1, dataset::TargetKind::kLde2,
                            dataset::TargetKind::kRes}) {
    std::printf("training ParaGraph %s model...\n", dataset::target_name(target));
    core::PredictorConfig pc;
    pc.target = target;
    pc.epochs = profile.gnn_epochs;
    pc.seed = profile.seed;
    pg_dev[target] = std::make_unique<core::GnnPredictor>(pc);
    pg_dev[target]->train(ds);
  }

  // ---- train the XGBoost predictors ----
  std::printf("training XGBoost predictors...\n");
  core::ClassicalPredictor xgb_cap(core::LearnerKind::kXgb, dataset::TargetKind::kCap, 1e7);
  xgb_cap.fit(ds);
  std::map<dataset::TargetKind, std::unique_ptr<core::ClassicalPredictor>> xgb_dev;
  for (const auto target : {dataset::TargetKind::kSourceArea, dataset::TargetKind::kDrainArea,
                            dataset::TargetKind::kLde1, dataset::TargetKind::kLde2,
                            dataset::TargetKind::kRes}) {
    xgb_dev[target] =
        std::make_unique<core::ClassicalPredictor>(core::LearnerKind::kXgb, target);
    xgb_dev[target]->fit(ds);
  }

  // ---- evaluate metrics per test circuit, per source ----
  // 4 stage nets x (delay, slew, tree-Elmore) + 2 bandwidths + power + up
  // to 2 resistor-path Elmore metrics per circuit: ~17 x 4 circuits, close
  // to the paper's 67 metrics.
  sim::MetricOptions mopts;
  mopts.max_stage_nets = 4;
  mopts.max_bw_nets = 2;
  mopts.max_elmore_paths = 2;

  std::vector<double> err_none, err_designer, err_xgb, err_pg;
  std::size_t metric_count = 0;
  for (std::size_t ci = 0; ci < ds.test.size(); ++ci) {
    const auto& s = ds.test[ci];
    const auto truth_ann = sim::ground_truth_annotation(s.netlist, tech);
    const auto none_ann = sim::no_parasitics_annotation(s.netlist, tech);
    const auto designer_ann = sim::designer_annotation(s.netlist, tech, profile.seed + ci);

    const auto pg_preds = collect_device_preds(
        [&](dataset::TargetKind t, const dataset::Sample& smp) {
          return pg_dev[t]->predict_all(ds, smp);
        },
        s);
    const auto pg_ann = sim::make_predicted_annotation(
        s.netlist, s.graph, tech, "ParaGraph", pg_cap.predict(ds, s), pg_preds.sa, pg_preds.da,
        pg_preds.lde1, pg_preds.lde2,
        pg_dev[dataset::TargetKind::kRes]->predict_all(ds, s));

    const auto xgb_preds = collect_device_preds(
        [&](dataset::TargetKind t, const dataset::Sample& smp) {
          return xgb_dev[t]->predict_all(smp);
        },
        s);
    const auto xgb_ann = sim::make_predicted_annotation(
        s.netlist, s.graph, tech, "XGB", xgb_cap.predict_all(s), xgb_preds.sa, xgb_preds.da,
        xgb_preds.lde1, xgb_preds.lde2,
        xgb_dev[dataset::TargetKind::kRes]->predict_all(s));

    const auto m_ref = sim::evaluate_metrics(s.netlist, truth_ann, tech, mopts);
    const auto m_none = sim::evaluate_metrics(s.netlist, none_ann, tech, mopts);
    const auto m_designer = sim::evaluate_metrics(s.netlist, designer_ann, tech, mopts);
    const auto m_xgb = sim::evaluate_metrics(s.netlist, xgb_ann, tech, mopts);
    const auto m_pg = sim::evaluate_metrics(s.netlist, pg_ann, tech, mopts);

    for (std::size_t i = 0; i < m_ref.size(); ++i) {
      const double ref = m_ref[i].value;
      if (ref <= 0.0) continue;
      ++metric_count;
      err_none.push_back((m_none[i].value - ref) / ref);
      err_designer.push_back((m_designer[i].value - ref) / ref);
      err_xgb.push_back((m_xgb[i].value - ref) / ref);
      err_pg.push_back((m_pg[i].value - ref) / ref);
    }
    std::printf("  %s: %zu metrics\n", s.name.c_str(), m_ref.size());
  }

  const auto h_none = eval::error_histogram(err_none);
  const auto h_designer = eval::error_histogram(err_designer);
  const auto h_xgb = eval::error_histogram(err_xgb);
  const auto h_pg = eval::error_histogram(err_pg);

  util::Table table({"Error Range", "Layout w/o parasitics", "Designer's Estimation",
                     "Prediction w/ XGB", "Prediction w/ ParaGraph"});
  const char* bins[] = {"< 10%", "10%-20%", "20%-30%", "30%-40%", "40%-50%", "> 50%"};
  for (std::size_t b = 0; b < 6; ++b) {
    table.add_row({bins[b], std::to_string(h_none.bins[b]), std::to_string(h_designer.bins[b]),
                   std::to_string(h_xgb.bins[b]), std::to_string(h_pg.bins[b])});
  }
  table.add_row({"Mean", util::format("%.2f%%", h_none.mean_percent),
                 util::format("%.2f%%", h_designer.mean_percent),
                 util::format("%.2f%%", h_xgb.mean_percent),
                 util::format("%.2f%%", h_pg.mean_percent)});
  table.add_row({"Geometric Mean", util::format("%.2f%%", h_none.geomean_percent),
                 util::format("%.2f%%", h_designer.geomean_percent),
                 util::format("%.2f%%", h_xgb.geomean_percent),
                 util::format("%.2f%%", h_pg.geomean_percent)});

  std::printf("\nTable V analogue over %zu circuit metrics (paper: 67 metrics; mean errors"
              " 37.75%% / >100%% / 32.14%% / 9.60%%):\n",
              metric_count);
  table.print(std::cout);
  return 0;
}
