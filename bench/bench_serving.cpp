// Serving bench: throughput and client-observed latency of the
// `paragraph serve` daemon under closed-loop load, micro-batching on
// (max_batch 8) vs off (max_batch 1).
//
// An in-process Server answers over a unix socket in a temp directory;
// C client threads each run a closed request loop (send one netlist,
// wait for the answer, repeat) over a small rotation of distinct decks —
// the pattern a layout sweep produces, where concurrent callers ask
// about the same handful of circuits. At C=1 the two configurations are
// equivalent (a batch of one); at saturating C the batching path
// coalesces duplicate decks inside each backlog drain (parse once, plan
// once, predict once, answer all), which is where the throughput and
// tail-latency win comes from.
//
// Honesty notes: this container is single-core, so the batching win
// reported here is pure coalescing economics, not parallel fan-out of
// the per-deck predictions (which the worker also does, one deck per
// pool chunk, on multicore hosts). The model is a deliberately tiny cap
// ensemble — serving overhead, framing, and scheduling are what is being
// measured, not GNN math (bench_throughput owns that).
//
// Output: console table + bench_results/BENCH_bench_serving.json
// (schema paragraph-bench-v1):
//   serve.batchN.cC.throughput  req/s   higher is better
//   serve.batchN.cC.p50/p95/p99 ms      lower is better
//   serve.fairness.solo.p99     ms      one polite client, empty server
//   serve.fairness.flood.p99    ms      same client vs a flooding key
// `--quick` shrinks the sweep for CI (perf_smoke runs it).
//
// The fairness scenario (DESIGN.md §14) is the measured evidence for the
// per-client deficit-round-robin dequeue: a polite closed-loop client is
// timed alone, then again while several connections sharing one greedy
// fairness key keep the queue saturated. With DRR the polite p99 should
// stay within a small multiple of solo (the acceptance bar is 3x); under
// plain FIFO it would instead scale with the flooder's whole backlog.
//
// The timed workload is byte-identical to the pre-telemetry bench, so the
// perf_diff gate against the checked-in baseline honestly prices the
// always-on request tracing (ids, phase spans, SLO windows, recent ring):
// the budget is <=5% on req/s. After the timed sweep the bench asserts a
// `stats` round-trip returns a coherent paragraph-stats-v1 document —
// outside the timing, so the check itself costs nothing.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "circuit/spice_writer.h"
#include "core/ensemble.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/table.h"

using namespace paragraph;

namespace {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct LoadResult {
  double rps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::uint64_t coalesced = 0;
  std::uint64_t batches = 0;
};

LoadResult run_load(serve::Server& server, int clients, int requests_per_client,
                    const std::vector<std::string>& decks) {
  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  const std::uint64_t coalesced0 = server.stats().coalesced.load();
  const std::uint64_t batches0 = server.stats().batches.load();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ServeClient client =
          serve::ServeClient::connect_unix(server.config().socket_path);
      client.predict(decks[0]);  // per-connection warmup, unmeasured
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < requests_per_client; ++i) {
        const bench::Timer t;
        const obs::JsonValue resp = client.predict(decks[i % decks.size()]);
        const obs::JsonValue* ok = resp.find("ok");
        if (ok == nullptr || !ok->as_bool()) {
          std::fprintf(stderr, "bench_serving: request failed: %s\n", resp.dump().c_str());
          std::exit(1);
        }
        latencies_ms[c].push_back(t.seconds() * 1e3);
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  const bench::Timer wall;
  go.store(true);
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  std::vector<double> all;
  for (const auto& per_client : latencies_ms) all.insert(all.end(), per_client.begin(),
                                                         per_client.end());
  LoadResult r;
  r.rps = static_cast<double>(all.size()) / seconds;
  r.p50_ms = percentile(all, 0.50);
  r.p95_ms = percentile(all, 0.95);
  r.p99_ms = percentile(all, 0.99);
  r.coalesced = server.stats().coalesced.load() - coalesced0;
  r.batches = server.stats().batches.load() - batches0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  bench::BenchProfile profile = bench::BenchProfile::from_env();
  if (quick) profile = bench::BenchProfile{"smoke", 0.08, 30, 1, 42};
  profile.print_banner(quick ? "Serving throughput/latency (quick)"
                             : "Serving throughput/latency");

  // Tiny serving model: the bench measures the daemon, not the GNN.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "paragraph_bench_serving").string();
  std::filesystem::create_directories(dir);
  const std::string ensemble_path = dir + "/ens.bin";
  std::vector<std::string> decks;
  {
    bench::Timer t;
    auto ds = dataset::build_dataset(profile.seed, 0.08);
    core::EnsembleConfig cfg;
    cfg.max_vs_ff = {1.0, 1e4};
    cfg.base.epochs = 2;
    cfg.base.num_layers = 2;
    cfg.base.embed_dim = 8;
    cfg.base.seed = profile.seed;
    cfg.base.scale = 0.08;
    core::CapEnsemble ens(cfg);
    ens.train(ds);
    ens.save(ensemble_path);
    for (const auto& s : ds.test) decks.push_back(circuit::write_spice_string(s.netlist));
    std::printf("trained and saved serving ensemble, %zu decks [%.1fs]\n\n", decks.size(),
                t.seconds());
  }

  const std::vector<int> client_sweep = quick ? std::vector<int>{1, 8}
                                              : std::vector<int>{1, 4, 16};
  const int requests_per_client = quick ? 20 : 60;
  const int reps = quick ? 2 : 3;

  bench::BenchReporter reporter("bench_serving");
  util::Table table({"config", "clients", "req/s", "p50 ms", "p95 ms", "p99 ms",
                     "coalesced", "batches"});
  for (const std::size_t max_batch : {std::size_t{8}, std::size_t{1}}) {
    serve::ServeConfig cfg;
    cfg.socket_path = dir + "/bench_" + std::to_string(max_batch) + ".sock";
    cfg.registry.ensemble_path = ensemble_path;
    cfg.queue_capacity = 128;
    cfg.max_batch = max_batch;
    serve::Server server(cfg);
    server.start();
    const std::string tag = "serve.batch" + std::to_string(max_batch);
    for (const int clients : client_sweep) {
      for (int rep = 0; rep < reps; ++rep) {
        const LoadResult r = run_load(server, clients, requests_per_client, decks);
        const std::string prefix = tag + ".c" + std::to_string(clients);
        reporter.add_rep(prefix + ".throughput", "req/s", r.rps);
        reporter.add_rep(prefix + ".p50", "ms", r.p50_ms);
        reporter.add_rep(prefix + ".p95", "ms", r.p95_ms);
        reporter.add_rep(prefix + ".p99", "ms", r.p99_ms);
        if (rep == 0)
          table.add_row({tag, std::to_string(clients), fmt(r.rps, 1), fmt(r.p50_ms, 2),
                         fmt(r.p95_ms, 2), fmt(r.p99_ms, 2), std::to_string(r.coalesced),
                         std::to_string(r.batches)});
      }
    }
    // Post-sweep (outside every timed region): the live stats document
    // must be schema-valid and account for the load just generated.
    {
      serve::ServeClient probe = serve::ServeClient::connect_unix(cfg.socket_path);
      const obs::JsonValue resp = probe.admin("stats");
      const obs::JsonValue* ok = resp.find("ok");
      const obs::JsonValue* stats = resp.find("stats");
      if (ok == nullptr || !ok->as_bool() || stats == nullptr ||
          stats->at("schema").as_string() != "paragraph-stats-v1" ||
          stats->at("server").at("responses").as_int() <= 0 ||
          stats->at("metrics").at("histograms").find("serve.latency_us") == nullptr ||
          stats->at("slo").at("windows").find("1m") == nullptr) {
        std::fprintf(stderr, "bench_serving: bad stats document: %s\n", resp.dump().c_str());
        return 1;
      }
    }
    server.stop();
  }

  // Fairness: polite client p99 solo vs with one greedy key at capacity.
  {
    serve::ServeConfig cfg;
    cfg.socket_path = dir + "/bench_fair.sock";
    cfg.registry.ensemble_path = ensemble_path;
    cfg.queue_capacity = 32;
    cfg.max_batch = 8;
    serve::Server server(cfg);
    server.start();

    const int flooder_conns = 6;
    const int polite_requests = quick ? 15 : 40;
    const auto polite_run = [&](bool flood) {
      std::atomic<bool> stop{false};
      std::atomic<int> flooding{0};
      std::vector<std::thread> flooders;
      if (flood)
        for (int f = 0; f < flooder_conns; ++f)
          flooders.emplace_back([&] {
            // Several connections sharing one fairness key: a classic
            // greedy tenant. queue_full answers (per-client cap) are
            // expected and simply retried — the point is pressure.
            serve::ServeClient c = serve::ServeClient::connect_unix(cfg.socket_path);
            serve::RequestOptions opt;
            opt.client = "flooder";
            bool first = true;
            while (!stop.load(std::memory_order_relaxed)) {
              c.predict(decks[0], opt);
              if (first) { flooding.fetch_add(1); first = false; }
            }
          });
      while (flooding.load() < (flood ? flooder_conns : 0)) std::this_thread::yield();
      std::vector<double> lat;
      serve::ServeClient c = serve::ServeClient::connect_unix(cfg.socket_path);
      serve::RequestOptions opt;
      opt.client = "polite";
      c.predict(decks[0], opt);  // warmup, unmeasured
      for (int i = 0; i < polite_requests; ++i) {
        const bench::Timer t;
        const obs::JsonValue resp = c.predict(decks[i % decks.size()], opt);
        const obs::JsonValue* ok = resp.find("ok");
        if (ok == nullptr || !ok->as_bool()) {
          std::fprintf(stderr, "bench_serving: polite request failed: %s\n",
                       resp.dump().c_str());
          std::exit(1);
        }
        lat.push_back(t.seconds() * 1e3);
      }
      stop.store(true);
      for (auto& t : flooders) t.join();
      return lat;
    };
    for (int rep = 0; rep < reps; ++rep) {
      const double solo_p99 = percentile(polite_run(false), 0.99);
      const double flood_p99 = percentile(polite_run(true), 0.99);
      reporter.add_rep("serve.fairness.solo.p99", "ms", solo_p99);
      reporter.add_rep("serve.fairness.flood.p99", "ms", flood_p99);
      if (rep == 0)
        table.add_row({"fairness", "1+" + std::to_string(flooder_conns) + " greedy",
                       "-", "-", "-", fmt(flood_p99, 2), "-",
                       "solo p99 " + fmt(solo_p99, 2)});
    }
    server.stop();
  }
  table.print(std::cout);
  reporter.write();
  std::filesystem::remove_all(dir);
  return 0;
}
