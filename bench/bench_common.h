// Shared configuration for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure of the paper (see DESIGN.md
// for the index). Because the paper's configuration (300 epochs, 10 runs,
// ~1M-device circuits on a V100) does not fit a single CPU core, each bench
// reads a profile from the PARAGRAPH_BENCH_SCALE environment variable:
//   smoke    tiny sanity run (seconds)
//   default  CPU-sized reproduction (minutes) — used for EXPERIMENTS.md
//   full     paper-faithful epochs/runs (hours)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dataset/dataset.h"
#include "util/strings.h"

namespace paragraph::bench {

struct BenchProfile {
  std::string name = "default";
  double suite_scale = 0.25;  // multiplier on Table IV block counts
  int gnn_epochs = 150;
  int runs = 1;
  std::uint64_t seed = 42;

  static BenchProfile from_env() {
    BenchProfile p;
    const char* env = std::getenv("PARAGRAPH_BENCH_SCALE");
    const std::string mode = env != nullptr ? env : "default";
    if (mode == "smoke") {
      p = BenchProfile{"smoke", 0.08, 30, 1, 42};
    } else if (mode == "full") {
      p = BenchProfile{"full", 1.0, 300, 3, 42};
    }
    return p;
  }

  void print_banner(const char* bench_name) const {
    std::printf("=== %s (profile: %s, suite scale %.2f, %d epochs, %d run%s) ===\n",
                bench_name, name.c_str(), suite_scale, gnn_epochs, runs, runs > 1 ? "s" : "");
  }
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline dataset::SuiteDataset build_bench_dataset(const BenchProfile& p) {
  Timer t;
  auto ds = dataset::build_dataset(p.seed, p.suite_scale);
  std::size_t devices = 0;
  std::size_t nets = 0;
  for (const auto& s : ds.train) {
    devices += s.netlist.num_devices();
    nets += s.netlist.stats().num_nets;
  }
  std::printf("dataset: %zu train + %zu test circuits, %zu train devices, %zu train nets"
              " [%.1fs]\n\n",
              ds.train.size(), ds.test.size(), devices, nets, t.seconds());
  return ds;
}

}  // namespace paragraph::bench
