// Shared configuration for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure of the paper (see DESIGN.md
// for the index). Because the paper's configuration (300 epochs, 10 runs,
// ~1M-device circuits on a V100) does not fit a single CPU core, each bench
// reads a profile from the PARAGRAPH_BENCH_SCALE environment variable:
//   smoke    tiny sanity run (seconds)
//   default  CPU-sized reproduction (minutes) — used for EXPERIMENTS.md
//   full     paper-faithful epochs/runs (hours)
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "runtime/thread_pool.h"
#include "util/atomic_file.h"
#include "util/strings.h"

#ifndef PARAGRAPH_BUILD_TYPE
#define PARAGRAPH_BUILD_TYPE "unknown"
#endif

namespace paragraph::bench {

struct BenchProfile {
  std::string name = "default";
  double suite_scale = 0.25;  // multiplier on Table IV block counts
  int gnn_epochs = 150;
  int runs = 1;
  std::uint64_t seed = 42;

  static BenchProfile from_env() {
    BenchProfile p;
    const char* env = std::getenv("PARAGRAPH_BENCH_SCALE");
    const std::string mode = env != nullptr ? env : "default";
    if (mode == "smoke") {
      p = BenchProfile{"smoke", 0.08, 30, 1, 42};
    } else if (mode == "full") {
      p = BenchProfile{"full", 1.0, 300, 3, 42};
    }
    return p;
  }

  void print_banner(const char* bench_name) const {
    std::printf("=== %s (profile: %s, suite scale %.2f, %d epochs, %d run%s) ===\n",
                bench_name, name.c_str(), suite_scale, gnn_epochs, runs, runs > 1 ? "s" : "");
  }
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Canonical machine-readable bench protocol (schema paragraph-bench-v1).
//
// Every bench funnels its measurements through a BenchReporter and writes
// bench_results/BENCH_<name>.json next to its free-form .txt output, so
// tools/perf_diff can gate PRs on noise-aware median comparisons:
//
//   {"schema": "paragraph-bench-v1", "bench": "...", "build_type": "Release",
//    "threads": N, "peak_rss_kb": K,
//    "metrics": [{"name": "...", "unit": "ns", "better": "lower",
//                 "reps": [..], "min": .., "median": .., "count": R}, ...]}
//
// A metric's repetitions are individual observations (per-epoch wall
// times, per-repetition throughputs, per-run benchmark timings); direction
// is inferred from the unit ("…/s" is higher-is-better, durations are
// lower-is-better) unless overridden per rep — quality scores like R² or
// a correlation coefficient are higher-is-better but carry no rate unit.
// Insertion order is preserved so dumps stay diffable.
class BenchReporter {
 public:
  // Comparison direction for a metric; kAuto infers from the unit.
  enum class Better { kAuto, kLower, kHigher };

  explicit BenchReporter(std::string bench_name) : bench_(std::move(bench_name)) {}

  // Appends one observation of `metric`. The unit must be consistent
  // across repetitions of the same metric, as must `better` (the last
  // non-kAuto value wins).
  void add_rep(const std::string& metric, const std::string& unit, double value,
               Better better = Better::kAuto) {
    auto it = index_.find(metric);
    if (it == index_.end()) {
      index_.emplace(metric, metrics_.size());
      metrics_.push_back(Metric{metric, unit, {value}, better});
    } else {
      metrics_[it->second].reps.push_back(value);
      if (better != Better::kAuto) metrics_[it->second].better = better;
    }
  }

  bool empty() const { return metrics_.empty(); }

  obs::JsonValue to_json() const {
    obs::JsonValue root = obs::JsonValue::object();
    root.set("schema", "paragraph-bench-v1");
    root.set("bench", bench_);
    root.set("build_type", PARAGRAPH_BUILD_TYPE);
    root.set("threads", runtime::num_threads());
    const obs::ProcMemory pm = obs::sample_process_memory();
    root.set("peak_rss_kb", pm.ok ? pm.vm_hwm_kb : 0);
    root.set("matrix_peak_bytes", obs::MemTracker::instance().peak_bytes());
    obs::JsonValue metrics = obs::JsonValue::array();
    for (const Metric& m : metrics_) {
      obs::JsonValue o = obs::JsonValue::object();
      o.set("name", m.name);
      o.set("unit", m.unit);
      const bool higher = m.better == Better::kAuto
                              ? m.unit.find("/s") != std::string::npos
                              : m.better == Better::kHigher;
      o.set("better", higher ? "higher" : "lower");
      std::vector<double> sorted = m.reps;
      std::sort(sorted.begin(), sorted.end());
      obs::JsonValue reps = obs::JsonValue::array();
      for (const double v : m.reps) reps.push_back(v);
      o.set("reps", std::move(reps));
      o.set("count", sorted.size());
      o.set("min", sorted.front());
      o.set("max", sorted.back());
      o.set("median", sorted.size() % 2 == 1
                          ? sorted[sorted.size() / 2]
                          : 0.5 * (sorted[sorted.size() / 2 - 1] + sorted[sorted.size() / 2]));
      metrics.push_back(std::move(o));
    }
    root.set("metrics", std::move(metrics));
    return root;
  }

  // Writes bench_results/BENCH_<name>.json (directory overridable via
  // PARAGRAPH_BENCH_OUT). Returns false (with a stderr note) on I/O error.
  bool write() const {
    const char* env = std::getenv("PARAGRAPH_BENCH_OUT");
    const std::string dir = env != nullptr ? env : "bench_results";
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    // Atomic publish: the perf gate never reads a half-written document.
    if (!paragraph::util::try_write_file_atomic(path, to_json().dump() + '\n')) {
      std::fprintf(stderr, "%s: cannot write %s (run from the repo root or set "
                   "PARAGRAPH_BENCH_OUT)\n", bench_.c_str(), path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    std::vector<double> reps;
    Better better = Better::kAuto;
  };
  std::string bench_;
  std::vector<Metric> metrics_;
  std::map<std::string, std::size_t> index_;
};

inline dataset::SuiteDataset build_bench_dataset(const BenchProfile& p) {
  Timer t;
  auto ds = dataset::build_dataset(p.seed, p.suite_scale);
  std::size_t devices = 0;
  std::size_t nets = 0;
  for (const auto& s : ds.train) {
    devices += s.netlist.num_devices();
    nets += s.netlist.stats().num_nets;
  }
  std::printf("dataset: %zu train + %zu test circuits, %zu train devices, %zu train nets"
              " [%.1fs]\n\n",
              ds.train.size(), ds.test.size(), devices, nets, t.seconds());
  return ds;
}

}  // namespace paragraph::bench
