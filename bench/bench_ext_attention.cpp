// Extension bench: attention interpretability.
//
// Section III notes that "analyzing the learned attentional weights may
// also help model interpretability". This bench trains a ParaGraph CAP
// model and reports, per edge type, how focused the learned attention is
// on the test circuits: the mean softmax entropy over destinations with
// multiple incoming edges (log(k) = uniform, 0 = one-hot) and the mean
// weight given to the strongest neighbour.
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/predictor.h"
#include "util/strings.h"
#include "util/table.h"

using namespace paragraph;

int main() {
  const auto profile = bench::BenchProfile::from_env();
  profile.print_banner("Extension: learned attention analysis");
  const auto ds = bench::build_bench_dataset(profile);

  std::printf("training ParaGraph CAP model...\n");
  core::PredictorConfig pc;
  pc.target = dataset::TargetKind::kCap;
  pc.max_v_ff = 10.0;
  pc.epochs = profile.gnn_epochs;
  pc.seed = profile.seed;
  core::GnnPredictor predictor(pc);
  predictor.train(ds);

  // Pool attention statistics over all test circuits (final layer).
  struct Pooled {
    double entropy = 0.0;
    double max_w = 0.0;
    std::size_t segments = 0;
    std::size_t edges = 0;
  };
  std::map<std::size_t, Pooled> by_type;
  for (const auto& s : ds.test) {
    const auto record = predictor.attention_analysis(ds, s);
    if (record.layers.empty()) continue;
    const auto& last = record.layers.back();
    for (const auto& [type_index, entry] : last) {
      Pooled& p = by_type[type_index];
      p.entropy += entry.mean_entropy * entry.segments;
      p.max_w += entry.mean_max * entry.segments;
      p.segments += entry.segments;
      p.edges += entry.edges;
    }
  }

  util::Table table({"edge type", "multi-edge dsts", "edges", "mean entropy [nats]",
                     "uniform entropy", "mean max weight"});
  for (const auto& [type_index, p] : by_type) {
    if (p.segments == 0) continue;
    const double avg_fanin = static_cast<double>(p.edges) / p.segments;
    table.add_row({graph::edge_type_registry()[type_index].name,
                   std::to_string(p.segments), std::to_string(p.edges),
                   util::format("%.3f", p.entropy / p.segments),
                   util::format("%.3f", std::log(avg_fanin)),
                   util::format("%.3f", p.max_w / p.segments)});
  }
  std::printf("\nfinal-layer attention by relation (entropy << uniform -> the model singles"
              " out specific neighbours):\n");
  table.print(std::cout);
  return 0;
}
