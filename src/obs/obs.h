// Umbrella header for the observability layer: structured logging
// (obs/log.h), metrics registry (obs/metrics.h), hierarchical scoped
// profiling (obs/profile.h), Chrome trace export (obs/trace.h), memory
// telemetry (obs/memory.h), distribution sketches + drift scoring
// (obs/sketch.h), and the crash flight recorder (obs/flight_recorder.h).
//
// Typical CLI wiring:
//   obs::init_from_env();                 // PARAGRAPH_LOG / PARAGRAPH_OBS
//   obs::set_enabled(true);               // turn instrumentation on
//   obs::TraceCollector::instance().set_enabled(true);
//   ... run ...
//   obs::MetricsRegistry::instance().write_json("metrics.json");
//   obs::TraceCollector::instance().write_json("trace.json");
#pragma once

#include "obs/control.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/sketch.h"
#include "obs/trace.h"
