// Minimal JSON value: build, serialise, and parse.
//
// The observability layer emits machine-readable artefacts (metrics
// dumps, Chrome trace files, JSONL log records) and the tests parse them
// back to guard well-formedness, so both directions live here. Objects
// preserve insertion order to keep dumps diffable across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paragraph::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long long v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  // Doubles saturate to the int64 range (NaN -> 0): values parsed off the
  // wire can be arbitrary (e.g. 1e300) and an out-of-range double->int
  // cast is undefined behavior, so it must never be reachable from here.
  std::int64_t as_int() const {
    if (kind_ != Kind::kDouble) return int_;
    constexpr double kLo = -9223372036854775808.0;  // -2^63, exactly representable
    constexpr double kHi = 9223372036854775808.0;   // 2^63 (first double > int64 max)
    if (double_ != double_) return 0;
    if (double_ >= kHi) return std::numeric_limits<std::int64_t>::max();
    if (double_ < kLo) return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(double_);
  }
  double as_double() const { return kind_ == Kind::kInt ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return str_; }

  // Object access. `set` overwrites an existing key in place.
  JsonValue& set(std::string key, JsonValue v);
  const JsonValue* find(std::string_view key) const;  // nullptr when absent
  const JsonValue& at(std::string_view key) const;    // throws std::out_of_range
  const std::vector<std::pair<std::string, JsonValue>>& items() const { return obj_; }

  // Array access.
  void push_back(JsonValue v);
  const std::vector<JsonValue>& elements() const { return arr_; }
  const JsonValue& operator[](std::size_t i) const { return arr_.at(i); }

  // Array length or object member count; 0 for scalars.
  std::size_t size() const;

  // Compact serialisation (no whitespace). Non-finite doubles emit null.
  std::string dump() const;
  void dump_to(std::string& out) const;

  // Strict JSON parser. Returns nullopt (and fills `error`, if given) on
  // malformed input, including trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text, std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

// Escapes and quotes `s` as a JSON string literal.
void json_escape_to(std::string_view s, std::string& out);

}  // namespace paragraph::obs
