// RAII scoped timers feeding a hierarchical wall-time profiler.
//
// A ScopedTimer pushes its name onto a thread-local phase path
// ("train/epoch/forward/..."); on destruction it aggregates the scope's
// wall time into the Profiler under that path, records it into the
// metrics histogram "time/<path>" (giving p50/p95/p99 per phase), and —
// when tracing is on — appends a Chrome trace event. The constructor
// checks obs::enabled() once; a disabled timer records nothing and costs
// one relaxed atomic load.
//
//   void train_epoch() {
//     PARAGRAPH_TIMED_SCOPE("epoch");
//     ...
//   }
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/control.h"
#include "obs/json.h"

namespace paragraph::obs {

class Profiler {
 public:
  struct Node {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
  };

  static Profiler& instance();

  void record(const std::string& path, double dur_us);

  // {"<path>": {"count": n, "total_ms": t, "mean_us": m, ...}, ...}
  JsonValue to_json() const;
  // Human-readable table, deepest phases indented, sorted by path.
  std::string report() const;

  std::map<std::string, Node> nodes() const;
  void reset();

 private:
  Profiler() = default;
  mutable std::mutex mu_;
  std::map<std::string, Node> nodes_;
};

class ScopedTimer {
 public:
  // `name` must outlive the scope (string literals / registry names).
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_ = false;
  std::size_t parent_path_len_ = 0;
  std::int64_t start_us_ = 0;
  const char* name_ = nullptr;
};

#define PARAGRAPH_OBS_CONCAT2(a, b) a##b
#define PARAGRAPH_OBS_CONCAT(a, b) PARAGRAPH_OBS_CONCAT2(a, b)
#define PARAGRAPH_TIMED_SCOPE(name) \
  ::paragraph::obs::ScopedTimer PARAGRAPH_OBS_CONCAT(paragraph_scope_, __LINE__)(name)

}  // namespace paragraph::obs
