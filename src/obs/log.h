// Leveled structured logger with a human-readable text sink and an
// optional JSONL sink.
//
// Every record carries a component tag, a message, and typed key/value
// fields; the text sink renders `LEVEL [component] message k=v ...` while
// the JSONL sink emits one flat JSON object per line (reserved keys:
// ts_ms, level, component, message — fields are merged alongside them).
// The level is runtime-settable (PARAGRAPH_LOG env or --log-level flag).
#pragma once

#include <cstdio>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace paragraph::obs {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel l);
std::optional<LogLevel> parse_log_level(std::string_view name);

struct LogField {
  std::string key;
  JsonValue value;
};

class Logger {
 public:
  // Initial level comes from PARAGRAPH_LOG (default: info).
  static Logger& instance();

  LogLevel level() const;
  void set_level(LogLevel l);
  bool should_log(LogLevel l) const { return l >= level() && l < LogLevel::kOff; }

  // Text sink; nullptr silences it. Defaults to stderr.
  void set_text_stream(std::FILE* f);

  // JSONL sink; returns false when the file cannot be opened.
  bool open_jsonl(const std::string& path);
  void close_jsonl();
  bool jsonl_open() const;

  void log(LogLevel lvl, std::string_view component, std::string_view message,
           std::initializer_list<LogField> fields = {});

 private:
  Logger();
  struct Impl;
  Impl* impl_;
};

inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  Logger::instance().log(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger::instance().log(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger::instance().log(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  Logger::instance().log(LogLevel::kError, component, message, fields);
}

}  // namespace paragraph::obs
