#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

namespace paragraph::obs {

FeatureSketch FeatureSketch::like(const FeatureSketch& ref) {
  FeatureSketch s(ref.name_);
  if (ref.has_bins()) s.configure_bins(ref.lo_, ref.hi_, ref.bins_.size());
  return s;
}

void FeatureSketch::configure_bins(double lo, double hi, std::size_t nbins) {
  if (nbins == 0) return;
  // A degenerate (constant-feature) range still gets one valid bin so the
  // sketch stays comparable; any differing value lands in under/overflow.
  if (!(hi > lo)) hi = lo + 1.0;
  lo_ = lo;
  hi_ = hi;
  bins_.assign(nbins, 0);
  underflow_ = overflow_ = 0;
}

void FeatureSketch::add(double v) {
  ++count_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
  if (bins_.empty()) return;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    const double t = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(bins_.size()));
    if (idx >= bins_.size()) idx = bins_.size() - 1;  // float edge case at hi
    ++bins_[idx];
  }
}

double FeatureSketch::stdev() const { return std::sqrt(variance()); }

std::uint64_t FeatureSketch::binned_count() const {
  std::uint64_t total = underflow_ + overflow_;
  for (const auto b : bins_) total += b;
  return total;
}

JsonValue FeatureSketch::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("name", name_);
  o.set("count", count_);
  o.set("mean", mean_);
  o.set("stdev", stdev());
  o.set("lo", lo_);
  o.set("hi", hi_);
  JsonValue bins = JsonValue::array();
  for (const auto b : bins_) bins.push_back(b);
  o.set("bins", std::move(bins));
  o.set("underflow", underflow_);
  o.set("overflow", overflow_);
  return o;
}

FeatureSketch::State FeatureSketch::state() const {
  return {name_, count_, mean_, m2_, lo_, hi_, underflow_, overflow_, bins_};
}

FeatureSketch FeatureSketch::from_state(State s) {
  FeatureSketch f(std::move(s.name));
  f.count_ = s.count;
  f.mean_ = s.mean;
  f.m2_ = s.m2;
  f.lo_ = s.lo;
  f.hi_ = s.hi;
  f.underflow_ = s.underflow;
  f.overflow_ = s.overflow;
  f.bins_ = std::move(s.bins);
  return f;
}

double population_stability_index(const FeatureSketch& ref, const FeatureSketch& live) {
  if (!ref.has_bins() || !live.has_bins()) return 0.0;
  if (ref.bins().size() != live.bins().size()) return 0.0;
  const double rn = static_cast<double>(ref.binned_count());
  const double ln = static_cast<double>(live.binned_count());
  if (rn == 0.0 || ln == 0.0) return 0.0;
  // Laplace-style smoothing keeps a one-sided-empty bin finite; epsilon is
  // tiny relative to any real probability mass so stable features still
  // score ~0.
  constexpr double kEps = 1e-6;
  const std::size_t n = ref.bins().size() + 2;  // + under/overflow
  auto prob = [n](double c, double total) { return (c + kEps) / (total + kEps * static_cast<double>(n)); };
  double psi = 0.0;
  auto accumulate = [&](double rc, double lc) {
    const double p = prob(rc, rn);
    const double q = prob(lc, ln);
    psi += (p - q) * std::log(p / q);
  };
  accumulate(static_cast<double>(ref.underflow()), static_cast<double>(live.underflow()));
  accumulate(static_cast<double>(ref.overflow()), static_cast<double>(live.overflow()));
  for (std::size_t i = 0; i < ref.bins().size(); ++i)
    accumulate(static_cast<double>(ref.bins()[i]), static_cast<double>(live.bins()[i]));
  return psi;
}

JsonValue DriftReport::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("max_psi", max_psi);
  o.set("max_feature", max_feature);
  JsonValue feats = JsonValue::array();
  for (const DriftScore& f : features) {
    JsonValue e = JsonValue::object();
    e.set("feature", f.feature);
    e.set("psi", f.psi);
    e.set("null_psi", f.null_psi);
    e.set("excess", f.excess);
    e.set("ref_count", f.ref_count);
    e.set("live_count", f.live_count);
    e.set("scored", f.scored);
    feats.push_back(std::move(e));
  }
  o.set("features", std::move(feats));
  return o;
}

DriftReport score_drift(const std::vector<FeatureSketch>& ref,
                        const std::vector<FeatureSketch>& live) {
  DriftReport report;
  for (const FeatureSketch& r : ref) {
    const auto it = std::find_if(live.begin(), live.end(), [&](const FeatureSketch& l) {
      return l.name() == r.name();
    });
    if (it == live.end()) continue;
    if (!r.has_bins() || !it->has_bins() || r.bins().size() != it->bins().size()) continue;
    DriftScore s;
    s.feature = r.name();
    s.psi = population_stability_index(r, *it);
    s.ref_count = r.count();
    s.live_count = it->count();
    const std::uint64_t rn = r.binned_count();
    const std::uint64_t ln = it->binned_count();
    s.scored = rn >= kMinDriftSamples && ln >= kMinDriftSamples;
    if (rn > 0 && ln > 0) {
      const auto k = static_cast<double>(r.bins().size() + 2);  // + under/overflow
      s.null_psi = (k - 1.0) * (1.0 / static_cast<double>(rn) + 1.0 / static_cast<double>(ln));
    }
    s.excess = std::max(0.0, s.psi - s.null_psi);
    if (s.scored && (report.max_feature.empty() || s.excess > report.max_psi)) {
      report.max_psi = s.excess;
      report.max_feature = s.feature;
    }
    report.features.push_back(std::move(s));
  }
  return report;
}

}  // namespace paragraph::obs
