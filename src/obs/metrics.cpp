#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "obs/flight_recorder.h"
#include "util/atomic_file.h"
#include "util/stats.h"

namespace paragraph::obs {

std::uint64_t Gauge::pack(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::unpack(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < kMaxSamples) samples_.push_back(v);
}

HistogramSummary Histogram::summary() const {
  std::vector<double> samples;
  HistogramSummary s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.samples_capped = count_ > samples_.size();
    samples = samples_;
  }
  if (s.count == 0) return s;
  s.mean = s.sum / static_cast<double>(s.count);
  s.p50 = util::percentile(samples, 50.0);
  s.p95 = util::percentile(samples, 95.0);
  s.p99 = util::percentile(std::move(samples), 99.0);
  return s;
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

JsonValue HistogramSummary::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("count", count);
  o.set("min", min);
  o.set("max", max);
  o.set("mean", mean);
  o.set("sum", sum);
  o.set("p50", p50);
  o.set("p95", p95);
  o.set("p99", p99);
  if (samples_capped) o.set("samples_capped", true);
  return o;
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue root = JsonValue::object();

  JsonValue counter_obj = JsonValue::object();
  for (const auto& [name, v] : counters)
    if (v != 0) counter_obj.set(name, v);
  root.set("counters", std::move(counter_obj));

  JsonValue gauge_obj = JsonValue::object();
  for (const auto& [name, v] : gauges) gauge_obj.set(name, v);
  root.set("gauges", std::move(gauge_obj));

  JsonValue histogram_obj = JsonValue::object();
  for (const auto& [name, s] : histograms) {
    if (s.count == 0) continue;
    histogram_obj.set(name, s.to_json());
  }
  root.set("histograms", std::move(histogram_obj));
  return root;
}

const HistogramSummary* MetricsSnapshot::histogram(const std::string& name) const {
  for (const auto& [n, s] : histograms)
    if (n == name) return &s;
  return nullptr;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::append_record(const std::string& series, JsonValue record) {
  if (FlightRecorder::instance().armed())
    FlightRecorder::instance().record(FlightEvent::Kind::kRecord, 0, series, record.dump());
  std::lock_guard<std::mutex> lock(mu_);
  series_[series].push_back(std::move(record));
}

MetricsSnapshot MetricsRegistry::snapshot_locked() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h->summary());
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = snapshot_locked().to_json();

  JsonValue series = JsonValue::object();
  for (const auto& [name, records] : series_) {
    JsonValue arr = JsonValue::array();
    for (const JsonValue& r : records) arr.push_back(r);
    series.set(name, std::move(arr));
  }
  root.set("series", std::move(series));
  return root;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return util::try_write_file_atomic(path, to_json().dump() + '\n');
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  series_.clear();
}

}  // namespace paragraph::obs
