#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "obs/flight_recorder.h"
#include "util/atomic_file.h"
#include "util/stats.h"

namespace paragraph::obs {

std::uint64_t Gauge::pack(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::unpack(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < kMaxSamples) samples_.push_back(v);
}

HistogramSummary Histogram::summary() const {
  std::vector<double> samples;
  HistogramSummary s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.samples_capped = count_ > samples_.size();
    samples = samples_;
  }
  if (s.count == 0) return s;
  s.mean = s.sum / static_cast<double>(s.count);
  s.p50 = util::percentile(samples, 50.0);
  s.p95 = util::percentile(samples, 95.0);
  s.p99 = util::percentile(std::move(samples), 99.0);
  return s;
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::append_record(const std::string& series, JsonValue record) {
  if (FlightRecorder::instance().armed())
    FlightRecorder::instance().record(FlightEvent::Kind::kRecord, 0, series, record.dump());
  std::lock_guard<std::mutex> lock(mu_);
  series_[series].push_back(std::move(record));
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::object();

  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_)
    if (c->value() != 0) counters.set(name, c->value());
  root.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  root.set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSummary s = h->summary();
    if (s.count == 0) continue;
    JsonValue o = JsonValue::object();
    o.set("count", s.count);
    o.set("min", s.min);
    o.set("max", s.max);
    o.set("mean", s.mean);
    o.set("sum", s.sum);
    o.set("p50", s.p50);
    o.set("p95", s.p95);
    o.set("p99", s.p99);
    if (s.samples_capped) o.set("samples_capped", true);
    histograms.set(name, std::move(o));
  }
  root.set("histograms", std::move(histograms));

  JsonValue series = JsonValue::object();
  for (const auto& [name, records] : series_) {
    JsonValue arr = JsonValue::array();
    for (const JsonValue& r : records) arr.push_back(r);
    series.set(name, std::move(arr));
  }
  root.set("series", std::move(series));
  return root;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return util::try_write_file_atomic(path, to_json().dump() + '\n');
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  series_.clear();
}

}  // namespace paragraph::obs
