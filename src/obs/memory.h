// Memory telemetry: byte-accounting for nn::Matrix buffers plus a Linux
// process-RSS sampler.
//
// MemTracker keeps current/peak byte gauges and alloc/free counts behind
// relaxed atomics. The hooks are called from the Matrix allocation paths,
// which are as hot as it gets, so the contract mirrors the kernel
// counters: callers check obs::enabled() first and a disabled run does no
// atomic RMW at all (see tests/memory_obs_test.cpp for the counter-delta
// guard). Each Matrix remembers how many bytes it registered, so a
// tracked buffer is always un-counted exactly once even when
// instrumentation is toggled between its allocation and its free.
//
// This header stays lightweight (atomics only) because nn/matrix.h
// includes it; publishing into the MetricsRegistry and the /proc parser
// live in memory.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/control.h"

namespace paragraph::obs {

class MemTracker {
 public:
  static MemTracker& instance() {
    static MemTracker tracker;
    return tracker;
  }

  // Hot-path hooks. Callers gate on obs::enabled(); the hooks themselves
  // stay branch-free so the enabled cost is three relaxed RMWs (plus the
  // peak CAS, which only loops while the high-water mark is moving).
  void on_alloc(std::uint64_t bytes) {
    const std::uint64_t cur = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    allocs_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
    }
  }
  void on_free(std::uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    frees_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t current_bytes() const { return current_.load(std::memory_order_relaxed); }
  std::uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::uint64_t allocs() const { return allocs_.load(std::memory_order_relaxed); }
  std::uint64_t frees() const { return frees_.load(std::memory_order_relaxed); }

  // Zeroes every gauge and count. Matrices allocated while tracking was on
  // still un-count themselves on free, so only reset between workloads
  // (tests, bench repetition boundaries), not mid-flight.
  void reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
    frees_.store(0, std::memory_order_relaxed);
  }

 private:
  MemTracker() = default;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
};

// Matrix hook shims: one relaxed load + branch when disabled, the
// MemTracker RMWs when enabled. Kept as free functions so nn/matrix.h can
// inline them without pulling in the registry.
inline void matrix_alloc_hook(std::size_t bytes) {
  MemTracker::instance().on_alloc(static_cast<std::uint64_t>(bytes));
}
inline void matrix_free_hook(std::size_t bytes) {
  MemTracker::instance().on_free(static_cast<std::uint64_t>(bytes));
}

// Snapshot of /proc/self/status. `ok` is false when the file is missing
// or unparsable (non-Linux hosts); the fields are then zero.
struct ProcMemory {
  std::uint64_t vm_rss_kb = 0;  // current resident set (VmRSS)
  std::uint64_t vm_hwm_kb = 0;  // peak resident set (VmHWM)
  bool ok = false;
};

ProcMemory sample_process_memory();

// Publishes the tracker and the RSS sample into the MetricsRegistry:
// gauges mem.matrix.bytes / mem.matrix.peak_bytes / mem.process.rss_kb /
// mem.process.peak_rss_kb and counters mem.matrix.allocs /
// mem.matrix.frees. Call once right before dumping metrics; idempotent.
void publish_memory_metrics();

}  // namespace paragraph::obs
