// Process-wide metrics registry: counters, gauges, histograms with
// percentile summaries, and named record series (e.g. per-epoch training
// stats), all exportable as one JSON document.
//
// Lookup by name takes a mutex, so hot paths cache the returned reference
// (registered instruments are never deallocated; reset() zeroes values in
// place, keeping cached references valid):
//
//   if (obs::enabled()) {
//     static obs::Counter& calls = obs::MetricsRegistry::instance().counter("nn.matmul.calls");
//     calls.add();
//   }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/control.h"
#include "obs/json.h"

namespace paragraph::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0, max = 0.0, mean = 0.0, sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  // True when the per-sample buffer hit its cap; count/sum/min/max remain
  // exact, percentiles cover the retained prefix.
  bool samples_capped = false;

  // {"count": n, "min": ..., "p50": ..., "p99": ...}; adds
  // "samples_capped" only when set. The shape every metrics/stats
  // document uses for one histogram.
  JsonValue to_json() const;
};

class Histogram {
 public:
  void record(double v);
  HistogramSummary summary() const;
  std::size_t count() const;
  void reset();

 private:
  static constexpr std::size_t kMaxSamples = 1 << 20;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  std::size_t count_ = 0;
  double sum_ = 0.0, min_ = 0.0, max_ = 0.0;
};

// One point-in-time view of every registered instrument, captured in a
// single hold of the registry lock so a reader racing concurrent writers
// can never observe a torn or half-registered set (the serve daemon's
// `stats` admin verb reads this while the worker and reader threads keep
// writing). Instrument values themselves are relaxed atomics, so a
// snapshot is consistent at instrument granularity: every entry reflects
// some value that instrument actually held at snapshot time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with the
  // same idle-instrument filtering as MetricsRegistry::to_json: zero
  // counters and empty histograms are skipped, gauges always emit.
  JsonValue to_json() const;
  // Lookup by exact name; nullptr when absent.
  const HistogramSummary* histogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Point-in-time snapshot of all counters/gauges/histogram summaries
  // (series excluded — they are unbounded). Safe against concurrent
  // writers and concurrent instrument registration.
  MetricsSnapshot snapshot() const;

  // Appends a JSON object to the named series (per-epoch records etc.).
  void append_record(const std::string& series, JsonValue record);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: summary},
  //  "series": {name: [...]}}  — instruments with no activity are skipped.
  JsonValue to_json() const;
  bool write_json(const std::string& path) const;

  // Zeroes every instrument and clears series without deallocating, so
  // references cached by hot paths stay valid.
  void reset();

 private:
  MetricsRegistry() = default;
  // Core of snapshot()/to_json(); caller must hold mu_ (mu_ is not
  // recursive, so the public entry points share this instead of calling
  // each other).
  MetricsSnapshot snapshot_locked() const;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::vector<JsonValue>> series_;
};

}  // namespace paragraph::obs
