// Crash flight recorder: a lock-free ring buffer of the most recent
// log/metric-record/phase events plus the crashing thread's active phase
// stack, dumped to crash-<pid>.json from fatal-signal and std::terminate
// handlers so a field failure arrives with context instead of a bare
// exit code.
//
// Design constraints (see DESIGN.md §10):
//  - Writers never allocate or lock: each event is a fixed-size POD slot
//    claimed with one fetch_add; a per-slot sequence stamp is published
//    with release order *after* the payload so the dumper can detect and
//    skip slots that were mid-overwrite (torn) when the crash hit.
//  - The dump path runs inside a signal handler, so it uses only
//    async-signal-safe primitives: a preallocated format buffer and raw
//    open/write/fsync/rename syscalls. It follows the same
//    temp-then-rename publish discipline as util::AtomicFile (which
//    itself allocates and therefore cannot be called from a handler):
//    readers only ever see a complete dump.
//  - The phase stack is a bounded thread-local array of static-lifetime
//    name pointers maintained by obs::ScopedTimer (when instrumentation
//    is on) and by the explicit phase_enter/phase_exit calls the CLI
//    makes per command (always). The handler runs on the crashing
//    thread, so reading its own thread-locals needs no synchronisation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace paragraph::obs {

struct FlightEvent {
  enum class Kind : std::uint8_t { kLog = 0, kPhaseEnter, kPhaseExit, kRecord };

  std::uint64_t seq = 0;   // global order (0-based)
  std::int64_t ts_ms = 0;  // wall clock, ms since epoch
  Kind kind = Kind::kLog;
  std::uint8_t level = 0;  // LogLevel for kLog events
  char component[24] = {};
  char message[88] = {};
};

const char* flight_event_kind_name(FlightEvent::Kind k);

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  // Allocates the ring (capacity rounded up to a power of two, min 8) and
  // starts accepting events. Idempotent; re-arming with a different
  // capacity resets the ring. Not async-signal-safe (allocates).
  void arm(std::size_t capacity = kDefaultCapacity);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Appends one event (no-op when unarmed). Truncates component/message
  // to the fixed slot width. Lock-free and allocation-free.
  void record(FlightEvent::Kind kind, std::uint8_t level, std::string_view component,
              std::string_view message);

  // Phase tracking for the calling thread. `name` must have static
  // lifetime (scope-name literals). Depth beyond the fixed stack is
  // counted but not stored. Cheap enough for per-scope use; events are
  // mirrored into the ring only for shallow depths (top-level phases) so
  // hot kernel scopes cannot wash out the log history.
  void phase_enter(const char* name);
  void phase_exit();
  // The calling thread's current phase path, outermost first.
  std::vector<const char*> phase_stack() const;

  // Events currently retained, oldest first, torn slots skipped.
  std::vector<FlightEvent> snapshot() const;
  std::uint64_t total_recorded() const { return next_seq_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return ring_.size(); }

  // Installs SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT and std::terminate
  // handlers that dump and then re-raise with default disposition (so the
  // process still dies with the original signal). Also arms the recorder
  // if it is not armed yet. Dumps land in PARAGRAPH_CRASH_DIR (default:
  // current directory) as crash-<pid>.json. Idempotent.
  static void install_crash_handlers();

  // Writes crash-<pid>.json now (async-signal-safe; used by the handlers,
  // exposed so tests can validate the dump format in-process). `sig` is 0
  // for non-signal dumps. Returns false on I/O failure. At most one dump
  // per process; later calls are no-ops returning true.
  static bool dump_now(const char* reason, int sig);

  static constexpr std::size_t kDefaultCapacity = 256;
  static constexpr std::size_t kMaxPhaseDepth = 32;

 private:
  FlightRecorder() = default;

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<FlightEvent> ring_;
  // Parallel publication stamps: slot i holds seq+1 of the last event
  // fully written there (0 = never). Stored separately because FlightEvent
  // must stay trivially copyable for the snapshot path.
  std::vector<std::atomic<std::uint64_t>> stamps_;
};

}  // namespace paragraph::obs
