// Chrome trace-event collector.
//
// Scoped timers (obs/profile.h) feed complete ("X") events here while
// tracing is enabled; write_json() emits the standard
// {"traceEvents": [...]} document that chrome://tracing and Perfetto load
// directly. Timestamps are microseconds on the shared steady clock
// (obs::now_us), so events from every thread share one timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace paragraph::obs {

// Microseconds since process start on the steady clock.
std::int64_t now_us();

class TraceCollector {
 public:
  static TraceCollector& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Events beyond the cap are dropped (counted) to bound memory on long
  // runs with fine-grained scopes.
  void set_capacity(std::size_t cap);

  void add_complete(std::string name, const char* category, std::int64_t ts_us,
                    std::int64_t dur_us);
  void add_instant(std::string name, const char* category);

  std::size_t size() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  JsonValue to_json() const;
  bool write_json(const std::string& path) const;
  void reset();

 private:
  TraceCollector() = default;

  struct Event {
    std::string name;
    const char* category;  // static string
    char phase;            // 'X' complete, 'i' instant
    std::int64_t ts_us;
    std::int64_t dur_us;
    std::uint32_t tid;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t capacity_ = 1 << 20;
};

}  // namespace paragraph::obs
