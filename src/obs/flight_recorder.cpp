#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace paragraph::obs {
namespace {

// Thread-local phase stack. Entries point at static-lifetime strings, so the
// crash handler can read them without copying. `depth` may exceed
// kMaxPhaseDepth; only the first kMaxPhaseDepth names are retained.
struct PhaseStack {
  const char* names[FlightRecorder::kMaxPhaseDepth] = {};
  std::size_t depth = 0;
};
thread_local PhaseStack t_phases;

// Phase enter/exit events deeper than this are tracked on the stack but not
// mirrored into the ring, so per-kernel ScopedTimers cannot evict the log
// history that makes a crash dump readable.
constexpr std::size_t kRingPhaseDepthLimit = 4;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void copy_bounded(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump machinery. Everything below must hold to the
// signal-safety contract: no allocation, no locks, no stdio, no exceptions —
// only writes into the static buffer and raw syscalls.

std::atomic<bool> g_dumped{false};
std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

// Single static buffer for the whole dump. Sized for a full default ring
// (256 events * <200 bytes each) with ample headroom.
constexpr std::size_t kDumpBufCap = 96 * 1024;
char g_dump_buf[kDumpBufCap];
std::size_t g_dump_len = 0;

void buf_reset() { g_dump_len = 0; }

void buf_raw(const char* s, std::size_t n) {
  if (g_dump_len >= kDumpBufCap) return;
  const std::size_t room = kDumpBufCap - g_dump_len;
  if (n > room) n = room;
  std::memcpy(g_dump_buf + g_dump_len, s, n);
  g_dump_len += n;
}

void buf_str(const char* s) { buf_raw(s, std::strlen(s)); }

// JSON string literal with hand-rolled escaping (no snprintf for the body:
// glibc's snprintf is not on the async-signal-safe list).
void buf_json_str(const char* s) {
  buf_str("\"");
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      char esc[2] = {'\\', static_cast<char>(c)};
      buf_raw(esc, 2);
    } else if (c < 0x20) {
      static const char* hex = "0123456789abcdef";
      char esc[6] = {'\\', 'u', '0', '0', hex[c >> 4], hex[c & 0xF]};
      buf_raw(esc, 6);
    } else {
      buf_raw(reinterpret_cast<const char*>(&c), 1);
    }
  }
  buf_str("\"");
}

void buf_u64(std::uint64_t v) {
  char tmp[24];
  std::size_t i = sizeof(tmp);
  do {
    tmp[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  buf_raw(tmp + i, sizeof(tmp) - i);
}

void buf_i64(std::int64_t v) {
  if (v < 0) {
    buf_str("-");
    buf_u64(static_cast<std::uint64_t>(-v));
  } else {
    buf_u64(static_cast<std::uint64_t>(v));
  }
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void path_append(char* dst, std::size_t cap, const char* src) {
  const std::size_t len = std::strlen(dst);
  const std::size_t n = std::strlen(src);
  if (len + n + 1 > cap) return;
  std::memcpy(dst + len, src, n + 1);
}

void signal_handler(int sig) {
  FlightRecorder::dump_now("fatal-signal", sig);
  // Restore default disposition and re-raise so the process still dies with
  // the original signal (exit status, core dumps, waitpid semantics intact).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

[[noreturn]] void terminate_handler() {
  FlightRecorder::dump_now("std::terminate", 0);
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

const char* flight_event_kind_name(FlightEvent::Kind k) {
  switch (k) {
    case FlightEvent::Kind::kLog:
      return "log";
    case FlightEvent::Kind::kPhaseEnter:
      return "phase_enter";
    case FlightEvent::Kind::kPhaseExit:
      return "phase_exit";
    case FlightEvent::Kind::kRecord:
      return "record";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity);
  if (armed_.load(std::memory_order_acquire) && ring_.size() == cap) return;
  armed_.store(false, std::memory_order_release);
  ring_.assign(cap, FlightEvent{});
  stamps_ = std::vector<std::atomic<std::uint64_t>>(cap);
  next_seq_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::disarm() { armed_.store(false, std::memory_order_release); }

void FlightRecorder::record(FlightEvent::Kind kind, std::uint8_t level,
                            std::string_view component, std::string_view message) {
  if (!armed_.load(std::memory_order_acquire)) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(seq) & (ring_.size() - 1);
  FlightEvent& e = ring_[slot];
  // Invalidate the slot before mutating the payload so a concurrent crash
  // dump skips it instead of reading a torn event.
  stamps_[slot].store(0, std::memory_order_release);
  e.seq = seq;
  e.ts_ms = now_ms();
  e.kind = kind;
  e.level = level;
  copy_bounded(e.component, sizeof(e.component), component);
  copy_bounded(e.message, sizeof(e.message), message);
  stamps_[slot].store(seq + 1, std::memory_order_release);
}

void FlightRecorder::phase_enter(const char* name) {
  if (t_phases.depth < kMaxPhaseDepth) t_phases.names[t_phases.depth] = name;
  ++t_phases.depth;
  if (t_phases.depth <= kRingPhaseDepthLimit)
    record(FlightEvent::Kind::kPhaseEnter, 0, "phase", name);
}

void FlightRecorder::phase_exit() {
  if (t_phases.depth == 0) return;
  if (t_phases.depth <= kRingPhaseDepthLimit) {
    const char* name =
        t_phases.depth <= kMaxPhaseDepth ? t_phases.names[t_phases.depth - 1] : "";
    record(FlightEvent::Kind::kPhaseExit, 0, "phase", name != nullptr ? name : "");
  }
  --t_phases.depth;
}

std::vector<const char*> FlightRecorder::phase_stack() const {
  std::vector<const char*> out;
  const std::size_t stored =
      t_phases.depth < kMaxPhaseDepth ? t_phases.depth : kMaxPhaseDepth;
  out.reserve(stored);
  for (std::size_t i = 0; i < stored; ++i)
    if (t_phases.names[i] != nullptr) out.push_back(t_phases.names[i]);
  return out;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  if (ring_.empty()) return out;
  const std::uint64_t end = next_seq_.load(std::memory_order_acquire);
  const std::uint64_t cap = ring_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t seq = begin; seq < end; ++seq) {
    const std::size_t slot = static_cast<std::size_t>(seq) & (cap - 1);
    if (stamps_[slot].load(std::memory_order_acquire) != seq + 1) continue;  // torn/overwritten
    FlightEvent e = ring_[slot];
    if (stamps_[slot].load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(e);
  }
  return out;
}

void FlightRecorder::install_crash_handlers() {
  FlightRecorder& rec = instance();
  if (!rec.armed()) rec.arm();
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  g_prev_terminate = std::set_terminate(&terminate_handler);
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(sig, &sa, nullptr);
  }
}

bool FlightRecorder::dump_now(const char* reason, int sig) {
  // One dump per process: terminate → abort → SIGABRT would otherwise dump
  // twice, and the second pass would clobber a consistent file with one
  // written from a more broken state.
  bool expected = false;
  if (!g_dumped.compare_exchange_strong(expected, true)) return true;

  FlightRecorder& rec = instance();
  buf_reset();
  buf_str("{\n  \"schema\": \"paragraph-crash-v1\",\n  \"reason\": ");
  buf_json_str(reason != nullptr ? reason : "unknown");
  buf_str(",\n  \"signal\": ");
  buf_i64(sig);
  buf_str(",\n  \"pid\": ");
  buf_i64(static_cast<std::int64_t>(::getpid()));
  buf_str(",\n  \"ts_ms\": ");
  buf_i64(now_ms());
  buf_str(",\n  \"total_events\": ");
  buf_u64(rec.total_recorded());

  // Active phase stack of the crashing thread, outermost first. Reads only
  // this thread's TLS — safe in the handler.
  buf_str(",\n  \"phase_stack\": [");
  const std::size_t stored =
      t_phases.depth < kMaxPhaseDepth ? t_phases.depth : kMaxPhaseDepth;
  for (std::size_t i = 0; i < stored; ++i) {
    if (i != 0) buf_str(", ");
    buf_json_str(t_phases.names[i] != nullptr ? t_phases.names[i] : "");
  }
  buf_str("]");

  buf_str(",\n  \"events\": [\n");
  bool first = true;
  if (!rec.ring_.empty()) {
    const std::uint64_t end = rec.next_seq_.load(std::memory_order_acquire);
    const std::uint64_t cap = rec.ring_.size();
    for (std::uint64_t seq = end > cap ? end - cap : 0; seq < end; ++seq) {
      const std::size_t slot = static_cast<std::size_t>(seq) & (cap - 1);
      if (rec.stamps_[slot].load(std::memory_order_acquire) != seq + 1) continue;
      const FlightEvent& e = rec.ring_[slot];
      if (!first) buf_str(",\n");
      first = false;
      buf_str("    {\"seq\": ");
      buf_u64(e.seq);
      buf_str(", \"ts_ms\": ");
      buf_i64(e.ts_ms);
      buf_str(", \"kind\": ");
      buf_json_str(flight_event_kind_name(e.kind));
      buf_str(", \"level\": ");
      buf_u64(e.level);
      buf_str(", \"component\": ");
      buf_json_str(e.component);
      buf_str(", \"message\": ");
      buf_json_str(e.message);
      buf_str("}");
    }
  }
  buf_str("\n  ]\n}\n");

  // crash-<pid>.json in PARAGRAPH_CRASH_DIR (default "."), published with
  // the temp + fsync + rename discipline so readers never see a torn file.
  // getenv is not formally async-signal-safe but does not allocate or lock
  // in practice; the value is read once, defensively.
  const char* dir = std::getenv("PARAGRAPH_CRASH_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";

  char pid_str[24];
  {
    std::uint64_t v = static_cast<std::uint64_t>(::getpid());
    std::size_t i = sizeof(pid_str) - 1;
    pid_str[i] = '\0';
    do {
      pid_str[--i] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    std::memmove(pid_str, pid_str + i, sizeof(pid_str) - i);
  }

  char final_path[512] = {};
  path_append(final_path, sizeof(final_path), dir);
  path_append(final_path, sizeof(final_path), "/crash-");
  path_append(final_path, sizeof(final_path), pid_str);
  path_append(final_path, sizeof(final_path), ".json");
  char tmp_path[512] = {};
  path_append(tmp_path, sizeof(tmp_path), final_path);
  path_append(tmp_path, sizeof(tmp_path), ".tmp");

  const int fd = ::open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, g_dump_buf, g_dump_len);
  ::fsync(fd);
  ::close(fd);
  if (!ok) {
    ::unlink(tmp_path);
    return false;
  }
  return ::rename(tmp_path, final_path) == 0;
}

}  // namespace paragraph::obs
