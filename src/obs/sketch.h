// Compact per-feature distribution sketches and drift scoring.
//
// A FeatureSketch is the smallest summary that still supports honest
// distribution comparison: exact count/mean/M2 (Welford) for the moments
// plus a fixed-bin histogram (with explicit under/overflow bins) whose
// edges are chosen once — at training time — and then reused verbatim by
// every later observer, so a reference sketch persisted inside a model
// artifact (format v5, core/serialize) and a live sketch built over
// incoming inference graphs are bin-compatible by construction.
//
// Divergence is scored per feature with the population stability index
// over the shared bins; PSI is symmetric in (ref, live) and is the
// conventional deployment-drift metric (rule of thumb: < 0.1 stable,
// 0.1-0.25 moderate shift, > 0.25 action required).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace paragraph::obs {

class FeatureSketch {
 public:
  FeatureSketch() = default;
  explicit FeatureSketch(std::string name) : name_(std::move(name)) {}

  // Same name and bin edges as `ref`, all counts zero. This is how live
  // observers stay comparable to a persisted reference.
  static FeatureSketch like(const FeatureSketch& ref);

  // Fixes the histogram range to [lo, hi] with `nbins` equal-width bins.
  // Values outside land in the under/overflow bins. Must be called before
  // the first add() for the histogram to fill (moments always accumulate).
  void configure_bins(double lo, double hi, std::size_t nbins);

  void add(double v);

  const std::string& name() const { return name_; }
  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double m2() const { return m2_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stdev() const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool has_bins() const { return !bins_.empty(); }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Sum over bins + under/overflow (== count() once bins are configured
  // before the first add).
  std::uint64_t binned_count() const;

  JsonValue to_json() const;

  // Persistence hooks for core/serialize (plain-data restore).
  struct State {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::vector<std::uint64_t> bins;
  };
  State state() const;
  static FeatureSketch from_state(State s);

 private:
  std::string name_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::vector<std::uint64_t> bins_;
};

// Population stability index between two bin-compatible sketches
// (same edges, same bin count; under/overflow participate as bins).
// Empty-histogram or count-0 inputs score 0. Bin probabilities are
// epsilon-smoothed so a bin empty on one side cannot produce infinity.
double population_stability_index(const FeatureSketch& ref, const FeatureSketch& live);

struct DriftScore {
  std::string feature;
  double psi = 0.0;
  // Expected PSI under the no-shift null from finite sampling alone,
  // approximately (bins - 1) * (1/n_ref + 1/n_live). Raw PSI is biased
  // upward by this amount even when the distributions are identical, so
  // warn decisions use `excess` (raw minus the null mean, floored at 0).
  double null_psi = 0.0;
  double excess = 0.0;
  std::uint64_t ref_count = 0;
  std::uint64_t live_count = 0;
  // False when either side has fewer than kMinDriftSamples binned values;
  // the PSI is still reported but too noisy to act on, so low-sample
  // features are excluded from DriftReport::max_psi.
  bool scored = true;
};

// Minimum per-side sample count for a feature's PSI to participate in
// max_psi / warning decisions.
inline constexpr std::uint64_t kMinDriftSamples = 32;

struct DriftReport {
  std::vector<DriftScore> features;  // reference order
  // Largest bias-corrected PSI (DriftScore::excess) over scored features;
  // this is the number compared against the warn threshold.
  double max_psi = 0.0;
  std::string max_feature;
  bool any() const { return !features.empty(); }
  JsonValue to_json() const;
};

// Scores every live sketch against the reference sketch of the same name
// (bin-incompatible or missing pairs are skipped). Does not publish
// metrics — see eval/drift.h for the gauge-publishing wrapper.
DriftReport score_drift(const std::vector<FeatureSketch>& ref,
                        const std::vector<FeatureSketch>& live);

}  // namespace paragraph::obs
