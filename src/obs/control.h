// Master runtime switch for the instrumentation layer.
//
// Scoped timers and the hot-path kernel counters all check this one flag
// (a relaxed atomic load plus a predictable branch), so a disabled build
// pays essentially nothing — tier-1 bench throughput must be unaffected.
// The flag defaults to off; the CLI turns it on when the user asks for
// --metrics-out/--trace-out, and PARAGRAPH_OBS=1 turns it on from the
// environment.
#pragma once

#include <atomic>

namespace paragraph::obs {

namespace detail {
extern std::atomic<bool> g_instrumentation_enabled;
}

inline bool enabled() {
  return detail::g_instrumentation_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

// Reads PARAGRAPH_OBS (instrumentation on/off) and PARAGRAPH_LOG (logger
// level name) from the environment. Safe to call more than once.
void init_from_env();

}  // namespace paragraph::obs
