#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace paragraph::obs {

namespace {

// Current phase path of this thread, segments joined by '/'.
thread_local std::string t_phase_path;

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const std::string& path, double dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[path];
  if (n.count == 0) {
    n.min_us = n.max_us = dur_us;
  } else {
    n.min_us = std::min(n.min_us, dur_us);
    n.max_us = std::max(n.max_us, dur_us);
  }
  ++n.count;
  n.total_us += dur_us;
}

JsonValue Profiler::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::object();
  for (const auto& [path, n] : nodes_) {
    JsonValue o = JsonValue::object();
    o.set("count", n.count);
    o.set("total_ms", n.total_us / 1e3);
    o.set("mean_us", n.total_us / static_cast<double>(n.count));
    o.set("min_us", n.min_us);
    o.set("max_us", n.max_us);
    root.set(path, std::move(o));
  }
  return root;
}

std::string Profiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "phase                                              count   total_ms    mean_us\n";
  for (const auto& [path, n] : nodes_) {
    const std::size_t depth = static_cast<std::size_t>(
        std::count(path.begin(), path.end(), '/'));
    std::string label(depth * 2, ' ');
    const std::size_t slash = path.rfind('/');
    label += slash == std::string::npos ? path : path.substr(slash + 1);
    char line[160];
    std::snprintf(line, sizeof line, "%-48s %7llu %10.2f %10.2f\n", label.c_str(),
                  static_cast<unsigned long long>(n.count), n.total_us / 1e3,
                  n.total_us / static_cast<double>(n.count));
    out += line;
  }
  return out;
}

std::map<std::string, Profiler::Node> Profiler::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
}

ScopedTimer::ScopedTimer(const char* name) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  parent_path_len_ = t_phase_path.size();
  if (!t_phase_path.empty()) t_phase_path += '/';
  t_phase_path += name;
  FlightRecorder::instance().phase_enter(name);
  start_us_ = now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::int64_t end_us = now_us();
  const double dur_us = static_cast<double>(end_us - start_us_);
  Profiler::instance().record(t_phase_path, dur_us);
  MetricsRegistry::instance().histogram("time/" + t_phase_path).record(dur_us);
  TraceCollector& tracer = TraceCollector::instance();
  if (tracer.enabled()) tracer.add_complete(name_, "scope", start_us_, end_us - start_us_);
  FlightRecorder::instance().phase_exit();
  t_phase_path.resize(parent_path_len_);
}

}  // namespace paragraph::obs
