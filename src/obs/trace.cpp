#include "obs/trace.h"

#include <chrono>

#include "util/atomic_file.h"

namespace paragraph::obs {

std::int64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start).count();
}

namespace {

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1);
  return tid;
}

}  // namespace

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
}

void TraceCollector::add_complete(std::string name, const char* category, std::int64_t ts_us,
                                  std::int64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{std::move(name), category, 'X', ts_us, dur_us, current_tid()});
}

void TraceCollector::add_instant(std::string name, const char* category) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{std::move(name), category, 'i', now_us(), 0, current_tid()});
}

std::size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

JsonValue TraceCollector::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::object();
  JsonValue events = JsonValue::array();
  for (const Event& e : events_) {
    JsonValue o = JsonValue::object();
    o.set("name", e.name);
    o.set("cat", e.category);
    o.set("ph", std::string(1, e.phase));
    o.set("ts", e.ts_us);
    if (e.phase == 'X') o.set("dur", e.dur_us);
    o.set("pid", 1);
    o.set("tid", e.tid);
    events.push_back(std::move(o));
  }
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  if (const std::uint64_t d = dropped_.load(std::memory_order_relaxed); d > 0) {
    JsonValue meta = JsonValue::object();
    meta.set("dropped_events", d);
    root.set("metadata", std::move(meta));
  }
  return root;
}

bool TraceCollector::write_json(const std::string& path) const {
  return util::try_write_file_atomic(path, to_json().dump() + '\n');
}

void TraceCollector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace paragraph::obs
