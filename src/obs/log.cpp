#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/control.h"
#include "obs/flight_recorder.h"

namespace paragraph::obs {

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lowered(name);
  for (char& c : lowered)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  for (const LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    if (lowered == log_level_name(l)) return l;
  }
  return std::nullopt;
}

struct Logger::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu;  // serialises sink writes
  std::FILE* text = stderr;
  std::ofstream jsonl;
};

Logger::Logger() : impl_(new Impl) {
  if (const char* env = std::getenv("PARAGRAPH_LOG")) {
    if (const auto l = parse_log_level(env)) impl_->level.store(static_cast<int>(*l));
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel l) {
  impl_->level.store(static_cast<int>(l), std::memory_order_relaxed);
}

void Logger::set_text_stream(std::FILE* f) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->text = f;
}

bool Logger::open_jsonl(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->jsonl.close();
  impl_->jsonl.clear();
  impl_->jsonl.open(path, std::ios::out | std::ios::trunc);
  return impl_->jsonl.is_open();
}

void Logger::close_jsonl() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->jsonl.close();
}

bool Logger::jsonl_open() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->jsonl.is_open();
}

namespace {

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Scalar rendering for the text sink; strings are emitted bare.
void render_text_value(const JsonValue& v, std::string& out) {
  if (v.is_string()) {
    out += v.as_string();
  } else {
    v.dump_to(out);
  }
}

}  // namespace

void Logger::log(LogLevel lvl, std::string_view component, std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!should_log(lvl)) return;
  const std::int64_t ts_ms = wall_clock_ms();
  FlightRecorder::instance().record(FlightEvent::Kind::kLog,
                                    static_cast<std::uint8_t>(lvl), component, message);

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->text != nullptr) {
    std::string line;
    line.reserve(96);
    line += log_level_name(lvl);
    line.resize(6, ' ');  // pad the level column ("error" is the longest)
    line += "[";
    line += component;
    line += "] ";
    line += message;
    for (const LogField& f : fields) {
      line += " ";
      line += f.key;
      line += "=";
      render_text_value(f.value, line);
    }
    std::fprintf(impl_->text, "%s\n", line.c_str());
  }
  if (impl_->jsonl.is_open()) {
    JsonValue rec = JsonValue::object();
    rec.set("ts_ms", ts_ms);
    rec.set("level", log_level_name(lvl));
    rec.set("component", std::string(component));
    rec.set("message", std::string(message));
    for (const LogField& f : fields) rec.set(f.key, f.value);
    impl_->jsonl << rec.dump() << '\n';
    impl_->jsonl.flush();
  }
}

// ------------------------------------------------- master switch ----

namespace detail {
std::atomic<bool> g_instrumentation_enabled{false};
}

void set_enabled(bool on) {
  detail::g_instrumentation_enabled.store(on, std::memory_order_relaxed);
}

void init_from_env() {
  if (const char* env = std::getenv("PARAGRAPH_LOG")) {
    if (const auto l = parse_log_level(env)) Logger::instance().set_level(*l);
  }
  if (const char* env = std::getenv("PARAGRAPH_OBS")) {
    set_enabled(env[0] != '\0' && env[0] != '0');
  }
}

}  // namespace paragraph::obs
