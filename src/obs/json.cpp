#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace paragraph::obs {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) throw std::logic_error("JsonValue::set on non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::out_of_range("JsonValue::at: no key '" + std::string(key) + "'");
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue::push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

void json_escape_to(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      char buf[32];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, p);
      break;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      char buf[64];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, double_);
      out.append(buf, p);
      break;
    }
    case Kind::kString: json_escape_to(str_, out); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out.push_back(',');
        arr_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out.push_back(',');
        json_escape_to(obj_[i].first, out);
        out.push_back(':');
        obj_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// ------------------------------------------------------------ parser ----

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty())
      *error_ = msg + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return false;
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as-is; the emitter never produces them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character"); return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == digits_start) {
      fail("malformed number");
      return false;
    }
    // JSON forbids leading zeros ("01"); a lone "0" is fine.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      fail("leading zero in number");
      return false;
    }
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out = JsonValue(iv);
        return true;
      }
      // Fall through to double on overflow.
    }
    double dv = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("malformed number");
      return false;
    }
    out = JsonValue(dv);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (!parse_literal("null")) { fail("bad literal"); return false; }
      out = JsonValue();
      return true;
    }
    if (c == 't') {
      if (!parse_literal("true")) { fail("bad literal"); return false; }
      out = JsonValue(true);
      return true;
    }
    if (c == 'f') {
      if (!parse_literal("false")) { fail("bad literal"); return false; }
      out = JsonValue(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos_;
      out = JsonValue::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue elem;
        if (!parse_value(elem, depth + 1)) return false;
        out.push_back(std::move(elem));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) {
          fail("expected ',' or ']' in array");
          return false;
        }
      }
    }
    if (c == '{') {
      ++pos_;
      out = JsonValue::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) {
          fail("expected ':' in object");
          return false;
        }
        JsonValue val;
        if (!parse_value(val, depth + 1)) return false;
        out.set(std::move(key), std::move(val));
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) {
          fail("expected ',' or '}' in object");
          return false;
        }
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    fail("unexpected character");
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace paragraph::obs
