#include "obs/memory.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace paragraph::obs {

ProcMemory sample_process_memory() {
  ProcMemory m;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return m;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Lines look like "VmRSS:     12345 kB".
    unsigned long long kb = 0;
    if (std::strncmp(line, "VmRSS:", 6) == 0 && std::sscanf(line + 6, "%llu", &kb) == 1) {
      m.vm_rss_kb = kb;
      m.ok = true;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0 &&
               std::sscanf(line + 6, "%llu", &kb) == 1) {
      m.vm_hwm_kb = kb;
      m.ok = true;
    }
    if (m.vm_rss_kb > 0 && m.vm_hwm_kb > 0) break;
  }
  std::fclose(f);
  return m;
}

void publish_memory_metrics() {
  auto& reg = MetricsRegistry::instance();
  const MemTracker& t = MemTracker::instance();
  reg.gauge("mem.matrix.bytes").set(static_cast<double>(t.current_bytes()));
  reg.gauge("mem.matrix.peak_bytes").set(static_cast<double>(t.peak_bytes()));
  // Counters in the registry are cumulative; advance them by the delta so
  // repeated publishes stay idempotent (only this function writes them).
  Counter& allocs = reg.counter("mem.matrix.allocs");
  Counter& frees = reg.counter("mem.matrix.frees");
  if (t.allocs() > allocs.value()) allocs.add(t.allocs() - allocs.value());
  if (t.frees() > frees.value()) frees.add(t.frees() - frees.value());
  if (const ProcMemory pm = sample_process_memory(); pm.ok) {
    reg.gauge("mem.process.rss_kb").set(static_cast<double>(pm.vm_rss_kb));
    reg.gauge("mem.process.peak_rss_kb").set(static_cast<double>(pm.vm_hwm_kb));
  }
}

}  // namespace paragraph::obs
