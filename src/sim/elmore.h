// RC-tree Elmore delay engine.
//
// Models a driven net as a resistance tree with grounded capacitances and
// computes the classic Elmore delay at any node: the sum over tree
// resistances of (resistance x total capacitance downstream of it) along
// the root-to-node path. Used with the annotated net resistances (the
// paper's future-work extension) to upgrade the stage-delay metric from a
// lumped-C to a distributed-RC estimate.
#pragma once

#include <cstddef>
#include <vector>

namespace paragraph::sim {

class RcTree {
 public:
  // Creates the root node (the driver output); returns its index (0).
  RcTree();

  // Adds a node hanging off `parent` through `resistance`, loaded with
  // `cap` to ground. Parents must be created before children.
  int add_node(int parent, double resistance, double cap);

  void add_cap(int node, double cap);

  std::size_t num_nodes() const { return nodes_.size(); }
  double total_cap() const;

  // Elmore delay from the root to `node`:
  //   sum over edges e on the path of R(e) * C_downstream(e).
  double elmore_delay(int node) const;

 private:
  struct Node {
    int parent = -1;
    double r = 0.0;
    double cap = 0.0;
  };
  std::vector<Node> nodes_;

  std::vector<double> downstream_caps() const;
};

}  // namespace paragraph::sim
