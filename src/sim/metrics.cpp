#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "sim/elmore.h"
#include "sim/mna.h"

namespace paragraph::sim {

using circuit::Device;
using circuit::DeviceId;
using circuit::DeviceKind;
using circuit::NetId;
using circuit::Netlist;
using circuit::Terminal;
using circuit::TransistorLayout;
using layout::TechRules;

double effective_ron(const Device& d, const TransistorLayout& lay, const TechRules& tech,
                     const MetricOptions& opts) {
  const auto& p = d.params;
  const double strength = static_cast<double>(p.num_fins) * p.num_fingers * p.multiplier;
  double ron = tech.ron_per_strength / std::max(strength, 1e-9);
  // Longer channels drive less current.
  ron *= std::max(p.length, 16e-9) / 16e-9;
  if (circuit::is_thick_gate(d.kind)) ron *= tech.thick_ron_factor;
  // LDE: the diffusion-edge strain effect modulates mobility; we model it
  // as a power law on the average LOD.
  const double lod_avg = std::max((lay.lde[0] + lay.lde[1]) / 2.0, 1e-9);
  double factor = std::pow(opts.lod_ref / lod_avg, opts.lod_strength);
  factor = std::clamp(factor, 0.6, 1.6);
  return ron * factor;
}

namespace {

// Pin capacitance under a given annotation (gate cap is annotation-
// independent; junction caps come from the annotated SA/DA).
double annotated_pin_cap(const Netlist& nl, const SimAnnotation& ann, DeviceId id,
                         std::size_t terminal_index, const TechRules& tech) {
  const Device& d = nl.device(id);
  if (!circuit::is_transistor(d.kind)) {
    // Same constant models as extraction; build a temporary layout-free call.
    switch (d.kind) {
      case DeviceKind::kResistor: return tech.rc_pin_cap * (0.5 + d.params.length / 4e-6);
      case DeviceKind::kCapacitor: return tech.rc_pin_cap + 0.02 * d.params.value;
      case DeviceKind::kDiode: return tech.dio_pin_cap_per_finger * d.params.num_fingers;
      case DeviceKind::kBjt: return tech.bjt_pin_cap * d.params.multiplier;
      default: return 0.0;
    }
  }
  const TransistorLayout& lay = ann.device_layout[static_cast<std::size_t>(id)];
  const Terminal t = circuit::terminals_for(d.kind).at(terminal_index);
  switch (t) {
    case Terminal::kGate: {
      const double len_factor = std::pow(std::max(d.params.length, 16e-9) / 16e-9, 0.8);
      return tech.gate_cap_per_fin * d.params.num_fins * d.params.num_fingers *
             d.params.multiplier * len_factor;
    }
    case Terminal::kSource:
      return tech.junction_cap_per_m2 * lay.source_area + 0.04e-9 * lay.source_perimeter;
    case Terminal::kDrain:
      return tech.junction_cap_per_m2 * lay.drain_area + 0.04e-9 * lay.drain_perimeter;
    default: return 0.0;
  }
}

}  // namespace

double net_load_cap(const Netlist& nl, const SimAnnotation& ann, NetId net,
                    const TechRules& tech,
                    const std::vector<std::vector<circuit::Netlist::Attachment>>& attachments) {
  double cap = ann.net_cap[static_cast<std::size_t>(net)];
  for (const auto& a : attachments[static_cast<std::size_t>(net)])
    cap += annotated_pin_cap(nl, ann, a.device, a.terminal_index, tech);
  return cap;
}

double net_load_cap(const Netlist& nl, const SimAnnotation& ann, NetId net,
                    const TechRules& tech) {
  return net_load_cap(nl, ann, net, tech, nl.net_attachments());
}

std::vector<CircuitMetric> evaluate_metrics(const Netlist& nl, const SimAnnotation& ann,
                                            const TechRules& tech, const MetricOptions& opts) {
  std::vector<CircuitMetric> metrics;
  const auto attachments = nl.net_attachments();
  const auto fanout = nl.net_fanout();

  // ---- choose stage nets: highest fanout, driven by a transistor drain ----
  struct StageNet {
    NetId net;
    DeviceId driver;
    int fanout;
  };
  std::vector<StageNet> stages;
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
    if (nl.net(id).is_supply) continue;
    DeviceId best_driver = -1;
    double best_strength = 0.0;
    for (const auto& a : attachments[static_cast<std::size_t>(id)]) {
      const Device& d = nl.device(a.device);
      if (!circuit::is_transistor(d.kind)) continue;
      if (circuit::terminals_for(d.kind)[a.terminal_index] != Terminal::kDrain) continue;
      const double s = static_cast<double>(d.params.num_fins) * d.params.num_fingers *
                       d.params.multiplier;
      if (s > best_strength) {
        best_strength = s;
        best_driver = a.device;
      }
    }
    if (best_driver >= 0)
      stages.push_back({id, best_driver, fanout[static_cast<std::size_t>(id)]});
  }
  std::sort(stages.begin(), stages.end(), [&nl](const StageNet& a, const StageNet& b) {
    if (a.fanout != b.fanout) return a.fanout > b.fanout;
    return nl.net(a.net).name < nl.net(b.net).name;  // deterministic tie-break
  });
  // Sample across the fanout spectrum (not just the top): real metric sets
  // mix wire-dominated global nets with pin-dominated local ones, which is
  // what makes some metrics parasitic-sensitive and others not.
  if (stages.size() > static_cast<std::size_t>(opts.max_stage_nets)) {
    std::vector<StageNet> spread;
    const std::size_t n = stages.size();
    const auto want = static_cast<std::size_t>(opts.max_stage_nets);
    for (std::size_t k = 0; k < want; ++k)
      spread.push_back(stages[k * (n - 1) / std::max<std::size_t>(want - 1, 1)]);
    stages = std::move(spread);
  }

  int bw_count = 0;
  for (const StageNet& st : stages) {
    const Device& drv = nl.device(st.driver);
    const TransistorLayout& lay = ann.device_layout[static_cast<std::size_t>(st.driver)];
    const double ron = effective_ron(drv, lay, tech, opts);
    const double cap = std::max(net_load_cap(nl, ann, st.net, tech, attachments), 1e-18);
    const double rnet = std::max(ann.net_res[static_cast<std::size_t>(st.net)], 0.1);

    // Distributed stage: step source -> Ron -> pi model of the net
    // (C/2, R_net, C/2 + receiver loads).
    MnaCircuit ckt;
    const NodeIndex in = ckt.add_node();
    const NodeIndex near = ckt.add_node();
    const NodeIndex far = ckt.add_node();
    const int vs = ckt.add_voltage_source(in, kGround, 0.0);
    ckt.add_resistor(in, near, ron);
    ckt.add_capacitor(near, kGround, cap / 2.0);
    ckt.add_resistor(near, far, rnet);
    ckt.add_capacitor(far, kGround, cap / 2.0);
    const double tau = (ron + rnet) * cap;
    const double t_end = 8.0 * tau;
    const double dt = tau / 40.0;
    auto res = ckt.transient(t_end, dt, [vs, opts](MnaCircuit& c, double) {
      c.set_voltage_source(vs, opts.vdd);  // step at the first timestep
    });
    const double t50 = res.crossing_time(far, 0.5 * opts.vdd, /*rising=*/true);
    const double t20 = res.crossing_time(far, 0.2 * opts.vdd, /*rising=*/true);
    const double t80 = res.crossing_time(far, 0.8 * opts.vdd, /*rising=*/true);
    const std::string base = nl.net(st.net).name;
    metrics.push_back({"delay:" + base, t50 > 0 ? t50 : t_end});
    metrics.push_back({"slew:" + base, (t80 > 0 && t20 >= 0) ? t80 - t20 : t_end});

    // Tree-Elmore estimate of the same stage (uses the annotated net
    // resistance; exercises the RES extension end to end).
    RcTree tree;
    const int tnear = tree.add_node(0, ron, cap / 2.0);
    const int tfar = tree.add_node(tnear, rnet, cap / 2.0);
    metrics.push_back({"elmore_tree:" + base, tree.elmore_delay(tfar)});

    // AC bandwidth of the stage for the first few nets.
    if (bw_count < opts.max_bw_nets) {
      ++bw_count;
      MnaCircuit acckt;
      const NodeIndex ain = acckt.add_node();
      const NodeIndex anear = acckt.add_node();
      const NodeIndex afar = acckt.add_node();
      acckt.add_voltage_source(ain, kGround, 1.0);
      acckt.add_resistor(ain, anear, ron);
      acckt.add_capacitor(anear, kGround, cap / 2.0);
      acckt.add_resistor(anear, afar, rnet);
      acckt.add_capacitor(afar, kGround, cap / 2.0);
      metrics.push_back({"bw:" + base, acckt.find_3db_frequency(afar)});
    }
  }

  // ---- total dynamic power ----
  {
    double switched_cap = 0.0;
    for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
      if (nl.net(id).is_supply) continue;
      switched_cap += net_load_cap(nl, ann, id, tech, attachments);
    }
    metrics.push_back(
        {"power:total", switched_cap * opts.vdd * opts.vdd * opts.clock_hz * opts.activity});
  }

  // ---- Elmore delay through resistor chains ----
  int elmore_count = 0;
  for (DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices() &&
                        elmore_count < opts.max_elmore_paths;
       ++id) {
    const Device& d = nl.device(id);
    if (d.kind != DeviceKind::kResistor) continue;
    const NetId a = d.conns[0];
    const NetId b = d.conns[1];
    if (nl.net(a).is_supply || nl.net(b).is_supply) continue;
    const double c_out = std::max(net_load_cap(nl, ann, b, tech, attachments), 1e-18);
    metrics.push_back({"elmore:" + d.name, d.params.value * c_out});
    ++elmore_count;
  }

  return metrics;
}

}  // namespace paragraph::sim
