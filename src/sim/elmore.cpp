#include "sim/elmore.h"

#include <stdexcept>

namespace paragraph::sim {

RcTree::RcTree() { nodes_.push_back(Node{}); }

int RcTree::add_node(int parent, double resistance, double cap) {
  if (parent < 0 || static_cast<std::size_t>(parent) >= nodes_.size())
    throw std::invalid_argument("RcTree::add_node: invalid parent");
  if (resistance < 0.0 || cap < 0.0)
    throw std::invalid_argument("RcTree::add_node: negative R or C");
  nodes_.push_back(Node{parent, resistance, cap});
  return static_cast<int>(nodes_.size()) - 1;
}

void RcTree::add_cap(int node, double cap) {
  nodes_.at(static_cast<std::size_t>(node)).cap += cap;
}

double RcTree::total_cap() const {
  double c = 0.0;
  for (const Node& n : nodes_) c += n.cap;
  return c;
}

std::vector<double> RcTree::downstream_caps() const {
  // Children always follow parents (construction order), so one reverse
  // sweep accumulates subtree capacitance.
  std::vector<double> down(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) down[i] = nodes_[i].cap;
  for (std::size_t i = nodes_.size(); i-- > 1;)
    down[static_cast<std::size_t>(nodes_[i].parent)] += down[i];
  return down;
}

double RcTree::elmore_delay(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= nodes_.size())
    throw std::invalid_argument("RcTree::elmore_delay: invalid node");
  const std::vector<double> down = downstream_caps();
  double delay = 0.0;
  for (int i = node; i > 0; i = nodes_[static_cast<std::size_t>(i)].parent)
    delay += nodes_[static_cast<std::size_t>(i)].r * down[static_cast<std::size_t>(i)];
  return delay;
}

}  // namespace paragraph::sim
