// Circuit-metric extraction for the Table V simulation-error study.
//
// Given a netlist and a SimAnnotation, evaluate_metrics() computes a
// deterministic set of circuit metrics:
//   * stage delay and output slew on the highest-fanout nets, via a
//     backward-Euler MNA transient of the linearised driver stage
//     (switch-level Ron with an LDE mobility correction, annotated net
//     capacitance, receiver gate and junction pin loads),
//   * total dynamic power (sum of switched capacitance),
//   * Elmore delays through resistor paths.
// The metric *set* depends only on the netlist, so the same metrics can be
// compared across annotation sources (Table V compares each source against
// the post-layout reference).
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "layout/tech.h"
#include "sim/annotation.h"

namespace paragraph::sim {

struct CircuitMetric {
  std::string name;
  double value = 0.0;
};

struct MetricOptions {
  int max_stage_nets = 4;   // nets getting delay/slew/tree-Elmore metrics
  int max_bw_nets = 2;      // of those, how many also get an AC bandwidth
  int max_elmore_paths = 2; // resistor-chain lumped Elmore metrics
  double vdd = 0.8;
  double clock_hz = 1e9;
  double activity = 0.1;
  // LDE mobility correction: Ron *= (lod_ref / lod_avg)^strength.
  double lod_ref = 200e-9;
  double lod_strength = 0.15;
};

std::vector<CircuitMetric> evaluate_metrics(const circuit::Netlist& nl,
                                            const SimAnnotation& ann,
                                            const layout::TechRules& tech,
                                            const MetricOptions& opts = {});

// Effective switch-level on-resistance of a transistor under the
// annotation's LDE parameters.
double effective_ron(const circuit::Device& d, const circuit::TransistorLayout& lay,
                     const layout::TechRules& tech, const MetricOptions& opts);

// Total capacitive load the annotation implies on a net: annotated wire cap
// plus all attached gate and source/drain junction pin caps. The overload
// taking precomputed attachments avoids re-walking the netlist per call.
double net_load_cap(const circuit::Netlist& nl, const SimAnnotation& ann, circuit::NetId net,
                    const layout::TechRules& tech);
double net_load_cap(const circuit::Netlist& nl, const SimAnnotation& ann, circuit::NetId net,
                    const layout::TechRules& tech,
                    const std::vector<std::vector<circuit::Netlist::Attachment>>& attachments);

}  // namespace paragraph::sim
