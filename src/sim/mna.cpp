#include "sim/mna.h"

#include <cmath>
#include <stdexcept>

namespace paragraph::sim {

namespace {

constexpr double kGmin = 1e-12;  // leak to ground keeps matrices non-singular

// Dense LU solve with partial pivoting; a is n x n row-major, b length n.
std::vector<double> lu_solve(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (std::abs(a[piv * n + col]) < 1e-30)
      throw std::runtime_error("MnaCircuit: singular system");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[piv * n + c], a[col * n + c]);
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = a[r * n + col] / a[col * n + col];
      if (m == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= m * a[col * n + c];
      b[r] -= m * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row * n + c] * x[c];
    x[row] = s / a[row * n + row];
  }
  return x;
}

}  // namespace

MnaCircuit::MnaCircuit() = default;

NodeIndex MnaCircuit::add_node() { return static_cast<NodeIndex>(num_nodes_++); }

void MnaCircuit::add_resistor(NodeIndex a, NodeIndex b, double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("add_resistor: non-positive resistance");
  resistors_.push_back(Res{a, b, 1.0 / ohms});
}

void MnaCircuit::add_capacitor(NodeIndex a, NodeIndex b, double farads) {
  if (farads < 0.0) throw std::invalid_argument("add_capacitor: negative capacitance");
  capacitors_.push_back(Cap{a, b, farads});
}

void MnaCircuit::add_current_source(NodeIndex from, NodeIndex to, double amps) {
  currents_.push_back(Isrc{from, to, amps});
}

int MnaCircuit::add_voltage_source(NodeIndex pos, NodeIndex neg, double volts) {
  voltages_.push_back(Vsrc{pos, neg, volts});
  return static_cast<int>(voltages_.size()) - 1;
}

void MnaCircuit::set_voltage_source(int source_index, double volts) {
  voltages_.at(static_cast<std::size_t>(source_index)).v = volts;
}

void MnaCircuit::add_vccs(NodeIndex out_pos, NodeIndex out_neg, NodeIndex ctrl_pos,
                          NodeIndex ctrl_neg, double gm) {
  vccs_.push_back(Vccs{out_pos, out_neg, ctrl_pos, ctrl_neg, gm});
}

std::vector<double> MnaCircuit::solve(const std::vector<double>& cap_g,
                                      const std::vector<double>& cap_b) const {
  // Unknowns: node voltages 1..num_nodes_-1, then voltage-source currents.
  const std::size_t nv = num_nodes_ - 1;
  const std::size_t n = nv + voltages_.size();
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);

  auto stamp_g = [&](NodeIndex x, NodeIndex y, double g) {
    if (x != kGround) a[static_cast<std::size_t>(x - 1) * n + static_cast<std::size_t>(x - 1)] += g;
    if (y != kGround) a[static_cast<std::size_t>(y - 1) * n + static_cast<std::size_t>(y - 1)] += g;
    if (x != kGround && y != kGround) {
      a[static_cast<std::size_t>(x - 1) * n + static_cast<std::size_t>(y - 1)] -= g;
      a[static_cast<std::size_t>(y - 1) * n + static_cast<std::size_t>(x - 1)] -= g;
    }
  };

  for (const Res& r : resistors_) stamp_g(r.a, r.b, r.g);
  for (std::size_t i = 0; i < nv; ++i) a[i * n + i] += kGmin;

  // Capacitor companion models (backward Euler), already expanded by the
  // caller into per-capacitor conductance and current terms.
  for (std::size_t k = 0; k < capacitors_.size(); ++k) {
    if (cap_g.empty() || cap_g[k] == 0.0) continue;
    const Cap& c = capacitors_[k];
    stamp_g(c.a, c.b, cap_g[k]);
    if (c.a != kGround) b[static_cast<std::size_t>(c.a - 1)] += cap_b[k];
    if (c.b != kGround) b[static_cast<std::size_t>(c.b - 1)] -= cap_b[k];
  }

  for (const Isrc& s : currents_) {
    if (s.to != kGround) b[static_cast<std::size_t>(s.to - 1)] += s.i;
    if (s.from != kGround) b[static_cast<std::size_t>(s.from - 1)] -= s.i;
  }

  // VCCS: I(out_pos -> out_neg) = gm * (V(ctrl_pos) - V(ctrl_neg)).
  for (const Vccs& v2 : vccs_) {
    auto stamp = [&](NodeIndex row, NodeIndex col, double g) {
      if (row != kGround && col != kGround)
        a[static_cast<std::size_t>(row - 1) * n + static_cast<std::size_t>(col - 1)] += g;
    };
    stamp(v2.out_pos, v2.ctrl_pos, v2.gm);
    stamp(v2.out_pos, v2.ctrl_neg, -v2.gm);
    stamp(v2.out_neg, v2.ctrl_pos, -v2.gm);
    stamp(v2.out_neg, v2.ctrl_neg, v2.gm);
  }

  for (std::size_t k = 0; k < voltages_.size(); ++k) {
    const Vsrc& v = voltages_[k];
    const std::size_t br = nv + k;
    if (v.pos != kGround) {
      a[static_cast<std::size_t>(v.pos - 1) * n + br] += 1.0;
      a[br * n + static_cast<std::size_t>(v.pos - 1)] += 1.0;
    }
    if (v.neg != kGround) {
      a[static_cast<std::size_t>(v.neg - 1) * n + br] -= 1.0;
      a[br * n + static_cast<std::size_t>(v.neg - 1)] -= 1.0;
    }
    b[br] = v.v;
  }

  std::vector<double> x = lu_solve(std::move(a), std::move(b));
  std::vector<double> out(num_nodes_, 0.0);
  for (std::size_t i = 0; i < nv; ++i) out[i + 1] = x[i];
  return out;
}

std::vector<double> MnaCircuit::dc() const { return solve({}, {}); }

namespace {

// Complex dense LU with partial pivoting (AC analysis).
std::vector<std::complex<double>> lu_solve_complex(std::vector<std::complex<double>> a,
                                                   std::vector<std::complex<double>> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (std::abs(a[piv * n + col]) < 1e-30)
      throw std::runtime_error("MnaCircuit::ac: singular system");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[piv * n + c], a[col * n + c]);
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::complex<double> m = a[r * n + col] / a[col * n + col];
      if (m == std::complex<double>(0.0, 0.0)) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= m * a[col * n + c];
      b[r] -= m * b[col];
    }
  }
  std::vector<std::complex<double>> x(n);
  for (std::size_t row = n; row-- > 0;) {
    std::complex<double> s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row * n + c] * x[c];
    x[row] = s / a[row * n + row];
  }
  return x;
}

}  // namespace

std::vector<std::complex<double>> MnaCircuit::ac(double frequency_hz) const {
  const std::size_t nv = num_nodes_ - 1;
  const std::size_t n = nv + voltages_.size();
  std::vector<std::complex<double>> a(n * n, 0.0);
  std::vector<std::complex<double>> b(n, 0.0);
  const std::complex<double> jw(0.0, 2.0 * M_PI * frequency_hz);

  auto stamp_y = [&](NodeIndex x, NodeIndex y, std::complex<double> g) {
    if (x != kGround)
      a[static_cast<std::size_t>(x - 1) * n + static_cast<std::size_t>(x - 1)] += g;
    if (y != kGround)
      a[static_cast<std::size_t>(y - 1) * n + static_cast<std::size_t>(y - 1)] += g;
    if (x != kGround && y != kGround) {
      a[static_cast<std::size_t>(x - 1) * n + static_cast<std::size_t>(y - 1)] -= g;
      a[static_cast<std::size_t>(y - 1) * n + static_cast<std::size_t>(x - 1)] -= g;
    }
  };
  for (const Res& r : resistors_) stamp_y(r.a, r.b, r.g);
  for (const Cap& c : capacitors_) stamp_y(c.a, c.b, jw * c.c);
  for (std::size_t i = 0; i < nv; ++i) a[i * n + i] += 1e-12;

  for (const Vccs& v2 : vccs_) {
    auto stamp = [&](NodeIndex row, NodeIndex col, double g) {
      if (row != kGround && col != kGround)
        a[static_cast<std::size_t>(row - 1) * n + static_cast<std::size_t>(col - 1)] += g;
    };
    stamp(v2.out_pos, v2.ctrl_pos, v2.gm);
    stamp(v2.out_pos, v2.ctrl_neg, -v2.gm);
    stamp(v2.out_neg, v2.ctrl_pos, -v2.gm);
    stamp(v2.out_neg, v2.ctrl_neg, v2.gm);
  }

  for (const Isrc& s : currents_) {
    if (s.to != kGround) b[static_cast<std::size_t>(s.to - 1)] += s.i;
    if (s.from != kGround) b[static_cast<std::size_t>(s.from - 1)] -= s.i;
  }
  for (std::size_t k = 0; k < voltages_.size(); ++k) {
    const Vsrc& v = voltages_[k];
    const std::size_t br = nv + k;
    if (v.pos != kGround) {
      a[static_cast<std::size_t>(v.pos - 1) * n + br] += 1.0;
      a[br * n + static_cast<std::size_t>(v.pos - 1)] += 1.0;
    }
    if (v.neg != kGround) {
      a[static_cast<std::size_t>(v.neg - 1) * n + br] -= 1.0;
      a[br * n + static_cast<std::size_t>(v.neg - 1)] -= 1.0;
    }
    b[br] = v.v;
  }

  std::vector<std::complex<double>> x = lu_solve_complex(std::move(a), std::move(b));
  std::vector<std::complex<double>> out(num_nodes_, 0.0);
  for (std::size_t i = 0; i < nv; ++i) out[i + 1] = x[i];
  return out;
}

double MnaCircuit::find_3db_frequency(NodeIndex node, double f_low, double f_high) const {
  const double ref = std::abs(ac(f_low)[static_cast<std::size_t>(node)]);
  if (ref <= 0.0) return f_high;
  const double target = ref / std::sqrt(2.0);
  if (std::abs(ac(f_high)[static_cast<std::size_t>(node)]) > target) return f_high;
  double lo = f_low;
  double hi = f_high;
  for (int iter = 0; iter < 60 && hi / lo > 1.0005; ++iter) {
    const double mid = std::sqrt(lo * hi);  // bisection in log space
    if (std::abs(ac(mid)[static_cast<std::size_t>(node)]) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

double MnaCircuit::TransientResult::crossing_time(NodeIndex node, double level,
                                                  bool rising) const {
  for (std::size_t s = 1; s < time.size(); ++s) {
    const double v0 = voltages[s - 1][static_cast<std::size_t>(node)];
    const double v1 = voltages[s][static_cast<std::size_t>(node)];
    const bool crossed = rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (crossed) {
      const double frac = (level - v0) / (v1 - v0);
      return time[s - 1] + frac * (time[s] - time[s - 1]);
    }
  }
  return -1.0;
}

MnaCircuit::TransientResult MnaCircuit::transient(
    double t_end, double dt, const std::function<void(MnaCircuit&, double)>& step_fn) const {
  if (dt <= 0.0 || t_end <= 0.0) throw std::invalid_argument("transient: bad time parameters");
  MnaCircuit work = *this;
  TransientResult result;

  std::vector<double> v = work.dc();
  result.time.push_back(0.0);
  result.voltages.push_back(v);

  std::vector<double> cap_g(capacitors_.size(), 0.0);
  std::vector<double> cap_b(capacitors_.size(), 0.0);
  for (double t = dt; t <= t_end + dt * 0.5; t += dt) {
    if (step_fn) step_fn(work, t);
    for (std::size_t k = 0; k < work.capacitors_.size(); ++k) {
      const Cap& c = work.capacitors_[k];
      const double g = c.c / dt;
      cap_g[k] = g;
      const double va = v[static_cast<std::size_t>(c.a)];
      const double vb = v[static_cast<std::size_t>(c.b)];
      cap_b[k] = g * (va - vb);
    }
    v = work.solve(cap_g, cap_b);
    result.time.push_back(t);
    result.voltages.push_back(v);
  }
  return result;
}

}  // namespace paragraph::sim
