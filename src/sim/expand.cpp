#include "sim/expand.h"

#include <stdexcept>

#include "util/strings.h"

namespace paragraph::sim {

using circuit::Device;
using circuit::DeviceId;
using circuit::DeviceKind;
using circuit::NetId;
using circuit::Netlist;

circuit::Netlist expand_parasitics(const Netlist& nl, const SimAnnotation& ann,
                                   const ExpandOptions& opts, ExpandStats* stats) {
  if (ann.net_cap.size() != nl.num_nets() || ann.net_res.size() != nl.num_nets())
    throw std::invalid_argument("expand_parasitics: annotation does not match netlist");

  Netlist out(nl.name() + "_rc");
  ExpandStats local;

  // 1) Recreate every original net (trunk nodes keep their names).
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id)
    out.add_net(nl.net(id).name, nl.net(id).is_supply);

  const auto attachments = nl.net_attachments();

  // 2) Decide which nets get expanded and precompute per-terminal stubs.
  // stub_net[net][k] = the sub-net for attachment k of `net`.
  std::vector<std::vector<NetId>> stub_net(nl.num_nets());
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
    const auto& att = attachments[static_cast<std::size_t>(id)];
    const auto idx = static_cast<std::size_t>(id);
    const bool expand = !nl.net(id).is_supply && ann.net_res[idx] >= opts.min_res_ohm &&
                        att.size() >= 2;
    if (!expand) continue;
    ++local.nets_expanded;
    const double stub_res =
        ann.net_res[idx] * (1.0 - opts.trunk_fraction) / static_cast<double>(att.size());
    const double node_cap =
        ann.net_cap[idx] / static_cast<double>(att.size() + 1);  // trunk + stubs
    const NetId trunk = out.net_id(nl.net(id).name);

    // Trunk resistance: a series element from the trunk to a mid node that
    // the stubs hang off (the "multi-path" topology in star form).
    const NetId mid = out.add_net(nl.net(id).name + "__rc_mid");
    Device trunk_res;
    trunk_res.name = nl.net(id).name + "__rtrunk";
    trunk_res.kind = DeviceKind::kResistor;
    trunk_res.conns = {trunk, mid};
    trunk_res.params.value = std::max(ann.net_res[idx] * opts.trunk_fraction, 1e-3);
    out.add_device(std::move(trunk_res));
    ++local.resistors_added;

    Device trunk_cap;
    trunk_cap.name = nl.net(id).name + "__ctrunk";
    trunk_cap.kind = DeviceKind::kCapacitor;
    trunk_cap.conns = {trunk, out.add_net("vss", true)};
    trunk_cap.params.value = node_cap;
    out.add_device(std::move(trunk_cap));
    ++local.capacitors_added;

    stub_net[idx].reserve(att.size());
    for (std::size_t k = 0; k < att.size(); ++k) {
      const NetId stub = out.add_net(util::format("%s__rc%zu", nl.net(id).name.c_str(), k));
      Device r;
      r.name = util::format("%s__r%zu", nl.net(id).name.c_str(), k);
      r.kind = DeviceKind::kResistor;
      r.conns = {mid, stub};
      r.params.value = std::max(stub_res, 1e-3);
      out.add_device(std::move(r));
      ++local.resistors_added;
      Device c;
      c.name = util::format("%s__c%zu", nl.net(id).name.c_str(), k);
      c.kind = DeviceKind::kCapacitor;
      c.conns = {stub, out.add_net("vss", true)};
      c.params.value = node_cap;
      out.add_device(std::move(c));
      ++local.capacitors_added;
      stub_net[idx].push_back(stub);
    }
  }

  // 3) Re-emit the devices, reconnecting terminals on expanded nets to
  // their stubs. Unexpanded annotated nets get a single lumped cap.
  std::vector<std::size_t> seen_attachment(nl.num_nets(), 0);
  for (DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
    Device d = nl.device(id);
    for (std::size_t t = 0; t < d.conns.size(); ++t) {
      const NetId orig = d.conns[t];
      const auto oi = static_cast<std::size_t>(orig);
      if (!stub_net[oi].empty()) {
        d.conns[t] = stub_net[oi][seen_attachment[oi]++];
      } else {
        d.conns[t] = out.net_id(nl.net(orig).name);
      }
    }
    d.layout = nl.device(id).layout;
    out.add_device(std::move(d));
  }
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
    const auto idx = static_cast<std::size_t>(id);
    if (!stub_net[idx].empty() || nl.net(id).is_supply) continue;
    if (ann.net_cap[idx] <= 0.0) continue;
    Device c;
    c.name = nl.net(id).name + "__clump";
    c.kind = DeviceKind::kCapacitor;
    c.conns = {out.net_id(nl.net(id).name), out.add_net("vss", true)};
    c.params.value = ann.net_cap[idx];
    out.add_device(std::move(c));
    ++local.capacitors_added;
  }

  out.validate();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace paragraph::sim
