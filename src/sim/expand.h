// Distributed-parasitic netlist expansion.
//
// The paper predicts *lumped* capacitance per net and notes (§II-A) that
// including multi-path trace resistances "significantly complicates
// circuit netlists by orders of magnitude". This module performs that
// complication: given an annotated netlist, expand_parasitics() rewrites
// every annotated signal net as a star RC network — a trunk node plus one
// stub per attached terminal, stub resistances splitting the net's lumped
// resistance and the lumped capacitance distributed across the new nodes
// as explicit capacitor devices. The result is an ordinary Netlist a
// simulation flow (or our own SPICE writer) can consume, and demonstrates
// exactly why the paper defers resistance modelling: device counts grow by
// roughly (fanout + 1) elements per net.
#pragma once

#include "circuit/netlist.h"
#include "sim/annotation.h"

namespace paragraph::sim {

struct ExpandOptions {
  // Nets with lumped resistance below this stay lumped (a single cap).
  double min_res_ohm = 1.0;
  // Fraction of the net resistance assigned to the shared trunk; the rest
  // is split evenly across the per-terminal stubs.
  double trunk_fraction = 0.5;
};

struct ExpandStats {
  std::size_t nets_expanded = 0;
  std::size_t resistors_added = 0;
  std::size_t capacitors_added = 0;
};

// Returns a new netlist in which each annotated non-supply net is replaced
// by its star RC network. Device terminals are reconnected to their stub
// nodes; the original net name survives as the trunk node. `stats` (if
// non-null) receives growth counters.
circuit::Netlist expand_parasitics(const circuit::Netlist& nl, const SimAnnotation& ann,
                                   const ExpandOptions& opts = {},
                                   ExpandStats* stats = nullptr);

}  // namespace paragraph::sim
