// Parasitic/device-parameter annotation sources for the Table V study.
//
// A SimAnnotation carries the per-net lumped capacitance and per-transistor
// layout parameters used when simulating a circuit. The study compares
// metrics computed under four sources against the post-layout reference:
//   1. ground truth (the reference itself),
//   2. no parasitics (layout netlist without extraction),
//   3. the designer's rule-of-thumb estimate,
//   4. model predictions (XGBoost / ParaGraph), assembled by the caller
//      from predict_all() outputs via make_predicted_annotation().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "graph/hetero_graph.h"
#include "layout/tech.h"

namespace paragraph::sim {

struct SimAnnotation {
  std::string source;
  std::vector<double> net_cap;                        // [NetId] in farads
  std::vector<double> net_res;                        // [NetId] in ohms
  std::vector<circuit::TransistorLayout> device_layout;  // [DeviceId]
};

// Isolated-device geometry with no layout context (what a schematic-only
// netlist implies): unshared diffusion on both ends, nominal LDE values.
circuit::TransistorLayout nominal_layout(const circuit::Device& d,
                                         const layout::TechRules& tech);

// Source 1: copies the ground truth stored in the netlist by annotate_layout.
SimAnnotation ground_truth_annotation(const circuit::Netlist& nl,
                                      const layout::TechRules& tech);

// Source 2: zero net parasitics, nominal device geometry.
SimAnnotation no_parasitics_annotation(const circuit::Netlist& nl,
                                       const layout::TechRules& tech);

// Source 3: experience-based estimate. Net caps follow a per-pin rule of
// thumb scaled by a per-designer lognormal bias (sigma ~0.7, the paper's
// "variability between designers"); device geometry stays nominal.
SimAnnotation designer_annotation(const circuit::Netlist& nl, const layout::TechRules& tech,
                                  std::uint64_t designer_seed);

// Source 4 helper: builds an annotation from model predictions aligned with
// the graph's node ordering. cap_ff: one value per net node (fF).
// sa/da/lde1/lde2: one value per transistor node, both transistor type
// slots concatenated (units as produced by the dataset module: 1e3 nm^2
// for areas, nm for LDE). res_ohm (optional, may be empty): one value per
// net node in ohms from the RES extension model; empty falls back to the
// nominal via-stack resistance. Remaining parameters fall back to nominal.
SimAnnotation make_predicted_annotation(const circuit::Netlist& nl,
                                        const graph::HeteroGraph& g,
                                        const layout::TechRules& tech, const std::string& name,
                                        const std::vector<float>& cap_ff,
                                        const std::vector<float>& sa,
                                        const std::vector<float>& da,
                                        const std::vector<float>& lde1,
                                        const std::vector<float>& lde2,
                                        const std::vector<float>& res_ohm = {});

}  // namespace paragraph::sim
