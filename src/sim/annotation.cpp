#include "sim/annotation.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace paragraph::sim {

using circuit::Device;
using circuit::DeviceId;
using circuit::NetId;
using circuit::Netlist;
using circuit::TransistorLayout;
using layout::TechRules;

TransistorLayout nominal_layout(const Device& d, const TechRules& tech) {
  TransistorLayout lay;
  const int nf = d.params.num_fingers;
  const int multi = d.params.multiplier;
  const double w = d.params.num_fins * tech.fin_pitch;
  const double e_int = tech.diff_ext_shared;
  const double e_end = tech.diff_ext_end;
  double sa = 0, da = 0, sp = 0, dp = 0;
  for (int b = 0; b <= nf; ++b) {
    const bool is_source = (b % 2 == 0);
    const bool end = (b == 0 || b == nf);
    const double area = end ? w * e_end : w * e_int;
    const double perim = end ? w + 2 * e_end : 2 * e_int;
    (is_source ? sa : da) += area;
    (is_source ? sp : dp) += perim;
  }
  lay.source_area = sa * multi;
  lay.drain_area = da * multi;
  lay.source_perimeter = sp * multi;
  lay.drain_perimeter = dp * multi;
  const double cpp = tech.contacted_poly_pitch;
  double lod_l = 0, lod_r = 0, dummy = 0;
  for (int j = 0; j < nf; ++j) {
    const double dl = (j + 0.5) * cpp + e_end;
    const double dr = (nf - j - 0.5) * cpp + e_end;
    lod_l += dl;
    lod_r += dr;
    dummy += std::min(dl, dr);
  }
  lay.lde[0] = lod_l / nf;
  lay.lde[1] = lod_r / nf;
  lay.lde[2] = tech.well_margin;
  lay.lde[3] = tech.well_margin;
  // Mirrors apply_chain_geometry's length-stretched poly pitch.
  lay.lde[4] = std::max(cpp, 1.6 * d.params.length + 30e-9) * (1.0 + 1.0 / std::max(1, nf));
  lay.lde[5] = tech.row_margin / 2.0 + w / 2.0;
  lay.lde[6] = tech.row_margin;
  lay.lde[7] = dummy / nf;
  return lay;
}

namespace {

SimAnnotation nominal_base(const Netlist& nl, const TechRules& tech, std::string name) {
  SimAnnotation ann;
  ann.source = std::move(name);
  ann.net_cap.assign(nl.num_nets(), 0.0);
  ann.net_res.assign(nl.num_nets(), tech.via_resistance);
  ann.device_layout.resize(nl.num_devices());
  for (DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
    const Device& d = nl.device(id);
    if (circuit::is_transistor(d.kind)) ann.device_layout[static_cast<std::size_t>(id)] =
        nominal_layout(d, tech);
  }
  return ann;
}

}  // namespace

SimAnnotation ground_truth_annotation(const Netlist& nl, const TechRules& tech) {
  SimAnnotation ann = nominal_base(nl, tech, "post-layout");
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
    const auto& cap = nl.net(id).ground_truth_cap;
    if (cap.has_value()) ann.net_cap[static_cast<std::size_t>(id)] = *cap;
    const auto& res = nl.net(id).ground_truth_res;
    if (res.has_value()) ann.net_res[static_cast<std::size_t>(id)] = *res;
  }
  for (DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
    const auto& lay = nl.device(id).layout;
    if (lay.has_value()) ann.device_layout[static_cast<std::size_t>(id)] = *lay;
  }
  return ann;
}

SimAnnotation no_parasitics_annotation(const Netlist& nl, const TechRules& tech) {
  return nominal_base(nl, tech, "no-parasitics");
}

SimAnnotation designer_annotation(const Netlist& nl, const TechRules& tech,
                                  std::uint64_t designer_seed) {
  SimAnnotation ann = nominal_base(nl, tech, "designer-estimate");
  util::Rng rng(designer_seed ^ 0xdecafbadULL);
  // Each circuit is annotated by "one designer" with a systematic bias plus
  // per-net judgment noise. The sigmas are large on purpose: the paper
  // found designer estimates help some metrics but blow up others (mean
  // simulation error > 100%).
  const double designer_bias = rng.lognormal(0.0, 0.85);
  const auto fanout = nl.net_fanout();
  for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
    if (nl.net(id).is_supply) continue;
    const double rule_of_thumb = 0.8e-15 * fanout[static_cast<std::size_t>(id)];
    ann.net_cap[static_cast<std::size_t>(id)] =
        rule_of_thumb * designer_bias * rng.lognormal(0.0, 0.6);
    // Resistance rule of thumb: a few ohms of via plus per-sink trunk.
    ann.net_res[static_cast<std::size_t>(id)] =
        (tech.via_resistance + 3.0 * fanout[static_cast<std::size_t>(id)]) * designer_bias *
        rng.lognormal(0.0, 0.6);
  }
  return ann;
}

SimAnnotation make_predicted_annotation(const Netlist& nl, const graph::HeteroGraph& g,
                                        const TechRules& tech, const std::string& name,
                                        const std::vector<float>& cap_ff,
                                        const std::vector<float>& sa,
                                        const std::vector<float>& da,
                                        const std::vector<float>& lde1,
                                        const std::vector<float>& lde2,
                                        const std::vector<float>& res_ohm) {
  SimAnnotation ann = nominal_base(nl, tech, name);
  const auto& net_origins = g.origins(graph::NodeType::kNet);
  if (cap_ff.size() != net_origins.size())
    throw std::invalid_argument("make_predicted_annotation: cap vector misaligned");
  if (!res_ohm.empty() && res_ohm.size() != net_origins.size())
    throw std::invalid_argument("make_predicted_annotation: res vector misaligned");
  for (std::size_t i = 0; i < net_origins.size(); ++i) {
    // Clamp negative regression outputs to a tiny positive floor.
    ann.net_cap[static_cast<std::size_t>(net_origins[i])] =
        std::max(static_cast<double>(cap_ff[i]), 1e-3) * 1e-15;
    if (!res_ohm.empty())
      ann.net_res[static_cast<std::size_t>(net_origins[i])] =
          std::max(static_cast<double>(res_ohm[i]), 0.1);
  }
  std::vector<std::int32_t> mos_origins = g.origins(graph::NodeType::kTransistor);
  const auto& thick = g.origins(graph::NodeType::kTransistorThick);
  mos_origins.insert(mos_origins.end(), thick.begin(), thick.end());
  if (sa.size() != mos_origins.size() || da.size() != mos_origins.size() ||
      lde1.size() != mos_origins.size() || lde2.size() != mos_origins.size())
    throw std::invalid_argument("make_predicted_annotation: device vectors misaligned");
  for (std::size_t i = 0; i < mos_origins.size(); ++i) {
    TransistorLayout& lay = ann.device_layout[static_cast<std::size_t>(mos_origins[i])];
    // Units: dataset areas are 1e3 nm^2 = 1e-15 m^2; LDE are nm.
    lay.source_area = std::max(static_cast<double>(sa[i]), 1e-3) * 1e-15;
    lay.drain_area = std::max(static_cast<double>(da[i]), 1e-3) * 1e-15;
    lay.lde[0] = std::max(static_cast<double>(lde1[i]), 1.0) * 1e-9;
    lay.lde[1] = std::max(static_cast<double>(lde2[i]), 1.0) * 1e-9;
  }
  return ann;
}

}  // namespace paragraph::sim
