// Small Modified-Nodal-Analysis circuit simulator.
//
// Supports linear R/C elements, voltage-controlled current sources (for
// small-signal gm models), independent current and voltage sources, DC
// operating point, single-frequency complex AC analysis, and backward-
// Euler transient analysis — enough to evaluate the stage-delay / slew /
// bandwidth / RC-path circuit metrics of the Table V study on linearised
// (switch-level or small-signal) views of the netlists.
#pragma once

#include <complex>
#include <functional>
#include <string>
#include <vector>

namespace paragraph::sim {

using NodeIndex = int;
constexpr NodeIndex kGround = 0;

class MnaCircuit {
 public:
  MnaCircuit();

  // Creates a new node; node 0 is ground and always exists.
  NodeIndex add_node();
  std::size_t num_nodes() const { return num_nodes_; }

  void add_resistor(NodeIndex a, NodeIndex b, double ohms);
  void add_capacitor(NodeIndex a, NodeIndex b, double farads);
  // Current flowing from `from` into `to` through the source.
  void add_current_source(NodeIndex from, NodeIndex to, double amps);
  // Ideal voltage source V(pos) - V(neg) = volts; returns source index.
  int add_voltage_source(NodeIndex pos, NodeIndex neg, double volts);
  void set_voltage_source(int source_index, double volts);
  // Voltage-controlled current source: gm * (V(cp) - V(cn)) flows from
  // `out_pos` to `out_neg` (small-signal transconductance stamp).
  void add_vccs(NodeIndex out_pos, NodeIndex out_neg, NodeIndex ctrl_pos, NodeIndex ctrl_neg,
                double gm);

  // DC operating point; returns per-node voltages (index 0 = ground = 0 V).
  // Floating subcircuits get a tiny leak to ground to keep the system
  // non-singular. Throws std::runtime_error if the solve still fails.
  std::vector<double> dc() const;

  struct TransientResult {
    std::vector<double> time;
    std::vector<std::vector<double>> voltages;  // [step][node]

    // First time the node crosses `level` (linear interpolation);
    // -1 if never.
    double crossing_time(NodeIndex node, double level, bool rising) const;
  };

  // Backward-Euler integration from the DC point at t=0; `step_fn` (if
  // given) may change sources at each step time (e.g. input steps).
  TransientResult transient(double t_end, double dt,
                            const std::function<void(MnaCircuit&, double)>& step_fn = nullptr) const;

  // Single-frequency AC analysis: solves (G + j*2*pi*f*C) x = b with the
  // independent sources as phasor amplitudes. Returns per-node complex
  // voltages (index 0 = ground).
  std::vector<std::complex<double>> ac(double frequency_hz) const;

  // Frequency (Hz) where |V(node)| falls to 1/sqrt(2) of its value at
  // `f_low`, found by bisection on [f_low, f_high]; returns f_high if the
  // response never drops below the -3 dB point in range.
  double find_3db_frequency(NodeIndex node, double f_low = 1e3, double f_high = 1e12) const;

 private:
  struct Res {
    NodeIndex a, b;
    double g;
  };
  struct Cap {
    NodeIndex a, b;
    double c;
  };
  struct Isrc {
    NodeIndex from, to;
    double i;
  };
  struct Vsrc {
    NodeIndex pos, neg;
    double v;
  };
  struct Vccs {
    NodeIndex out_pos, out_neg, ctrl_pos, ctrl_neg;
    double gm;
  };

  // Solves (G + extra stamps) x = b via dense LU; x excludes ground.
  std::vector<double> solve(const std::vector<double>& cap_g,
                            const std::vector<double>& cap_b) const;

  std::size_t num_nodes_ = 1;  // ground
  std::vector<Res> resistors_;
  std::vector<Cap> capacitors_;
  std::vector<Isrc> currents_;
  std::vector<Vsrc> voltages_;
  std::vector<Vccs> vccs_;
};

}  // namespace paragraph::sim
