#include "circuit/spice_parser.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "circuit/hierarchy.h"
#include "util/strings.h"

namespace paragraph::circuit {

namespace {

using util::iequals;
using util::parse_spice_number;
using util::split;
using util::starts_with;
using util::to_lower;

struct Card {
  std::vector<std::string> tokens;
  int line_no = 0;
};

struct SubcktDef {
  std::string name;
  std::vector<std::string> ports;
  std::vector<Card> cards;
  int start_line = 0;
};

// All parse failures carry source:line so malformed decks point at the
// offending card even through continuation lines and subckt expansion.
[[noreturn]] void fail_at(const std::string& source, int line_no, const std::string& msg) {
  throw ParseError("spice parse error at " + source + ":" + std::to_string(line_no) + ": " + msg);
}

// Splits "k=v" option tokens into a map; returns positional tokens.
std::vector<std::string> split_options(const std::vector<std::string>& tokens,
                                       std::unordered_map<std::string, std::string>& opts) {
  std::vector<std::string> positional;
  for (const auto& t : tokens) {
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      positional.push_back(t);
    } else {
      opts[to_lower(t.substr(0, eq))] = t.substr(eq + 1);
    }
  }
  return positional;
}

DeviceKind mos_kind_from_model(const std::string& model) {
  const std::string m = to_lower(model);
  const bool thick = m.find("thick") != std::string::npos || m.find("io") != std::string::npos ||
                     m.find("hv") != std::string::npos;
  const bool pmos = starts_with(m, "p");
  if (pmos) return thick ? DeviceKind::kPmosThick : DeviceKind::kPmos;
  return thick ? DeviceKind::kNmosThick : DeviceKind::kNmos;
}

class Parser {
 public:
  Parser(std::istream& in, std::string top_name, std::string source)
      : top_name_(std::move(top_name)), source_(std::move(source)) {
    read_cards(in);
  }

  Netlist build() {
    Netlist nl(top_name_);
    for (const auto& g : globals_) nl.add_net(g, /*is_supply=*/true);
    // Name mapping at top level is the identity.
    std::unordered_map<std::string, std::string> identity;
    expand_cards(top_cards_, nl, /*prefix=*/"", identity, /*depth=*/0, /*parent_inst=*/-1);
    compute_structural_hashes(nl);
    nl.validate();
    return nl;
  }

 private:
  [[noreturn]] void fail(int line_no, const std::string& msg) const {
    fail_at(source_, line_no, msg);
  }

  double parse_number_or_fail(const std::string& tok, int line_no, const char* what) const {
    double v = 0.0;
    if (!parse_spice_number(tok, v)) fail(line_no, std::string("bad ") + what + " '" + tok + "'");
    return v;
  }

  int parse_int_or_fail(const std::string& tok, int line_no, const char* what) const {
    const double v = parse_number_or_fail(tok, line_no, what);
    if (v < 1.0 || v != static_cast<double>(static_cast<long long>(v)))
      fail(line_no, std::string("expected positive integer for ") + what + ", got '" + tok + "'");
    return static_cast<int>(v);
  }

  void read_cards(std::istream& in) {
    std::string raw;
    int line_no = 0;
    std::vector<std::string> logical_lines;
    std::vector<int> logical_line_nos;
    while (std::getline(in, raw)) {
      ++line_no;
      // Strip inline '$' comments.
      if (const auto dollar = raw.find('$'); dollar != std::string::npos)
        raw = raw.substr(0, dollar);
      const std::string line = util::trim(raw);
      if (line.empty() || line[0] == '*') continue;
      if (line[0] == '+') {
        if (logical_lines.empty()) fail(line_no, "continuation with no preceding card");
        logical_lines.back().append(" ").append(line.substr(1));
      } else {
        logical_lines.push_back(line);
        logical_line_nos.push_back(line_no);
      }
    }
    if (in.bad())
      throw ParseError("spice parse error: I/O error reading " + source_ + " near line " +
                       std::to_string(line_no));

    SubcktDef* current = nullptr;
    for (std::size_t i = 0; i < logical_lines.size(); ++i) {
      Card card{split(logical_lines[i]), logical_line_nos[i]};
      if (card.tokens.empty()) continue;
      const std::string head = to_lower(card.tokens[0]);
      if (head == ".subckt") {
        if (current != nullptr) fail(card.line_no, "nested .subckt definition");
        if (card.tokens.size() < 2) fail(card.line_no, ".subckt needs a name");
        SubcktDef def;
        def.name = to_lower(card.tokens[1]);
        def.start_line = card.line_no;
        if (subckts_.contains(def.name))
          fail(card.line_no, "duplicate .subckt definition of '" + def.name +
                                 "' (first defined at line " +
                                 std::to_string(subckts_[def.name].start_line) + ")");
        std::unordered_set<std::string> seen_ports;
        for (std::size_t p = 2; p < card.tokens.size(); ++p) {
          if (!seen_ports.insert(to_lower(card.tokens[p])).second)
            fail(card.line_no,
                 "duplicate port '" + card.tokens[p] + "' on .subckt '" + def.name + "'");
          def.ports.push_back(card.tokens[p]);
        }
        subckts_[def.name] = std::move(def);
        current = &subckts_[to_lower(card.tokens[1])];
      } else if (head == ".ends") {
        if (current == nullptr) fail(card.line_no, ".ends without .subckt");
        current = nullptr;
      } else if (head == ".global") {
        for (std::size_t p = 1; p < card.tokens.size(); ++p) globals_.insert(card.tokens[p]);
      } else if (head == ".end") {
        break;
      } else if (head[0] == '.') {
        // Unknown dot-cards (.param, .option, ...) are ignored.
      } else if (current != nullptr) {
        current->cards.push_back(std::move(card));
      } else {
        top_cards_.push_back(std::move(card));
      }
    }
    if (current != nullptr)
      fail(current->start_line, "unterminated .subckt '" + current->name + "' (missing .ends)");
  }

  std::string resolve_net(const std::string& name, const std::string& prefix,
                          const std::unordered_map<std::string, std::string>& port_map) const {
    if (auto it = port_map.find(name); it != port_map.end()) return it->second;
    if (globals_.contains(name) || is_supply_name(name)) return name;  // globals stay flat
    return prefix.empty() ? name : prefix + "/" + name;
  }

  NetId add_net(Netlist& nl, const std::string& resolved) const {
    return nl.add_net(resolved, is_supply_name(resolved) || globals_.contains(resolved));
  }

  void expand_cards(const std::vector<Card>& cards, Netlist& nl, const std::string& prefix,
                    const std::unordered_map<std::string, std::string>& port_map, int depth,
                    int parent_inst) {
    if (depth > 32) throw ParseError("spice parse error: subckt recursion deeper than 32");
    for (const Card& card : cards) {
      const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(card.tokens[0][0])));
      const std::string inst_name =
          prefix.empty() ? card.tokens[0] : prefix + "/" + card.tokens[0];
      std::unordered_map<std::string, std::string> opts;
      const auto pos = split_options(card.tokens, opts);
      // Netlist construction rejects duplicate devices, bad terminal
      // counts, and non-positive sizing; pin those to the card's source
      // location instead of surfacing a bare invalid_argument.
      try {
        switch (kind) {
          case 'm': emit_mos(nl, card, pos, opts, inst_name, prefix, port_map); break;
          case 'r': emit_rc(nl, card, pos, opts, inst_name, prefix, port_map, DeviceKind::kResistor); break;
          case 'c': emit_rc(nl, card, pos, opts, inst_name, prefix, port_map, DeviceKind::kCapacitor); break;
          case 'd': emit_diode(nl, card, pos, opts, inst_name, prefix, port_map); break;
          case 'q': emit_bjt(nl, card, pos, opts, inst_name, prefix, port_map); break;
          case 'x': emit_subckt(nl, card, pos, inst_name, prefix, port_map, depth, parent_inst); break;
          default: fail(card.line_no, std::string("unsupported card '") + card.tokens[0] + "'");
        }
      } catch (const std::invalid_argument& ex) {
        fail(card.line_no, ex.what());
      }
    }
  }

  void emit_mos(Netlist& nl, const Card& card, const std::vector<std::string>& pos,
                const std::unordered_map<std::string, std::string>& opts,
                const std::string& inst_name, const std::string& prefix,
                const std::unordered_map<std::string, std::string>& port_map) {
    if (pos.size() < 6) fail(card.line_no, "MOS card needs d g s b and a model");
    Device d;
    d.name = inst_name;
    d.instance_path = prefix;
    d.kind = mos_kind_from_model(pos[5]);
    for (int t = 1; t <= 4; ++t)
      d.conns.push_back(add_net(nl, resolve_net(pos[static_cast<std::size_t>(t)], prefix, port_map)));
    if (auto it = opts.find("l"); it != opts.end())
      d.params.length = parse_number_or_fail(it->second, card.line_no, "L");
    if (auto it = opts.find("nfin"); it != opts.end())
      d.params.num_fins = parse_int_or_fail(it->second, card.line_no, "NFIN");
    if (auto it = opts.find("nf"); it != opts.end())
      d.params.num_fingers = parse_int_or_fail(it->second, card.line_no, "NF");
    if (auto it = opts.find("m"); it != opts.end())
      d.params.multiplier = parse_int_or_fail(it->second, card.line_no, "M");
    nl.add_device(std::move(d));
  }

  void emit_rc(Netlist& nl, const Card& card, const std::vector<std::string>& pos,
               const std::unordered_map<std::string, std::string>& opts,
               const std::string& inst_name, const std::string& prefix,
               const std::unordered_map<std::string, std::string>& port_map, DeviceKind kind) {
    if (pos.size() < 4) fail(card.line_no, "R/C card needs two nets and a value");
    Device d;
    d.name = inst_name;
    d.instance_path = prefix;
    d.kind = kind;
    d.conns.push_back(add_net(nl, resolve_net(pos[1], prefix, port_map)));
    d.conns.push_back(add_net(nl, resolve_net(pos[2], prefix, port_map)));
    d.params.value = parse_number_or_fail(pos[3], card.line_no, "value");
    if (auto it = opts.find("l"); it != opts.end())
      d.params.length = parse_number_or_fail(it->second, card.line_no, "L");
    if (auto it = opts.find("m"); it != opts.end())
      d.params.multiplier = parse_int_or_fail(it->second, card.line_no, "M");
    nl.add_device(std::move(d));
  }

  void emit_diode(Netlist& nl, const Card& card, const std::vector<std::string>& pos,
                  const std::unordered_map<std::string, std::string>& opts,
                  const std::string& inst_name, const std::string& prefix,
                  const std::unordered_map<std::string, std::string>& port_map) {
    if (pos.size() < 4) fail(card.line_no, "D card needs anode, cathode, model");
    Device d;
    d.name = inst_name;
    d.instance_path = prefix;
    d.kind = DeviceKind::kDiode;
    d.conns.push_back(add_net(nl, resolve_net(pos[1], prefix, port_map)));
    d.conns.push_back(add_net(nl, resolve_net(pos[2], prefix, port_map)));
    if (auto it = opts.find("nf"); it != opts.end())
      d.params.num_fingers = parse_int_or_fail(it->second, card.line_no, "NF");
    nl.add_device(std::move(d));
  }

  void emit_bjt(Netlist& nl, const Card& card, const std::vector<std::string>& pos,
                const std::unordered_map<std::string, std::string>& opts,
                const std::string& inst_name, const std::string& prefix,
                const std::unordered_map<std::string, std::string>& port_map) {
    if (pos.size() < 5) fail(card.line_no, "Q card needs c b e and a model");
    Device d;
    d.name = inst_name;
    d.instance_path = prefix;
    d.kind = DeviceKind::kBjt;
    for (int t = 1; t <= 3; ++t)
      d.conns.push_back(add_net(nl, resolve_net(pos[static_cast<std::size_t>(t)], prefix, port_map)));
    if (auto it = opts.find("m"); it != opts.end())
      d.params.multiplier = parse_int_or_fail(it->second, card.line_no, "M");
    nl.add_device(std::move(d));
  }

  void emit_subckt(Netlist& nl, const Card& card, const std::vector<std::string>& pos,
                   const std::string& inst_name, const std::string& prefix,
                   const std::unordered_map<std::string, std::string>& port_map, int depth,
                   int parent_inst) {
    if (pos.size() < 2) fail(card.line_no, "X card needs nets and a subckt name");
    const std::string sub_name = to_lower(pos.back());
    auto it = subckts_.find(sub_name);
    if (it == subckts_.end()) fail(card.line_no, "unknown subckt '" + pos.back() + "'");
    const SubcktDef& def = it->second;
    const std::size_t num_nets = pos.size() - 2;
    if (num_nets != def.ports.size())
      fail(card.line_no, "subckt '" + def.name + "' expects " +
                             std::to_string(def.ports.size()) + " ports, got " +
                             std::to_string(num_nets));
    std::unordered_map<std::string, std::string> child_map;
    SubcktInstance inst;
    inst.path = inst_name;
    inst.parent = parent_inst;
    inst.ref.name = def.name;
    for (std::size_t p = 0; p < num_nets; ++p) {
      const std::string resolved = resolve_net(pos[p + 1], prefix, port_map);
      child_map[def.ports[p]] = resolved;
      // Materialise boundary nets before the subtree ranges open, so an
      // instance's created-net range holds only its private nets.
      inst.ref.boundary_nets.push_back(add_net(nl, resolved));
    }
    inst.first_device = static_cast<DeviceId>(nl.num_devices());
    inst.first_net = static_cast<NetId>(nl.num_nets());
    // Record before expanding: parents precede children and the record
    // index is this instance's id for the children's `parent` field.
    const int self = nl.add_instance(std::move(inst));
    expand_cards(def.cards, nl, inst_name, child_map, depth + 1, self);
    SubcktInstance& rec = nl.mutable_instances()[static_cast<std::size_t>(self)];
    rec.device_end = static_cast<DeviceId>(nl.num_devices());
    rec.net_end = static_cast<NetId>(nl.num_nets());
  }

  std::string top_name_;
  std::string source_;  // label for error messages (file path or "<string>")
  std::vector<Card> top_cards_;
  std::unordered_map<std::string, SubcktDef> subckts_;
  std::unordered_set<std::string> globals_;
};

}  // namespace

bool is_supply_name(const std::string& name) {
  const std::string n = to_lower(name);
  return n == "0" || n == "gnd" || starts_with(n, "vdd") || starts_with(n, "vss") ||
         starts_with(n, "avdd") || starts_with(n, "avss") || starts_with(n, "dvdd") ||
         starts_with(n, "dvss");
}

Netlist parse_spice(std::istream& in, const std::string& top_name) {
  Parser p(in, top_name, "<stream>");
  return p.build();
}

Netlist parse_spice_string(const std::string& text, const std::string& top_name) {
  std::istringstream ss(text);
  Parser p(ss, top_name, "<string>");
  return p.build();
}

Netlist parse_spice_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ParseError("cannot open spice file '" + path + "'");
  Parser p(f, path, path);
  return p.build();
}

}  // namespace paragraph::circuit
