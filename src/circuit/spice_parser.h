// SPICE-subset netlist parser.
//
// Supported syntax (enough to round-trip everything the generator and the
// examples produce):
//   * comment lines                 '*' in column 0, '$' inline comments
//   + continuation lines
//   .global <net...>                marks supply nets
//   .subckt NAME <ports...> / .ends hierarchical definitions (flattened)
//   .end
//   M<name> d g s b <model> [L=..] [NFIN=..] [NF=..] [M=..]
//   R<name> p n <value> [L=..] [M=..]
//   C<name> p n <value> [M=..]
//   D<name> a c <model> [NF=..]
//   Q<name> c b e <model> [M=..]
//   X<name> <nets...> <subckt>
//
// Model-name conventions: a leading 'p' selects PMOS, a "thick"/"io"
// substring selects the thick-gate kind. Nets named vdd*/vss*/gnd/0 (or
// listed in .global) are marked as supply nets.
#pragma once

#include <istream>
#include <string>

#include "circuit/netlist.h"

namespace paragraph::circuit {

// Thrown with a message containing the offending line number.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Netlist parse_spice(std::istream& in, const std::string& top_name = "top");
Netlist parse_spice_string(const std::string& text, const std::string& top_name = "top");
Netlist parse_spice_file(const std::string& path);

// True if the net name denotes a supply/ground rail by convention.
bool is_supply_name(const std::string& name);

}  // namespace paragraph::circuit
