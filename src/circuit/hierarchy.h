// Structural identity of subckt instances on the expanded (flat) netlist.
//
// The hash canonicalizes everything that determines an instance's interior
// graph structure and input features — device kinds, sizing parameters,
// and port-relative connectivity — while excluding instance names, net
// names, and layout annotations. Two instances of the same template
// therefore collide on the hash regardless of instantiation site or
// naming, which is exactly the key gnn::PlanCache memoizes per-subckt
// plans and interior embeddings under. Because device parameters are
// hashed, any edit inside a template yields a new key: stale cache reuse
// is structurally impossible.
#pragma once

#include <cstdint>

#include "circuit/netlist.h"

namespace paragraph::circuit {

// Canonical hash of one instance's expanded subtree (devices in
// [first_device, device_end), in id order). Net references are encoded as:
// port position for boundary nets, creation offset for instance-private
// nets, lowercased name for supply/global nets.
std::uint64_t instance_structural_hash(const Netlist& nl, const SubcktInstance& inst);

// Fills ref.structural_hash for every recorded instance. Called by the
// SPICE parser after expansion; idempotent.
void compute_structural_hashes(Netlist& nl);

}  // namespace paragraph::circuit
