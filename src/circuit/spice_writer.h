// Flat SPICE netlist emission, optionally annotated with predicted or
// ground-truth parasitics (extra C elements to ground + device-parameter
// comments) so an annotated netlist can be re-simulated.
#pragma once

#include <ostream>
#include <string>
#include <unordered_map>

#include "circuit/netlist.h"

namespace paragraph::circuit {

struct WriteOptions {
  // Emit a grounded capacitor per non-supply net using the given values [F].
  // Keyed by net id; nets without an entry get no parasitic element.
  const std::unordered_map<NetId, double>* net_caps = nullptr;
  // Emit transistor layout parameters (SA/DA/SP/DP/LDE) as card options.
  bool emit_layout_params = false;
  // Reconstruct .subckt definitions from the netlist's SubcktInstance
  // records instead of flattening: one definition per subckt name, X cards
  // for every instance, device/instance card names relative to their
  // instance so a re-parse reproduces the original instance paths and
  // structural hashes. Sizing values are emitted at full precision (the
  // hash covers parsed parameter values). Netlists without instance
  // records fall back to flat emission. net_caps / emit_layout_params are
  // ignored in hierarchical mode: per-instance annotations cannot be
  // attached to a shared definition.
  bool hierarchical = false;
  std::string title = "paragraph netlist";
};

void write_spice(std::ostream& os, const Netlist& nl, const WriteOptions& opts = {});
std::string write_spice_string(const Netlist& nl, const WriteOptions& opts = {});

}  // namespace paragraph::circuit
