// Circuit netlist object model.
//
// This is the substrate every other module consumes: the generator emits
// Netlists, the layout synthesizer annotates them with ground truth, graph
// construction converts them to heterogeneous graphs, and the simulator
// evaluates circuit metrics on them.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace paragraph::circuit {

// Physical device kinds. Thick-gate (I/O) transistors are a distinct kind
// because the paper's dataset (Table IV) tracks them separately and they
// use different layout rules.
enum class DeviceKind : std::uint8_t {
  kNmos,
  kPmos,
  kNmosThick,
  kPmosThick,
  kResistor,
  kCapacitor,
  kDiode,
  kBjt,
};

constexpr std::size_t kNumDeviceKinds = 8;

bool is_transistor(DeviceKind k);
bool is_thick_gate(DeviceKind k);
const char* device_kind_name(DeviceKind k);

// Terminal roles, used both for SPICE ordering and graph edge types.
enum class Terminal : std::uint8_t {
  kDrain,
  kGate,
  kSource,
  kBulk,
  kPos,      // resistor / capacitor terminal 1
  kNeg,      // resistor / capacitor terminal 2
  kAnode,    // diode
  kCathode,  // diode
  kCollector,
  kBase,
  kEmitter,
};

const char* terminal_name(Terminal t);

// Terminal roles of a device kind in SPICE card order.
const std::vector<Terminal>& terminals_for(DeviceKind k);

using NetId = std::int32_t;
using DeviceId = std::int32_t;
constexpr NetId kInvalidNet = -1;

// Sizing parameters (Table II features are extracted from these).
struct DeviceParams {
  double length = 0.0;   // gate poly length / resistor length [m]
  int num_fingers = 1;   // NF
  int num_fins = 1;      // NFIN
  int multiplier = 1;    // MULTI (m-factor)
  double value = 0.0;    // resistance [ohm] or capacitance [F] for R/C
};

// Ground-truth layout annotations for a transistor (Table I), produced by
// the layout synthesizer. Areas in m^2, perimeters/distances in m.
struct TransistorLayout {
  double source_area = 0.0;       // SA
  double drain_area = 0.0;        // DA
  double source_perimeter = 0.0;  // SP
  double drain_perimeter = 0.0;   // DP
  std::array<double, 8> lde{};    // LDE1..LDE8
};

struct Device {
  std::string name;
  DeviceKind kind = DeviceKind::kNmos;
  // Net connected to each terminal, parallel to terminals_for(kind).
  std::vector<NetId> conns;
  DeviceParams params;
  std::optional<TransistorLayout> layout;  // ground truth, set post-"layout"
  // Subckt instance that emitted this device ("" = top level). The path
  // uses '/' separators, e.g. "xcore/xbias".
  std::string instance_path;
};

// Identity of one .subckt usage. The structural hash canonicalizes device
// kinds, parameters, and port-relative connectivity (instance and net
// names excluded), so two instances of the same template collide on the
// hash regardless of where or under what name they were instantiated —
// the key the gnn::PlanCache memoizes on. Any device or parameter edit
// inside the template changes the hash (cache invalidation is automatic).
struct SubcktRef {
  std::string name;                   // subckt definition name (lowercased)
  std::uint64_t structural_hash = 0;  // filled by compute_structural_hashes
  std::vector<NetId> boundary_nets;   // port bindings, in port order
};

// Provenance record for one expanded subckt instance. Expansion is
// depth-first in card order, so the devices of an instance's subtree (its
// own cards plus nested instances) occupy the contiguous id range
// [first_device, device_end), and the nets first created while expanding
// it occupy [first_net, net_end). Boundary nets are created before the
// ranges open, so they never fall inside [first_net, net_end).
struct SubcktInstance {
  std::string path;   // full instance path, e.g. "xcore/xbias"
  int parent = -1;    // index into Netlist::instances(); -1 = top level
  SubcktRef ref;
  DeviceId first_device = 0, device_end = 0;
  NetId first_net = 0, net_end = 0;
};

struct Net {
  std::string name;
  bool is_supply = false;                // vdd/vss/gnd; excluded from the graph
  std::optional<double> ground_truth_cap;  // lumped parasitic capacitance [F]
  // Lumped interconnect resistance [ohm]; the paper defers resistance to
  // future work — this reproduction implements it as an extension.
  std::optional<double> ground_truth_res;
};

// A flat netlist. Devices reference nets by id.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Returns the existing net id or creates the net.
  NetId add_net(const std::string& name, bool is_supply = false);
  // Throws std::invalid_argument on duplicate device name or bad terminal count.
  DeviceId add_device(Device d);

  bool has_net(const std::string& name) const;
  NetId net_id(const std::string& name) const;  // throws if absent

  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_devices() const { return devices_.size(); }

  Net& net(NetId id) { return nets_.at(static_cast<std::size_t>(id)); }
  const Net& net(NetId id) const { return nets_.at(static_cast<std::size_t>(id)); }
  Device& device(DeviceId id) { return devices_.at(static_cast<std::size_t>(id)); }
  const Device& device(DeviceId id) const { return devices_.at(static_cast<std::size_t>(id)); }

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Device>& devices() const { return devices_; }

  // Device terminals attached to each net (device id, terminal index).
  struct Attachment {
    DeviceId device;
    std::size_t terminal_index;
  };
  std::vector<std::vector<Attachment>> net_attachments() const;

  // Fanout = number of device terminals on the net (the paper's net feature N).
  std::vector<int> net_fanout() const;

  // Structural validation: every connection references a valid net, terminal
  // counts match the device kind, names are unique. Throws on violation.
  void validate() const;

  // Subckt instance provenance (filled by the SPICE parser; programmatic
  // netlists have none). Records appear in expansion order, so a parent
  // always precedes its children.
  const std::vector<SubcktInstance>& instances() const { return instances_; }
  std::vector<SubcktInstance>& mutable_instances() { return instances_; }
  int add_instance(SubcktInstance inst) {
    instances_.push_back(std::move(inst));
    return static_cast<int>(instances_.size()) - 1;
  }

  // Per-kind device counts + non-supply net count (Table IV row).
  struct Stats {
    std::array<std::size_t, kNumDeviceKinds> device_count{};
    std::size_t num_nets = 0;         // non-supply nets
    std::size_t num_supply_nets = 0;
    std::size_t transistors() const;
    std::size_t thick_transistors() const;
  };
  Stats stats() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Device> devices_;
  std::vector<SubcktInstance> instances_;
  std::unordered_map<std::string, NetId> net_index_;
  std::unordered_map<std::string, DeviceId> device_index_;
};

}  // namespace paragraph::circuit
