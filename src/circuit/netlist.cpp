#include "circuit/netlist.h"

#include <stdexcept>

namespace paragraph::circuit {

bool is_transistor(DeviceKind k) {
  return k == DeviceKind::kNmos || k == DeviceKind::kPmos || k == DeviceKind::kNmosThick ||
         k == DeviceKind::kPmosThick;
}

bool is_thick_gate(DeviceKind k) {
  return k == DeviceKind::kNmosThick || k == DeviceKind::kPmosThick;
}

const char* device_kind_name(DeviceKind k) {
  switch (k) {
    case DeviceKind::kNmos: return "nmos";
    case DeviceKind::kPmos: return "pmos";
    case DeviceKind::kNmosThick: return "nmos_thick";
    case DeviceKind::kPmosThick: return "pmos_thick";
    case DeviceKind::kResistor: return "resistor";
    case DeviceKind::kCapacitor: return "capacitor";
    case DeviceKind::kDiode: return "diode";
    case DeviceKind::kBjt: return "bjt";
  }
  return "unknown";
}

const char* terminal_name(Terminal t) {
  switch (t) {
    case Terminal::kDrain: return "drain";
    case Terminal::kGate: return "gate";
    case Terminal::kSource: return "source";
    case Terminal::kBulk: return "bulk";
    case Terminal::kPos: return "pos";
    case Terminal::kNeg: return "neg";
    case Terminal::kAnode: return "anode";
    case Terminal::kCathode: return "cathode";
    case Terminal::kCollector: return "collector";
    case Terminal::kBase: return "base";
    case Terminal::kEmitter: return "emitter";
  }
  return "unknown";
}

const std::vector<Terminal>& terminals_for(DeviceKind k) {
  static const std::vector<Terminal> mos = {Terminal::kDrain, Terminal::kGate, Terminal::kSource,
                                            Terminal::kBulk};
  static const std::vector<Terminal> rc = {Terminal::kPos, Terminal::kNeg};
  static const std::vector<Terminal> dio = {Terminal::kAnode, Terminal::kCathode};
  static const std::vector<Terminal> bjt = {Terminal::kCollector, Terminal::kBase,
                                            Terminal::kEmitter};
  switch (k) {
    case DeviceKind::kNmos:
    case DeviceKind::kPmos:
    case DeviceKind::kNmosThick:
    case DeviceKind::kPmosThick: return mos;
    case DeviceKind::kResistor:
    case DeviceKind::kCapacitor: return rc;
    case DeviceKind::kDiode: return dio;
    case DeviceKind::kBjt: return bjt;
  }
  throw std::logic_error("terminals_for: unknown device kind");
}

NetId Netlist::add_net(const std::string& name, bool is_supply) {
  if (auto it = net_index_.find(name); it != net_index_.end()) {
    if (is_supply) nets_[static_cast<std::size_t>(it->second)].is_supply = true;
    return it->second;
  }
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(Net{name, is_supply, std::nullopt, std::nullopt});
  net_index_.emplace(name, id);
  return id;
}

DeviceId Netlist::add_device(Device d) {
  if (device_index_.contains(d.name))
    throw std::invalid_argument("Netlist::add_device: duplicate device name '" + d.name + "'");
  const auto& terms = terminals_for(d.kind);
  if (d.conns.size() != terms.size())
    throw std::invalid_argument("Netlist::add_device: device '" + d.name + "' has " +
                                std::to_string(d.conns.size()) + " connections, expected " +
                                std::to_string(terms.size()));
  for (const NetId n : d.conns) {
    if (n < 0 || static_cast<std::size_t>(n) >= nets_.size())
      throw std::invalid_argument("Netlist::add_device: device '" + d.name +
                                  "' references invalid net id");
  }
  const DeviceId id = static_cast<DeviceId>(devices_.size());
  device_index_.emplace(d.name, id);
  devices_.push_back(std::move(d));
  return id;
}

bool Netlist::has_net(const std::string& name) const { return net_index_.contains(name); }

NetId Netlist::net_id(const std::string& name) const {
  auto it = net_index_.find(name);
  if (it == net_index_.end())
    throw std::invalid_argument("Netlist::net_id: no net named '" + name + "'");
  return it->second;
}

std::vector<std::vector<Netlist::Attachment>> Netlist::net_attachments() const {
  std::vector<std::vector<Attachment>> att(nets_.size());
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    const Device& d = devices_[di];
    for (std::size_t ti = 0; ti < d.conns.size(); ++ti) {
      att[static_cast<std::size_t>(d.conns[ti])].push_back(
          Attachment{static_cast<DeviceId>(di), ti});
    }
  }
  return att;
}

std::vector<int> Netlist::net_fanout() const {
  std::vector<int> fanout(nets_.size(), 0);
  for (const Device& d : devices_)
    for (const NetId n : d.conns) ++fanout[static_cast<std::size_t>(n)];
  return fanout;
}

void Netlist::validate() const {
  for (const Device& d : devices_) {
    const auto& terms = terminals_for(d.kind);
    if (d.conns.size() != terms.size())
      throw std::logic_error("Netlist::validate: bad terminal count on '" + d.name + "'");
    for (const NetId n : d.conns) {
      if (n < 0 || static_cast<std::size_t>(n) >= nets_.size())
        throw std::logic_error("Netlist::validate: dangling net reference on '" + d.name + "'");
    }
    if (d.params.multiplier < 1 || d.params.num_fingers < 1 || d.params.num_fins < 1)
      throw std::logic_error("Netlist::validate: non-positive sizing on '" + d.name + "'");
  }
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const SubcktInstance& inst = instances_[i];
    if (inst.parent >= static_cast<int>(i))
      throw std::logic_error("Netlist::validate: instance '" + inst.path +
                             "' does not follow its parent");
    if (inst.first_device < 0 || inst.first_device > inst.device_end ||
        static_cast<std::size_t>(inst.device_end) > devices_.size() || inst.first_net < 0 ||
        inst.first_net > inst.net_end || static_cast<std::size_t>(inst.net_end) > nets_.size())
      throw std::logic_error("Netlist::validate: bad subtree range on instance '" + inst.path +
                             "'");
    for (const NetId b : inst.ref.boundary_nets) {
      if (b < 0 || static_cast<std::size_t>(b) >= nets_.size())
        throw std::logic_error("Netlist::validate: dangling boundary net on instance '" +
                               inst.path + "'");
      if (b >= inst.first_net && b < inst.net_end)
        throw std::logic_error("Netlist::validate: boundary net inside created range of '" +
                               inst.path + "'");
    }
  }
}

std::size_t Netlist::Stats::transistors() const {
  return device_count[static_cast<std::size_t>(DeviceKind::kNmos)] +
         device_count[static_cast<std::size_t>(DeviceKind::kPmos)];
}

std::size_t Netlist::Stats::thick_transistors() const {
  return device_count[static_cast<std::size_t>(DeviceKind::kNmosThick)] +
         device_count[static_cast<std::size_t>(DeviceKind::kPmosThick)];
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  for (const Device& d : devices_) ++s.device_count[static_cast<std::size_t>(d.kind)];
  for (const Net& n : nets_) {
    if (n.is_supply) {
      ++s.num_supply_nets;
    } else {
      ++s.num_nets;
    }
  }
  return s;
}

}  // namespace paragraph::circuit
