#include "circuit/hierarchy.h"

#include <cstring>
#include <string>
#include <unordered_map>

#include "util/bytes.h"
#include "util/strings.h"

namespace paragraph::circuit {

namespace {

template <typename T>
void put_pod(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

}  // namespace

std::uint64_t instance_structural_hash(const Netlist& nl, const SubcktInstance& inst) {
  // Boundary nets map to their first port position (a net bound to two
  // ports canonicalizes to the lower one on every instance alike).
  std::unordered_map<NetId, std::int32_t> port_of;
  for (std::size_t p = 0; p < inst.ref.boundary_nets.size(); ++p)
    port_of.emplace(inst.ref.boundary_nets[p], static_cast<std::int32_t>(p));
  // Instance-private nets map to their creation offset among the non-supply
  // nets of the subtree's created range. Supply/global nets are excluded
  // because their creation site depends on which instance touched them
  // first — they canonicalize by name instead.
  std::unordered_map<NetId, std::int32_t> private_of;
  std::int32_t next_private = 0;
  for (NetId n = inst.first_net; n < inst.net_end; ++n)
    if (!nl.net(n).is_supply) private_of.emplace(n, next_private++);

  std::string buf;
  buf.reserve(static_cast<std::size_t>(inst.device_end - inst.first_device) * 48);
  put_pod(buf, static_cast<std::uint32_t>(inst.ref.boundary_nets.size()));
  for (DeviceId id = inst.first_device; id < inst.device_end; ++id) {
    const Device& d = nl.device(id);
    put_pod(buf, static_cast<std::uint8_t>(d.kind));
    put_pod(buf, d.params.length);
    put_pod(buf, static_cast<std::int32_t>(d.params.num_fingers));
    put_pod(buf, static_cast<std::int32_t>(d.params.num_fins));
    put_pod(buf, static_cast<std::int32_t>(d.params.multiplier));
    put_pod(buf, d.params.value);
    put_pod(buf, static_cast<std::uint32_t>(d.conns.size()));
    for (const NetId c : d.conns) {
      // Port references canonicalize by position before the supply check:
      // binding a port to a supply net merges the port with the global, so
      // such an instance is a distinct canonical shape (it gets its own
      // cache entry rather than a false collision with signal-bound
      // siblings — see gnn::PlanCache).
      if (auto it = port_of.find(c); it != port_of.end()) {
        buf.push_back('P');
        put_pod(buf, it->second);
      } else if (nl.net(c).is_supply) {
        buf.push_back('G');
        put_pod(buf, util::fnv1a64(util::to_lower(nl.net(c).name)));
      } else if (auto jt = private_of.find(c); jt != private_of.end()) {
        buf.push_back('I');
        put_pod(buf, jt->second);
      } else {
        // Unreachable for parser-built netlists (only ports and globals
        // escape a subckt); hashing the raw id keeps a hand-assembled
        // record instance-specific rather than falsely shared.
        buf.push_back('X');
        put_pod(buf, c);
      }
    }
  }
  return util::fnv1a64(buf);
}

void compute_structural_hashes(Netlist& nl) {
  for (SubcktInstance& inst : nl.mutable_instances())
    inst.ref.structural_hash = instance_structural_hash(nl, inst);
}

}  // namespace paragraph::circuit
