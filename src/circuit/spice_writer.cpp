#include "circuit/spice_writer.h"

#include <sstream>

#include "util/strings.h"

namespace paragraph::circuit {

namespace {

using util::format;

// SPICE names cannot contain the '/' hierarchy separator we use internally.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (auto& c : out)
    if (c == '/') c = '_';
  return out;
}

const char* mos_model(DeviceKind k) {
  switch (k) {
    case DeviceKind::kNmos: return "nmos_lvt";
    case DeviceKind::kPmos: return "pmos_lvt";
    case DeviceKind::kNmosThick: return "nmos_thick";
    case DeviceKind::kPmosThick: return "pmos_thick";
    default: return "nmos_lvt";
  }
}

}  // namespace

void write_spice(std::ostream& os, const Netlist& nl, const WriteOptions& opts) {
  os << "* " << opts.title << " : " << nl.name() << "\n";
  os << ".global";
  bool any_supply = false;
  for (const Net& n : nl.nets()) {
    if (n.is_supply) {
      os << " " << sanitize(n.name);
      any_supply = true;
    }
  }
  if (!any_supply) os << " vss";
  os << "\n";

  auto net_name = [&](NetId id) { return sanitize(nl.net(id).name); };

  for (const Device& d : nl.devices()) {
    const std::string name = sanitize(d.name);
    switch (d.kind) {
      case DeviceKind::kNmos:
      case DeviceKind::kPmos:
      case DeviceKind::kNmosThick:
      case DeviceKind::kPmosThick: {
        os << "M" << name;
        for (const NetId c : d.conns) os << " " << net_name(c);
        os << " " << mos_model(d.kind)
           << format(" L=%.4gn NFIN=%d NF=%d M=%d", d.params.length * 1e9, d.params.num_fins,
                     d.params.num_fingers, d.params.multiplier);
        if (opts.emit_layout_params && d.layout.has_value()) {
          const TransistorLayout& lay = *d.layout;
          os << format(" SA=%.6g DA=%.6g SP=%.6g DP=%.6g", lay.source_area, lay.drain_area,
                       lay.source_perimeter, lay.drain_perimeter);
          for (std::size_t i = 0; i < lay.lde.size(); ++i)
            os << format(" LDE%zu=%.6g", i + 1, lay.lde[i]);
        }
        os << "\n";
        break;
      }
      case DeviceKind::kResistor:
        os << "R" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" %.6g", d.params.value);
        if (d.params.length > 0) os << format(" L=%.4gu", d.params.length * 1e6);
        os << "\n";
        break;
      case DeviceKind::kCapacitor:
        os << "C" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" %.6gf M=%d", d.params.value * 1e15, d.params.multiplier) << "\n";
        break;
      case DeviceKind::kDiode:
        os << "D" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" dio NF=%d", d.params.num_fingers) << "\n";
        break;
      case DeviceKind::kBjt:
        os << "Q" << name;
        for (const NetId c : d.conns) os << " " << net_name(c);
        os << format(" npn M=%d", d.params.multiplier) << "\n";
        break;
    }
  }

  if (opts.net_caps != nullptr) {
    os << "* --- annotated net parasitics ---\n";
    std::size_t k = 0;
    for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
      const Net& n = nl.net(id);
      if (n.is_supply) continue;
      auto it = opts.net_caps->find(id);
      if (it == opts.net_caps->end()) continue;
      os << "Cpara" << k++ << " " << sanitize(n.name) << " vss"
         << format(" %.6gf", it->second * 1e15) << "\n";
    }
  }
  os << ".end\n";
}

std::string write_spice_string(const Netlist& nl, const WriteOptions& opts) {
  std::ostringstream ss;
  write_spice(ss, nl, opts);
  return ss.str();
}

}  // namespace paragraph::circuit
