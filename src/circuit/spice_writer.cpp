#include "circuit/spice_writer.h"

#include <cctype>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/strings.h"

namespace paragraph::circuit {

namespace {

using util::format;

// SPICE names cannot contain the '/' hierarchy separator we use internally.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (auto& c : out)
    if (c == '/') c = '_';
  return out;
}

const char* mos_model(DeviceKind k) {
  switch (k) {
    case DeviceKind::kNmos: return "nmos_lvt";
    case DeviceKind::kPmos: return "pmos_lvt";
    case DeviceKind::kNmosThick: return "nmos_thick";
    case DeviceKind::kPmosThick: return "pmos_thick";
    default: return "nmos_lvt";
  }
}

void emit_globals(std::ostream& os, const Netlist& nl) {
  os << ".global";
  bool any_supply = false;
  for (const Net& n : nl.nets()) {
    if (n.is_supply) {
      os << " " << sanitize(n.name);
      any_supply = true;
    }
  }
  if (!any_supply) os << " vss";
  os << "\n";
}

// ---------------------------------------------- hierarchical emission ----
//
// Reconstructs one .subckt definition per subckt name from a representative
// instance's device range, X cards for child instances merged back at their
// original card positions (children interleave with direct devices in
// device-id order, because expansion was depth-first in card order), and
// relative card names so a re-parse rebuilds identical instance paths.

// Card names must start with the card's type letter; names that already do
// are emitted verbatim (preserving round-trip identity), others get the
// letter prepended.
std::string card_name(char letter, const std::string& name) {
  if (!name.empty() &&
      std::tolower(static_cast<unsigned char>(name[0])) == letter)
    return sanitize(name);
  std::string out(1, static_cast<char>(std::toupper(static_cast<unsigned char>(letter))));
  out += sanitize(name);
  return out;
}

// Name of a card relative to its enclosing instance path.
std::string relative_name(const std::string& full, const std::string& base) {
  if (base.empty()) return full;
  if (full.size() > base.size() + 1 && full.compare(0, base.size(), base) == 0 &&
      full[base.size()] == '/')
    return full.substr(base.size() + 1);
  return sanitize(full);
}

using NetNamer = std::function<std::string(NetId)>;

// Full-precision device card (parsed parameter values feed the structural
// hash, so sizing must survive write -> parse bit-exactly).
void emit_device_card(std::ostream& os, const Device& d, const std::string& name,
                      const NetNamer& net_name) {
  switch (d.kind) {
    case DeviceKind::kNmos:
    case DeviceKind::kPmos:
    case DeviceKind::kNmosThick:
    case DeviceKind::kPmosThick: {
      os << card_name('m', name);
      for (const NetId c : d.conns) os << " " << net_name(c);
      os << " " << mos_model(d.kind)
         << format(" L=%.17g NFIN=%d NF=%d M=%d", d.params.length, d.params.num_fins,
                   d.params.num_fingers, d.params.multiplier);
      os << "\n";
      break;
    }
    case DeviceKind::kResistor:
      os << card_name('r', name) << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
         << format(" %.17g", d.params.value);
      if (d.params.length > 0) os << format(" L=%.17g", d.params.length);
      if (d.params.multiplier != 1) os << format(" M=%d", d.params.multiplier);
      os << "\n";
      break;
    case DeviceKind::kCapacitor:
      os << card_name('c', name) << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
         << format(" %.17g M=%d", d.params.value, d.params.multiplier) << "\n";
      break;
    case DeviceKind::kDiode:
      os << card_name('d', name) << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
         << format(" dio NF=%d", d.params.num_fingers) << "\n";
      break;
    case DeviceKind::kBjt:
      os << card_name('q', name);
      for (const NetId c : d.conns) os << " " << net_name(c);
      os << format(" npn M=%d", d.params.multiplier) << "\n";
      break;
  }
}

// Emits the direct cards of one scope (a subckt body or the top level):
// devices of [d0, d1) not covered by a child instance, with each child's
// subtree collapsed back into a single X card at its original position.
void emit_body(std::ostream& os, const Netlist& nl, const std::string& base_path, DeviceId d0,
               DeviceId d1, const std::vector<int>& child_ids, const NetNamer& net_name) {
  const auto& insts = nl.instances();
  std::size_t ci = 0;
  DeviceId d = d0;
  while (d < d1 || ci < child_ids.size()) {
    const SubcktInstance* child =
        ci < child_ids.size() ? &insts[static_cast<std::size_t>(child_ids[ci])] : nullptr;
    if (child != nullptr && (d >= d1 || child->first_device <= d)) {
      os << card_name('x', relative_name(child->path, base_path));
      for (const NetId b : child->ref.boundary_nets) os << " " << net_name(b);
      os << " " << child->ref.name << "\n";
      if (child->device_end > d) d = child->device_end;
      ++ci;
      continue;
    }
    const Device& dev = nl.device(d);
    emit_device_card(os, dev, relative_name(dev.name, base_path), net_name);
    ++d;
  }
}

void write_spice_hierarchical(std::ostream& os, const Netlist& nl, const WriteOptions& opts) {
  const auto& insts = nl.instances();
  std::vector<std::vector<int>> children(insts.size());
  std::vector<int> top_children;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const int parent = insts[i].parent;
    if (parent < 0)
      top_children.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(parent)].push_back(static_cast<int>(i));
  }

  // One definition per subckt name. The representative is the instance
  // with the fewest supply-bound ports: binding a port to a supply merges
  // it with the global net, so a fully signal-bound instance preserves the
  // port/global distinction of the original definition. (A definition
  // whose every instance supply-binds a port AND references the same
  // global directly is reconstructed with those references routed through
  // the port — electrically identical for the instances present.)
  auto supply_ports = [&](const SubcktInstance& inst) {
    std::size_t n = 0;
    for (const NetId b : inst.ref.boundary_nets)
      if (nl.net(b).is_supply) ++n;
    return n;
  };
  std::unordered_map<std::string, std::size_t> rep_of;
  std::vector<std::string> def_order;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    auto [it, inserted] = rep_of.emplace(insts[i].ref.name, i);
    if (inserted) {
      def_order.push_back(insts[i].ref.name);
      continue;
    }
    const SubcktInstance& rep = insts[it->second];
    if (rep.ref.boundary_nets.size() != insts[i].ref.boundary_nets.size() ||
        rep.device_end - rep.first_device != insts[i].device_end - insts[i].first_device)
      throw std::invalid_argument("write_spice: instances of subckt '" + insts[i].ref.name +
                                  "' disagree structurally; cannot reconstruct one definition");
    if (supply_ports(insts[i]) < supply_ports(rep)) it->second = i;
  }

  os << "* " << opts.title << " : " << nl.name() << "\n";
  emit_globals(os, nl);

  for (const std::string& dname : def_order) {
    const std::size_t rep = rep_of.at(dname);
    const SubcktInstance& inst = insts[rep];
    std::unordered_map<NetId, std::size_t> port_of;
    for (std::size_t p = 0; p < inst.ref.boundary_nets.size(); ++p)
      port_of.emplace(inst.ref.boundary_nets[p], p);
    NetNamer namer = [&](NetId id) -> std::string {
      if (auto it = port_of.find(id); it != port_of.end()) {
        std::string out("p");
        out += std::to_string(it->second);
        return out;
      }
      if (id >= inst.first_net && id < inst.net_end && !nl.net(id).is_supply) {
        std::string out("n");
        out += std::to_string(id - inst.first_net);
        return out;
      }
      return sanitize(nl.net(id).name);  // supply/global nets stay flat
    };
    os << ".subckt " << inst.ref.name;
    for (std::size_t p = 0; p < inst.ref.boundary_nets.size(); ++p) os << " p" << p;
    os << "\n";
    emit_body(os, nl, inst.path, inst.first_device, inst.device_end,
              children[rep], namer);
    os << ".ends\n";
  }

  NetNamer top_namer = [&](NetId id) { return sanitize(nl.net(id).name); };
  emit_body(os, nl, "", 0, static_cast<DeviceId>(nl.num_devices()), top_children, top_namer);
  os << ".end\n";
}

}  // namespace

void write_spice(std::ostream& os, const Netlist& nl, const WriteOptions& opts) {
  if (opts.hierarchical && !nl.instances().empty()) {
    write_spice_hierarchical(os, nl, opts);
    return;
  }
  os << "* " << opts.title << " : " << nl.name() << "\n";
  emit_globals(os, nl);

  auto net_name = [&](NetId id) { return sanitize(nl.net(id).name); };

  for (const Device& d : nl.devices()) {
    const std::string name = sanitize(d.name);
    switch (d.kind) {
      case DeviceKind::kNmos:
      case DeviceKind::kPmos:
      case DeviceKind::kNmosThick:
      case DeviceKind::kPmosThick: {
        os << "M" << name;
        for (const NetId c : d.conns) os << " " << net_name(c);
        os << " " << mos_model(d.kind)
           << format(" L=%.4gn NFIN=%d NF=%d M=%d", d.params.length * 1e9, d.params.num_fins,
                     d.params.num_fingers, d.params.multiplier);
        if (opts.emit_layout_params && d.layout.has_value()) {
          const TransistorLayout& lay = *d.layout;
          os << format(" SA=%.6g DA=%.6g SP=%.6g DP=%.6g", lay.source_area, lay.drain_area,
                       lay.source_perimeter, lay.drain_perimeter);
          for (std::size_t i = 0; i < lay.lde.size(); ++i)
            os << format(" LDE%zu=%.6g", i + 1, lay.lde[i]);
        }
        os << "\n";
        break;
      }
      case DeviceKind::kResistor:
        os << "R" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" %.6g", d.params.value);
        if (d.params.length > 0) os << format(" L=%.4gu", d.params.length * 1e6);
        os << "\n";
        break;
      case DeviceKind::kCapacitor:
        os << "C" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" %.6gf M=%d", d.params.value * 1e15, d.params.multiplier) << "\n";
        break;
      case DeviceKind::kDiode:
        os << "D" << name << " " << net_name(d.conns[0]) << " " << net_name(d.conns[1])
           << format(" dio NF=%d", d.params.num_fingers) << "\n";
        break;
      case DeviceKind::kBjt:
        os << "Q" << name;
        for (const NetId c : d.conns) os << " " << net_name(c);
        os << format(" npn M=%d", d.params.multiplier) << "\n";
        break;
    }
  }

  if (opts.net_caps != nullptr) {
    os << "* --- annotated net parasitics ---\n";
    std::size_t k = 0;
    for (NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
      const Net& n = nl.net(id);
      if (n.is_supply) continue;
      auto it = opts.net_caps->find(id);
      if (it == opts.net_caps->end()) continue;
      os << "Cpara" << k++ << " " << sanitize(n.name) << " vss"
         << format(" %.6gf", it->second * 1e15) << "\n";
    }
  }
  os << ".end\n";
}

std::string write_spice_string(const Netlist& nl, const WriteOptions& opts) {
  std::ostringstream ss;
  write_spice(ss, nl, opts);
  return ss.str();
}

}  // namespace paragraph::circuit
