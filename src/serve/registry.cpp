#include "serve/registry.h"

#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace paragraph::serve {

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(std::move(config)) {}

const dataset::FeatureNormalizer& ModelRegistry::normalizer_for(std::uint64_t seed, double scale) {
  const auto key = std::make_pair(seed, scale);
  auto it = normalizer_cache_.find(key);
  if (it != normalizer_cache_.end()) return it->second;
  PARAGRAPH_TIMED_SCOPE("serve_normalizer_build");
  obs::log_info("serve", "building normalizer",
                {{"seed", static_cast<unsigned long long>(seed)}, {"scale", scale}});
  // The full dataset build is the expensive part of a cold prediction;
  // only its fitted statistics are needed, so the samples are dropped on
  // the spot and the rebuild never happens again for this (seed, scale).
  auto ds = dataset::build_dataset(seed, scale);
  return normalizer_cache_.emplace(key, std::move(ds.normalizer)).first->second;
}

std::shared_ptr<const ModelBundle> ModelRegistry::build_bundle(std::uint64_t generation) {
  auto bundle = std::make_shared<ModelBundle>();
  bundle->generation = generation;
  bundle->datasets.resize(1 + config_.model_paths.size());
  if (!config_.ensemble_path.empty()) {
    bundle->ensemble.emplace(core::CapEnsemble::load(config_.ensemble_path));
    bundle->degraded = bundle->ensemble->degraded();
    bundle->dropped = bundle->ensemble->dropped_members();
    const auto& cfg = bundle->ensemble->model(0).config();
    bundle->datasets[0].normalizer = normalizer_for(cfg.seed, cfg.scale);
  }
  for (std::size_t i = 0; i < config_.model_paths.size(); ++i) {
    bundle->models.push_back(core::load_predictor(config_.model_paths[i]));
    const auto& cfg = bundle->models.back().config();
    bundle->datasets[1 + i].normalizer = normalizer_for(cfg.seed, cfg.scale);
  }
  return bundle;
}

void ModelRegistry::load_initial() {
  if (config_.ensemble_path.empty() && config_.model_paths.empty())
    throw std::invalid_argument("serve: need an --ensemble or at least one --model to serve");
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  auto bundle = build_bundle(next_generation_++);
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(bundle);
}

bool ModelRegistry::reload() {
  PARAGRAPH_TIMED_SCOPE("serve_reload");
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::shared_ptr<const ModelBundle> fresh;
  try {
    fresh = build_bundle(next_generation_);
  } catch (const std::exception& e) {
    // Old generation keeps serving; the operator gets the exact failure.
    obs::log_error("serve", "reload failed, keeping current model", {{"error", e.what()}});
    if (obs::enabled()) obs::MetricsRegistry::instance().counter("serve.reload_failures").add();
    return false;
  }
  ++next_generation_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = fresh;
  }
  obs::log_info("serve", "model reloaded",
                {{"generation", static_cast<unsigned long long>(fresh->generation)},
                 {"degraded", fresh->degraded}});
  if (obs::enabled()) {
    obs::MetricsRegistry::instance().counter("serve.reloads").add();
    obs::MetricsRegistry::instance()
        .gauge("ensemble.degraded")
        .set(fresh->degraded ? 1.0 : 0.0);
  }
  return true;
}

std::shared_ptr<const ModelBundle> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace paragraph::serve
