// The `paragraph serve` daemon: a resident inference server (DESIGN.md
// §12).
//
// Thread model:
//   * one acceptor thread polls the unix/TCP listeners and a self-pipe
//     (the async notification channel signal handlers and admin commands
//     write to);
//   * one detached reader thread per connection parses frames, answers
//     admin commands inline, and enqueues prediction jobs;
//   * one worker thread pops micro-batches off the priority queue and
//     answers them. A single worker serialises GNN forwards (the runtime
//     pool parallelises *inside* a batch), which keeps PlanCache use
//     race-free and batch results deterministic.
//
// Micro-batching: the worker drains up to max_batch queued jobs at once.
// Within a batch, jobs carrying byte-identical netlists are coalesced
// into one group — parsed once, planned once, predicted once — and every
// job gets its own response from the shared result. Distinct flat decks
// are processed through one runtime::parallel_for pass (one GraphPlan
// per deck shared across the ensemble members, the PR 3 batched-inference
// idiom); hierarchical decks run serially through the worker's PlanCache
// so repeated subckt templates hit memoized plans and embeddings across
// requests. Responses are bit-identical to single-request serving: every
// group's computation is independent and the per-sample kernels are
// deterministic at any thread count.
//
// Reload: SIGHUP (via notify_fd) or the "reload" admin command swaps the
// model generation through ModelRegistry. The worker snapshots the
// bundle once per batch, so in-flight batches always finish on the model
// they started with; a failed reload keeps the old generation serving.
//
// Shutdown: SIGTERM/SIGINT (via notify_fd) or the "shutdown" admin
// command stop admission — the listeners close, queued requests drain
// through the worker, late requests on open connections get a typed
// `shutting_down` error — then stop() joins everything and removes the
// socket file.
//
// Hostile conditions (DESIGN.md §14): accepted fds are nonblocking with a
// per-frame io_timeout_ms deadline (a stalled peer times out instead of
// pinning a reader or the worker), the acceptor runs a bounded poll tick
// that sweeps expired-deadline jobs out of the queue, connection count is
// bounded (typed `overloaded` past max_conns), admission is fair per
// client key (per-client queue cap + deficit-round-robin dequeue within
// each priority lane), and a TCP listener started with an auth token
// rejects unauthenticated requests (`unauthorized`, constant-time
// compare). The unix socket stays token-free.
//
// Telemetry (DESIGN.md §13): every admitted request carries a stable
// request id (client-propagated or server-assigned) and a phase
// breakdown — queue wait, parse, plan, predict, serialize — recorded
// into the metrics registry (always on; serve operations are ms-scale),
// the profiler/trace machinery (when instrumentation is on), a bounded
// recent-requests ring, rolling-window SLO counters, and the crash
// flight recorder. The `stats` admin verb snapshots all of it as a
// paragraph-stats-v1 document; `healthz` answers degraded/overload
// status; `--slow-ms` warn-logs outliers with their breakdown.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "gnn/plan_cache.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/telemetry.h"

namespace paragraph::serve {

struct ServeConfig {
  std::string socket_path;     // unix-domain listener (required)
  int tcp_port = -1;           // loopback TCP listener: -1 off, 0 ephemeral
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;   // 1 = micro-batching off
  double slow_ms = 0.0;        // >0: warn-log requests slower than this
  double slo_latency_ms = 50.0;  // SLO latency threshold (--slo-p99-ms)
  double slo_target = 0.999;     // SLO availability objective
  std::size_t recent_capacity = 64;  // recent-requests ring size
  // Hostile-conditions knobs (DESIGN.md §14).
  int io_timeout_ms = 5000;    // per-frame socket deadline once a frame
                               // starts; 0 disables (slowloris defense)
  std::size_t max_conns = 256;  // concurrent connections; excess get a
                                // typed `overloaded` rejection
  std::size_t client_queue_cap = 0;  // per-client in-queue cap; 0 = auto
                                     // (half the queue capacity, min 1)
  std::string auth_token;      // non-empty: TCP requests must carry it
                               // (unix socket stays token-free)
  RegistryConfig registry;
};

// Always-on serving counters (plain atomics, independent of the obs
// layer): the stats admin command, the tests, and the bench read these.
struct ServerStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> requests{0};   // admitted prediction jobs
  std::atomic<std::uint64_t> responses{0};  // ok responses sent
  std::atomic<std::uint64_t> rejected{0};   // queue_full admissions
  std::atomic<std::uint64_t> errors{0};     // error responses of any kind
  std::atomic<std::uint64_t> batches{0};    // worker micro-batches
  std::atomic<std::uint64_t> coalesced{0};  // jobs answered from a dup group
  std::atomic<std::uint64_t> reloads{0};    // successful generation swaps
  std::atomic<std::uint64_t> max_batch_seen{0};
  std::atomic<std::uint64_t> inflight{0};   // jobs popped, not yet answered
  std::atomic<std::uint64_t> io_timeouts{0};     // frames that stalled past
                                                 // io_timeout_ms (read or write)
  std::atomic<std::uint64_t> deadline_shed{0};   // jobs answered deadline_exceeded
  std::atomic<std::uint64_t> conn_rejected{0};   // connections over max_conns
  // Error responses by wire code, indexed by ErrorCode value.
  std::array<std::atomic<std::uint64_t>, kNumErrorCodes> by_error_code{};
};

// One client socket, shared between its reader thread and the worker
// (responses). Writes are mutex-serialised; a peer that vanished mid-
// response is logged and ignored (the server must outlive any client).
// Server-accepted fds are O_NONBLOCK so io_timeout_ms bounds every write
// (a stalled reader cannot pin the worker in send()) and every read past
// a frame's first byte.
class Connection {
 public:
  explicit Connection(int fd, std::string name = std::string(), bool is_tcp = false,
                      int io_timeout_ms = 0, ServerStats* stats = nullptr)
      : fd_(fd), name_(std::move(name)), is_tcp_(is_tcp), io_timeout_ms_(io_timeout_ms),
        stats_(stats) {}
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Serialises and frames `resp`; returns false when the peer is gone or
  // the write deadline expired. timeout_ms_override >= 0 replaces the
  // connection's io_timeout_ms for this one send (shed answers to
  // possibly-hostile peers use a short cap).
  bool send(const obs::JsonValue& resp, int timeout_ms_override = -1);
  // Half-closes the read side to unblock the reader thread (shutdown).
  void shutdown_read();
  int fd() const { return fd_; }
  // Connection identity ("conn<N>"): the default fairness key.
  const std::string& name() const { return name_; }
  bool is_tcp() const { return is_tcp_; }
  int io_timeout_ms() const { return io_timeout_ms_; }

 private:
  int fd_;
  const std::string name_;
  const bool is_tcp_;
  const int io_timeout_ms_;
  ServerStats* const stats_;
  std::mutex write_mu_;
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();

  // Binds the listeners (util::IoError when the socket path or TCP port
  // is taken), loads the initial model generation, and spawns the
  // acceptor and worker threads. Throws on any failure; a constructed-
  // but-not-started Server needs no stop().
  void start();

  // Blocks until shutdown is requested (signal, admin command, or
  // request_stop from another thread).
  void wait();

  // Drains and tears down: stops admission, answers the backlog, joins
  // every thread, unlinks the socket file. Idempotent.
  void stop();

  // Async requests, safe from signal handlers via notify_fd().
  void request_stop();
  void request_reload();
  // Write end of the self-pipe: one byte 'H' = reload, 'T' = stop.
  int notify_fd() const { return notify_write_fd_; }

  // Bound TCP port (after start), -1 when TCP is off.
  int tcp_port() const { return bound_tcp_port_; }

  const ServerStats& stats() const { return stats_; }
  ModelRegistry& registry() { return registry_; }
  const ServeConfig& config() const { return config_; }
  // Live telemetry (DESIGN.md §13): also reachable over the wire via the
  // `stats` admin verb; exposed directly for in-process tests.
  const RecentRequests& recent() const { return recent_; }
  const SloTracker& slo() const { return slo_; }

  // Test hook: while paused the queue withholds jobs from the worker, so
  // a test can assemble a deterministic backlog; resume lets it drain
  // (as one micro-batch when the backlog fits max_batch).
  void pause_worker();
  void resume_worker();

 private:
  void bind_unix();
  void bind_tcp();
  void acceptor_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void process_batch(std::vector<Job> batch);
  void handle_admin(const std::shared_ptr<Connection>& conn, std::int64_t id,
                    const std::string& cmd);
  void handle_request(const std::shared_ptr<Connection>& conn, const obs::JsonValue& req);
  obs::JsonValue stats_json() const;
  obs::JsonValue health_json() const;
  void finish_request(const Job& job, RequestRecord record);
  void do_reload();
  // Sends a typed error and counts it (stats_.errors + the per-code
  // counter). timeout_ms_override as in Connection::send.
  void send_error(const std::shared_ptr<Connection>& conn, std::int64_t id, ErrorCode code,
                  const std::string& message, const std::string& rid = std::string(),
                  int timeout_ms_override = -1);
  // Answers one job whose deadline passed before work started: typed
  // deadline_exceeded, client-attributed (queue-wait histogram and recent
  // ring recorded; SLO windows and the latency histogram skipped).
  void answer_expired(const Job& job);
  // Acceptor-tick sweep: drains expired jobs out of the queue so dead
  // work never reaches the worker. The answers themselves go to the
  // shedder thread — each shed write can legitimately stall for its full
  // (short) cap against a hostile peer, and a deep backlog of those must
  // not delay accepts, stop notification, or the next sweep.
  void shed_expired();
  void shedder_loop();

  ServeConfig config_;
  ModelRegistry registry_;
  RequestQueue queue_;
  ServerStats stats_;
  RecentRequests recent_;
  SloTracker slo_;
  gnn::PlanCache plan_cache_;  // worker-thread only

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int notify_read_fd_ = -1;
  int notify_write_fd_ = -1;

  std::thread acceptor_;
  std::thread worker_;
  std::thread shedder_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Expired jobs handed from the acceptor sweep to the shedder thread.
  std::mutex shed_mu_;
  std::condition_variable shed_cv_;
  std::vector<Job> shed_pending_;
  bool shed_stop_ = false;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool stop_requested_ = false;  // set by acceptor on 'T' / request_stop
  std::unordered_set<std::shared_ptr<Connection>> live_conns_;
  std::size_t reader_threads_ = 0;  // detached readers still running
};

}  // namespace paragraph::serve
