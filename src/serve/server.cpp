#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuit/spice_parser.h"
#include "graph/hetero_graph.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "runtime/thread_pool.h"
#include "util/bytes.h"
#include "util/errors.h"

namespace paragraph::serve {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

std::int64_t request_id(const obs::JsonValue& req) {
  const obs::JsonValue* id = req.find("id");
  return id != nullptr && id->is_number() ? id->as_int() : 0;
}

// Predictions keyed by node name for one target, in predict_all order
// (type slot, then node) — the same order `paragraph predict` prints.
obs::JsonValue named_predictions(const dataset::Sample& sample, dataset::TargetKind target,
                                 const std::vector<float>& preds) {
  obs::JsonValue out = obs::JsonValue::object();
  std::size_t k = 0;
  for (const auto nt : dataset::target_node_types(target)) {
    for (const auto origin : sample.graph.origins(nt)) {
      const std::string& name = nt == graph::NodeType::kNet
                                    ? sample.netlist.net(origin).name
                                    : sample.netlist.device(origin).name;
      if (k < preds.size()) out.set(name, static_cast<double>(preds[k++]));
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Connection

Connection::~Connection() { close_fd(fd_); }

bool Connection::send(const obs::JsonValue& resp) {
  std::lock_guard<std::mutex> lock(write_mu_);
  try {
    write_frame(fd_, resp.dump());
    return true;
  } catch (const util::IoError& e) {
    // The peer hung up before its answer arrived; the server's job is to
    // survive that, not to propagate it.
    obs::log_debug("serve", "response dropped, peer gone", {{"error", e.what()}});
    return false;
  }
}

void Connection::shutdown_read() { ::shutdown(fd_, SHUT_RD); }

// -------------------------------------------------------------------- Server

Server::Server(ServeConfig config)
    : config_(std::move(config)), registry_(config_.registry), queue_(config_.queue_capacity) {
  if (config_.max_batch == 0) config_.max_batch = 1;
}

Server::~Server() { stop(); }

void Server::bind_unix() {
  if (config_.socket_path.empty())
    throw std::invalid_argument("serve: --socket PATH is required");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path)
    throw std::invalid_argument("serve: socket path too long: " + config_.socket_path);
  std::strncpy(addr.sun_path, config_.socket_path.c_str(), sizeof addr.sun_path - 1);

  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (unix_fd_ < 0)
    throw util::IoError(std::string("serve: cannot create unix socket: ") + std::strerror(errno));
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EADDRINUSE) {
      // A leftover socket file from a crashed server binds the path even
      // though nothing listens. Probe it: a refused connect means stale,
      // so reclaim; a successful connect means a live server owns it.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (!live && ::unlink(config_.socket_path.c_str()) == 0 &&
          ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        obs::log_warn("serve", "reclaimed stale socket file", {{"path", config_.socket_path}});
      } else {
        close_fd(unix_fd_);
        throw util::IoError("serve: socket path '" + config_.socket_path +
                            "' is in use by another server");
      }
    } else {
      const int err = errno;
      close_fd(unix_fd_);
      throw util::IoError("serve: cannot bind '" + config_.socket_path +
                          "': " + std::strerror(err));
    }
  }
  if (::listen(unix_fd_, 64) != 0) {
    const int err = errno;
    close_fd(unix_fd_);
    throw util::IoError(std::string("serve: listen failed: ") + std::strerror(err));
  }
}

void Server::bind_tcp() {
  if (config_.tcp_port < 0) return;
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (tcp_fd_ < 0)
    throw util::IoError(std::string("serve: cannot create TCP socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(tcp_fd_, 64) != 0) {
    const int err = errno;
    close_fd(tcp_fd_);
    throw util::IoError("serve: cannot bind TCP port " + std::to_string(config_.tcp_port) +
                        ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    bound_tcp_port_ = ntohs(bound.sin_port);
}

void Server::start() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0)
    throw util::IoError(std::string("serve: cannot create notify pipe: ") + std::strerror(errno));
  notify_read_fd_ = pipe_fds[0];
  notify_write_fd_ = pipe_fds[1];
  try {
    bind_unix();
    bind_tcp();
    registry_.load_initial();
  } catch (...) {
    close_fd(unix_fd_);
    close_fd(tcp_fd_);
    close_fd(notify_read_fd_);
    close_fd(notify_write_fd_);
    throw;
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("serve.queue_capacity").set(static_cast<double>(queue_.capacity()));
    reg.gauge("serve.max_batch").set(static_cast<double>(config_.max_batch));
    reg.gauge("ensemble.degraded").set(registry_.current()->degraded ? 1.0 : 0.0);
  }
  worker_ = std::thread([this] { worker_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_.store(true, std::memory_order_release);
  obs::log_info("serve", "listening",
                {{"socket", config_.socket_path},
                 {"tcp_port", bound_tcp_port_},
                 {"queue_capacity", queue_.capacity()},
                 {"max_batch", config_.max_batch},
                 {"generation", static_cast<unsigned long long>(
                                    registry_.current()->generation)},
                 {"degraded", registry_.current()->degraded}});
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [&] { return stop_requested_; });
}

void Server::request_stop() {
  const char c = 'T';
  if (notify_write_fd_ >= 0) (void)!::write(notify_write_fd_, &c, 1);
}

void Server::request_reload() {
  const char c = 'H';
  if (notify_write_fd_ >= 0) (void)!::write(notify_write_fd_, &c, 1);
}

void Server::pause_worker() { queue_.set_paused(true); }

void Server::resume_worker() { queue_.set_paused(false); }

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // A concurrent stop() is already tearing down; just wait for it.
    wait();
    return;
  }
  request_stop();
  acceptor_.join();  // exits on 'T', no longer accepting
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  // Drain: no new admissions, the worker answers everything queued, late
  // frames on open connections get `shutting_down` errors from readers.
  queue_.close();
  resume_worker();
  worker_.join();
  // Now unblock any reader still waiting on its client and let them exit.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& conn : live_conns_) conn->shutdown_read();
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    state_cv_.wait(lock, [&] { return reader_threads_ == 0; });
    live_conns_.clear();
  }
  close_fd(notify_read_fd_);
  close_fd(notify_write_fd_);
  ::unlink(config_.socket_path.c_str());
  started_.store(false, std::memory_order_release);
  obs::log_info("serve", "stopped",
                {{"responses", stats_.responses.load()}, {"errors", stats_.errors.load()}});
}

void Server::do_reload() {
  if (registry_.reload()) stats_.reloads.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ acceptor

void Server::acceptor_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {notify_read_fd_, POLLIN, 0};
    const int unix_slot = unix_fd_ >= 0 ? static_cast<int>(n) : -1;
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    const int tcp_slot = tcp_fd_ >= 0 ? static_cast<int>(n) : -1;
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      obs::log_error("serve", "poll failed", {{"error", std::strerror(errno)}});
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[16];
      const ssize_t r = ::read(notify_read_fd_, buf, sizeof buf);
      bool stop = false;
      for (ssize_t i = 0; i < r; ++i) {
        if (buf[i] == 'H') do_reload();
        if (buf[i] == 'T') stop = true;
      }
      if (stop) {
        std::lock_guard<std::mutex> lock(state_mu_);
        stop_requested_ = true;
        state_cv_.notify_all();
        return;
      }
    }
    for (const int slot : {unix_slot, tcp_slot}) {
      if (slot < 0 || (fds[slot].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(fds[slot].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      stats_.connections.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Connection>(cfd);
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        live_conns_.insert(conn);
        ++reader_threads_;
      }
      // Readers are detached: their lifetime is tracked by reader_threads_
      // (stop() waits for zero), not by joinable handles that would pile
      // up over a long-lived daemon's connection churn.
      std::thread([this, conn] { reader_loop(conn); }).detach();
    }
  }
}

// -------------------------------------------------------------------- reader

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  try {
    while (read_frame(conn->fd(), &payload)) {
      std::string err;
      const auto req = obs::JsonValue::parse(payload, &err);
      if (!req || !req->is_object()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        conn->send(make_error_response(0, ErrorCode::kBadRequest, "malformed JSON: " + err));
        continue;
      }
      const obs::JsonValue* admin = req->find("admin");
      if (admin != nullptr && admin->is_string())
        handle_admin(conn, request_id(*req), admin->as_string());
      else
        handle_request(conn, *req);
    }
  } catch (const std::exception& e) {
    obs::log_debug("serve", "connection dropped", {{"error", e.what()}});
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  live_conns_.erase(conn);
  --reader_threads_;
  state_cv_.notify_all();
}

void Server::handle_request(const std::shared_ptr<Connection>& conn, const obs::JsonValue& req) {
  const std::int64_t id = request_id(req);
  const obs::JsonValue* netlist = req.find("netlist");
  if (netlist == nullptr || !netlist->is_string()) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    conn->send(make_error_response(id, ErrorCode::kBadRequest,
                                   "request needs a string \"netlist\" (or \"admin\") field"));
    return;
  }
  Priority priority = Priority::kNormal;
  if (const obs::JsonValue* p = req.find("priority"); p != nullptr) {
    if (!p->is_string() || !parse_priority(p->as_string(), &priority)) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      conn->send(make_error_response(id, ErrorCode::kBadRequest,
                                     "priority must be \"low\", \"normal\", or \"high\""));
      return;
    }
  }
  Job job;
  job.id = id;
  job.priority = priority;
  job.netlist_text = netlist->as_string();
  job.netlist_hash = util::fnv1a64(job.netlist_text);
  job.conn = conn;
  job.enqueued_at = std::chrono::steady_clock::now();
  switch (queue_.push(std::move(job))) {
    case RequestQueue::PushResult::kOk:
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::instance();
        reg.counter("serve.requests").add();
        reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.depth()));
      }
      break;
    case RequestQueue::PushResult::kFull:
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) obs::MetricsRegistry::instance().counter("serve.rejected").add();
      conn->send(make_error_response(id, ErrorCode::kQueueFull,
                                     "queue at capacity (" + std::to_string(queue_.capacity()) +
                                         "); retry with backoff"));
      break;
    case RequestQueue::PushResult::kClosed:
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      conn->send(make_error_response(id, ErrorCode::kShuttingDown, "server is draining"));
      break;
  }
}

void Server::handle_admin(const std::shared_ptr<Connection>& conn, std::int64_t id,
                          const std::string& cmd) {
  if (cmd == "stats") {
    obs::JsonValue resp = make_ok_response(id, registry_.current()->generation,
                                           registry_.current()->degraded);
    resp.set("stats", stats_json());
    conn->send(resp);
    return;
  }
  if (cmd == "reload") {
    do_reload();
    const auto bundle = registry_.current();
    // ok reflects availability, not reload success: a failed reload keeps
    // the old generation serving, which the caller sees unchanged.
    conn->send(make_ok_response(id, bundle->generation, bundle->degraded));
    return;
  }
  if (cmd == "shutdown") {
    conn->send(make_ok_response(id, registry_.current()->generation,
                                registry_.current()->degraded));
    request_stop();
    return;
  }
  stats_.errors.fetch_add(1, std::memory_order_relaxed);
  conn->send(make_error_response(id, ErrorCode::kBadRequest,
                                 "unknown admin command '" + cmd +
                                     "' (use stats, reload, shutdown)"));
}

obs::JsonValue Server::stats_json() const {
  obs::JsonValue s = obs::JsonValue::object();
  s.set("connections", stats_.connections.load());
  s.set("requests", stats_.requests.load());
  s.set("responses", stats_.responses.load());
  s.set("rejected", stats_.rejected.load());
  s.set("errors", stats_.errors.load());
  s.set("batches", stats_.batches.load());
  s.set("coalesced", stats_.coalesced.load());
  s.set("reloads", stats_.reloads.load());
  s.set("max_batch_seen", stats_.max_batch_seen.load());
  s.set("queue_depth", queue_.depth());
  s.set("queue_capacity", queue_.capacity());
  s.set("max_batch", config_.max_batch);
  const auto bundle = registry_.current();
  s.set("generation", static_cast<unsigned long long>(bundle->generation));
  s.set("degraded", bundle->degraded);
  obs::JsonValue dropped = obs::JsonValue::array();
  for (const auto& d : bundle->dropped) dropped.push_back(d.path);
  s.set("dropped_members", std::move(dropped));
  return s;
}

// -------------------------------------------------------------------- worker

void Server::worker_loop() {
  for (;;) {
    std::vector<Job> batch = queue_.pop_batch(config_.max_batch);
    if (batch.empty()) return;  // queue closed and drained
    try {
      process_batch(std::move(batch));
    } catch (const std::exception& e) {
      // Defensive: process_batch answers per-group failures itself; this
      // catches bugs in the batch machinery so one bad batch cannot kill
      // the worker (and with it the whole daemon).
      obs::log_error("serve", "batch processing failed", {{"error", e.what()}});
    }
  }
}

void Server::process_batch(std::vector<Job> batch) {
  PARAGRAPH_TIMED_SCOPE("serve_batch");
  const auto bundle = registry_.current();  // one generation per batch

  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = stats_.max_batch_seen.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !stats_.max_batch_seen.compare_exchange_weak(seen, batch.size(),
                                                      std::memory_order_relaxed)) {
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.histogram("serve.batch_size").record(static_cast<double>(batch.size()));
    reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.depth()));
  }

  // Coalesce byte-identical netlists: one group is parsed, planned, and
  // predicted once, then answers every job that carried it.
  struct Group {
    const Job* job = nullptr;  // representative (first occurrence)
    std::vector<std::size_t> job_indices;
    dataset::Sample sample;
    bool ok = false;
    ErrorCode error_code = ErrorCode::kInternal;
    std::string error_message;
    obs::JsonValue predictions;
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::size_t> by_hash;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const Job& job = batch[j];
    const auto it = by_hash.find(job.netlist_hash);
    if (it != by_hash.end() && groups[it->second].job->netlist_text == job.netlist_text) {
      groups[it->second].job_indices.push_back(j);
      stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    by_hash.emplace(job.netlist_hash, groups.size());
    groups.emplace_back();
    groups.back().job = &job;
    groups.back().job_indices.push_back(j);
  }

  // One prediction pass per distinct deck. Hierarchical decks run
  // serially so the worker-owned PlanCache (not thread-safe) memoizes
  // their templates across requests; the rest share one parallel pass,
  // each deck on its own plan (the PR 3 batched-inference layout).
  const auto predict_group = [&](Group& g, bool allow_cache) {
    try {
      circuit::Netlist nl = circuit::parse_spice_string(g.job->netlist_text);
      g.sample.name = nl.name();
      g.sample.graph = graph::build_graph(nl);
      g.sample.netlist = std::move(nl);
    } catch (const circuit::ParseError& e) {
      g.error_code = ErrorCode::kParseError;
      g.error_message = e.what();
      return;
    }
    try {
      const bool hier = allow_cache && !g.sample.netlist.instances().empty();
      obs::JsonValue preds = obs::JsonValue::object();
      if (bundle->ensemble.has_value()) {
        const auto& ds = bundle->ensemble_dataset();
        std::vector<float> p;
        if (hier) {
          p = bundle->ensemble->predict_with_cache(ds, g.sample, plan_cache_);
        } else {
          const gnn::GraphPlan plan =
              gnn::GraphPlan::build(g.sample.graph, bundle->ensemble->model(0).needs_homo());
          p = bundle->ensemble->predict_with_plan(ds, g.sample, plan);
        }
        preds.set(dataset::target_name(dataset::TargetKind::kCap),
                  named_predictions(g.sample, dataset::TargetKind::kCap, p));
      }
      for (std::size_t m = 0; m < bundle->models.size(); ++m) {
        const core::GnnPredictor& model = bundle->models[m];
        const auto& ds = bundle->model_dataset(m);
        const std::vector<float> p = hier ? model.predict_all(ds, g.sample, plan_cache_)
                                          : model.predict_all(ds, g.sample);
        preds.set(dataset::target_name(model.config().target),
                  named_predictions(g.sample, model.config().target, p));
      }
      g.predictions = std::move(preds);
      g.ok = true;
    } catch (const std::exception& e) {
      g.error_code = ErrorCode::kInternal;
      g.error_message = e.what();
    }
  };

  std::vector<std::size_t> flat, hier;
  for (std::size_t gi = 0; gi < groups.size(); ++gi)
    (groups[gi].job->netlist_text.find(".subckt") == std::string::npos &&
     groups[gi].job->netlist_text.find(".SUBCKT") == std::string::npos
         ? flat
         : hier)
        .push_back(gi);
  runtime::parallel_for("serve_predict", flat.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) predict_group(groups[flat[i]], false);
  });
  for (const std::size_t gi : hier) predict_group(groups[gi], true);

  // Answer every job from its group's shared result, in batch (service)
  // order, with per-request latency accounted end to end.
  static constexpr const char* kLatency = "serve.latency_us";
  for (const Group& g : groups) {
    for (const std::size_t j : g.job_indices) {
      const Job& job = batch[j];
      if (g.ok) {
        obs::JsonValue resp = make_ok_response(job.id, bundle->generation, bundle->degraded);
        resp.set("predictions", g.predictions);
        if (job.conn->send(resp)) stats_.responses.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        job.conn->send(make_error_response(job.id, g.error_code, g.error_message));
      }
      if (obs::enabled()) {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - job.enqueued_at)
                              .count();
        obs::MetricsRegistry::instance().histogram(kLatency).record(us);
      }
    }
  }
}

}  // namespace paragraph::serve
