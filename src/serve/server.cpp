#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuit/spice_parser.h"
#include "graph/hetero_graph.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "util/bytes.h"
#include "util/errors.h"
#include "util/faultinject.h"

namespace paragraph::serve {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

std::int64_t request_id(const obs::JsonValue& req) {
  const obs::JsonValue* id = req.find("id");
  return id != nullptr && id->is_number() ? id->as_int() : 0;
}

// Effective per-client in-queue cap: explicit when configured, otherwise
// half the queue so one client can never own the whole backlog but a
// lone client still gets useful batching depth.
std::size_t effective_client_cap(const ServeConfig& c) {
  if (c.client_queue_cap != 0) return c.client_queue_cap;
  const std::size_t cap = c.queue_capacity != 0 ? c.queue_capacity : 1;
  return cap / 2 != 0 ? cap / 2 : 1;
}

// Shed answers go to peers that may be hostile or stalled: cap the write
// deadline low so one of them cannot slow the acceptor tick or worker.
constexpr int kShedSendTimeoutMs = 250;

// Acceptor poll tick: bounds how stale a deadline sweep or stop check can
// get when the listeners are quiet.
constexpr int kAcceptTickMs = 250;

// Largest accepted deadline_ms (one hour). Keeps the double->int64 cast
// and the steady_clock addition far from overflow territory.
constexpr double kMaxDeadlineMs = 3.6e6;

// The request's trace id: client-propagated "request_id" when present,
// server-assigned "r<N>" otherwise.
std::string resolve_request_id(const obs::JsonValue& req) {
  const obs::JsonValue* rid = req.find("request_id");
  if (rid != nullptr && rid->is_string() && !rid->as_string().empty()) return rid->as_string();
  return next_request_id();
}

double us_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

std::int64_t wall_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Request begin/end markers for the crash flight recorder: a dump whose
// ring holds a "begin <rid>" without a matching "end <rid>" names a
// request that was in flight when the process died.
void flight_mark(const std::string& rid, const char* what) {
  auto& recorder = obs::FlightRecorder::instance();
  if (recorder.armed())
    recorder.record(obs::FlightEvent::Kind::kLog,
                    static_cast<std::uint8_t>(obs::LogLevel::kInfo), "serve.req",
                    std::string(what) + " " + rid);
}

// One per-request phase span: feeds the Chrome trace (named by request
// id, so a trace view shows each request's lifeline) and the phase
// profiler. Instrumentation-gated like every other span in the tree —
// the always-on surfaces are the registry histograms and the ring.
void span(const std::string& rid, const char* phase, double dur_us) {
  if (!obs::enabled()) return;
  obs::Profiler::instance().record(std::string("serve/req/") + phase, dur_us);
  auto& trace = obs::TraceCollector::instance();
  if (trace.enabled())
    trace.add_complete("req " + rid + " " + phase, "serve",
                       obs::now_us() - static_cast<std::int64_t>(dur_us),
                       static_cast<std::int64_t>(dur_us));
}

// Predictions keyed by node name for one target, in predict_all order
// (type slot, then node) — the same order `paragraph predict` prints.
obs::JsonValue named_predictions(const dataset::Sample& sample, dataset::TargetKind target,
                                 const std::vector<float>& preds) {
  obs::JsonValue out = obs::JsonValue::object();
  std::size_t k = 0;
  for (const auto nt : dataset::target_node_types(target)) {
    for (const auto origin : sample.graph.origins(nt)) {
      const std::string& name = nt == graph::NodeType::kNet
                                    ? sample.netlist.net(origin).name
                                    : sample.netlist.device(origin).name;
      if (k < preds.size()) out.set(name, static_cast<double>(preds[k++]));
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Connection

Connection::~Connection() { close_fd(fd_); }

bool Connection::send(const obs::JsonValue& resp, int timeout_ms_override) {
  const int timeout = timeout_ms_override >= 0 ? timeout_ms_override : io_timeout_ms_;
  std::lock_guard<std::mutex> lock(write_mu_);
  try {
    write_frame(fd_, resp.dump(), kMaxFrameBytes, timeout);
    return true;
  } catch (const util::TimeoutError& e) {
    // A peer that stopped reading cannot be allowed to pin the worker (it
    // holds write_mu_, and a stalled blocking send would hold it forever);
    // the response is dropped and the stall is accounted.
    if (stats_ != nullptr) stats_->io_timeouts.fetch_add(1, std::memory_order_relaxed);
    obs::log_debug("serve", "response dropped, peer stalled", {{"error", e.what()}});
  } catch (const util::IoError& e) {
    // The peer hung up before its answer arrived; the server's job is to
    // survive that, not to propagate it.
    obs::log_debug("serve", "response dropped, peer gone", {{"error", e.what()}});
  }
  // Either way a response frame died mid-write: the stream has no frame
  // boundary to resync on, so the connection is unusable. Shut it down
  // fully — the reader wakes with EOF and the peer sees the close instead
  // of waiting forever for a frame that will never finish.
  ::shutdown(fd_, SHUT_RDWR);
  return false;
}

void Connection::shutdown_read() { ::shutdown(fd_, SHUT_RD); }

// -------------------------------------------------------------------- Server

Server::Server(ServeConfig config)
    : config_(std::move(config)),
      registry_(config_.registry),
      queue_(config_.queue_capacity, effective_client_cap(config_)),
      recent_(config_.recent_capacity),
      slo_(SloTracker::Config{config_.slo_latency_ms, config_.slo_target}) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.max_conns == 0) config_.max_conns = 1;
  if (config_.io_timeout_ms < 0) config_.io_timeout_ms = 0;
  config_.client_queue_cap = queue_.client_cap();  // echo the effective value
}

Server::~Server() { stop(); }

void Server::bind_unix() {
  if (config_.socket_path.empty())
    throw std::invalid_argument("serve: --socket PATH is required");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path)
    throw std::invalid_argument("serve: socket path too long: " + config_.socket_path);
  std::strncpy(addr.sun_path, config_.socket_path.c_str(), sizeof addr.sun_path - 1);

  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (unix_fd_ < 0)
    throw util::IoError(std::string("serve: cannot create unix socket: ") + std::strerror(errno));
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EADDRINUSE) {
      // A leftover socket file from a crashed server binds the path even
      // though nothing listens. Probe it: a refused connect means stale,
      // so reclaim; a successful connect means a live server owns it.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (!live && ::unlink(config_.socket_path.c_str()) == 0 &&
          ::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        obs::log_warn("serve", "reclaimed stale socket file", {{"path", config_.socket_path}});
      } else {
        close_fd(unix_fd_);
        throw util::IoError("serve: socket path '" + config_.socket_path +
                            "' is in use by another server");
      }
    } else {
      const int err = errno;
      close_fd(unix_fd_);
      throw util::IoError("serve: cannot bind '" + config_.socket_path +
                          "': " + std::strerror(err));
    }
  }
  if (::listen(unix_fd_, 64) != 0) {
    const int err = errno;
    close_fd(unix_fd_);
    throw util::IoError(std::string("serve: listen failed: ") + std::strerror(err));
  }
}

void Server::bind_tcp() {
  if (config_.tcp_port < 0) return;
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (tcp_fd_ < 0)
    throw util::IoError(std::string("serve: cannot create TCP socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(tcp_fd_, 64) != 0) {
    const int err = errno;
    close_fd(tcp_fd_);
    throw util::IoError("serve: cannot bind TCP port " + std::to_string(config_.tcp_port) +
                        ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    bound_tcp_port_ = ntohs(bound.sin_port);
}

void Server::start() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0)
    throw util::IoError(std::string("serve: cannot create notify pipe: ") + std::strerror(errno));
  notify_read_fd_ = pipe_fds[0];
  notify_write_fd_ = pipe_fds[1];
  try {
    bind_unix();
    bind_tcp();
    registry_.load_initial();
  } catch (...) {
    close_fd(unix_fd_);
    close_fd(tcp_fd_);
    close_fd(notify_read_fd_);
    close_fd(notify_write_fd_);
    throw;
  }
  // Serve-level instruments are always on (not gated on obs::enabled()):
  // requests are milliseconds-scale, so the registry cost is noise, and
  // the `stats` admin verb must answer on any daemon, not only ones
  // started with --metrics-out.
  {
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("serve.queue_capacity").set(static_cast<double>(queue_.capacity()));
    reg.gauge("serve.max_batch").set(static_cast<double>(config_.max_batch));
    reg.gauge("ensemble.degraded").set(registry_.current()->degraded ? 1.0 : 0.0);
  }
  worker_ = std::thread([this] { worker_loop(); });
  shedder_ = std::thread([this] { shedder_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_.store(true, std::memory_order_release);
  obs::log_info("serve", "listening",
                {{"socket", config_.socket_path},
                 {"tcp_port", bound_tcp_port_},
                 {"queue_capacity", queue_.capacity()},
                 {"max_batch", config_.max_batch},
                 {"generation", static_cast<unsigned long long>(
                                    registry_.current()->generation)},
                 {"degraded", registry_.current()->degraded}});
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [&] { return stop_requested_; });
}

void Server::request_stop() {
  const char c = 'T';
  if (notify_write_fd_ >= 0) (void)!::write(notify_write_fd_, &c, 1);
}

void Server::request_reload() {
  const char c = 'H';
  if (notify_write_fd_ >= 0) (void)!::write(notify_write_fd_, &c, 1);
}

void Server::pause_worker() { queue_.set_paused(true); }

void Server::resume_worker() { queue_.set_paused(false); }

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // A concurrent stop() is already tearing down; just wait for it.
    wait();
    return;
  }
  request_stop();
  acceptor_.join();  // exits on 'T', no longer accepting
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  // Drain: no new admissions, the worker answers everything queued, late
  // frames on open connections get `shutting_down` errors from readers.
  queue_.close();
  resume_worker();
  worker_.join();
  // The shedder drains any still-pending expired answers before exiting,
  // so every admitted request got a response attempt.
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    shed_stop_ = true;
  }
  shed_cv_.notify_all();
  shedder_.join();
  // Now unblock any reader still waiting on its client and let them exit.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& conn : live_conns_) conn->shutdown_read();
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    state_cv_.wait(lock, [&] { return reader_threads_ == 0; });
    live_conns_.clear();
  }
  close_fd(notify_read_fd_);
  close_fd(notify_write_fd_);
  ::unlink(config_.socket_path.c_str());
  started_.store(false, std::memory_order_release);
  obs::log_info("serve", "stopped",
                {{"responses", stats_.responses.load()}, {"errors", stats_.errors.load()}});
}

void Server::do_reload() {
  if (registry_.reload()) stats_.reloads.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ acceptor

void Server::acceptor_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {notify_read_fd_, POLLIN, 0};
    const int unix_slot = unix_fd_ >= 0 ? static_cast<int>(n) : -1;
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    const int tcp_slot = tcp_fd_ >= 0 ? static_cast<int>(n) : -1;
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    // Bounded tick, never -1: a quiet socket must not starve the
    // expired-deadline sweep (or delay noticing anything else periodic).
    const int r = ::poll(fds, n, kAcceptTickMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      obs::log_error("serve", "poll failed", {{"error", std::strerror(errno)}});
      break;
    }
    shed_expired();
    if (r == 0) continue;
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[16];
      const ssize_t r = ::read(notify_read_fd_, buf, sizeof buf);
      bool stop = false;
      for (ssize_t i = 0; i < r; ++i) {
        if (buf[i] == 'H') do_reload();
        if (buf[i] == 'T') stop = true;
      }
      if (stop) {
        std::lock_guard<std::mutex> lock(state_mu_);
        stop_requested_ = true;
        state_cv_.notify_all();
        return;
      }
    }
    for (const int slot : {unix_slot, tcp_slot}) {
      if (slot < 0 || (fds[slot].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(fds[slot].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      // Fault site sock.accept: the client vanished between connect and
      // first frame — the daemon just moves on.
      if (util::fault::should_fail("sock.accept")) {
        ::close(cfd);
        continue;
      }
      // Nonblocking so every read past a frame's first byte and every
      // write runs under the poll-based io_timeout_ms deadline.
      const int flags = ::fcntl(cfd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
      const bool is_tcp = slot == tcp_slot;
      const std::uint64_t conn_no = stats_.connections.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Connection>(cfd, "conn" + std::to_string(conn_no + 1),
                                               is_tcp, config_.io_timeout_ms, &stats_);
      bool reject = false;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (live_conns_.size() >= config_.max_conns) {
          reject = true;
        } else {
          live_conns_.insert(conn);
          ++reader_threads_;
        }
      }
      if (reject) {
        // Over the connection bound: answer `overloaded` (short write cap
        // — the peer may be part of the problem) and hang up. The typed
        // rejection is what lets a well-behaved client back off.
        stats_.conn_rejected.fetch_add(1, std::memory_order_relaxed);
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        stats_.by_error_code[static_cast<std::size_t>(ErrorCode::kOverloaded)].fetch_add(
            1, std::memory_order_relaxed);
        conn->send(make_error_response(0, ErrorCode::kOverloaded,
                                       "too many connections (" +
                                           std::to_string(config_.max_conns) +
                                           "); retry with backoff"),
                   kShedSendTimeoutMs);
        continue;
      }
      // Readers are detached: their lifetime is tracked by reader_threads_
      // (stop() waits for zero), not by joinable handles that would pile
      // up over a long-lived daemon's connection churn.
      std::thread([this, conn] { reader_loop(conn); }).detach();
    }
  }
}

// -------------------------------------------------------------------- reader

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  try {
    while (read_frame(conn->fd(), &payload, kMaxFrameBytes, conn->io_timeout_ms())) {
      std::string err;
      const auto req = obs::JsonValue::parse(payload, &err);
      if (!req || !req->is_object()) {
        send_error(conn, 0, ErrorCode::kBadRequest, "malformed JSON: " + err);
        continue;
      }
      // Auth gates every request on an authenticated TCP listener — admin
      // verbs included (shutdown over an open port must not be free). The
      // unix socket is guarded by filesystem permissions instead.
      if (conn->is_tcp() && !config_.auth_token.empty()) {
        const obs::JsonValue* tok = req->find("auth_token");
        const obs::JsonValue* rid = req->find("request_id");
        if (tok == nullptr || !tok->is_string() ||
            !token_equal_consttime(tok->as_string(), config_.auth_token)) {
          send_error(conn, request_id(*req), ErrorCode::kUnauthorized,
                     "missing or invalid auth_token",
                     rid != nullptr && rid->is_string() ? rid->as_string() : std::string());
          continue;
        }
      }
      const obs::JsonValue* admin = req->find("admin");
      if (admin != nullptr && admin->is_string())
        handle_admin(conn, request_id(*req), admin->as_string());
      else
        handle_request(conn, *req);
    }
  } catch (const util::TimeoutError& e) {
    // Slowloris: a frame started and stalled past io_timeout_ms. Nothing
    // to answer — the frame never completed, so there is no request id to
    // attribute a response to — the connection is simply reclaimed.
    stats_.io_timeouts.fetch_add(1, std::memory_order_relaxed);
    obs::log_warn("serve", "connection timed out mid-frame",
                  {{"conn", conn->name()}, {"error", e.what()}});
  } catch (const FrameError& e) {
    // Framing is unrecoverable (no boundary to resync on): answer a
    // best-effort typed error so the peer learns why, then close.
    send_error(conn, 0, ErrorCode::kBadRequest, e.what(), std::string(), kShedSendTimeoutMs);
    obs::log_debug("serve", "connection dropped on framing error",
                   {{"conn", conn->name()}, {"error", e.what()}});
  } catch (const std::exception& e) {
    obs::log_debug("serve", "connection dropped", {{"error", e.what()}});
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  live_conns_.erase(conn);
  --reader_threads_;
  state_cv_.notify_all();
}

void Server::handle_request(const std::shared_ptr<Connection>& conn, const obs::JsonValue& req) {
  const std::int64_t id = request_id(req);
  const std::string rid = resolve_request_id(req);
  const obs::JsonValue* netlist = req.find("netlist");
  if (netlist == nullptr || !netlist->is_string()) {
    send_error(conn, id, ErrorCode::kBadRequest,
               "request needs a string \"netlist\" (or \"admin\") field", rid);
    return;
  }
  Priority priority = Priority::kNormal;
  if (const obs::JsonValue* p = req.find("priority"); p != nullptr) {
    if (!p->is_string() || !parse_priority(p->as_string(), &priority)) {
      send_error(conn, id, ErrorCode::kBadRequest,
                 "priority must be \"low\", \"normal\", or \"high\"", rid);
      return;
    }
  }
  Job job;
  job.id = id;
  job.request_id = rid;
  job.priority = priority;
  job.client = conn->name();
  if (const obs::JsonValue* c = req.find("client"); c != nullptr) {
    // Bounded so a hostile stream of huge keys cannot bloat queue state.
    if (!c->is_string() || c->as_string().empty() || c->as_string().size() > 128) {
      send_error(conn, id, ErrorCode::kBadRequest,
                 "client must be a non-empty string of at most 128 bytes", rid);
      return;
    }
    job.client = c->as_string();
  }
  job.netlist_text = netlist->as_string();
  job.netlist_hash = util::fnv1a64(job.netlist_text);
  job.conn = conn;
  job.enqueued_at = std::chrono::steady_clock::now();
  if (const obs::JsonValue* d = req.find("deadline_ms"); d != nullptr) {
    // Bounded above as well as below: a huge value (1e300) would make the
    // double->int64 cast undefined behavior, and even in-int64-range
    // values (1e16 ms) overflow steady_clock's nanosecond rep when added
    // to enqueued_at, wrapping the deadline into the past. Anything past
    // an hour is not a per-request serving deadline. The negated
    // comparison also rejects NaN (every NaN compare is false).
    if (!d->is_number() || !(d->as_double() > 0.0) || d->as_double() > kMaxDeadlineMs) {
      send_error(conn, id, ErrorCode::kBadRequest,
                 "deadline_ms must be a number in (0, " +
                     std::to_string(static_cast<std::int64_t>(kMaxDeadlineMs)) + "]",
                 rid);
      return;
    }
    job.deadline = job.enqueued_at +
                   std::chrono::milliseconds(static_cast<std::int64_t>(d->as_double()));
  }
  static obs::Counter& requests_c = obs::MetricsRegistry::instance().counter("serve.requests");
  static obs::Counter& rejected_c = obs::MetricsRegistry::instance().counter("serve.rejected");
  static obs::Gauge& depth_g = obs::MetricsRegistry::instance().gauge("serve.queue_depth");
  const std::string client = job.client;  // job is moved into the queue
  switch (queue_.push(std::move(job))) {
    case RequestQueue::PushResult::kOk:
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      requests_c.add();
      depth_g.set(static_cast<double>(queue_.depth()));
      flight_mark(rid, "begin");
      break;
    case RequestQueue::PushResult::kFull:
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      rejected_c.add();
      // A shed request spent the whole error budget it was given: the SLO
      // window counts it as unavailability, not as fast failure.
      slo_.record(false, 0.0);
      flight_mark(rid, "reject");
      send_error(conn, id, ErrorCode::kQueueFull,
                 "queue at capacity (" + std::to_string(queue_.capacity()) +
                     "); retry with backoff",
                 rid);
      break;
    case RequestQueue::PushResult::kClientFull:
      // Same wire code as a full queue — the caller's remedy (back off)
      // is identical — but the message names the fairness cap so a
      // flooder's logs explain why the queue "looked" full to it alone.
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      rejected_c.add();
      slo_.record(false, 0.0);
      flight_mark(rid, "reject");
      send_error(conn, id, ErrorCode::kQueueFull,
                 "client '" + client + "' is at its queue share (" +
                     std::to_string(queue_.client_cap()) + " of " +
                     std::to_string(queue_.capacity()) + "); retry with backoff",
                 rid);
      break;
    case RequestQueue::PushResult::kClosed:
      slo_.record(false, 0.0);
      send_error(conn, id, ErrorCode::kShuttingDown, "server is draining", rid);
      break;
  }
}

void Server::handle_admin(const std::shared_ptr<Connection>& conn, std::int64_t id,
                          const std::string& cmd) {
  if (cmd == "stats") {
    obs::JsonValue resp = make_ok_response(id, registry_.current()->generation,
                                           registry_.current()->degraded);
    resp.set("stats", stats_json());
    conn->send(resp);
    return;
  }
  if (cmd == "healthz") {
    obs::JsonValue resp = make_ok_response(id, registry_.current()->generation,
                                           registry_.current()->degraded);
    resp.set("health", health_json());
    conn->send(resp);
    return;
  }
  if (cmd == "reload") {
    do_reload();
    const auto bundle = registry_.current();
    // ok reflects availability, not reload success: a failed reload keeps
    // the old generation serving, which the caller sees unchanged.
    conn->send(make_ok_response(id, bundle->generation, bundle->degraded));
    return;
  }
  if (cmd == "shutdown") {
    conn->send(make_ok_response(id, registry_.current()->generation,
                                registry_.current()->degraded));
    request_stop();
    return;
  }
  send_error(conn, id, ErrorCode::kBadRequest,
             "unknown admin command '" + cmd + "' (use stats, healthz, reload, shutdown)");
}

void Server::send_error(const std::shared_ptr<Connection>& conn, std::int64_t id,
                        ErrorCode code, const std::string& message, const std::string& rid,
                        int timeout_ms_override) {
  stats_.errors.fetch_add(1, std::memory_order_relaxed);
  stats_.by_error_code[static_cast<std::size_t>(code)].fetch_add(1, std::memory_order_relaxed);
  conn->send(make_error_response(id, code, message, rid), timeout_ms_override);
}

// Client-attributed shedding: the request carried a deadline and the
// queue outlived it. Queue-wait histograms and the recent ring record it
// (it is exactly the evidence a fairness/backlog investigation needs) but
// the SLO windows and the latency histogram do not — the server never
// owed this request an answer after its deadline, so it is not
// unavailability (DESIGN.md §14).
void Server::answer_expired(const Job& job) {
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& shed_c = reg.counter("serve.deadline_shed");
  static obs::Histogram* const lane_wait_h[kNumPriorities] = {
      &reg.histogram("serve.queue_wait_us.low"),
      &reg.histogram("serve.queue_wait_us.normal"),
      &reg.histogram("serve.queue_wait_us.high"),
  };
  const auto now = std::chrono::steady_clock::now();
  const double wait_us = us_between(job.enqueued_at, now);
  lane_wait_h[static_cast<std::size_t>(job.priority)]->record(wait_us);
  span(job.request_id, "queue", wait_us);
  stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed);
  shed_c.add();
  send_error(job.conn, job.id, ErrorCode::kDeadlineExceeded,
             "deadline expired after " + std::to_string(wait_us / 1000.0) + " ms in queue",
             job.request_id, kShedSendTimeoutMs);
  flight_mark(job.request_id, "end deadline_exceeded");

  RequestRecord rec;
  rec.request_id = job.request_id;
  rec.client_id = job.id;
  rec.client = job.client;
  rec.priority = priority_name(job.priority);
  rec.deck_bytes = job.netlist_text.size();
  rec.ok = false;
  rec.error_code = error_code_name(ErrorCode::kDeadlineExceeded);
  rec.phases.queue_us = wait_us;
  rec.phases.total_us = wait_us;
  rec.done_ts_ms = wall_ms_now();
  recent_.push(std::move(rec));
}

// Acceptor tick: pull expired jobs out of the queue immediately (so the
// worker never sees them) but hand the answering to the shedder thread —
// each shed write may block for its full kShedSendTimeoutMs cap against a
// stalled peer, and a deep backlog of expired jobs answered inline would
// stall accepts and stop handling for seconds.
void Server::shed_expired() {
  std::vector<Job> expired = queue_.take_expired(std::chrono::steady_clock::now());
  if (expired.empty()) return;
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    for (Job& job : expired) shed_pending_.push_back(std::move(job));
  }
  shed_cv_.notify_one();
}

void Server::shedder_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(shed_mu_);
      shed_cv_.wait(lock, [&] { return shed_stop_ || !shed_pending_.empty(); });
      if (shed_pending_.empty()) return;  // only reachable when stopping
      batch.swap(shed_pending_);
    }
    for (const Job& job : batch) answer_expired(job);
  }
}

// The paragraph-stats-v1 document: one consistent live view of the
// daemon. "server" is the exact per-server accounting (plain atomics),
// "metrics" is the process-wide registry snapshot (histogram quantiles
// included), "slo" the rolling windows, "recent" the request ring.
obs::JsonValue Server::stats_json() const {
  obs::JsonValue s = obs::JsonValue::object();
  s.set("schema", "paragraph-stats-v1");

  obs::JsonValue server = obs::JsonValue::object();
  server.set("connections", stats_.connections.load());
  server.set("requests", stats_.requests.load());
  server.set("responses", stats_.responses.load());
  server.set("rejected", stats_.rejected.load());
  server.set("errors", stats_.errors.load());
  server.set("batches", stats_.batches.load());
  server.set("coalesced", stats_.coalesced.load());
  server.set("reloads", stats_.reloads.load());
  server.set("max_batch_seen", stats_.max_batch_seen.load());
  server.set("inflight", stats_.inflight.load());
  server.set("io_timeouts", stats_.io_timeouts.load());
  server.set("deadline_shed", stats_.deadline_shed.load());
  server.set("conn_rejected", stats_.conn_rejected.load());
  server.set("queue_depth", queue_.depth());
  server.set("queue_capacity", queue_.capacity());
  server.set("max_batch", config_.max_batch);
  server.set("io_timeout_ms", static_cast<long long>(config_.io_timeout_ms));
  server.set("max_conns", config_.max_conns);
  server.set("client_queue_cap", config_.client_queue_cap);
  server.set("auth_required", !config_.auth_token.empty());
  const auto lanes = queue_.lane_depths();
  obs::JsonValue lanes_obj = obs::JsonValue::object();
  for (std::size_t p = 0; p < kNumPriorities; ++p)
    lanes_obj.set(priority_name(static_cast<Priority>(p)), lanes[p]);
  server.set("queue_lanes", std::move(lanes_obj));
  // Every wire error code, zeros included: dashboards and the output
  // collector can rely on the full closed set being present.
  obs::JsonValue codes = obs::JsonValue::object();
  for (std::size_t c = 0; c < kNumErrorCodes; ++c)
    codes.set(error_code_name(static_cast<ErrorCode>(c)), stats_.by_error_code[c].load());
  server.set("error_codes", std::move(codes));
  s.set("server", std::move(server));

  const auto bundle = registry_.current();
  obs::JsonValue model = obs::JsonValue::object();
  model.set("generation", static_cast<unsigned long long>(bundle->generation));
  model.set("degraded", bundle->degraded);
  obs::JsonValue dropped = obs::JsonValue::array();
  for (const auto& d : bundle->dropped) dropped.push_back(d.path);
  model.set("dropped_members", std::move(dropped));
  s.set("model", std::move(model));

  s.set("slo", slo_.to_json());
  s.set("metrics", obs::MetricsRegistry::instance().snapshot().to_json());

  obs::JsonValue process = obs::JsonValue::object();
  const obs::ProcMemory mem = obs::sample_process_memory();
  process.set("rss_kb", mem.vm_rss_kb);
  process.set("peak_rss_kb", mem.vm_hwm_kb);
  process.set("rss_ok", mem.ok);
  s.set("process", std::move(process));

  obs::JsonValue recent = obs::JsonValue::array();
  for (const RequestRecord& r : recent_.snapshot()) recent.push_back(r.to_json());
  s.set("recent", std::move(recent));
  return s;
}

obs::JsonValue Server::health_json() const {
  const auto bundle = registry_.current();
  const std::size_t depth = queue_.depth();
  const bool overloaded = depth >= queue_.capacity();
  obs::JsonValue h = obs::JsonValue::object();
  h.set("status", overloaded ? "overloaded" : bundle->degraded ? "degraded" : "ok");
  h.set("degraded", bundle->degraded);
  h.set("overloaded", overloaded);
  h.set("generation", static_cast<unsigned long long>(bundle->generation));
  h.set("queue_depth", depth);
  h.set("queue_capacity", queue_.capacity());
  h.set("slo_burn_rate_1m", slo_.window(60).burn_rate);
  return h;
}

// Terminal per-request accounting shared by every outcome the worker
// answers: SLO window, recent ring, slow log, flight-recorder end mark.
void Server::finish_request(const Job& job, RequestRecord record) {
  const double total_ms = record.phases.total_us / 1000.0;
  slo_.record(record.ok, total_ms);
  flight_mark(job.request_id,
              record.ok ? "end" : ("end " + record.error_code).c_str());
  if (config_.slow_ms > 0.0 && total_ms >= config_.slow_ms) {
    obs::log_warn("serve", "slow request",
                  {{"request_id", record.request_id},
                   {"deck", record.deck},
                   {"deck_bytes", record.deck_bytes},
                   {"priority", record.priority},
                   {"ok", record.ok},
                   {"total_ms", total_ms},
                   {"queue_ms", record.phases.queue_us / 1000.0},
                   {"parse_ms", record.phases.parse_us / 1000.0},
                   {"plan_ms", record.phases.plan_us / 1000.0},
                   {"predict_ms", record.phases.predict_us / 1000.0},
                   {"serialize_ms", record.phases.serialize_us / 1000.0}});
  }
  recent_.push(std::move(record));
}

// -------------------------------------------------------------------- worker

void Server::worker_loop() {
  for (;;) {
    std::vector<Job> batch = queue_.pop_batch(config_.max_batch);
    if (batch.empty()) return;  // queue closed and drained
    try {
      process_batch(std::move(batch));
    } catch (const std::exception& e) {
      // Defensive: process_batch answers per-group failures itself; this
      // catches bugs in the batch machinery so one bad batch cannot kill
      // the worker (and with it the whole daemon).
      obs::log_error("serve", "batch processing failed", {{"error", e.what()}});
    }
  }
}

void Server::process_batch(std::vector<Job> batch) {
  PARAGRAPH_TIMED_SCOPE("serve_batch");
  // Fault site serve.crash: a real abort mid-batch, after requests were
  // admitted (flight-recorder "begin" marks written) but before any is
  // answered — the crash-dump tests assert the dump names them in flight.
  if (util::fault::should_fail("serve.crash")) std::abort();
  const auto bundle = registry_.current();  // one generation per batch
  const auto popped_at = std::chrono::steady_clock::now();

  // Shed dead work first: a job whose deadline passed while it was queued
  // gets its typed deadline_exceeded answer before any parse/plan/predict
  // is spent on it — a backed-up queue drains, it does not compute
  // answers nobody will read.
  {
    std::vector<Job> live;
    live.reserve(batch.size());
    for (Job& job : batch) {
      if (job.deadline <= popped_at)
        answer_expired(job);
      else
        live.push_back(std::move(job));
    }
    batch = std::move(live);
  }
  if (batch.empty()) return;

  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = stats_.max_batch_seen.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !stats_.max_batch_seen.compare_exchange_weak(seen, batch.size(),
                                                      std::memory_order_relaxed)) {
  }
  // Always-on serve instruments (see start()); name lookups cached once.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Histogram& batch_size_h = reg.histogram("serve.batch_size");
  static obs::Gauge& depth_g = reg.gauge("serve.queue_depth");
  static obs::Gauge& inflight_g = reg.gauge("serve.inflight");
  static obs::Histogram& latency_h = reg.histogram("serve.latency_us");
  static obs::Histogram* const lane_wait_h[kNumPriorities] = {
      &reg.histogram("serve.queue_wait_us.low"),
      &reg.histogram("serve.queue_wait_us.normal"),
      &reg.histogram("serve.queue_wait_us.high"),
  };
  batch_size_h.record(static_cast<double>(batch.size()));
  depth_g.set(static_cast<double>(queue_.depth()));
  stats_.inflight.fetch_add(batch.size(), std::memory_order_relaxed);
  inflight_g.set(static_cast<double>(stats_.inflight.load(std::memory_order_relaxed)));

  // Queue-wait ends for every job the moment the worker picked it up;
  // the per-lane histograms are what the fairness follow-up will read.
  std::vector<double> queue_wait_us(batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    queue_wait_us[j] = us_between(batch[j].enqueued_at, popped_at);
    lane_wait_h[static_cast<std::size_t>(batch[j].priority)]->record(queue_wait_us[j]);
    span(batch[j].request_id, "queue", queue_wait_us[j]);
  }

  // Coalesce byte-identical netlists: one group is parsed, planned, and
  // predicted once, then answers every job that carried it.
  struct Group {
    const Job* job = nullptr;  // representative (first occurrence)
    std::vector<std::size_t> job_indices;
    dataset::Sample sample;
    bool ok = false;
    ErrorCode error_code = ErrorCode::kInternal;
    std::string error_message;
    obs::JsonValue predictions;
    // Shared phase costs: every coalesced job reports the group's work.
    double parse_us = 0.0;
    double plan_us = 0.0;
    double predict_us = 0.0;
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::size_t> by_hash;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const Job& job = batch[j];
    const auto it = by_hash.find(job.netlist_hash);
    if (it != by_hash.end() && groups[it->second].job->netlist_text == job.netlist_text) {
      groups[it->second].job_indices.push_back(j);
      stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    by_hash.emplace(job.netlist_hash, groups.size());
    groups.emplace_back();
    groups.back().job = &job;
    groups.back().job_indices.push_back(j);
  }

  // One prediction pass per distinct deck. Hierarchical decks run
  // serially so the worker-owned PlanCache (not thread-safe) memoizes
  // their templates across requests; the rest share one parallel pass,
  // each deck on its own plan (the PR 3 batched-inference layout).
  const auto predict_group = [&](Group& g, bool allow_cache) {
    const auto parse_start = std::chrono::steady_clock::now();
    try {
      circuit::Netlist nl = circuit::parse_spice_string(g.job->netlist_text);
      g.sample.name = nl.name();
      g.sample.graph = graph::build_graph(nl);
      g.sample.netlist = std::move(nl);
      g.parse_us = us_between(parse_start, std::chrono::steady_clock::now());
    } catch (const circuit::ParseError& e) {
      g.error_code = ErrorCode::kParseError;
      g.error_message = e.what();
      g.parse_us = us_between(parse_start, std::chrono::steady_clock::now());
      return;
    }
    span(g.job->request_id, "parse", g.parse_us);
    const auto predict_start = std::chrono::steady_clock::now();
    try {
      // Fault site serve.predict: a typed internal error after a clean
      // parse, for the telemetry/error-path tests.
      if (util::fault::should_fail("serve.predict"))
        throw util::IoError("injected fault at serve.predict");
      const bool hier = allow_cache && !g.sample.netlist.instances().empty();
      obs::JsonValue preds = obs::JsonValue::object();
      if (bundle->ensemble.has_value()) {
        const auto& ds = bundle->ensemble_dataset();
        std::vector<float> p;
        if (hier) {
          // Plan construction happens inside the cache-aware predict, so
          // it stays folded into predict_us on this path.
          p = bundle->ensemble->predict_with_cache(ds, g.sample, plan_cache_);
        } else {
          const auto plan_start = std::chrono::steady_clock::now();
          const gnn::GraphPlan plan =
              gnn::GraphPlan::build(g.sample.graph, bundle->ensemble->model(0).needs_homo());
          g.plan_us = us_between(plan_start, std::chrono::steady_clock::now());
          p = bundle->ensemble->predict_with_plan(ds, g.sample, plan);
        }
        preds.set(dataset::target_name(dataset::TargetKind::kCap),
                  named_predictions(g.sample, dataset::TargetKind::kCap, p));
      }
      for (std::size_t m = 0; m < bundle->models.size(); ++m) {
        const core::GnnPredictor& model = bundle->models[m];
        const auto& ds = bundle->model_dataset(m);
        const std::vector<float> p = hier ? model.predict_all(ds, g.sample, plan_cache_)
                                          : model.predict_all(ds, g.sample);
        preds.set(dataset::target_name(model.config().target),
                  named_predictions(g.sample, model.config().target, p));
      }
      g.predictions = std::move(preds);
      g.ok = true;
    } catch (const std::exception& e) {
      g.error_code = ErrorCode::kInternal;
      g.error_message = e.what();
    }
    g.predict_us =
        us_between(predict_start, std::chrono::steady_clock::now()) - g.plan_us;
    if (g.plan_us > 0.0) span(g.job->request_id, "plan", g.plan_us);
    span(g.job->request_id, "predict", g.predict_us);
  };

  std::vector<std::size_t> flat, hier;
  for (std::size_t gi = 0; gi < groups.size(); ++gi)
    (groups[gi].job->netlist_text.find(".subckt") == std::string::npos &&
     groups[gi].job->netlist_text.find(".SUBCKT") == std::string::npos
         ? flat
         : hier)
        .push_back(gi);
  runtime::parallel_for("serve_predict", flat.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) predict_group(groups[flat[i]], false);
  });
  for (const std::size_t gi : hier) predict_group(groups[gi], true);

  // Answer every job from its group's shared result, in batch (service)
  // order, with per-request latency accounted end to end and a
  // RequestRecord pushed into the telemetry surfaces for each.
  for (const Group& g : groups) {
    for (std::size_t k = 0; k < g.job_indices.size(); ++k) {
      const std::size_t j = g.job_indices[k];
      const Job& job = batch[j];
      const auto send_start = std::chrono::steady_clock::now();
      if (g.ok) {
        obs::JsonValue resp =
            make_ok_response(job.id, bundle->generation, bundle->degraded, job.request_id);
        resp.set("predictions", g.predictions);
        if (job.conn->send(resp)) stats_.responses.fetch_add(1, std::memory_order_relaxed);
      } else {
        send_error(job.conn, job.id, g.error_code, g.error_message, job.request_id);
      }
      const auto done = std::chrono::steady_clock::now();

      RequestRecord rec;
      rec.request_id = job.request_id;
      rec.client_id = job.id;
      rec.client = job.client;
      rec.priority = priority_name(job.priority);
      rec.deck = g.sample.name;
      rec.deck_bytes = job.netlist_text.size();
      rec.ok = g.ok;
      if (!g.ok) rec.error_code = error_code_name(g.error_code);
      rec.generation = bundle->generation;
      rec.coalesced = k > 0;
      rec.phases.queue_us = queue_wait_us[j];
      rec.phases.parse_us = g.parse_us;
      rec.phases.plan_us = g.plan_us;
      rec.phases.predict_us = g.predict_us;
      rec.phases.serialize_us = us_between(send_start, done);
      rec.phases.total_us = us_between(job.enqueued_at, done);
      rec.done_ts_ms = wall_ms_now();

      latency_h.record(rec.phases.total_us);
      span(job.request_id, "serialize", rec.phases.serialize_us);
      finish_request(job, std::move(rec));
      stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  inflight_g.set(static_cast<double>(stats_.inflight.load(std::memory_order_relaxed)));
}

}  // namespace paragraph::serve
