#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/errors.h"

namespace paragraph::serve {

namespace {

// Builds the wire request for one prediction from its options.
obs::JsonValue predict_request(const std::string& netlist_text, const RequestOptions& options) {
  obs::JsonValue req = obs::JsonValue::object();
  req.set("id", static_cast<long long>(options.id));
  if (!options.request_id.empty()) req.set("request_id", options.request_id);
  req.set("netlist", netlist_text);
  req.set("priority", priority_name(options.priority));
  if (options.deadline_ms > 0.0) req.set("deadline_ms", options.deadline_ms);
  if (!options.client.empty()) req.set("client", options.client);
  if (!options.auth_token.empty()) req.set("auth_token", options.auth_token);
  return req;
}

}  // namespace

ServeClient ServeClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path)
    throw util::IoError("client: bad socket path '" + socket_path + "'");
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw util::IoError(std::string("client: cannot create socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::IoError("client: cannot connect to '" + socket_path +
                        "': " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw util::IoError("client: bad IPv4 address '" + host + "'");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw util::IoError(std::string("client: cannot create socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::IoError("client: cannot connect to " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), io_timeout_ms_(other.io_timeout_ms_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    io_timeout_ms_ = other.io_timeout_ms_;
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::set_io_timeout_ms(int timeout_ms) {
  io_timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
  if (io_timeout_ms_ > 0 && fd_ >= 0) {
    // Nonblocking so the poll-based frame deadlines in protocol.cpp can
    // bound every read and write syscall.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

obs::JsonValue ServeClient::roundtrip(const obs::JsonValue& req) {
  write_frame(fd_, req.dump(), kMaxFrameBytes, io_timeout_ms_);
  std::string payload;
  if (!read_frame(fd_, &payload, kMaxFrameBytes, io_timeout_ms_))
    throw util::IoError("client: server closed the connection before answering");
  std::string err;
  auto resp = obs::JsonValue::parse(payload, &err);
  if (!resp) throw util::IoError("client: unparseable response frame: " + err);
  return std::move(*resp);
}

obs::JsonValue ServeClient::predict(const std::string& netlist_text, Priority priority,
                                    std::int64_t id, const std::string& request_id) {
  RequestOptions options;
  options.priority = priority;
  options.id = id;
  options.request_id = request_id;
  return predict(netlist_text, options);
}

obs::JsonValue ServeClient::predict(const std::string& netlist_text,
                                    const RequestOptions& options) {
  return roundtrip(predict_request(netlist_text, options));
}

obs::JsonValue ServeClient::admin(const std::string& command, std::int64_t id,
                                  const std::string& auth_token) {
  obs::JsonValue req = obs::JsonValue::object();
  req.set("id", static_cast<long long>(id));
  req.set("admin", command);
  if (!auth_token.empty()) req.set("auth_token", auth_token);
  return roundtrip(req);
}

// ------------------------------------------------------------ RetryingClient

RetryingClient RetryingClient::unix_target(std::string socket_path, RetryPolicy policy) {
  return RetryingClient(std::move(socket_path), std::string(), -1, policy);
}

RetryingClient RetryingClient::tcp_target(std::string host, int port, RetryPolicy policy) {
  return RetryingClient(std::string(), std::move(host), port, policy);
}

ServeClient RetryingClient::connect() {
  ServeClient c = socket_path_.empty() ? ServeClient::connect_tcp(host_, port_)
                                       : ServeClient::connect_unix(socket_path_);
  if (io_timeout_ms_ > 0) c.set_io_timeout_ms(io_timeout_ms_);
  return c;
}

obs::JsonValue RetryingClient::call(obs::JsonValue req) {
  // One logical request = one request_id across every attempt, so server
  // logs and the recent-requests ring can correlate retries.
  if (req.find("request_id") == nullptr)
    req.set("request_id", "cr" + std::to_string(++next_client_rid_));
  const int max_attempts = policy_.max_attempts > 0 ? policy_.max_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    last_attempts_ = attempt;
    const auto backoff = [&] {
      double cap = policy_.base_backoff_ms;
      for (int k = 1; k < attempt && cap < policy_.max_backoff_ms; ++k) cap *= 2.0;
      if (cap > policy_.max_backoff_ms) cap = policy_.max_backoff_ms;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(rng_.uniform(0.0, cap)));
    };
    try {
      if (!conn_.has_value()) conn_.emplace(connect());
    } catch (const util::IoError&) {
      // Connect failure: nothing reached the server — always idempotent.
      if (attempt >= max_attempts) throw;
      backoff();
      continue;
    }
    obs::JsonValue resp;
    try {
      resp = conn_->roundtrip(req);
    } catch (const util::IoError&) {
      // The connection dropped (or timed out) mid-round-trip: the server
      // may be executing the request, so retrying is NOT idempotent-safe.
      // Reconnect on the next call, but surface this failure.
      conn_.reset();
      throw;
    }
    const obs::JsonValue* ok = resp.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
      const obs::JsonValue* error = resp.find("error");
      const obs::JsonValue* code =
          error != nullptr && error->is_object() ? error->find("code") : nullptr;
      const std::string name = code != nullptr && code->is_string() ? code->as_string() : "";
      // A connection-level overloaded rejection is followed by the server
      // hanging up, so the socket is dead no matter what happens next:
      // drop it even when this response is returned to the caller (the
      // final attempt), or the next call() would fail mid-roundtrip on
      // the stale connection and surface a spurious non-retryable IoError.
      if (name == "overloaded") conn_.reset();
      // queue_full / overloaded are explicit "come back later" rejections
      // made before any work started — the only error responses that are
      // safe (and useful) to retry.
      if ((name == "queue_full" || name == "overloaded") && attempt < max_attempts) {
        backoff();
        continue;
      }
    }
    return resp;
  }
}

obs::JsonValue RetryingClient::predict(const std::string& netlist_text, RequestOptions options) {
  return call(predict_request(netlist_text, options));
}

obs::JsonValue RetryingClient::admin(const std::string& command, RequestOptions options) {
  obs::JsonValue req = obs::JsonValue::object();
  req.set("id", static_cast<long long>(options.id));
  if (!options.request_id.empty()) req.set("request_id", options.request_id);
  req.set("admin", command);
  if (!options.auth_token.empty()) req.set("auth_token", options.auth_token);
  return call(std::move(req));
}

}  // namespace paragraph::serve
