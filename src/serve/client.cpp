#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/errors.h"

namespace paragraph::serve {

ServeClient ServeClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path)
    throw util::IoError("client: bad socket path '" + socket_path + "'");
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw util::IoError(std::string("client: cannot create socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::IoError("client: cannot connect to '" + socket_path +
                        "': " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw util::IoError("client: bad IPv4 address '" + host + "'");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw util::IoError(std::string("client: cannot create socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::IoError("client: cannot connect to " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

obs::JsonValue ServeClient::roundtrip(const obs::JsonValue& req) {
  write_frame(fd_, req.dump());
  std::string payload;
  if (!read_frame(fd_, &payload))
    throw util::IoError("client: server closed the connection before answering");
  std::string err;
  auto resp = obs::JsonValue::parse(payload, &err);
  if (!resp) throw util::IoError("client: unparseable response frame: " + err);
  return std::move(*resp);
}

obs::JsonValue ServeClient::predict(const std::string& netlist_text, Priority priority,
                                    std::int64_t id, const std::string& request_id) {
  obs::JsonValue req = obs::JsonValue::object();
  req.set("id", static_cast<long long>(id));
  if (!request_id.empty()) req.set("request_id", request_id);
  req.set("netlist", netlist_text);
  req.set("priority", priority_name(priority));
  return roundtrip(req);
}

obs::JsonValue ServeClient::admin(const std::string& command, std::int64_t id) {
  obs::JsonValue req = obs::JsonValue::object();
  req.set("id", static_cast<long long>(id));
  req.set("admin", command);
  return roundtrip(req);
}

}  // namespace paragraph::serve
