// Live serving telemetry (DESIGN.md §13): per-request phase accounting,
// a bounded ring of recently answered requests, and rolling-window SLO
// (availability / latency burn-rate) tracking.
//
// Everything here is always-on: serve operations are milliseconds-scale,
// so unlike the nanosecond kernel counters these records are not gated on
// obs::enabled(). The `stats` admin verb reads these structures while the
// worker and reader threads keep writing, so every container is
// mutex-guarded and snapshots copy out under the lock.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace paragraph::serve {

// Process-wide request-id allocator ("r1", "r2", ...), used when a client
// does not propagate its own id. Thread-safe (one relaxed fetch_add).
std::string next_request_id();

// Wall-time breakdown of one request's life, microseconds. queue_us is
// admission to worker pickup; parse/plan/predict are shared by every job
// coalesced into the same group (each job reports the group's cost);
// serialize_us is response build + socket write; total_us is admission to
// answered. plan_us is only split out on the flat-deck path — hierarchical
// decks build plans inside the cache-aware predict, so it folds into
// predict_us there.
struct RequestPhases {
  double queue_us = 0.0;
  double parse_us = 0.0;
  double plan_us = 0.0;
  double predict_us = 0.0;
  double serialize_us = 0.0;
  double total_us = 0.0;

  obs::JsonValue to_json() const;
};

// One answered request, as retained by the recent-requests ring and
// printed by the slow-request log: identity, deck provenance, outcome,
// and the phase breakdown.
struct RequestRecord {
  std::string request_id;
  std::int64_t client_id = 0;  // the request's "id" field, echoed
  std::string client;          // fairness key ("conn<N>" or wire "client")
  std::string priority;
  std::string deck;        // parsed circuit name; "" when the parse failed
  std::size_t deck_bytes = 0;
  bool ok = false;
  std::string error_code;  // wire error code; "" when ok
  std::uint64_t generation = 0;
  bool coalesced = false;  // answered from another job's group result
  RequestPhases phases;
  std::int64_t done_ts_ms = 0;  // wall clock when answered

  obs::JsonValue to_json() const;
};

// Bounded ring of the most recently answered requests, oldest evicted
// first. Feeds the "recent" section of the stats document so an operator
// can see *which* requests a daemon just served, not only aggregates.
class RecentRequests {
 public:
  explicit RecentRequests(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  void push(RequestRecord record);
  // Retained records, oldest first.
  std::vector<RequestRecord> snapshot() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<RequestRecord> ring_;
};

// Rolling-window SLO accounting. A request is "good" when it succeeded
// AND answered within the latency threshold; availability over a window
// is good/total, and the burn rate is (1 - availability) / (1 - target):
// 1.0 means the error budget burns exactly as fast as the SLO allows,
// >1.0 means the budget is burning down (14.4 is the classic page-now
// threshold for a 1m window).
//
// Implementation: a ring of one-second buckets keyed by the absolute
// steady-clock second, sized for the longest window (5m) plus the
// in-progress second. A bucket is lazily reset when its slot is reused
// for a new second, so idle time costs nothing and old traffic ages out
// exactly.
class SloTracker {
 public:
  struct Config {
    double latency_ms = 50.0;  // --slo-p99-ms
    double target = 0.999;     // --slo-target, availability objective
  };

  struct Window {
    std::uint64_t total = 0;
    std::uint64_t good = 0;
    double availability = 1.0;  // 1.0 when the window saw no traffic
    double burn_rate = 0.0;
  };

  explicit SloTracker(Config config);

  // Accounts one finished request at the current steady-clock second.
  void record(bool ok, double latency_ms);
  // Aggregates the last `seconds` seconds (including the current one).
  Window window(std::size_t seconds) const;

  // {"latency_ms":..,"target":..,"windows":{"10s":..,"1m":..,"5m":..},
  //  "budget_remaining":..} — budget_remaining is 1 - burn_rate over the
  //  5m window, clamped at 0 (fraction of error budget left at the
  //  current burn).
  obs::JsonValue to_json() const;

  // Test hooks: the same accounting against an explicit absolute second,
  // so bucket expiry and ring wraparound are deterministic under test.
  void record_at(std::int64_t sec, bool ok, double latency_ms);
  Window window_at(std::int64_t now_sec, std::size_t seconds) const;

  const Config& config() const { return config_; }

 private:
  struct Bucket {
    std::int64_t sec = -1;  // absolute second this bucket holds, -1 empty
    std::uint64_t total = 0;
    std::uint64_t good = 0;
  };
  // 5-minute window plus the in-progress second.
  static constexpr std::size_t kBuckets = 301;

  Window window_locked(std::int64_t now_sec, std::size_t seconds) const;

  Config config_;
  mutable std::mutex mu_;
  std::array<Bucket, kBuckets> buckets_{};
};

}  // namespace paragraph::serve
