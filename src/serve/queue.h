// Bounded, priority-ordered request queue with admission control.
//
// Producers (connection threads) push; the single worker loop pops
// micro-batches. Capacity is a hard bound enforced at push time: a full
// queue rejects immediately (the caller answers the client with a typed
// `queue_full` error) instead of blocking the connection thread — under
// overload the server sheds load, it never stalls readers.
//
// Service order is strict priority (high > normal > low), FIFO within a
// level. pop_batch blocks until at least one job is available, then
// drains up to `max_batch` jobs in service order without waiting for
// more — micro-batching rides the natural backlog: an idle server
// answers single requests at minimum latency, a loaded one coalesces
// whatever queued up during the previous batch.
//
// Shutdown: close() stops admission (push returns kClosed) but pop_batch
// keeps returning queued jobs until the queue is empty — SIGTERM drains,
// it does not drop.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/protocol.h"

namespace paragraph::serve {

class Connection;  // serve/server.h

// One admitted prediction request, carrying everything the worker needs
// to answer it: the parsed request fields, the raw netlist text (the
// batch coalescer keys duplicate requests on its hash), and the
// connection to write the response to.
struct Job {
  std::int64_t id = 0;
  // Stable trace id ("r<N>" server-assigned, or client-propagated via the
  // request's "request_id" field), echoed in the response and carried by
  // every telemetry surface that mentions this request.
  std::string request_id;
  Priority priority = Priority::kNormal;
  std::string netlist_text;
  std::uint64_t netlist_hash = 0;
  std::shared_ptr<Connection> conn;
  std::chrono::steady_clock::time_point enqueued_at{};
};

class RequestQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit RequestQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  PushResult push(Job job);

  // Blocks until a job is available or the queue is closed and empty.
  // Returns jobs in service order, at most max_batch, never empty unless
  // the queue is closed and drained (the worker's exit condition).
  std::vector<Job> pop_batch(std::size_t max_batch);

  // Stops admission; pop_batch drains the backlog then returns empty.
  void close();

  // Test hook: while paused, pop_batch blocks even with jobs queued (so
  // a test can assemble a deterministic backlog before the worker runs);
  // admission is unaffected. close() overrides a pause so shutdown can
  // always drain.
  void set_paused(bool paused);

  std::size_t depth() const;
  // Queued jobs per priority lane, indexed by the Priority value (one
  // consistent reading — the stats document reports lanes that sum to
  // the depth taken in the same call).
  std::array<std::size_t, kNumPriorities> lane_depths() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // One FIFO lane per priority, indexed by the Priority value.
  std::array<std::deque<Job>, kNumPriorities> lanes_;
  std::size_t size_ = 0;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace paragraph::serve
