// Bounded, priority-ordered request queue with admission control and
// per-client fairness.
//
// Producers (connection threads) push; the single worker loop pops
// micro-batches. Capacity is a hard bound enforced at push time: a full
// queue rejects immediately (the caller answers the client with a typed
// `queue_full` error) instead of blocking the connection thread — under
// overload the server sheds load, it never stalls readers. A per-client
// cap (a slice of the total capacity) bounds how much of the queue one
// client key can own, so a flooder hits kClientFull while the queue still
// has room for everyone else.
//
// Service order is strict priority (high > normal > low). Within a lane,
// dequeue is deficit-round-robin across client keys with a unit quantum
// (every job costs one batch slot, so DRR degenerates to plain
// round-robin): each pop takes the front job of the next client in the
// rotation. FIFO order within one (lane, client) pair is preserved, and a
// lane with a single client is byte-for-byte the old FIFO — which is why
// the micro-batching bit-identity guarantees survive fairness.
//
// pop_batch blocks until at least one job is available, then drains up to
// `max_batch` jobs in service order without waiting for more —
// micro-batching rides the natural backlog: an idle server answers single
// requests at minimum latency, a loaded one coalesces whatever queued up
// during the previous batch.
//
// Deadlines: a job may carry an absolute shed deadline. take_expired()
// removes and returns every job whose deadline has passed (the acceptor
// tick answers them `deadline_exceeded`); the worker also sheds expired
// jobs it finds at the front of a batch before doing any work for them.
//
// Shutdown: close() stops admission (push returns kClosed) but pop_batch
// keeps returning queued jobs until the queue is empty — SIGTERM drains,
// it does not drop.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace paragraph::serve {

class Connection;  // serve/server.h

// Sentinel for "no deadline".
constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

// One admitted prediction request, carrying everything the worker needs
// to answer it: the parsed request fields, the raw netlist text (the
// batch coalescer keys duplicate requests on its hash), and the
// connection to write the response to.
struct Job {
  std::int64_t id = 0;
  // Stable trace id ("r<N>" server-assigned, or client-propagated via the
  // request's "request_id" field), echoed in the response and carried by
  // every telemetry surface that mentions this request.
  std::string request_id;
  // Fairness key: the request's "client" field, or the connection
  // identity ("conn<N>") when absent.
  std::string client;
  Priority priority = Priority::kNormal;
  std::string netlist_text;
  std::uint64_t netlist_hash = 0;
  std::shared_ptr<Connection> conn;
  std::chrono::steady_clock::time_point enqueued_at{};
  // Absolute shed deadline derived from the request's deadline_ms;
  // kNoDeadline when the request did not set one.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
};

class RequestQueue {
 public:
  enum class PushResult { kOk, kFull, kClientFull, kClosed };

  // client_cap bounds one client key's total queued jobs across all
  // lanes; 0 means no per-client cap.
  explicit RequestQueue(std::size_t capacity, std::size_t client_cap = 0)
      : capacity_(capacity ? capacity : 1), client_cap_(client_cap) {}

  PushResult push(Job job);

  // Blocks until a job is available or the queue is closed and empty.
  // Returns jobs in service order, at most max_batch, never empty unless
  // the queue is closed and drained (the worker's exit condition).
  std::vector<Job> pop_batch(std::size_t max_batch);

  // Removes and returns every queued job whose deadline is <= now, in
  // service order. The caller answers them deadline_exceeded.
  std::vector<Job> take_expired(std::chrono::steady_clock::time_point now);

  // Stops admission; pop_batch drains the backlog then returns empty.
  void close();

  // Test hook: while paused, pop_batch blocks even with jobs queued (so
  // a test can assemble a deterministic backlog before the worker runs);
  // admission is unaffected. close() overrides a pause so shutdown can
  // always drain.
  void set_paused(bool paused);

  std::size_t depth() const;
  // Queued jobs per priority lane, indexed by the Priority value (one
  // consistent reading — the stats document reports lanes that sum to
  // the depth taken in the same call).
  std::array<std::size_t, kNumPriorities> lane_depths() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t client_cap() const { return client_cap_; }
  // Queued jobs for one client key across all lanes (stats/tests).
  std::size_t client_depth(const std::string& client) const;

 private:
  // One priority lane: per-client FIFO sub-queues plus the round-robin
  // rotation of clients that currently have queued jobs. The map only
  // holds clients with jobs in *this* lane, so its size is bounded by the
  // lane depth — a hostile stream of fresh client keys cannot grow state
  // past the queue capacity.
  struct Lane {
    std::unordered_map<std::string, std::deque<Job>> by_client;
    std::deque<std::string> rr;
    std::size_t size = 0;
  };

  // Pops the next job in DRR order from a non-empty lane. Caller holds mu_.
  Job pop_one(Lane& lane);

  const std::size_t capacity_;
  const std::size_t client_cap_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<Lane, kNumPriorities> lanes_;
  // Queued jobs per client key across all lanes (admission-cap check);
  // entries are erased at zero so the map stays depth-bounded too.
  std::unordered_map<std::string, std::size_t> client_counts_;
  std::size_t size_ = 0;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace paragraph::serve
