#include "serve/queue.h"

namespace paragraph::serve {

RequestQueue::PushResult RequestQueue::push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (size_ >= capacity_) return PushResult::kFull;
    lanes_[static_cast<std::size_t>(job.priority)].push_back(std::move(job));
    ++size_;
  }
  cv_.notify_one();
  return PushResult::kOk;
}

std::vector<Job> RequestQueue::pop_batch(std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return (size_ != 0 && !paused_) || closed_; });
  std::vector<Job> batch;
  batch.reserve(std::min(max_batch, size_));
  // Highest priority lane first, FIFO within a lane.
  for (std::size_t p = kNumPriorities; p-- > 0 && batch.size() < max_batch;) {
    auto& lane = lanes_[p];
    while (!lane.empty() && batch.size() < max_batch) {
      batch.push_back(std::move(lane.front()));
      lane.pop_front();
      --size_;
    }
  }
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::array<std::size_t, kNumPriorities> RequestQueue::lane_depths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<std::size_t, kNumPriorities> depths{};
  for (std::size_t p = 0; p < kNumPriorities; ++p) depths[p] = lanes_[p].size();
  return depths;
}

}  // namespace paragraph::serve
