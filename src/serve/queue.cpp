#include "serve/queue.h"

#include <algorithm>

namespace paragraph::serve {

RequestQueue::PushResult RequestQueue::push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (size_ >= capacity_) return PushResult::kFull;
    if (client_cap_ != 0) {
      const auto it = client_counts_.find(job.client);
      if (it != client_counts_.end() && it->second >= client_cap_)
        return PushResult::kClientFull;
    }
    Lane& lane = lanes_[static_cast<std::size_t>(job.priority)];
    auto& sub = lane.by_client[job.client];
    if (sub.empty()) lane.rr.push_back(job.client);
    ++client_counts_[job.client];
    sub.push_back(std::move(job));
    ++lane.size;
    ++size_;
  }
  cv_.notify_one();
  return PushResult::kOk;
}

Job RequestQueue::pop_one(Lane& lane) {
  // Unit-quantum DRR: serve the front client one job, then rotate it to
  // the back of the rotation (or drop it if that emptied its sub-queue).
  const std::string client = std::move(lane.rr.front());
  lane.rr.pop_front();
  const auto it = lane.by_client.find(client);
  Job job = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty())
    lane.by_client.erase(it);
  else
    lane.rr.push_back(client);
  const auto cit = client_counts_.find(job.client);
  if (cit != client_counts_.end() && --cit->second == 0) client_counts_.erase(cit);
  --lane.size;
  --size_;
  return job;
}

std::vector<Job> RequestQueue::pop_batch(std::size_t max_batch) {
  if (max_batch == 0) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return (size_ != 0 && !paused_) || closed_; });
  std::vector<Job> batch;
  batch.reserve(std::min(max_batch, size_));
  // Highest priority lane first, DRR across clients within a lane.
  for (std::size_t p = kNumPriorities; p-- > 0 && batch.size() < max_batch;) {
    Lane& lane = lanes_[p];
    while (lane.size != 0 && batch.size() < max_batch) batch.push_back(pop_one(lane));
  }
  return batch;
}

std::vector<Job> RequestQueue::take_expired(std::chrono::steady_clock::time_point now) {
  std::vector<Job> expired;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t p = kNumPriorities; p-- > 0;) {
    Lane& lane = lanes_[p];
    if (lane.size == 0) continue;
    // Walk the rotation in order so expired jobs come out in service
    // order; rebuild it without clients whose sub-queue empties.
    std::deque<std::string> keep;
    for (auto& client : lane.rr) {
      auto it = lane.by_client.find(client);
      auto& sub = it->second;
      for (auto jit = sub.begin(); jit != sub.end();) {
        if (jit->deadline <= now) {
          expired.push_back(std::move(*jit));
          jit = sub.erase(jit);
          --lane.size;
          --size_;
          const auto cit = client_counts_.find(client);
          if (cit != client_counts_.end() && --cit->second == 0) client_counts_.erase(cit);
        } else {
          ++jit;
        }
      }
      if (sub.empty())
        lane.by_client.erase(it);
      else
        keep.push_back(std::move(client));
    }
    lane.rr = std::move(keep);
  }
  return expired;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::array<std::size_t, kNumPriorities> RequestQueue::lane_depths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<std::size_t, kNumPriorities> depths{};
  for (std::size_t p = 0; p < kNumPriorities; ++p) depths[p] = lanes_[p].size;
  return depths;
}

std::size_t RequestQueue::client_depth(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = client_counts_.find(client);
  return it == client_counts_.end() ? 0 : it->second;
}

}  // namespace paragraph::serve
