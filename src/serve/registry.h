// Resident model state for the serve daemon, with atomic hot reload.
//
// A ModelBundle is one immutable generation of everything a prediction
// needs: the CAP ensemble and/or single-target models loaded from disk,
// plus (per distinct training seed/scale) the feature normaliser those
// models were fitted against. Workers snapshot the current bundle
// (shared_ptr copy) once per micro-batch, so a reload never mutates
// state an in-flight batch is reading — the old generation stays alive
// until its last batch finishes, then the shared_ptr frees it.
//
// reload() rebuilds a bundle from the same configured paths through the
// crash-safe loaders (util checksummed readers). Failure semantics are
// the daemon's availability story:
//   * a corrupt/missing ensemble *member* degrades the ensemble
//     (CapEnsemble::load skips it and names the file) — the reload still
//     succeeds and the new generation answers from the survivors;
//   * a corrupt manifest or model file fails the reload — the previous
//     generation keeps serving and the failure is logged, never fatal.
//
// Normaliser statistics depend only on (seed, scale) of the training
// dataset, so they are cached across reloads: swapping model weights does
// not pay the dataset rebuild again unless the training config changed.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "core/predictor.h"
#include "dataset/dataset.h"

namespace paragraph::serve {

struct RegistryConfig {
  std::string ensemble_path;              // empty = no ensemble
  std::vector<std::string> model_paths;   // additional single models
};

struct ModelBundle {
  std::uint64_t generation = 0;
  std::optional<core::CapEnsemble> ensemble;
  std::vector<core::GnnPredictor> models;
  // Skinny datasets (normaliser only; no samples): dataset(0) serves the
  // ensemble, dataset(1 + i) serves models[i]. Entries with identical
  // (seed, scale) share one underlying normaliser rebuild.
  std::vector<dataset::SuiteDataset> datasets;
  bool degraded = false;
  std::vector<core::CapEnsemble::DroppedMember> dropped;

  const dataset::SuiteDataset& ensemble_dataset() const { return datasets.front(); }
  const dataset::SuiteDataset& model_dataset(std::size_t i) const { return datasets.at(1 + i); }
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config);

  // First load; throws (IoError/CorruptArtifactError) when nothing
  // loadable is configured — the daemon refuses to start empty.
  void load_initial();

  // Swaps in a freshly loaded generation. Returns false — previous
  // generation untouched — when any configured artifact fails to load.
  bool reload();

  std::shared_ptr<const ModelBundle> current() const;

 private:
  std::shared_ptr<const ModelBundle> build_bundle(std::uint64_t generation);
  // Normaliser for (seed, scale), built once and reused across
  // generations. Caller holds reload_mu_.
  const dataset::FeatureNormalizer& normalizer_for(std::uint64_t seed, double scale);

  const RegistryConfig config_;
  mutable std::mutex mu_;  // guards current_ swap/read
  // Serialises whole reloads: SIGHUP (acceptor thread) and the "reload"
  // admin command (any reader thread) may race, and build_bundle touches
  // next_generation_ and the normaliser cache. Never held with mu_.
  std::mutex reload_mu_;
  std::shared_ptr<const ModelBundle> current_;
  std::uint64_t next_generation_ = 1;  // guarded by reload_mu_
  std::map<std::pair<std::uint64_t, double>, dataset::FeatureNormalizer> normalizer_cache_;
};

}  // namespace paragraph::serve
