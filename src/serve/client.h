// Blocking client for the `paragraph serve` protocol: one connection,
// synchronous request/response round-trips. Backs the `paragraph client`
// CLI subcommand, the serve tests, and the serving benchmark's load
// generators (one ServeClient per generator thread; a single instance is
// not thread-safe).
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace paragraph::serve {

class ServeClient {
 public:
  // Both throw util::IoError when the server cannot be reached.
  static ServeClient connect_unix(const std::string& socket_path);
  static ServeClient connect_tcp(const std::string& host, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  // Sends `req` and blocks for the next response frame. Throws
  // util::IoError when the connection drops before an answer arrives.
  obs::JsonValue roundtrip(const obs::JsonValue& req);

  // Convenience wrappers over roundtrip(). A non-empty request_id is
  // propagated for server-side tracing (echoed back in the response);
  // empty lets the server assign one.
  obs::JsonValue predict(const std::string& netlist_text, Priority priority = Priority::kNormal,
                         std::int64_t id = 0, const std::string& request_id = std::string());
  obs::JsonValue admin(const std::string& command, std::int64_t id = 0);

  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace paragraph::serve
