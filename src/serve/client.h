// Blocking client for the `paragraph serve` protocol: one connection,
// synchronous request/response round-trips. Backs the `paragraph client`
// CLI subcommand, the serve tests, and the serving benchmark's load
// generators (one ServeClient per generator thread; a single instance is
// not thread-safe).
//
// RetryingClient layers jittered-exponential-backoff retries on top, for
// the hostile-conditions path (DESIGN.md §14): only idempotent outcomes
// are retried — connect failure, `queue_full`, `overloaded` — never a
// connection that dropped mid-round-trip (the server may already be
// computing the answer) and never `shutting_down`. Every attempt carries
// the same request_id so server-side telemetry can correlate them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.h"
#include "util/rng.h"

namespace paragraph::serve {

// Per-request knobs for the convenience wrappers. Zero values mean "omit
// the field from the wire request".
struct RequestOptions {
  Priority priority = Priority::kNormal;
  std::int64_t id = 0;
  std::string request_id;   // propagated for tracing; empty: server assigns
  double deadline_ms = 0.0;  // >0: server sheds if not started in time
  std::string client;       // fairness key; empty: connection identity
  std::string auth_token;   // required per request on authenticated TCP
};

class ServeClient {
 public:
  // Both throw util::IoError when the server cannot be reached.
  static ServeClient connect_unix(const std::string& socket_path);
  static ServeClient connect_tcp(const std::string& host, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  // Per-frame I/O deadline (sets the fd nonblocking): a stalled *frame*
  // — server accepting bytes slowly, or trickling a response — throws
  // util::TimeoutError. The wait for a response to *start* is unbounded
  // (a loaded queue legitimately takes a while); bound that with
  // RequestOptions::deadline_ms, which makes the server itself answer
  // `deadline_exceeded` in time. 0 disables.
  void set_io_timeout_ms(int timeout_ms);
  int io_timeout_ms() const { return io_timeout_ms_; }

  // Sends `req` and blocks for the next response frame. Throws
  // util::IoError when the connection drops before an answer arrives.
  obs::JsonValue roundtrip(const obs::JsonValue& req);

  // Convenience wrappers over roundtrip(). A non-empty request_id is
  // propagated for server-side tracing (echoed back in the response);
  // empty lets the server assign one.
  obs::JsonValue predict(const std::string& netlist_text, Priority priority = Priority::kNormal,
                         std::int64_t id = 0, const std::string& request_id = std::string());
  obs::JsonValue predict(const std::string& netlist_text, const RequestOptions& options);
  obs::JsonValue admin(const std::string& command, std::int64_t id = 0,
                       const std::string& auth_token = std::string());

  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
  int io_timeout_ms_ = 0;
};

// Backoff schedule: full-jitter exponential. Attempt k (1-based) sleeps
// uniform(0, min(max_backoff_ms, base_backoff_ms * 2^(k-1))) before
// retrying — the jitter is what keeps a thundering herd of rejected
// clients from re-arriving in lockstep.
struct RetryPolicy {
  int max_attempts = 4;         // total tries, including the first
  double base_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;  // deterministic tests
};

// A reconnecting, retrying wrapper around ServeClient. Not thread-safe
// (same contract as ServeClient: one per thread).
class RetryingClient {
 public:
  static RetryingClient unix_target(std::string socket_path, RetryPolicy policy = {});
  static RetryingClient tcp_target(std::string host, int port, RetryPolicy policy = {});

  // Applied to every (re)connection; see ServeClient::set_io_timeout_ms.
  void set_io_timeout_ms(int timeout_ms) { io_timeout_ms_ = timeout_ms; }

  // Like the ServeClient wrappers, plus retries. When options.request_id
  // is empty a client-side id ("cr<N>") is assigned once so every retry
  // attempt of one logical request carries the same id. Throws
  // util::IoError when the retry budget is exhausted or on a
  // non-retryable transport failure; error *responses* (any code) are
  // returned, not thrown.
  obs::JsonValue predict(const std::string& netlist_text, RequestOptions options = {});
  obs::JsonValue admin(const std::string& command, RequestOptions options = {});

  // Attempts consumed by the most recent predict/admin call (tests).
  int attempts_made() const { return last_attempts_; }

 private:
  RetryingClient(std::string socket_path, std::string host, int port, RetryPolicy policy)
      : socket_path_(std::move(socket_path)), host_(std::move(host)), port_(port),
        policy_(policy), rng_(policy.jitter_seed) {}
  ServeClient connect();
  obs::JsonValue call(obs::JsonValue req);

  std::string socket_path_;  // empty: TCP target
  std::string host_;
  int port_ = -1;
  RetryPolicy policy_;
  util::Rng rng_;
  int io_timeout_ms_ = 0;
  std::optional<ServeClient> conn_;
  std::uint64_t next_client_rid_ = 0;
  int last_attempts_ = 0;
};

}  // namespace paragraph::serve
