#include "serve/protocol.h"

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/faultinject.h"

namespace paragraph::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Per-frame deadline. Unarmed (timeout_ms == 0) means wait forever —
// blocking fds never poll, nonblocking ones poll with an infinite
// timeout on EAGAIN.
struct Deadline {
  bool armed = false;
  Clock::time_point at{};
  explicit Deadline(int timeout_ms) {
    if (timeout_ms > 0) {
      armed = true;
      at = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
  }
  int remaining_ms() const {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(at - Clock::now()).count();
    if (left <= 0) return 0;
    return left > INT_MAX ? INT_MAX : static_cast<int>(left);
  }
};

// Blocks until fd is ready for `events` (or has an error/hup to report —
// the following syscall surfaces those). Throws TimeoutError when the
// deadline expires first.
void wait_fd(int fd, short events, const Deadline& dl, const char* what) {
  for (;;) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int timeout = dl.armed ? dl.remaining_ms() : -1;
    const int r = ::poll(&p, 1, timeout);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("serve: poll failed: ") + std::strerror(errno));
    }
    if (r == 0)
      throw util::TimeoutError(std::string("serve: ") + what + " timed out mid-frame");
    return;
  }
}

// Full-buffer read: retries EINTR, short reads, and EAGAIN (nonblocking
// fds park in poll). Returns bytes read before EOF (== n unless the peer
// closed mid-buffer). An armed deadline polls before each read so stalls
// on blocking fds time out too.
std::size_t read_all(int fd, void* buf, std::size_t n, const Deadline& dl) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    if (util::fault::should_fail("sock.read"))
      throw util::IoError("serve: socket read failed: injected connection reset");
    if (dl.armed) wait_fd(fd, POLLIN, dl, "read");
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_fd(fd, POLLIN, dl, "read");
        continue;
      }
      throw util::IoError(std::string("serve: socket read failed: ") + std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_all(int fd, const void* buf, std::size_t n, const Deadline& dl) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    if (dl.armed) wait_fd(fd, POLLOUT, dl, "write");
    std::size_t chunk = n - put;
    // Truncated, never corrupted: the remaining bytes go out on the next
    // loop iteration, so the frame on the wire stays intact.
    if (chunk > 1 && util::fault::should_fail("sock.write.partial")) chunk /= 2;
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE for the
    // caller to handle, not as a SIGPIPE that kills the daemon.
    const ssize_t r = ::send(fd, p + put, chunk, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_fd(fd, POLLOUT, dl, "write");
        continue;
      }
      throw util::IoError(std::string("serve: socket write failed: ") + std::strerror(errno));
    }
    put += static_cast<std::size_t>(r);
  }
}

}  // namespace

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnauthorized: return "unauthorized";
  }
  return "internal";
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "normal";
}

bool parse_priority(const std::string& name, Priority* out) {
  if (name == "low") *out = Priority::kLow;
  else if (name == "normal") *out = Priority::kNormal;
  else if (name == "high") *out = Priority::kHigh;
  else return false;
  return true;
}

bool read_frame(int fd, std::string* payload, std::size_t max_bytes, int timeout_ms) {
  unsigned char hdr[4];
  // The first header byte waits with no deadline: a persistent connection
  // idling between frames is healthy. Once a frame has *started*, the
  // rest of it must arrive within timeout_ms — that is the slowloris
  // defense (a client sending 3 bytes of length prefix and stalling used
  // to pin a reader forever).
  const std::size_t first = read_all(fd, hdr, 1, Deadline{0});
  if (first == 0) return false;  // clean EOF between frames
  const Deadline dl{timeout_ms};
  if (read_all(fd, hdr + 1, sizeof hdr - 1, dl) < sizeof hdr - 1)
    throw FrameError("serve: connection closed mid-frame header");
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            static_cast<std::uint32_t>(hdr[1]) << 8 |
                            static_cast<std::uint32_t>(hdr[2]) << 16 |
                            static_cast<std::uint32_t>(hdr[3]) << 24;
  if (len > max_bytes)
    throw FrameError("serve: frame length " + std::to_string(len) + " exceeds limit " +
                     std::to_string(max_bytes));
  payload->resize(len);
  if (len != 0 && read_all(fd, payload->data(), len, dl) < len)
    throw FrameError("serve: connection closed mid-frame payload");
  return true;
}

void write_frame(int fd, const std::string& payload, std::size_t max_bytes, int timeout_ms) {
  if (payload.size() > max_bytes)
    throw util::IoError("serve: refusing to send frame of " + std::to_string(payload.size()) +
                        " bytes (limit " + std::to_string(max_bytes) + ")");
  if (util::fault::should_fail("sock.reset"))
    throw util::IoError("serve: socket write failed: injected connection reset");
  const Deadline dl{timeout_ms};
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {
      static_cast<unsigned char>(len & 0xff), static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_all(fd, hdr, sizeof hdr, dl);
  write_all(fd, payload.data(), payload.size(), dl);
}

bool token_equal_consttime(const std::string& a, const std::string& b) {
  const std::size_t n = a.size() > b.size() ? a.size() : b.size();
  // Fold the length difference into the accumulator and scan to the max
  // length so runtime depends only on lengths, never on content.
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    diff = static_cast<unsigned char>(diff | (ca ^ cb));
  }
  return diff == 0;
}

obs::JsonValue make_error_response(std::int64_t id, ErrorCode code, const std::string& message,
                                   const std::string& request_id) {
  obs::JsonValue err = obs::JsonValue::object();
  err.set("code", error_code_name(code));
  err.set("message", message);
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("id", static_cast<long long>(id));
  if (!request_id.empty()) resp.set("request_id", request_id);
  resp.set("ok", false);
  resp.set("error", std::move(err));
  return resp;
}

obs::JsonValue make_ok_response(std::int64_t id, std::uint64_t model_generation, bool degraded,
                                const std::string& request_id) {
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("id", static_cast<long long>(id));
  if (!request_id.empty()) resp.set("request_id", request_id);
  resp.set("ok", true);
  resp.set("model_generation", static_cast<unsigned long long>(model_generation));
  resp.set("degraded", degraded);
  return resp;
}

}  // namespace paragraph::serve
