#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/errors.h"

namespace paragraph::serve {

namespace {

// Full-buffer read: retries EINTR and short reads. Returns bytes read
// before EOF (== n unless the peer closed mid-buffer).
std::size_t read_all(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("serve: socket read failed: ") + std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE for the
    // caller to handle, not as a SIGPIPE that kills the daemon.
    const ssize_t r = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("serve: socket write failed: ") + std::strerror(errno));
    }
    put += static_cast<std::size_t>(r);
  }
}

}  // namespace

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "normal";
}

bool parse_priority(const std::string& name, Priority* out) {
  if (name == "low") *out = Priority::kLow;
  else if (name == "normal") *out = Priority::kNormal;
  else if (name == "high") *out = Priority::kHigh;
  else return false;
  return true;
}

bool read_frame(int fd, std::string* payload, std::size_t max_bytes) {
  unsigned char hdr[4];
  const std::size_t got = read_all(fd, hdr, sizeof hdr);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof hdr) throw util::IoError("serve: connection closed mid-frame header");
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            static_cast<std::uint32_t>(hdr[1]) << 8 |
                            static_cast<std::uint32_t>(hdr[2]) << 16 |
                            static_cast<std::uint32_t>(hdr[3]) << 24;
  if (len > max_bytes)
    throw util::IoError("serve: frame length " + std::to_string(len) + " exceeds limit " +
                        std::to_string(max_bytes));
  payload->resize(len);
  if (len != 0 && read_all(fd, payload->data(), len) < len)
    throw util::IoError("serve: connection closed mid-frame payload");
  return true;
}

void write_frame(int fd, const std::string& payload, std::size_t max_bytes) {
  if (payload.size() > max_bytes)
    throw util::IoError("serve: refusing to send frame of " + std::to_string(payload.size()) +
                        " bytes (limit " + std::to_string(max_bytes) + ")");
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {
      static_cast<unsigned char>(len & 0xff), static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_all(fd, hdr, sizeof hdr);
  write_all(fd, payload.data(), payload.size());
}

obs::JsonValue make_error_response(std::int64_t id, ErrorCode code, const std::string& message,
                                   const std::string& request_id) {
  obs::JsonValue err = obs::JsonValue::object();
  err.set("code", error_code_name(code));
  err.set("message", message);
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("id", static_cast<long long>(id));
  if (!request_id.empty()) resp.set("request_id", request_id);
  resp.set("ok", false);
  resp.set("error", std::move(err));
  return resp;
}

obs::JsonValue make_ok_response(std::int64_t id, std::uint64_t model_generation, bool degraded,
                                const std::string& request_id) {
  obs::JsonValue resp = obs::JsonValue::object();
  resp.set("id", static_cast<long long>(id));
  if (!request_id.empty()) resp.set("request_id", request_id);
  resp.set("ok", true);
  resp.set("model_generation", static_cast<unsigned long long>(model_generation));
  resp.set("degraded", degraded);
  return resp;
}

}  // namespace paragraph::serve
