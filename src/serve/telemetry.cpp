#include "serve/telemetry.h"

#include <algorithm>
#include <atomic>

#include "obs/trace.h"

namespace paragraph::serve {

std::string next_request_id() {
  static std::atomic<std::uint64_t> next{0};
  return "r" + std::to_string(next.fetch_add(1, std::memory_order_relaxed) + 1);
}

obs::JsonValue RequestPhases::to_json() const {
  obs::JsonValue o = obs::JsonValue::object();
  o.set("queue_us", queue_us);
  o.set("parse_us", parse_us);
  o.set("plan_us", plan_us);
  o.set("predict_us", predict_us);
  o.set("serialize_us", serialize_us);
  o.set("total_us", total_us);
  return o;
}

obs::JsonValue RequestRecord::to_json() const {
  obs::JsonValue o = obs::JsonValue::object();
  o.set("request_id", request_id);
  o.set("client_id", static_cast<long long>(client_id));
  if (!client.empty()) o.set("client", client);
  o.set("priority", priority);
  o.set("deck", deck);
  o.set("deck_bytes", deck_bytes);
  o.set("ok", ok);
  if (!error_code.empty()) o.set("error_code", error_code);
  o.set("generation", static_cast<unsigned long long>(generation));
  o.set("coalesced", coalesced);
  o.set("phases", phases.to_json());
  o.set("done_ts_ms", static_cast<long long>(done_ts_ms));
  return o;
}

void RecentRequests::push(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(record));
}

std::vector<RequestRecord> RecentRequests::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

// ---------------------------------------------------------------- SloTracker

SloTracker::SloTracker(Config config) : config_(config) {
  if (config_.latency_ms <= 0.0) config_.latency_ms = 50.0;
  // target == 1.0 would divide the burn rate by zero; 0.999 is the
  // sensible "three nines" default either way.
  if (config_.target <= 0.0 || config_.target >= 1.0) config_.target = 0.999;
}

void SloTracker::record(bool ok, double latency_ms) {
  record_at(obs::now_us() / 1'000'000, ok, latency_ms);
}

void SloTracker::record_at(std::int64_t sec, bool ok, double latency_ms) {
  const bool good = ok && latency_ms <= config_.latency_ms;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[static_cast<std::size_t>(sec) % kBuckets];
  if (b.sec != sec) b = Bucket{sec, 0, 0};
  ++b.total;
  if (good) ++b.good;
}

SloTracker::Window SloTracker::window(std::size_t seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_locked(obs::now_us() / 1'000'000, seconds);
}

SloTracker::Window SloTracker::window_at(std::int64_t now_sec, std::size_t seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_locked(now_sec, seconds);
}

SloTracker::Window SloTracker::window_locked(std::int64_t now_sec, std::size_t seconds) const {
  seconds = std::min(seconds, kBuckets - 1);
  Window w;
  for (const Bucket& b : buckets_) {
    if (b.sec < 0 || b.sec > now_sec) continue;  // empty or future (test hooks)
    if (now_sec - b.sec >= static_cast<std::int64_t>(seconds)) continue;
    w.total += b.total;
    w.good += b.good;
  }
  if (w.total != 0) w.availability = static_cast<double>(w.good) / static_cast<double>(w.total);
  w.burn_rate = (1.0 - w.availability) / (1.0 - config_.target);
  return w;
}

obs::JsonValue SloTracker::to_json() const {
  const std::int64_t now_sec = obs::now_us() / 1'000'000;
  Window w10, w60, w300;
  {
    std::lock_guard<std::mutex> lock(mu_);
    w10 = window_locked(now_sec, 10);
    w60 = window_locked(now_sec, 60);
    w300 = window_locked(now_sec, 300);
  }
  const auto window_json = [](const Window& w) {
    obs::JsonValue o = obs::JsonValue::object();
    o.set("total", w.total);
    o.set("good", w.good);
    o.set("availability", w.availability);
    o.set("burn_rate", w.burn_rate);
    return o;
  };
  obs::JsonValue windows = obs::JsonValue::object();
  windows.set("10s", window_json(w10));
  windows.set("1m", window_json(w60));
  windows.set("5m", window_json(w300));

  obs::JsonValue o = obs::JsonValue::object();
  o.set("latency_ms", config_.latency_ms);
  o.set("target", config_.target);
  o.set("windows", std::move(windows));
  o.set("budget_remaining", std::max(0.0, 1.0 - w300.burn_rate));
  return o;
}

}  // namespace paragraph::serve
