// Wire protocol for the `paragraph serve` daemon (DESIGN.md §12).
//
// Transport framing is deliberately dumb: every message — in either
// direction — is a 4-byte little-endian payload length followed by that
// many bytes of UTF-8 JSON. No pipelining semantics beyond TCP/unix
// ordering: a client may send several frames back-to-back and responses
// carry the request's `id` so they can be matched up (responses to
// *different* requests on one connection may arrive out of submission
// order when priorities differ).
//
// Request object:
//   {"id": 7,                  // echoed verbatim in the response (any int)
//    "netlist": "<spice>",     // SPICE deck, pre-layout
//    "priority": "high",       // "low" | "normal" (default) | "high"
//    "request_id": "trace-1",  // optional: propagate a caller-chosen
//                              // trace id; server assigns "r<N>" if absent
//    "deadline_ms": 250,       // optional: shed (deadline_exceeded) if not
//                              // *started* within this many ms of arrival
//    "client": "sweep-7",      // optional fairness key; defaults to the
//                              // connection identity ("conn<N>")
//    "auth_token": "..."}      // required per request on TCP when the
//                              // server was started with --auth-token
// Admin object (instead of "netlist"):
//   {"id": 8, "admin": "reload" | "stats" | "healthz" | "shutdown"}
//
// Response object:
//   {"id": 7, "request_id": "trace-1", "ok": true,
//    "model_generation": 2, "degraded": false,
//    "predictions": {"CAP": {"<net>": 0.53, ...}, "SP": {...}, ...}}
// or, on failure:
//   {"id": 7, "request_id": "r42", "ok": false,
//    "error": {"code": "queue_full", "message": "..."}}
//
// `request_id` names the request in server-side telemetry: the recent-
// requests ring, slow-request log entries, trace spans, and flight-
// recorder events all carry it (DESIGN.md §13). Responses to frames the
// server could not attribute to a request (malformed JSON) omit it.
// `admin: "stats"` answers with a `stats` member holding a
// paragraph-stats-v1 document; `admin: "healthz"` answers with a `health`
// member ({"status": "ok"|"degraded"|"overloaded", ...}).
//
// Error codes are a closed set so clients can switch on them; see
// ErrorCode below.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "util/errors.h"

namespace paragraph::serve {

// Largest frame either side accepts. Netlists for 100k+-node circuits are
// a few MB; 64 MB leaves headroom without letting a hostile length prefix
// allocate unbounded memory.
constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

// Typed server-side failure, closed set (wire `error.code` values).
// Values are sequential from 0 so the server can keep a per-code counter
// array; keep kNumErrorCodes in sync.
enum class ErrorCode {
  kBadRequest,        // malformed JSON, missing fields, unknown priority
  kParseError,        // netlist failed to parse (message carries file:line)
  kQueueFull,         // admission control rejected: queue (or this
                      // client's share of it) at capacity
  kShuttingDown,      // server is draining; no new work accepted
  kInternal,          // unexpected exception while serving the request
  kDeadlineExceeded,  // request's deadline_ms expired before work started
                      // (client-attributed: not an SLO miss)
  kOverloaded,        // connection-level admission: too many concurrent
                      // connections; retry with backoff
  kUnauthorized,      // TCP listener has an auth token and the request's
                      // auth_token is absent or wrong
};
constexpr std::size_t kNumErrorCodes = 8;
const char* error_code_name(ErrorCode c);

// Framing violation the connection cannot recover from (oversized length
// prefix, mid-frame EOF): after one of these the byte stream has no frame
// boundary to resync on, so the server answers best-effort and closes.
class FrameError : public util::IoError {
 public:
  using util::IoError::IoError;
};

// Frame I/O on a connected socket. Both handle partial reads/writes and
// EINTR, and work on blocking or O_NONBLOCK fds. read_frame returns false
// on clean EOF before any byte of a frame; a mid-frame EOF or an
// oversized length prefix throws FrameError, other socket errors throw
// util::IoError.
//
// timeout_ms > 0 arms a per-frame deadline: for reads it starts once the
// *first* header byte arrives (idle between frames waits forever — that is
// what a persistent connection does), for writes it covers the whole
// frame. Expiry throws util::TimeoutError. timeout_ms == 0 means no
// deadline (and blocking fds never poll).
//
// Fault sites (PARAGRAPH_FAULT): sock.read throws IoError before a read;
// sock.reset throws IoError before a write; sock.write.partial truncates
// one send() chunk to half its size (frame bytes remain intact — it
// exercises the resume path, not corruption).
bool read_frame(int fd, std::string* payload, std::size_t max_bytes = kMaxFrameBytes,
                int timeout_ms = 0);
void write_frame(int fd, const std::string& payload, std::size_t max_bytes = kMaxFrameBytes,
                 int timeout_ms = 0);

// Constant-time string equality for auth-token checks: runtime depends
// only on the lengths, never on where the bytes first differ.
bool token_equal_consttime(const std::string& a, const std::string& b);

// Request priority levels, service order high to low (FIFO within one).
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };
constexpr std::size_t kNumPriorities = 3;
const char* priority_name(Priority p);
// Accepts the wire names; returns false on anything else.
bool parse_priority(const std::string& name, Priority* out);

// Response builders (serialised by the caller via JsonValue::dump). An
// empty request_id omits the field (pre-admission failures).
obs::JsonValue make_error_response(std::int64_t id, ErrorCode code, const std::string& message,
                                   const std::string& request_id = std::string());
obs::JsonValue make_ok_response(std::int64_t id, std::uint64_t model_generation, bool degraded,
                                const std::string& request_id = std::string());

}  // namespace paragraph::serve
