// Deterministic parallel helpers layered on the thread pool: bounded-chunk
// grains for reductions, per-chunk partial-buffer reduction, and
// segment-aligned chunking over ascending (destination-sorted) index
// vectors so scatter kernels keep serial per-row accumulation order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.h"

namespace paragraph::runtime {

// Grain that caps a reduction at `max_chunks` partial buffers while never
// dropping below `base`. A pure function of n — chunk boundaries stay
// independent of the thread count.
inline std::size_t bounded_grain(std::size_t n, std::size_t base, std::size_t max_chunks = 8) {
  if (max_chunks == 0) max_chunks = 1;
  const std::size_t min_grain = (n + max_chunks - 1) / max_chunks;
  return std::max(base, min_grain);
}

inline bool is_ascending(const std::vector<std::int32_t>& idx) {
  for (std::size_t e = 1; e < idx.size(); ++e)
    if (idx[e] < idx[e - 1]) return false;
  return true;
}

// Chunked loop over an ascending index vector where every chunk owns a
// disjoint set of index values: a chunk skips leading elements whose value
// it shares with the previous chunk (that chunk owns the row) and extends
// past its nominal end while its last value continues. Scatter bodies that
// accumulate out[idx[e]] in ascending-e order therefore produce results
// bit-identical to the serial loop at any thread count.
template <typename Body>
void parallel_for_sorted_spans(const std::vector<std::int32_t>& idx, std::size_t grain,
                               Body&& body, const char* name = nullptr) {
  const std::size_t n = idx.size();
  if (grain == 0) grain = 1;
  parallel_for_chunks(
      n, grain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::size_t b = begin;
        if (b > 0) {
          const std::int32_t prev = idx[b - 1];
          while (b < end && idx[b] == prev) ++b;
        }
        if (b >= end) return;  // the whole chunk belongs to an earlier row
        std::size_t e = end;
        const std::int32_t last = idx[e - 1];
        while (e < n && idx[e] == last) ++e;
        body(b, e);
      },
      name);
}

// Deterministic scatter reduction for overlapping accumulation with an
// unsorted index: each chunk accumulates into its own zero-initialised
// partial buffer and the partials are merged in ascending chunk order.
// With a single effective thread (or a single chunk) the body runs once
// directly against `out` — bit-for-bit the serial loop.
//
// Partial must be zero-constructible via `make()`; `body(begin, end, p)`
// accumulates elements [begin, end) into p; `merge(p)` folds a partial
// into the final output.
template <typename Partial, typename MakeFn, typename BodyFn, typename MergeFn>
void parallel_reduce(std::size_t n, std::size_t grain, MakeFn&& make, BodyFn&& body,
                     MergeFn&& merge, const char* name = nullptr) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  if (chunks == 1 || num_threads() == 1 || in_parallel_region()) {
    // Serial: accumulate straight through in element order (no partials),
    // reproducing the pre-runtime kernels exactly.
    Partial p = make();
    body(0, n, p);
    merge(p);
    return;
  }
  std::vector<Partial> partials;
  partials.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) partials.push_back(make());
  parallel_for_chunks(
      n, grain,
      [&](std::size_t begin, std::size_t end, std::size_t c) { body(begin, end, partials[c]); },
      name);
  for (std::size_t c = 0; c < chunks; ++c) merge(partials[c]);
}

}  // namespace paragraph::runtime
