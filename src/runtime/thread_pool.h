// Deterministic parallel runtime: a lazily-initialized global thread pool
// driving chunked parallel-for loops.
//
// The determinism contract (see DESIGN.md §7):
//   * Work is split into chunks whose boundaries depend ONLY on the
//     problem size and the per-call grain — never on the thread count.
//   * Chunks write to disjoint output ranges, or accumulate into
//     per-chunk partial buffers that the caller merges in ascending chunk
//     order after the loop. Either way the result is bit-identical at any
//     thread count, including 1.
//   * With one configured thread the loop body runs inline on the calling
//     thread over the same chunk sequence — today's serial behaviour.
//
// Thread count resolution order: set_num_threads() (CLI --threads) >
// PARAGRAPH_THREADS environment variable > std::thread::hardware_concurrency.
// The pool spins up on first use and keeps num_threads()-1 workers (the
// calling thread participates in every loop).
//
// Nested parallel_for calls (a loop body that itself reaches a parallel
// kernel) execute inline on the worker: same chunk sequence, no deadlock,
// no oversubscription.
#pragma once

#include <cstddef>
#include <functional>

namespace paragraph::runtime {

// Configured logical thread count (callers + workers), always >= 1.
std::size_t num_threads();

// Overrides the thread count; 0 restores the default resolution
// (PARAGRAPH_THREADS, then hardware concurrency). Resizes the pool if it
// is already running. Not safe to call from inside a parallel region.
void set_num_threads(std::size_t n);

// Reads PARAGRAPH_THREADS. Safe to call more than once; an explicit
// set_num_threads() wins over the environment.
void init_from_env();

// True while the current thread is executing a chunk on behalf of a
// parallel region (used to run nested regions inline).
bool in_parallel_region();

// Publishes pool telemetry into the obs metrics registry: the
// runtime.threads gauge, per-slot busy-time gauges
// (runtime.worker.<slot>.busy_ms; slot 0 is the calling thread), and
// runtime.utilization — total busy time across slots divided by
// threads x the wall time since the first instrumented region, clamped
// to (0, 1]. No-op until a region has run with obs::enabled(); call right
// before dumping metrics. The wait/dispatch histograms
// (runtime.dispatch_us, runtime.region_wait_us, runtime.region_us) are
// recorded live and need no publish step.
void publish_runtime_metrics();

class ThreadPool {
 public:
  // The process-wide pool, created (and its workers started) on first use.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs body(chunk) for every chunk in [0, num_chunks) across the workers
  // and the calling thread. Blocks until every chunk finished. The first
  // exception thrown by any chunk is rethrown on the calling thread after
  // the region completes (remaining chunks are skipped best-effort).
  // `name` labels the region in telemetry (trace spans, histograms); it
  // must outlive the call — pass a string literal.
  void run(std::size_t num_chunks, const std::function<void(std::size_t)>& body,
           const char* name = nullptr);

  // Worker threads currently running (excludes the caller).
  std::size_t num_workers() const;

  // Stops and restarts workers so that total parallelism = `threads`
  // (i.e. threads - 1 workers). Called by set_num_threads.
  void resize(std::size_t threads);

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
};

// ------------------------------------------------------------------
// Deterministic chunking: ceil(n / grain) chunks of `grain` elements
// (the last chunk may be short). Pure function of (n, grain).

inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

// parallel_for over [0, n): body(begin, end, chunk_index) for each chunk.
// Chunks are executed serially in index order when the pool has one
// thread, when there is a single chunk, or when called from inside
// another parallel region. `name`, when given (a string literal or other
// storage outliving the call), labels the region in trace spans
// ("region:<name>") and telemetry.
void parallel_for_chunks(std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                         const char* name = nullptr);

// Convenience wrapper for bodies that do not need the chunk index.
template <typename F>
void parallel_for(std::size_t n, std::size_t grain, F&& body) {
  parallel_for_chunks(
      n, grain,
      [&body](std::size_t begin, std::size_t end, std::size_t) { body(begin, end); });
}

// Named variant: the label shows up per-worker in Chrome traces, making
// the hot kernels attributable in chrome://tracing.
template <typename F>
void parallel_for(const char* name, std::size_t n, std::size_t grain, F&& body) {
  parallel_for_chunks(
      n, grain,
      [&body](std::size_t begin, std::size_t end, std::size_t) { body(begin, end); }, name);
}

}  // namespace paragraph::runtime
