#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace paragraph::runtime {

namespace {

// Pool telemetry, all relaxed atomics touched only when obs::enabled().
// Slot 0 is the calling thread; workers take 1..n (slots persist across
// pool resizes, so busy time accumulates per position, not per thread
// object). The utilization window opens at the first instrumented region
// so enabling instrumentation late does not dilute the ratio.
struct PoolTelemetry {
  static constexpr std::size_t kMaxSlots = 64;
  std::atomic<std::uint64_t> busy_ns[kMaxSlots] = {};
  std::atomic<std::int64_t> window_start_us{-1};

  void open_window(std::int64_t now) {
    std::int64_t expected = -1;
    window_start_us.compare_exchange_strong(expected, now, std::memory_order_relaxed);
  }
  std::uint64_t total_busy_ns() const {
    std::uint64_t total = 0;
    for (const auto& b : busy_ns) total += b.load(std::memory_order_relaxed);
    return total;
  }
};

PoolTelemetry g_telemetry;

// Explicit override (set_num_threads), 0 = unset.
std::atomic<std::size_t> g_explicit_threads{0};

// PARAGRAPH_THREADS, read once; 0 = unset/absent.
std::atomic<std::size_t> g_env_threads{0};
std::once_flag g_env_once;

// True while this thread is executing a chunk of some region.
thread_local bool t_in_region = false;

std::size_t read_env_threads() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("PARAGRAPH_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) g_env_threads.store(static_cast<std::size_t>(v));
    }
  });
  return g_env_threads.load();
}

std::size_t default_threads() {
  if (const std::size_t env = read_env_threads(); env > 0) return env;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<std::size_t>(hc) : 1;
}

// Created on first ThreadPool::instance() call; tracked here so
// set_num_threads can resize only if the pool already exists.
std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

std::size_t num_threads() {
  if (const std::size_t e = g_explicit_threads.load(std::memory_order_relaxed); e > 0) return e;
  return default_threads();
}

void set_num_threads(std::size_t n) {
  g_explicit_threads.store(n, std::memory_order_relaxed);
  if (ThreadPool* pool = g_pool.load()) pool->resize(num_threads());
  if (obs::enabled())
    obs::MetricsRegistry::instance().gauge("runtime.threads").set(
        static_cast<double>(num_threads()));
}

void init_from_env() { (void)read_env_threads(); }

bool in_parallel_region() { return t_in_region; }

// ------------------------------------------------------------------

// One parallel region's complete state. Heap-allocated and shared_ptr-owned
// so a worker that wakes late — after the caller drained the region,
// returned, and possibly started the next one — still holds valid memory.
// Such a stale worker claims from THIS region's counter, which the caller
// left at >= total (it drains every chunk before returning), so the worker
// breaks out immediately and never touches the region's function.
struct Region {
  const std::function<void(std::size_t)>* body = nullptr;
  const char* name = nullptr;     // telemetry label, storage outlives the region
  std::int64_t submit_us = -1;    // obs::now_us at publish; -1 = obs was off
  std::size_t total = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr error;
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;  // workers: a new region or shutdown
  std::condition_variable cv_done;  // caller: region complete
  std::vector<std::thread> workers;
  bool shutdown = false;

  // Serialises top-level run() calls; the pool executes one region at a
  // time (nested calls never reach run(), they execute inline).
  std::mutex region_mu;

  // The active region and its publish counter; guarded by mu.
  std::shared_ptr<Region> region;
  std::uint64_t generation = 0;

  // Grabs chunks until the region is drained. Returns the number of
  // chunks this thread executed. `slot` indexes the telemetry busy-time
  // accumulator (0 = calling thread, workers 1..n).
  std::size_t work(Region& r, std::size_t slot) {
    // Snapshot the obs flag once per region: a region whose submit saw
    // instrumentation off carries submit_us == -1 and stays untimed even
    // if the flag flips mid-flight.
    const bool timed = r.submit_us >= 0;
    const bool tracing = timed && obs::TraceCollector::instance().enabled();
    using clock = std::chrono::steady_clock;
    std::uint64_t busy_ns = 0;
    std::int64_t span_start_us = -1;
    std::size_t ran = 0;
    t_in_region = true;
    for (;;) {
      const std::size_t c = r.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= r.total) break;
      if (!r.abort.load(std::memory_order_relaxed)) {
        clock::time_point t0;
        if (timed) {
          if (ran == 0) {
            span_start_us = obs::now_us();
            if (slot != 0) {
              // Worker dispatch latency: notify-to-first-chunk. The caller
              // (slot 0) starts synchronously, so only workers record it.
              static obs::Histogram& dispatch =
                  obs::MetricsRegistry::instance().histogram("runtime.dispatch_us");
              dispatch.record(static_cast<double>(span_start_us - r.submit_us));
            }
          }
          t0 = clock::now();
        }
        try {
          (*r.body)(c);
          ++ran;
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(r.err_mu);
            if (!r.error) r.error = std::current_exception();
          }
          r.abort.store(true, std::memory_order_relaxed);
        }
        if (timed)
          busy_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0).count());
      }
      if (r.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 == r.total) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
    t_in_region = false;
    if (timed && ran > 0) {
      if (slot < PoolTelemetry::kMaxSlots)
        g_telemetry.busy_ns[slot].fetch_add(busy_ns, std::memory_order_relaxed);
      if (tracing) {
        // One span per participating thread per region: parallel regions
        // show up per-tid in chrome://tracing.
        const std::int64_t end_us = obs::now_us();
        obs::TraceCollector::instance().add_complete(
            std::string("region:") + (r.name != nullptr ? r.name : "anon"), "runtime",
            span_start_us, std::max<std::int64_t>(end_us - span_start_us, 1));
      }
    }
    return ran;
  }

  void worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Region> r;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return shutdown || (region != nullptr && generation != seen); });
        if (shutdown) return;
        seen = generation;
        r = region;
      }
      work(*r, slot);
    }
  }

  void start_workers(std::size_t n) {
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      workers.emplace_back([this, slot = i + 1] { worker_loop(slot); });
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    cv_work.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    shutdown = false;
  }
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  g_pool.store(&pool);
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  impl_->start_workers(num_threads() > 0 ? num_threads() - 1 : 0);
  if (obs::enabled())
    obs::MetricsRegistry::instance().gauge("runtime.threads").set(
        static_cast<double>(num_threads()));
}

ThreadPool::~ThreadPool() {
  impl_->stop_workers();
  delete impl_;
}

std::size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->workers.size();
}

void ThreadPool::resize(std::size_t threads) {
  const std::size_t want = threads > 0 ? threads - 1 : 0;
  std::lock_guard<std::mutex> region_lock(impl_->region_mu);  // no active region
  if (impl_->workers.size() == want) return;
  impl_->stop_workers();
  impl_->start_workers(want);
}

void ThreadPool::run(std::size_t total, const std::function<void(std::size_t)>& fn,
                     const char* name) {
  if (total == 0) return;
  std::lock_guard<std::mutex> region_lock(impl_->region_mu);
  const bool timed = obs::enabled();
  auto r = std::make_shared<Region>();
  r->body = &fn;
  r->name = name;
  r->total = total;
  if (timed) {
    r->submit_us = obs::now_us();
    g_telemetry.open_window(r->submit_us);
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->region = r;
    ++impl_->generation;
  }
  impl_->cv_work.notify_all();

  const std::size_t caller_ran = impl_->work(*r, /*slot=*/0);
  const std::int64_t caller_done_us = timed ? obs::now_us() : 0;

  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv_done.wait(lock, [&] {
      return r->done_chunks.load(std::memory_order_acquire) == r->total;
    });
    impl_->region.reset();
  }

  if (timed) {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& regions = reg.counter("runtime.regions");
    static obs::Counter& chunks = reg.counter("runtime.chunks");
    static obs::Counter& caller_c = reg.counter("runtime.chunks_caller");
    static obs::Counter& worker_c = reg.counter("runtime.chunks_worker");
    static obs::Histogram& region_us = reg.histogram("runtime.region_us");
    static obs::Histogram& wait_us = reg.histogram("runtime.region_wait_us");
    regions.add();
    chunks.add(total);
    caller_c.add(caller_ran);
    // done == total here, so everything the caller didn't run, workers did.
    if (total > caller_ran) worker_c.add(total - caller_ran);
    const std::int64_t end_us = obs::now_us();
    region_us.record(static_cast<double>(end_us - r->submit_us));
    // Straggler wait: how long the caller sat in cv_done after finishing
    // its own share — the price of imbalanced chunking.
    wait_us.record(static_cast<double>(end_us - caller_done_us));
  }

  if (r->error) std::rethrow_exception(r->error);
}

void publish_runtime_metrics() {
  const std::int64_t start = g_telemetry.window_start_us.load(std::memory_order_relaxed);
  if (start < 0) return;  // no instrumented region yet
  const std::uint64_t busy = g_telemetry.total_busy_ns();
  if (busy == 0) return;
  auto& reg = obs::MetricsRegistry::instance();
  for (std::size_t slot = 0; slot < PoolTelemetry::kMaxSlots; ++slot) {
    const std::uint64_t ns = g_telemetry.busy_ns[slot].load(std::memory_order_relaxed);
    if (ns == 0) continue;
    reg.gauge("runtime.worker." + std::to_string(slot) + ".busy_ms")
        .set(static_cast<double>(ns) / 1e6);
  }
  const double window_us = static_cast<double>(obs::now_us() - start);
  const double capacity_us = window_us * static_cast<double>(num_threads());
  if (capacity_us <= 0.0) return;
  const double utilization = static_cast<double>(busy) / 1e3 / capacity_us;
  reg.gauge("runtime.utilization").set(std::clamp(utilization, 1e-9, 1.0));
}

// ------------------------------------------------------------------

void parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const char* name) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  // Serial path: one chunk, a single configured thread, or a nested call
  // from inside a worker chunk. Identical chunk sequence either way.
  if (chunks == 1 || t_in_region || num_threads() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * grain;
      body(begin, std::min(n, begin + grain), c);
    }
    return;
  }
  ThreadPool::instance().run(
      chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * grain;
        body(begin, std::min(n, begin + grain), c);
      },
      name);
}

}  // namespace paragraph::runtime
