#include "eval/metrics.h"

#include <cmath>
#include <stdexcept>

namespace paragraph::eval {

double r_squared(std::span<const float> truth, std::span<const float> pred) {
  if (truth.size() != pred.size()) throw std::invalid_argument("r_squared: size mismatch");
  if (truth.empty()) return 0.0;
  double mean = 0.0;
  for (const float t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * static_cast<double>(truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_absolute_error(std::span<const float> truth, std::span<const float> pred) {
  if (truth.size() != pred.size())
    throw std::invalid_argument("mean_absolute_error: size mismatch");
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(truth[i] - pred[i]);
  return s / static_cast<double>(truth.size());
}

double mean_absolute_percentage_error(std::span<const float> truth, std::span<const float> pred,
                                      double eps) {
  if (truth.size() != pred.size())
    throw std::invalid_argument("mean_absolute_percentage_error: size mismatch");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    s += std::abs((truth[i] - pred[i]) / truth[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * s / static_cast<double>(n);
}

RegressionMetrics evaluate(std::span<const float> truth, std::span<const float> pred) {
  RegressionMetrics m;
  m.r2 = r_squared(truth, pred);
  m.mae = mean_absolute_error(truth, pred);
  m.mape = mean_absolute_percentage_error(truth, pred);
  m.count = truth.size();
  return m;
}

std::size_t ErrorHistogram::total() const {
  std::size_t t = 0;
  for (const auto b : bins) t += b;
  return t;
}

ErrorHistogram error_histogram(std::span<const double> errors) {
  ErrorHistogram h;
  double sum = 0.0;
  double log_sum = 0.0;
  for (const double e : errors) {
    const double pct = std::abs(e) * 100.0;
    if (pct < 10.0) ++h.bins[0];
    else if (pct < 20.0) ++h.bins[1];
    else if (pct < 30.0) ++h.bins[2];
    else if (pct < 40.0) ++h.bins[3];
    else if (pct < 50.0) ++h.bins[4];
    else ++h.bins[5];
    sum += pct;
    log_sum += std::log(std::max(pct, 1e-3));
  }
  if (!errors.empty()) {
    h.mean_percent = sum / static_cast<double>(errors.size());
    h.geomean_percent = std::exp(log_sum / static_cast<double>(errors.size()));
  }
  return h;
}

}  // namespace paragraph::eval
