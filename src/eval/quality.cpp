#include "eval/quality.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace paragraph::eval {

namespace {

obs::JsonValue metrics_json(std::span<const float> truth, std::span<const float> pred) {
  const RegressionMetrics m = evaluate(truth, pred);
  obs::JsonValue o = obs::JsonValue::object();
  o.set("count", m.count);
  o.set("r2", m.r2);
  o.set("mae", m.mae);
  o.set("mape", m.mape);
  return o;
}

// Decade keys ("1e-01..1e+00") must order by exponent, not by bytes —
// lexicographically '+' sorts before '-', which would put every
// sub-femtofarad decade after the large ones. "<=0" sorts first.
bool decade_rank(const std::string& key, int* rank) {
  if (key == "<=0") {
    *rank = INT_MIN;
    return true;
  }
  int exp = 0;
  if (std::sscanf(key.c_str(), "1e%d..", &exp) != 1) return false;
  *rank = exp;
  return true;
}

bool key_less(const std::string& a, const std::string& b) {
  int ra = 0, rb = 0;
  if (decade_rank(a, &ra) && decade_rank(b, &rb)) return ra < rb;
  return a < b;
}

}  // namespace

QualityAccumulator::Bucket& QualityAccumulator::bucket(const std::string& dimension,
                                                       const std::string& key) {
  auto dim_it = std::find_if(dimensions_.begin(), dimensions_.end(),
                             [&](const Dimension& d) { return d.name == dimension; });
  if (dim_it == dimensions_.end()) {
    dimensions_.push_back({dimension, {}});
    dim_it = dimensions_.end() - 1;
  }
  auto it = std::find_if(dim_it->buckets.begin(), dim_it->buckets.end(),
                         [&](const Bucket& b) { return b.key == key; });
  if (it == dim_it->buckets.end()) {
    dim_it->buckets.push_back({key, {}, {}});
    it = dim_it->buckets.end() - 1;
  }
  return *it;
}

void QualityAccumulator::add(const std::string& dimension, const std::string& key, float truth,
                             float pred) {
  Bucket& b = bucket(dimension, key);
  b.truth.push_back(truth);
  b.pred.push_back(pred);
}

void QualityAccumulator::add_calibration(int member, double lo_ff, double hi_ff, float truth,
                                         float pred) {
  auto it = std::find_if(calibration_.begin(), calibration_.end(),
                         [&](const CalibrationRow& r) { return r.member == member; });
  if (it == calibration_.end()) {
    calibration_.push_back({member, lo_ff, hi_ff, 0, {}, {}});
    it = calibration_.end() - 1;
    std::sort(calibration_.begin(), calibration_.end(),
              [](const CalibrationRow& a, const CalibrationRow& b) { return a.member < b.member; });
    it = std::find_if(calibration_.begin(), calibration_.end(),
                      [&](const CalibrationRow& r) { return r.member == member; });
  }
  if (truth > it->lo_ff && truth <= it->hi_ff) ++it->in_interval;
  it->truth.push_back(truth);
  it->pred.push_back(pred);
}

void QualityAccumulator::count_overlap(int lower_member, bool disagree) {
  add_overlap_stats(lower_member, 1, disagree ? 1 : 0);
}

void QualityAccumulator::add_overlap_stats(int lower_member, std::uint64_t checked,
                                           std::uint64_t disagreements) {
  auto it = std::find_if(overlaps_.begin(), overlaps_.end(),
                         [&](const OverlapRow& r) { return r.lower_member == lower_member; });
  if (it == overlaps_.end()) {
    overlaps_.push_back({lower_member, 0, 0});
    it = overlaps_.end() - 1;
  }
  it->checked += checked;
  it->disagreements += disagreements;
}

void QualityAccumulator::note_net(const std::string& circuit, const std::string& net, float truth,
                                  float pred) {
  const double denom = std::fabs(static_cast<double>(truth));
  if (denom < 1e-12) return;
  const double rel = std::fabs(static_cast<double>(pred) - truth) / denom;
  if (worst_.size() >= kWorstN && rel <= worst_.back().rel_err) return;
  worst_.push_back({circuit, net, truth, pred, rel});
  std::sort(worst_.begin(), worst_.end(),
            [](const WorstNet& a, const WorstNet& b) { return a.rel_err > b.rel_err; });
  if (worst_.size() > kWorstN) worst_.resize(kWorstN);
}

std::string QualityAccumulator::cap_decade_key(double truth_ff) {
  if (!(truth_ff > 0.0)) return "<=0";
  const int exp = static_cast<int>(std::floor(std::log10(truth_ff)));
  char buf[40];
  std::snprintf(buf, sizeof buf, "1e%+03d..1e%+03d", exp, exp + 1);
  return buf;
}

obs::JsonValue QualityAccumulator::to_json() const {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("schema", "paragraph-quality-v1");
  root.set("pairs", total_pairs_);

  obs::JsonValue dims = obs::JsonValue::object();
  for (const Dimension& d : dimensions_) {
    // Sorted keys make decade buckets read low-to-high regardless of the
    // order predictions arrived in.
    std::vector<const Bucket*> ordered;
    ordered.reserve(d.buckets.size());
    for (const Bucket& b : d.buckets) ordered.push_back(&b);
    std::sort(ordered.begin(), ordered.end(),
              [](const Bucket* a, const Bucket* b) { return key_less(a->key, b->key); });
    obs::JsonValue dim = obs::JsonValue::object();
    for (const Bucket* b : ordered) dim.set(b->key, metrics_json(b->truth, b->pred));
    dims.set(d.name, std::move(dim));
  }
  root.set("dimensions", std::move(dims));

  obs::JsonValue calib = obs::JsonValue::array();
  for (const CalibrationRow& r : calibration_) {
    obs::JsonValue o = obs::JsonValue::object();
    o.set("member", r.member);
    o.set("interval_lo_ff", r.lo_ff);
    o.set("interval_hi_ff", r.hi_ff);
    o.set("count", r.truth.size());
    o.set("in_interval", r.in_interval);
    o.set("in_interval_frac",
          r.truth.empty() ? 0.0
                          : static_cast<double>(r.in_interval) / static_cast<double>(r.truth.size()));
    o.set("metrics", metrics_json(r.truth, r.pred));
    calib.push_back(std::move(o));
  }
  root.set("calibration", std::move(calib));

  obs::JsonValue overlaps = obs::JsonValue::array();
  for (const OverlapRow& r : overlaps_) {
    obs::JsonValue o = obs::JsonValue::object();
    o.set("lower_member", r.lower_member);
    o.set("checked", r.checked);
    o.set("disagreements", r.disagreements);
    o.set("disagreement_frac",
          r.checked == 0 ? 0.0
                         : static_cast<double>(r.disagreements) / static_cast<double>(r.checked));
    overlaps.push_back(std::move(o));
  }
  root.set("member_overlap", std::move(overlaps));

  obs::JsonValue worst = obs::JsonValue::array();
  for (const WorstNet& w : worst_) {
    obs::JsonValue o = obs::JsonValue::object();
    o.set("circuit", w.circuit);
    o.set("net", w.net);
    o.set("truth", w.truth);
    o.set("pred", w.pred);
    o.set("rel_err", w.rel_err);
    worst.push_back(std::move(o));
  }
  root.set("worst_nets", std::move(worst));
  return root;
}

void QualityAccumulator::publish() const {
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("quality.pairs").set(static_cast<double>(total_pairs_));
  for (const Dimension& d : dimensions_) {
    for (const Bucket& b : d.buckets) {
      const RegressionMetrics m = evaluate(b.truth, b.pred);
      const std::string prefix = "quality." + d.name + "." + b.key;
      reg.gauge(prefix + ".r2").set(m.r2);
      reg.gauge(prefix + ".mape").set(m.mape);
    }
  }
  for (const CalibrationRow& r : calibration_) {
    if (r.truth.empty()) continue;
    reg.gauge("quality.member." + std::to_string(r.member) + ".in_interval_frac")
        .set(static_cast<double>(r.in_interval) / static_cast<double>(r.truth.size()));
  }
}

}  // namespace paragraph::eval
