#include "eval/drift.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"

namespace paragraph::eval {

namespace {

// Monotonic decade-compressing transform; physical features (fanout,
// widths, areas) span orders of magnitude, and equal-width bins on the raw
// scale would park nearly all mass in one bin.
double signed_log1p(double v) {
  return v < 0.0 ? -std::log1p(-v) : std::log1p(v);
}

// Deterministic feature order: per-type feature columns in enum/column
// order, then whole-graph stats. The value callback receives every value
// of one named feature stream across all samples.
template <typename Fn>
void for_each_feature(std::span<const dataset::Sample> samples, Fn&& fn) {
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto type = static_cast<graph::NodeType>(t);
    const std::size_t dim = graph::feature_dim(type);
    for (std::size_t col = 0; col < dim; ++col) {
      const std::string name =
          std::string(graph::node_type_name(type)) + ".f" + std::to_string(col);
      fn(name, [&, col](auto&& emit) {
        for (const dataset::Sample& s : samples) {
          const nn::Matrix& feats = s.graph.features(type);
          for (std::size_t r = 0; r < feats.rows(); ++r)
            emit(signed_log1p(static_cast<double>(feats.row(r)[col])));
        }
      });
    }
  }
  const auto graph_stat = [&](const char* name, auto&& get) {
    fn(name, [&](auto&& emit) {
      for (const dataset::Sample& s : samples) emit(signed_log1p(get(s)));
    });
  };
  graph_stat("graph.total_nodes",
             [](const dataset::Sample& s) { return static_cast<double>(s.graph.total_nodes()); });
  graph_stat("graph.total_edges",
             [](const dataset::Sample& s) { return static_cast<double>(s.graph.total_edges()); });
  graph_stat("graph.nets", [](const dataset::Sample& s) {
    return static_cast<double>(s.graph.num_nodes(graph::NodeType::kNet));
  });
}

}  // namespace

std::vector<obs::FeatureSketch> sketch_graphs(std::span<const dataset::Sample> samples,
                                              const std::vector<obs::FeatureSketch>* ref,
                                              std::size_t nbins) {
  std::vector<obs::FeatureSketch> out;
  for_each_feature(samples, [&](const std::string& name, auto&& visit_values) {
    obs::FeatureSketch sketch(name);
    if (ref != nullptr) {
      const auto it = std::find_if(ref->begin(), ref->end(), [&](const obs::FeatureSketch& r) {
        return r.name() == name;
      });
      if (it != ref->end()) sketch = obs::FeatureSketch::like(*it);
    } else {
      // Fit edges from the observed range; a slightly widened span keeps
      // the extremes of the fitting set out of the overflow bins.
      double lo = 0.0, hi = 0.0;
      bool first = true;
      visit_values([&](double v) {
        if (first) {
          lo = hi = v;
          first = false;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      });
      const double pad = (hi - lo) * 0.05 + 1e-9;
      sketch.configure_bins(lo - pad, hi + pad, nbins);
    }
    visit_values([&](double v) { sketch.add(v); });
    out.push_back(std::move(sketch));
  });
  return out;
}

void SketchBuilder::observe_range(const dataset::Sample& s) {
  if (filling_) throw std::logic_error("SketchBuilder::observe_range after begin_fill");
  const std::span<const dataset::Sample> one(&s, 1);
  std::size_t idx = 0;
  for_each_feature(one, [&](const std::string& name, auto&& visit_values) {
    if (idx == ranges_.size()) {
      ranges_.emplace_back();
      names_.push_back(name);
    }
    Range& r = ranges_[idx];
    visit_values([&](double v) {
      if (!r.seen) {
        r.lo = r.hi = v;
        r.seen = true;
      } else {
        r.lo = std::min(r.lo, v);
        r.hi = std::max(r.hi, v);
      }
    });
    ++idx;
  });
}

void SketchBuilder::begin_fill() {
  sketches_.clear();
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    obs::FeatureSketch sk(names_[i]);
    const Range& r = ranges_[i];
    const double lo = r.seen ? r.lo : 0.0;
    const double hi = r.seen ? r.hi : 0.0;
    // Same widened span as sketch_graphs; min/max over the per-sample
    // passes equals min/max over the concatenated stream exactly.
    const double pad = (hi - lo) * 0.05 + 1e-9;
    sk.configure_bins(lo - pad, hi + pad, nbins_);
    sketches_.push_back(std::move(sk));
  }
  filling_ = true;
}

void SketchBuilder::observe_values(const dataset::Sample& s) {
  if (!filling_) throw std::logic_error("SketchBuilder::observe_values before begin_fill");
  const std::span<const dataset::Sample> one(&s, 1);
  std::size_t idx = 0;
  for_each_feature(one, [&](const std::string&, auto&& visit_values) {
    if (idx >= sketches_.size())
      throw std::logic_error("SketchBuilder: feature count changed between passes");
    obs::FeatureSketch& sk = sketches_[idx];
    visit_values([&](double v) { sk.add(v); });
    ++idx;
  });
}

std::vector<obs::FeatureSketch> SketchBuilder::finish() {
  filling_ = false;
  return std::move(sketches_);
}

obs::DriftReport check_drift(const std::vector<obs::FeatureSketch>& ref,
                             const std::vector<obs::FeatureSketch>& live,
                             double warn_threshold) {
  obs::DriftReport report = obs::score_drift(ref, live);
  auto& reg = obs::MetricsRegistry::instance();
  // Gauges carry the bias-corrected excess so every drift.* value is
  // directly comparable against the warn threshold (and drift.max).
  for (const obs::DriftScore& s : report.features) reg.gauge("drift." + s.feature).set(s.excess);
  reg.gauge("drift.max").set(report.max_psi);
  if (report.any() && report.max_psi >= warn_threshold) {
    obs::Logger::instance().log(
        obs::LogLevel::kWarn, "drift", "input distribution drift above threshold",
        {{"max_psi", report.max_psi},
         {"feature", report.max_feature},
         {"threshold", warn_threshold}});
  }
  return report;
}

}  // namespace paragraph::eval
