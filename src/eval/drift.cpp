#include "eval/drift.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"

namespace paragraph::eval {

namespace {

// Monotonic decade-compressing transform; physical features (fanout,
// widths, areas) span orders of magnitude, and equal-width bins on the raw
// scale would park nearly all mass in one bin.
double signed_log1p(double v) {
  return v < 0.0 ? -std::log1p(-v) : std::log1p(v);
}

// Deterministic feature order: per-type feature columns in enum/column
// order, then whole-graph stats. The value callback receives every value
// of one named feature stream across all samples.
template <typename Fn>
void for_each_feature(std::span<const dataset::Sample> samples, Fn&& fn) {
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto type = static_cast<graph::NodeType>(t);
    const std::size_t dim = graph::feature_dim(type);
    for (std::size_t col = 0; col < dim; ++col) {
      const std::string name =
          std::string(graph::node_type_name(type)) + ".f" + std::to_string(col);
      fn(name, [&, col](auto&& emit) {
        for (const dataset::Sample& s : samples) {
          const nn::Matrix& feats = s.graph.features(type);
          for (std::size_t r = 0; r < feats.rows(); ++r)
            emit(signed_log1p(static_cast<double>(feats.row(r)[col])));
        }
      });
    }
  }
  const auto graph_stat = [&](const char* name, auto&& get) {
    fn(name, [&](auto&& emit) {
      for (const dataset::Sample& s : samples) emit(signed_log1p(get(s)));
    });
  };
  graph_stat("graph.total_nodes",
             [](const dataset::Sample& s) { return static_cast<double>(s.graph.total_nodes()); });
  graph_stat("graph.total_edges",
             [](const dataset::Sample& s) { return static_cast<double>(s.graph.total_edges()); });
  graph_stat("graph.nets", [](const dataset::Sample& s) {
    return static_cast<double>(s.graph.num_nodes(graph::NodeType::kNet));
  });
}

}  // namespace

std::vector<obs::FeatureSketch> sketch_graphs(std::span<const dataset::Sample> samples,
                                              const std::vector<obs::FeatureSketch>* ref,
                                              std::size_t nbins) {
  std::vector<obs::FeatureSketch> out;
  for_each_feature(samples, [&](const std::string& name, auto&& visit_values) {
    obs::FeatureSketch sketch(name);
    if (ref != nullptr) {
      const auto it = std::find_if(ref->begin(), ref->end(), [&](const obs::FeatureSketch& r) {
        return r.name() == name;
      });
      if (it != ref->end()) sketch = obs::FeatureSketch::like(*it);
    } else {
      // Fit edges from the observed range; a slightly widened span keeps
      // the extremes of the fitting set out of the overflow bins.
      double lo = 0.0, hi = 0.0;
      bool first = true;
      visit_values([&](double v) {
        if (first) {
          lo = hi = v;
          first = false;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      });
      const double pad = (hi - lo) * 0.05 + 1e-9;
      sketch.configure_bins(lo - pad, hi + pad, nbins);
    }
    visit_values([&](double v) { sketch.add(v); });
    out.push_back(std::move(sketch));
  });
  return out;
}

obs::DriftReport check_drift(const std::vector<obs::FeatureSketch>& ref,
                             const std::vector<obs::FeatureSketch>& live,
                             double warn_threshold) {
  obs::DriftReport report = obs::score_drift(ref, live);
  auto& reg = obs::MetricsRegistry::instance();
  // Gauges carry the bias-corrected excess so every drift.* value is
  // directly comparable against the warn threshold (and drift.max).
  for (const obs::DriftScore& s : report.features) reg.gauge("drift." + s.feature).set(s.excess);
  reg.gauge("drift.max").set(report.max_psi);
  if (report.any() && report.max_psi >= warn_threshold) {
    obs::Logger::instance().log(
        obs::LogLevel::kWarn, "drift", "input distribution drift above threshold",
        {{"max_psi", report.max_psi},
         {"feature", report.max_feature},
         {"threshold", warn_threshold}});
  }
  return report;
}

}  // namespace paragraph::eval
