// Model-quality accounting: per-prediction residual capture bucketed along
// the dimensions that matter for a deployed parasitic predictor — cap
// decade, target kind, edge-type context, and answering ensemble member —
// plus the Algorithm 2 calibration table (member interval vs realised
// error), adjacent-member disagreement counters, and a worst-N net tracker
// with circuit/net provenance.
//
// The accumulator works on plain values so it has no dependency on the
// dataset or model layers; core/report.h walks models and datasets and
// feeds this. `to_json()` emits the `paragraph-quality-v1` block that
// rides alongside `--metrics-out`; `publish()` mirrors the headline
// numbers into the obs metrics registry as `quality.*` gauges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "obs/json.h"

namespace paragraph::eval {

// Bucket dimension names used by the core/report bridge. Free-form strings
// are accepted; these are the conventional ones.
inline constexpr const char* kDimDecade = "decade";
inline constexpr const char* kDimTarget = "target";
inline constexpr const char* kDimEdgeType = "edge_type";
inline constexpr const char* kDimMember = "member";

class QualityAccumulator {
 public:
  // Records one (truth, pred) pair into bucket `key` of `dimension`.
  // Buckets are created on first use and keep insertion order. One pair
  // typically lands in several dimensions; call count_pair() once per
  // underlying pair so total_pairs() stays a pair count, not an add count.
  void add(const std::string& dimension, const std::string& key, float truth, float pred);

  // Counts one underlying prediction pair (see add()).
  void count_pair() { ++total_pairs_; }

  // Calibration: member `member` (interval (lo_ff, hi_ff]) answered a net
  // with this truth/pred. Tracks how often truth actually falls inside the
  // member's interval, and the realised error of its answers.
  void add_calibration(int member, double lo_ff, double hi_ff, float truth, float pred);

  // Adjacent-member interval overlap: `disagree` is true when members k and
  // k+1 both claim the net (lower member predicts inside its own range but
  // the upper member's prediction escalates past it, or vice versa).
  void count_overlap(int lower_member, bool disagree);
  // Bulk form for pre-aggregated counts (e.g. core::MemberAttribution).
  void add_overlap_stats(int lower_member, std::uint64_t checked, std::uint64_t disagreements);

  // Worst-net tracker (relative error, kWorstN retained).
  void note_net(const std::string& circuit, const std::string& net, float truth, float pred);

  // Stable, sortable decade label for a CAP truth value in fF
  // (e.g. "1e-01..1e+00"); out-of-histogram values get "<=0".
  static std::string cap_decade_key(double truth_ff);

  bool empty() const { return dimensions_.empty() && calibration_.empty(); }
  std::size_t total_pairs() const { return total_pairs_; }

  // `paragraph-quality-v1` JSON block.
  obs::JsonValue to_json() const;

  // Headline gauges into obs::MetricsRegistry (quality.<dim>.<key>.r2 /
  // .mape, quality.member.<k>.in_interval_frac, quality.pairs).
  void publish() const;

  static constexpr std::size_t kWorstN = 20;

 private:
  struct Bucket {
    std::string key;
    std::vector<float> truth;
    std::vector<float> pred;
  };
  struct Dimension {
    std::string name;
    std::vector<Bucket> buckets;  // insertion order
  };
  struct CalibrationRow {
    int member = 0;
    double lo_ff = 0.0;
    double hi_ff = 0.0;
    std::uint64_t in_interval = 0;
    std::vector<float> truth;
    std::vector<float> pred;
  };
  struct OverlapRow {
    int lower_member = 0;
    std::uint64_t checked = 0;
    std::uint64_t disagreements = 0;
  };
  struct WorstNet {
    std::string circuit;
    std::string net;
    float truth = 0.0f;
    float pred = 0.0f;
    double rel_err = 0.0;
  };

  Bucket& bucket(const std::string& dimension, const std::string& key);

  std::vector<Dimension> dimensions_;
  std::vector<CalibrationRow> calibration_;  // ascending member
  std::vector<OverlapRow> overlaps_;
  std::vector<WorstNet> worst_;  // descending rel_err
  std::size_t total_pairs_ = 0;
};

}  // namespace paragraph::eval
