// Input-drift detection for deployed predictors.
//
// sketch_graphs() summarises a set of circuit graphs into per-feature
// obs::FeatureSketch objects: one per raw node-feature column of every
// node type (values sketched in signed-log1p space so multi-decade
// physical features spread across the histogram instead of piling into
// one bin) plus whole-graph stats (node/edge/net counts). Called without
// a reference it fits bin edges from the observed range — this is the
// train-time path whose result is persisted into the model artifact
// (format v5). Called with a reference it produces bin-compatible live
// sketches, which is what predict/evaluate maintain over incoming graphs.
//
// check_drift() scores live vs reference per feature (PSI), publishes
// `drift.<feature>` gauges and `drift.max`, and emits one structured
// warning line when the max crosses the threshold.
#pragma once

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "obs/sketch.h"

namespace paragraph::eval {

// Conventional PSI action threshold (see obs/sketch.h).
inline constexpr double kDefaultDriftWarnThreshold = 0.25;

// 8 bins (plus under/overflow) keeps the null-hypothesis PSI noise floor
// (~k/n for n samples over k bins) well under the 0.25 action threshold
// for the suite's node counts while still resolving a real generator
// shift, which moves whole decades of mass.
std::vector<obs::FeatureSketch> sketch_graphs(std::span<const dataset::Sample> samples,
                                              const std::vector<obs::FeatureSketch>* ref = nullptr,
                                              std::size_t nbins = 8);

obs::DriftReport check_drift(const std::vector<obs::FeatureSketch>& ref,
                             const std::vector<obs::FeatureSketch>& live,
                             double warn_threshold = kDefaultDriftWarnThreshold);

// Streaming construction of the train-time sketches for out-of-core
// datasets (dataset/shards.h), where materialising every sample at once
// would defeat the memory bound. Protocol: observe_range() on every
// sample (pass 1), begin_fill(), observe_values() on the SAME samples in
// the SAME order (pass 2), finish(). The result is bit-identical to
// sketch_graphs() over the materialised sequence: min/max is
// order-insensitive, and each per-feature value stream arrives in the
// same (sample, row) order either way, so the Welford moments see the
// identical float sequence.
class SketchBuilder {
 public:
  explicit SketchBuilder(std::size_t nbins = 8) : nbins_(nbins) {}

  void observe_range(const dataset::Sample& s);
  void begin_fill();  // fixes bin edges from the observed ranges
  void observe_values(const dataset::Sample& s);
  std::vector<obs::FeatureSketch> finish();

 private:
  struct Range {
    double lo = 0.0, hi = 0.0;
    bool seen = false;
  };
  std::size_t nbins_;
  bool filling_ = false;
  std::vector<std::string> names_;
  std::vector<Range> ranges_;
  std::vector<obs::FeatureSketch> sketches_;
};

}  // namespace paragraph::eval
