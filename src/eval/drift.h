// Input-drift detection for deployed predictors.
//
// sketch_graphs() summarises a set of circuit graphs into per-feature
// obs::FeatureSketch objects: one per raw node-feature column of every
// node type (values sketched in signed-log1p space so multi-decade
// physical features spread across the histogram instead of piling into
// one bin) plus whole-graph stats (node/edge/net counts). Called without
// a reference it fits bin edges from the observed range — this is the
// train-time path whose result is persisted into the model artifact
// (format v5). Called with a reference it produces bin-compatible live
// sketches, which is what predict/evaluate maintain over incoming graphs.
//
// check_drift() scores live vs reference per feature (PSI), publishes
// `drift.<feature>` gauges and `drift.max`, and emits one structured
// warning line when the max crosses the threshold.
#pragma once

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "obs/sketch.h"

namespace paragraph::eval {

// Conventional PSI action threshold (see obs/sketch.h).
inline constexpr double kDefaultDriftWarnThreshold = 0.25;

// 8 bins (plus under/overflow) keeps the null-hypothesis PSI noise floor
// (~k/n for n samples over k bins) well under the 0.25 action threshold
// for the suite's node counts while still resolving a real generator
// shift, which moves whole decades of mass.
std::vector<obs::FeatureSketch> sketch_graphs(std::span<const dataset::Sample> samples,
                                              const std::vector<obs::FeatureSketch>* ref = nullptr,
                                              std::size_t nbins = 8);

obs::DriftReport check_drift(const std::vector<obs::FeatureSketch>& ref,
                             const std::vector<obs::FeatureSketch>& live,
                             double warn_threshold = kDefaultDriftWarnThreshold);

}  // namespace paragraph::eval
