// Prediction-quality metrics used throughout the paper's evaluation:
// R-squared, MAE, MAPE, and the error-range histogram of Table V.
#pragma once

#include <array>
#include <span>
#include <vector>

namespace paragraph::eval {

// Coefficient of determination. 0 samples or zero-variance truth -> 0.
double r_squared(std::span<const float> truth, std::span<const float> pred);

double mean_absolute_error(std::span<const float> truth, std::span<const float> pred);

// Mean absolute percentage error, in percent. Truth values with
// |y| < eps are skipped (matches common MAPE practice).
double mean_absolute_percentage_error(std::span<const float> truth, std::span<const float> pred,
                                      double eps = 1e-9);

struct RegressionMetrics {
  double r2 = 0.0;
  double mae = 0.0;
  double mape = 0.0;  // percent
  std::size_t count = 0;
};

RegressionMetrics evaluate(std::span<const float> truth, std::span<const float> pred);

// Table V style error histogram: bins <10%, 10-20%, ..., 40-50%, >50%.
struct ErrorHistogram {
  std::array<std::size_t, 6> bins{};
  double mean_percent = 0.0;
  double geomean_percent = 0.0;
  std::size_t total() const;
};

// `errors` are relative errors as fractions (0.07 == 7%).
ErrorHistogram error_histogram(std::span<const double> errors);

}  // namespace paragraph::eval
