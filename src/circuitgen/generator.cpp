#include "circuitgen/generator.h"

#include <algorithm>
#include <cmath>

#include "circuitgen/blocks.h"
#include "util/rng.h"

namespace paragraph::circuitgen {

using circuit::Netlist;

namespace {

int scale_count(int v, double f) {
  if (v == 0) return 0;
  return std::max(1, static_cast<int>(std::lround(v * f)));
}

}  // namespace

CircuitSpec CircuitSpec::scaled(double factor) const {
  CircuitSpec s = *this;
  s.opamps = scale_count(opamps, factor);
  s.otas = scale_count(otas, factor);
  s.comparators = scale_count(comparators, factor);
  s.mirrors = scale_count(mirrors, factor);
  s.bandgaps = scale_count(bandgaps, factor);
  s.rc_filters = scale_count(rc_filters, factor);
  s.ladders = scale_count(ladders, factor);
  s.cap_dacs = scale_count(cap_dacs, factor);
  s.glue_gates = scale_count(glue_gates, factor);
  s.dffs = scale_count(dffs, factor);
  s.ring_oscs = scale_count(ring_oscs, factor);
  s.inv_chains = scale_count(inv_chains, factor);
  s.level_shifters = scale_count(level_shifters, factor);
  s.io_drivers = scale_count(io_drivers, factor);
  s.esd_pads = scale_count(esd_pads, factor);
  s.thick_inv_chains = scale_count(thick_inv_chains, factor);
  return s;
}

Netlist generate_circuit(const CircuitSpec& spec) {
  Netlist nl(spec.name);
  util::Rng rng(spec.seed);
  BlockContext ctx(nl, rng, spec.name);

  // Primary inputs and global control nets. clk/en/bias become the
  // high-fanout nets that dominate the upper capacitance decades.
  std::vector<circuit::NetId> pool;
  const int num_inputs = 4 + static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < num_inputs; ++i) pool.push_back(nl.add_net(spec.name + "/in" + std::to_string(i)));
  const circuit::NetId clk = nl.add_net(spec.name + "/clk");
  const circuit::NetId en = nl.add_net(spec.name + "/en");
  pool.push_back(en);

  const bool has_analog =
      spec.opamps + spec.otas + spec.comparators + spec.mirrors + spec.bandgaps > 0;
  circuit::NetId bias = circuit::kInvalidNet;
  if (has_analog) bias = bias_generator(ctx);

  auto pick = [&]() {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };
  auto push = [&](circuit::NetId n) { pool.push_back(n); };

  // Buffer the clock so it has realistic drivers in clocked designs.
  if (spec.dffs > 0 || spec.comparators > 0 || spec.ring_oscs > 0) {
    inverter_chain(ctx, clk, 2);
  }

  for (int i = 0; i < spec.opamps; ++i) push(two_stage_opamp(ctx, pick(), pick(), bias));
  for (int i = 0; i < spec.otas; ++i) push(ota_5t(ctx, pick(), pick(), bias));
  for (int i = 0; i < spec.comparators; ++i) {
    auto [p, n] = strongarm_comparator(ctx, clk, pick(), pick());
    push(p);
    push(n);
  }
  for (int i = 0; i < spec.mirrors; ++i) {
    const int outs = static_cast<int>(rng.uniform_int(1, 4));
    for (const auto o : current_mirror(ctx, bias, outs, rng.bernoulli(0.5))) push(o);
  }
  for (int i = 0; i < spec.bandgaps; ++i) push(bandgap_core(ctx, bias));
  for (int i = 0; i < spec.rc_filters; ++i)
    push(rc_filter(ctx, pick(), static_cast<int>(rng.uniform_int(1, 3))));
  for (int i = 0; i < spec.ladders; ++i)
    for (const auto t : resistor_ladder(ctx, static_cast<int>(rng.uniform_int(2, 6)))) push(t);
  for (int i = 0; i < spec.cap_dacs; ++i) {
    const int bits = static_cast<int>(rng.uniform_int(4, 8));
    std::vector<circuit::NetId> drivers;
    for (int b = 0; b < bits; ++b) drivers.push_back(inverter(ctx, pick()));
    push(cap_dac(ctx, drivers));
  }

  if (spec.glue_gates > 0)
    for (const auto o : glue_logic(ctx, pool, spec.glue_gates)) push(o);
  for (int i = 0; i < spec.dffs; ++i) push(dff(ctx, pick(), clk));
  for (int i = 0; i < spec.ring_oscs; ++i)
    push(ring_oscillator(ctx, en, 3 + 2 * static_cast<int>(rng.uniform_int(0, 3))));
  for (int i = 0; i < spec.inv_chains; ++i)
    push(inverter_chain(ctx, pick(), static_cast<int>(rng.uniform_int(2, 6))));

  for (int i = 0; i < spec.level_shifters; ++i) push(level_shifter(ctx, pick()));
  for (int i = 0; i < spec.io_drivers; ++i) {
    const circuit::NetId pad = io_driver(ctx, pick(), static_cast<int>(rng.uniform_int(2, 4)));
    if (rng.bernoulli(0.7)) esd_clamp(ctx, pad);
    push(pad);
  }
  for (int i = 0; i < spec.esd_pads; ++i) {
    const circuit::NetId pad = ctx.fresh_net("pad");
    esd_clamp(ctx, pad);
    push(pad);
  }
  for (int i = 0; i < spec.thick_inv_chains; ++i)
    push(inverter_chain(ctx, pick(), static_cast<int>(rng.uniform_int(2, 5)), /*thick=*/true));

  nl.validate();
  return nl;
}

std::vector<CircuitSpec> paper_suite_specs(std::uint64_t seed, double scale) {
  // Block mixes chosen so each circuit's device-type profile matches the
  // corresponding Table IV row (transistor/thick/res/cap/bjt/dio balance)
  // at roughly 1/80 of the paper's size.
  std::vector<CircuitSpec> specs;
  auto add = [&specs, seed](CircuitSpec s) {
    s.seed = seed + specs.size() * 7919;
    specs.push_back(std::move(s));
  };

  // --- training circuits t1..t18 ---
  add({.name = "t1", .opamps = 3, .otas = 2, .comparators = 2, .mirrors = 3, .glue_gates = 12});
  add({.name = "t2", .opamps = 3, .rc_filters = 6, .ladders = 2, .cap_dacs = 3,
       .glue_gates = 45, .dffs = 6, .level_shifters = 55, .io_drivers = 9, .thick_inv_chains = 8});
  add({.name = "t3", .opamps = 2, .rc_filters = 10, .ladders = 2, .cap_dacs = 12,
       .glue_gates = 60, .level_shifters = 140, .io_drivers = 20, .esd_pads = 6,
       .thick_inv_chains = 20});
  add({.name = "t4", .opamps = 10, .otas = 6, .comparators = 10, .mirrors = 16, .rc_filters = 10,
       .ladders = 4, .cap_dacs = 6, .glue_gates = 500, .dffs = 70, .ring_oscs = 2,
       .inv_chains = 20, .level_shifters = 110, .io_drivers = 16});
  add({.name = "t5", .opamps = 8, .otas = 4, .comparators = 6, .mirrors = 8, .rc_filters = 6,
       .ladders = 4, .cap_dacs = 2, .glue_gates = 260, .dffs = 36, .inv_chains = 12,
       .level_shifters = 6, .io_drivers = 2});
  add({.name = "t6", .opamps = 8, .otas = 4, .comparators = 6, .mirrors = 6, .cap_dacs = 2,
       .glue_gates = 250, .dffs = 34, .inv_chains = 12, .level_shifters = 6, .io_drivers = 2});
  add({.name = "t7", .opamps = 4, .otas = 2, .comparators = 4, .bandgaps = 3, .rc_filters = 4,
       .cap_dacs = 2, .glue_gates = 120, .dffs = 16, .level_shifters = 4, .io_drivers = 1});
  add({.name = "t8", .ladders = 1, .io_drivers = 10, .thick_inv_chains = 30});
  add({.name = "t9", .ladders = 1, .io_drivers = 11, .thick_inv_chains = 30});
  add({.name = "t10", .glue_gates = 220, .dffs = 30, .ring_oscs = 2, .inv_chains = 10});
  add({.name = "t11", .bandgaps = 4, .ladders = 2, .cap_dacs = 2, .glue_gates = 12,
       .level_shifters = 120, .io_drivers = 18, .thick_inv_chains = 16});
  add({.name = "t12", .glue_gates = 60, .dffs = 8, .ring_oscs = 1});
  add({.name = "t13", .glue_gates = 130, .dffs = 18, .inv_chains = 8});
  add({.name = "t14", .rc_filters = 6, .cap_dacs = 3, .glue_gates = 3, .level_shifters = 22,
       .io_drivers = 4, .esd_pads = 3});
  add({.name = "t15", .opamps = 6, .otas = 3, .bandgaps = 4, .ladders = 2, .cap_dacs = 4,
       .glue_gates = 110, .dffs = 14, .level_shifters = 95, .io_drivers = 14});
  add({.name = "t16", .glue_gates = 90, .dffs = 12, .inv_chains = 6});
  add({.name = "t17", .opamps = 2, .bandgaps = 6, .ladders = 2, .cap_dacs = 4, .glue_gates = 35,
       .level_shifters = 105, .io_drivers = 15, .thick_inv_chains = 12});
  add({.name = "t18", .cap_dacs = 1, .glue_gates = 50, .dffs = 7, .level_shifters = 1,
       .esd_pads = 1});

  // --- testing circuits e1..e4: same vocabulary, new compositions ---
  add({.name = "e1", .glue_gates = 100, .dffs = 14, .ring_oscs = 1, .inv_chains = 6});
  add({.name = "e2", .rc_filters = 2, .glue_gates = 9, .level_shifters = 7, .io_drivers = 3,
       .esd_pads = 4});
  add({.name = "e3", .glue_gates = 50, .dffs = 7, .inv_chains = 4});
  add({.name = "e4", .opamps = 2, .otas = 1, .comparators = 1, .glue_gates = 48, .dffs = 8});

  if (scale != 1.0)
    for (auto& s : specs) s = s.scaled(scale);
  return specs;
}

Suite build_paper_suite(std::uint64_t seed, double scale) {
  Suite suite;
  for (const auto& spec : paper_suite_specs(seed, scale)) {
    Netlist nl = generate_circuit(spec);
    if (spec.name[0] == 'e') {
      suite.test.push_back(std::move(nl));
    } else {
      suite.train.push_back(std::move(nl));
    }
  }
  return suite;
}

}  // namespace paragraph::circuitgen
