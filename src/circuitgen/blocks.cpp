#include "circuitgen/blocks.h"

#include <stdexcept>

#include "util/strings.h"

namespace paragraph::circuitgen {

using circuit::Device;
using util::format;

BlockContext::BlockContext(Netlist& nl, util::Rng& rng, std::string prefix)
    : nl_(nl), rng_(rng), prefix_(std::move(prefix)) {
  vdd_ = nl_.add_net("vdd", /*is_supply=*/true);
  vss_ = nl_.add_net("vss", /*is_supply=*/true);
  vddio_ = nl_.add_net("vddio", /*is_supply=*/true);
}

NetId BlockContext::fresh_net(const std::string& hint) {
  return nl_.add_net(format("%s/%s%d", prefix_.c_str(), hint.c_str(), net_counter_++));
}

std::string BlockContext::fresh_name(const char* kind) {
  return format("%s/%s%d", prefix_.c_str(), kind, dev_counter_++);
}

Sizing BlockContext::random_sizing(bool analog) {
  Sizing sz;
  // Analog devices favour longer channels for matching/gain; digital favour
  // minimum length.
  const std::size_t max_len_idx = menu_.lengths.size() - 1;
  std::size_t len_idx;
  if (analog) {
    len_idx = static_cast<std::size_t>(rng_.uniform_int(2, static_cast<std::int64_t>(max_len_idx)));
  } else {
    len_idx = static_cast<std::size_t>(rng_.uniform_int(0, 2));
  }
  sz.length = menu_.lengths[len_idx];
  sz.num_fins = menu_.fins[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(menu_.fins.size()) - 1))];
  sz.num_fingers = menu_.fingers[static_cast<std::size_t>(
      rng_.uniform_int(0, analog ? 3 : 1))];
  sz.multiplier = menu_.multipliers[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(menu_.multipliers.size()) - 1))];
  return sz;
}

Sizing BlockContext::random_thick_sizing() {
  Sizing sz;
  sz.length = menu_.thick_lengths[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(menu_.thick_lengths.size()) - 1))];
  sz.num_fins = menu_.fins[static_cast<std::size_t>(
      rng_.uniform_int(1, static_cast<std::int64_t>(menu_.fins.size()) - 1))];
  sz.num_fingers = menu_.fingers[static_cast<std::size_t>(rng_.uniform_int(0, 3))];
  sz.multiplier = 1;
  return sz;
}

DeviceId BlockContext::nmos(NetId d, NetId g, NetId s, const Sizing& sz, bool thick) {
  Device dev;
  dev.name = fresh_name(thick ? "mnt" : "mn");
  dev.kind = thick ? DeviceKind::kNmosThick : DeviceKind::kNmos;
  dev.conns = {d, g, s, vss_};
  dev.params.length = sz.length;
  dev.params.num_fingers = sz.num_fingers;
  dev.params.num_fins = sz.num_fins;
  dev.params.multiplier = sz.multiplier;
  return nl_.add_device(std::move(dev));
}

DeviceId BlockContext::pmos(NetId d, NetId g, NetId s, const Sizing& sz, bool thick) {
  Device dev;
  dev.name = fresh_name(thick ? "mpt" : "mp");
  dev.kind = thick ? DeviceKind::kPmosThick : DeviceKind::kPmos;
  dev.conns = {d, g, s, thick ? vddio_ : vdd_};
  dev.params.length = sz.length;
  dev.params.num_fingers = sz.num_fingers;
  dev.params.num_fins = sz.num_fins;
  dev.params.multiplier = sz.multiplier;
  return nl_.add_device(std::move(dev));
}

DeviceId BlockContext::resistor(NetId a, NetId b, double ohms, double length_m) {
  Device dev;
  dev.name = fresh_name("r");
  dev.kind = DeviceKind::kResistor;
  dev.conns = {a, b};
  dev.params.value = ohms;
  dev.params.length = length_m;
  return nl_.add_device(std::move(dev));
}

DeviceId BlockContext::capacitor(NetId a, NetId b, double farads, int multi) {
  Device dev;
  dev.name = fresh_name("c");
  dev.kind = DeviceKind::kCapacitor;
  dev.conns = {a, b};
  dev.params.value = farads;
  dev.params.multiplier = multi;
  return nl_.add_device(std::move(dev));
}

DeviceId BlockContext::diode(NetId anode, NetId cathode, int nf) {
  Device dev;
  dev.name = fresh_name("d");
  dev.kind = DeviceKind::kDiode;
  dev.conns = {anode, cathode};
  dev.params.num_fingers = nf;
  return nl_.add_device(std::move(dev));
}

DeviceId BlockContext::bjt(NetId c, NetId b, NetId e, int multi) {
  Device dev;
  dev.name = fresh_name("q");
  dev.kind = DeviceKind::kBjt;
  dev.conns = {c, b, e};
  dev.params.multiplier = multi;
  return nl_.add_device(std::move(dev));
}

// ---------------- digital ----------------

NetId inverter(BlockContext& ctx, NetId in, NetId out, bool thick) {
  if (out == circuit::kInvalidNet) out = ctx.fresh_net("inv");
  const Sizing n = thick ? ctx.random_thick_sizing() : ctx.random_sizing();
  Sizing p = n;
  p.num_fins = std::min(p.num_fins * 2, ctx.menu().fins.back());
  const NetId vdd = thick ? ctx.vddio() : ctx.vdd();
  ctx.nmos(out, in, ctx.vss(), n, thick);
  ctx.pmos(out, in, vdd, p, thick);
  return out;
}

NetId nand2(BlockContext& ctx, NetId a, NetId b) {
  const NetId out = ctx.fresh_net("nand");
  const NetId mid = ctx.fresh_net("x");
  const Sizing sz = ctx.random_sizing();
  ctx.nmos(mid, a, ctx.vss(), sz);
  ctx.nmos(out, b, mid, sz);
  ctx.pmos(out, a, ctx.vdd(), sz);
  ctx.pmos(out, b, ctx.vdd(), sz);
  return out;
}

NetId nor2(BlockContext& ctx, NetId a, NetId b) {
  const NetId out = ctx.fresh_net("nor");
  const NetId mid = ctx.fresh_net("x");
  const Sizing sz = ctx.random_sizing();
  ctx.nmos(out, a, ctx.vss(), sz);
  ctx.nmos(out, b, ctx.vss(), sz);
  ctx.pmos(mid, a, ctx.vdd(), sz);
  ctx.pmos(out, b, mid, sz);
  return out;
}

NetId xor2(BlockContext& ctx, NetId a, NetId b) {
  const NetId na = inverter(ctx, a);
  const NetId nb = inverter(ctx, b);
  const NetId t1 = nand2(ctx, a, nb);
  const NetId t2 = nand2(ctx, na, b);
  return nand2(ctx, t1, t2);
}

NetId mux2(BlockContext& ctx, NetId a, NetId b, NetId sel) {
  const NetId nsel = inverter(ctx, sel);
  const NetId out = ctx.fresh_net("mux");
  const Sizing sz = ctx.random_sizing();
  // Transmission gates.
  ctx.nmos(out, sel, a, sz);
  ctx.pmos(out, nsel, a, sz);
  ctx.nmos(out, nsel, b, sz);
  ctx.pmos(out, sel, b, sz);
  return out;
}

NetId dff(BlockContext& ctx, NetId d, NetId clk) {
  const NetId nclk = inverter(ctx, clk);
  const NetId bclk = inverter(ctx, nclk);
  const Sizing sz = ctx.random_sizing();

  // Master latch.
  const NetId m_in = ctx.fresh_net("dffm");
  ctx.nmos(m_in, nclk, d, sz);
  ctx.pmos(m_in, bclk, d, sz);
  const NetId m_out = inverter(ctx, m_in);
  const NetId m_fb = inverter(ctx, m_out);
  ctx.nmos(m_in, bclk, m_fb, sz);
  ctx.pmos(m_in, nclk, m_fb, sz);

  // Slave latch.
  const NetId s_in = ctx.fresh_net("dffs");
  ctx.nmos(s_in, bclk, m_out, sz);
  ctx.pmos(s_in, nclk, m_out, sz);
  const NetId q = inverter(ctx, s_in);
  const NetId s_fb = inverter(ctx, q);
  ctx.nmos(s_in, nclk, s_fb, sz);
  ctx.pmos(s_in, bclk, s_fb, sz);
  return q;
}

NetId inverter_chain(BlockContext& ctx, NetId in, int stages, bool thick) {
  NetId cur = in;
  for (int i = 0; i < stages; ++i) cur = inverter(ctx, cur, circuit::kInvalidNet, thick);
  return cur;
}

NetId ring_oscillator(BlockContext& ctx, NetId enable, int stages) {
  if (stages < 3 || stages % 2 == 0)
    throw std::invalid_argument("ring_oscillator: stages must be odd and >= 3");
  const NetId osc = ctx.fresh_net("osc");
  // NAND(enable, feedback) followed by (stages-1) inverters closing the loop.
  NetId cur = nand2(ctx, enable, osc);
  for (int i = 0; i < stages - 2; ++i) cur = inverter(ctx, cur);
  inverter(ctx, cur, osc);
  return osc;
}

std::vector<NetId> glue_logic(BlockContext& ctx, const std::vector<NetId>& inputs,
                              int num_gates) {
  if (inputs.empty()) throw std::invalid_argument("glue_logic: need at least one input");
  std::vector<NetId> pool = inputs;
  std::vector<int> consumers(pool.size(), 1);  // inputs count as consumed
  std::vector<NetId> produced;
  for (int g = 0; g < num_gates; ++g) {
    auto pick = [&]() {
      return pool[static_cast<std::size_t>(
          ctx.rng().uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    const NetId a = pick();
    const NetId b = pick();
    NetId out;
    switch (ctx.rng().uniform_int(0, 4)) {
      case 0: out = inverter(ctx, a); break;
      case 1: out = nand2(ctx, a, b); break;
      case 2: out = nor2(ctx, a, b); break;
      case 3: out = mux2(ctx, a, b, pick()); break;
      default: out = nand2(ctx, a, b); break;
    }
    pool.push_back(out);
    produced.push_back(out);
  }
  return produced;
}

// ---------------- analog ----------------

NetId bias_generator(BlockContext& ctx) {
  const NetId bias = ctx.fresh_net("bias");
  const double r = ctx.rng().uniform(5e3, 50e3);
  ctx.resistor(ctx.vdd(), bias, r, ctx.rng().uniform(1e-6, 10e-6));
  Sizing sz = ctx.random_sizing(/*analog=*/true);
  ctx.nmos(bias, bias, ctx.vss(), sz);  // diode-connected
  return bias;
}

std::vector<NetId> current_mirror(BlockContext& ctx, NetId bias, int outputs,
                                  bool pmos_mirror) {
  std::vector<NetId> outs;
  Sizing sz = ctx.random_sizing(/*analog=*/true);
  if (pmos_mirror) {
    // Diode device establishing the gate voltage.
    ctx.pmos(bias, bias, ctx.vdd(), sz);
    for (int i = 0; i < outputs; ++i) {
      const NetId o = ctx.fresh_net("mir");
      Sizing osz = sz;
      osz.multiplier = static_cast<int>(ctx.rng().uniform_int(1, 4));
      ctx.pmos(o, bias, ctx.vdd(), osz);
      outs.push_back(o);
    }
  } else {
    ctx.nmos(bias, bias, ctx.vss(), sz);
    for (int i = 0; i < outputs; ++i) {
      const NetId o = ctx.fresh_net("mir");
      Sizing osz = sz;
      osz.multiplier = static_cast<int>(ctx.rng().uniform_int(1, 4));
      ctx.nmos(o, bias, ctx.vss(), osz);
      outs.push_back(o);
    }
  }
  return outs;
}

NetId ota_5t(BlockContext& ctx, NetId inp, NetId inn, NetId bias) {
  const NetId tail = ctx.fresh_net("tail");
  const NetId outn = ctx.fresh_net("otan");
  const NetId out = ctx.fresh_net("ota");
  const Sizing pair_sz = ctx.random_sizing(/*analog=*/true);
  const Sizing load_sz = ctx.random_sizing(/*analog=*/true);
  Sizing tail_sz = pair_sz;
  tail_sz.multiplier *= 2;
  ctx.nmos(tail, bias, ctx.vss(), tail_sz);        // tail current source
  ctx.nmos(outn, inp, tail, pair_sz);              // input pair
  ctx.nmos(out, inn, tail, pair_sz);
  ctx.pmos(outn, outn, ctx.vdd(), load_sz);        // mirror load
  ctx.pmos(out, outn, ctx.vdd(), load_sz);
  return out;
}

NetId two_stage_opamp(BlockContext& ctx, NetId inp, NetId inn, NetId bias) {
  const NetId stage1 = ota_5t(ctx, inp, inn, bias);
  const NetId out = ctx.fresh_net("amp");
  const Sizing cs_sz = ctx.random_sizing(/*analog=*/true);
  Sizing tail_sz = ctx.random_sizing(/*analog=*/true);
  tail_sz.multiplier *= 2;
  ctx.pmos(out, stage1, ctx.vdd(), cs_sz);  // common-source second stage
  ctx.nmos(out, bias, ctx.vss(), tail_sz);  // current-source load
  // Miller compensation: Rz + Cc from stage1 to out.
  const NetId zn = ctx.fresh_net("cz");
  ctx.resistor(stage1, zn, ctx.rng().uniform(500.0, 5e3), ctx.rng().uniform(0.5e-6, 2e-6));
  ctx.capacitor(zn, out, ctx.rng().uniform(20e-15, 200e-15));
  return out;
}

std::pair<NetId, NetId> strongarm_comparator(BlockContext& ctx, NetId clk, NetId inp,
                                             NetId inn) {
  const NetId tail = ctx.fresh_net("satail");
  const NetId xp = ctx.fresh_net("sax");
  const NetId xn = ctx.fresh_net("say");
  const NetId outp = ctx.fresh_net("saop");
  const NetId outn = ctx.fresh_net("saon");
  const Sizing pair_sz = ctx.random_sizing(/*analog=*/true);
  const Sizing latch_sz = ctx.random_sizing();
  Sizing clk_sz = latch_sz;
  clk_sz.multiplier *= 2;
  ctx.nmos(tail, clk, ctx.vss(), clk_sz);   // clocked tail
  ctx.nmos(xp, inp, tail, pair_sz);         // input pair
  ctx.nmos(xn, inn, tail, pair_sz);
  ctx.nmos(outn, outp, xp, latch_sz);       // cross-coupled NMOS
  ctx.nmos(outp, outn, xn, latch_sz);
  ctx.pmos(outn, outp, ctx.vdd(), latch_sz);  // cross-coupled PMOS
  ctx.pmos(outp, outn, ctx.vdd(), latch_sz);
  ctx.pmos(outn, clk, ctx.vdd(), latch_sz);   // precharge
  ctx.pmos(outp, clk, ctx.vdd(), latch_sz);
  return {outp, outn};
}

std::vector<NetId> resistor_ladder(BlockContext& ctx, int taps) {
  std::vector<NetId> out;
  NetId prev = ctx.vdd();
  for (int i = 0; i < taps; ++i) {
    const NetId tap = ctx.fresh_net("tap");
    ctx.resistor(prev, tap, ctx.rng().uniform(1e3, 20e3), ctx.rng().uniform(1e-6, 5e-6));
    out.push_back(tap);
    prev = tap;
  }
  ctx.resistor(prev, ctx.vss(), ctx.rng().uniform(1e3, 20e3), ctx.rng().uniform(1e-6, 5e-6));
  return out;
}

NetId rc_filter(BlockContext& ctx, NetId in, int stages) {
  NetId cur = in;
  for (int i = 0; i < stages; ++i) {
    const NetId nxt = ctx.fresh_net("flt");
    ctx.resistor(cur, nxt, ctx.rng().uniform(1e3, 100e3), ctx.rng().uniform(1e-6, 10e-6));
    ctx.capacitor(nxt, ctx.vss(), ctx.rng().uniform(10e-15, 1e-12));
    cur = nxt;
  }
  return cur;
}

NetId cap_dac(BlockContext& ctx, const std::vector<NetId>& bit_drivers) {
  const NetId top = ctx.fresh_net("dactop");
  for (std::size_t b = 0; b < bit_drivers.size(); ++b) {
    const int multi = 1 << std::min<std::size_t>(b, 6);
    ctx.capacitor(top, bit_drivers[b], 0.5e-15 * multi, multi);
  }
  // Dummy/termination cap.
  ctx.capacitor(top, ctx.vss(), 0.5e-15, 1);
  return top;
}

NetId bandgap_core(BlockContext& ctx, NetId bias) {
  const NetId vref = ctx.fresh_net("vref");
  const NetId va = ctx.fresh_net("vbe1");
  const NetId vb = ctx.fresh_net("vbe2");
  // Mirror from the bias feeding both branches.
  const Sizing msz = ctx.random_sizing(/*analog=*/true);
  ctx.pmos(bias, bias, ctx.vdd(), msz);
  ctx.pmos(va, bias, ctx.vdd(), msz);
  ctx.pmos(vref, bias, ctx.vdd(), msz);
  // Diode-connected BJTs with emitter-area ratio.
  ctx.bjt(ctx.vss(), va, va, 1);
  const NetId ve = ctx.fresh_net("ve");
  ctx.bjt(ctx.vss(), vb, ve, 8);
  ctx.resistor(vb, va, ctx.rng().uniform(5e3, 30e3), ctx.rng().uniform(2e-6, 8e-6));
  ctx.resistor(ve, ctx.vss(), ctx.rng().uniform(1e3, 10e3), ctx.rng().uniform(1e-6, 4e-6));
  ctx.resistor(vref, ctx.vss(), ctx.rng().uniform(20e3, 100e3), ctx.rng().uniform(4e-6, 12e-6));
  return vref;
}

// ---------------- memory / mixed-signal macros ----------------

std::pair<NetId, NetId> sram_cell(BlockContext& ctx, NetId wordline, NetId bitline,
                                  NetId bitline_b) {
  const NetId bit = ctx.fresh_net("sb");
  const NetId bitb = ctx.fresh_net("sbb");
  Sizing pull{16e-9, 1, 1, 1};
  Sizing access{16e-9, 1, 1, 1};
  // Cross-coupled inverters.
  ctx.nmos(bit, bitb, ctx.vss(), pull);
  ctx.pmos(bit, bitb, ctx.vdd(), pull);
  ctx.nmos(bitb, bit, ctx.vss(), pull);
  ctx.pmos(bitb, bit, ctx.vdd(), pull);
  // Access transistors.
  ctx.nmos(bit, wordline, bitline, access);
  ctx.nmos(bitb, wordline, bitline_b, access);
  return {bit, bitb};
}

std::vector<NetId> sram_array(BlockContext& ctx, int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("sram_array: need rows, cols >= 1");
  std::vector<NetId> wordlines;
  std::vector<NetId> bls, blbs;
  for (int c = 0; c < cols; ++c) {
    bls.push_back(ctx.fresh_net("bl"));
    blbs.push_back(ctx.fresh_net("blb"));
  }
  for (int r = 0; r < rows; ++r) {
    const NetId wl = ctx.fresh_net("wl");
    wordlines.push_back(wl);
    for (int c = 0; c < cols; ++c)
      sram_cell(ctx, wl, bls[static_cast<std::size_t>(c)], blbs[static_cast<std::size_t>(c)]);
  }
  // Bitline precharge devices.
  Sizing pre{16e-9, 1, 2, 1};
  const NetId pre_en = ctx.fresh_net("pre");
  for (int c = 0; c < cols; ++c) {
    ctx.pmos(bls[static_cast<std::size_t>(c)], pre_en, ctx.vdd(), pre);
    ctx.pmos(blbs[static_cast<std::size_t>(c)], pre_en, ctx.vdd(), pre);
  }
  return wordlines;
}

NetId ldo(BlockContext& ctx, NetId vref, NetId bias) {
  const NetId fb = ctx.fresh_net("fb");
  const NetId gate = ota_5t(ctx, vref, fb, bias);
  const NetId out = ctx.fresh_net("ldo");
  Sizing pass = ctx.random_sizing(/*analog=*/true);
  pass.num_fingers = ctx.menu().fingers.back();
  pass.multiplier = 4;
  ctx.pmos(out, gate, ctx.vdd(), pass);  // big pass device
  // Feedback divider and output decoupling.
  ctx.resistor(out, fb, ctx.rng().uniform(20e3, 100e3), ctx.rng().uniform(4e-6, 10e-6));
  ctx.resistor(fb, ctx.vss(), ctx.rng().uniform(20e3, 100e3), ctx.rng().uniform(4e-6, 10e-6));
  ctx.capacitor(out, ctx.vss(), ctx.rng().uniform(0.5e-12, 5e-12));
  return out;
}

NetId charge_pump(BlockContext& ctx, NetId clk, NetId clkb, int stages) {
  if (stages < 1) throw std::invalid_argument("charge_pump: need stages >= 1");
  NetId cur = ctx.vdd();
  for (int i = 0; i < stages; ++i) {
    const NetId nxt = ctx.fresh_net("cp");
    // Diode-connected transfer device plus the pump capacitor.
    Sizing sz = ctx.random_sizing();
    ctx.nmos(nxt, cur, cur, sz);  // drain=next, gate=source=cur: diode
    ctx.capacitor(nxt, (i % 2 == 0) ? clk : clkb, ctx.rng().uniform(50e-15, 500e-15));
    cur = nxt;
  }
  // Output reservoir.
  ctx.capacitor(cur, ctx.vss(), ctx.rng().uniform(0.5e-12, 2e-12));
  return cur;
}

NetId clock_divider(BlockContext& ctx, NetId clk, int stages) {
  if (stages < 1) throw std::invalid_argument("clock_divider: need stages >= 1");
  NetId cur = clk;
  for (int i = 0; i < stages; ++i) {
    // Divide-by-2: DFF clocked by `cur` with Q fed back to D through an
    // inverter (the feedback loop is closed via inverter's `out` target).
    const NetId d = ctx.fresh_net("divd");
    const NetId q = dff(ctx, d, cur);
    inverter(ctx, q, d);
    cur = q;
  }
  return cur;
}

NetId delay_line(BlockContext& ctx, NetId in, NetId vctrl, int stages) {
  NetId cur = in;
  for (int i = 0; i < stages; ++i) {
    const NetId out = ctx.fresh_net("dl");
    const NetId starve = ctx.fresh_net("st");
    const Sizing sz = ctx.random_sizing();
    // Current-starved inverter: footer controlled by vctrl.
    ctx.nmos(starve, vctrl, ctx.vss(), sz);
    ctx.nmos(out, cur, starve, sz);
    ctx.pmos(out, cur, ctx.vdd(), sz);
    cur = out;
  }
  return cur;
}

// ---------------- I/O ----------------

NetId level_shifter(BlockContext& ctx, NetId in) {
  const NetId nin = inverter(ctx, in);
  const NetId xl = ctx.fresh_net("lsl");
  const NetId out = ctx.fresh_net("lso");
  const Sizing nsz = ctx.random_thick_sizing();
  const Sizing psz = ctx.random_thick_sizing();
  ctx.nmos(xl, in, ctx.vss(), nsz, /*thick=*/true);
  ctx.nmos(out, nin, ctx.vss(), nsz, /*thick=*/true);
  ctx.pmos(xl, out, ctx.vddio(), psz, /*thick=*/true);   // cross-coupled
  ctx.pmos(out, xl, ctx.vddio(), psz, /*thick=*/true);
  return out;
}

NetId io_driver(BlockContext& ctx, NetId in, int stages) {
  NetId cur = in;
  for (int i = 0; i < stages; ++i) {
    const NetId nxt = ctx.fresh_net(i + 1 == stages ? "pad" : "drv");
    Sizing nsz = ctx.random_thick_sizing();
    Sizing psz = nsz;
    // Taper: later stages get more fingers.
    nsz.num_fingers = std::min(nsz.num_fingers << i, 16);
    psz.num_fingers = std::min(psz.num_fingers << i, 16);
    psz.num_fins = std::min(psz.num_fins * 2, ctx.menu().fins.back());
    ctx.nmos(nxt, cur, ctx.vss(), nsz, /*thick=*/true);
    ctx.pmos(nxt, cur, ctx.vddio(), psz, /*thick=*/true);
    cur = nxt;
  }
  return cur;
}

void esd_clamp(BlockContext& ctx, NetId pad) {
  ctx.diode(pad, ctx.vddio(), static_cast<int>(ctx.rng().uniform_int(2, 8)));
  ctx.diode(ctx.vss(), pad, static_cast<int>(ctx.rng().uniform_int(2, 8)));
}

}  // namespace paragraph::circuitgen
