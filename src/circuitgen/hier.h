// Hierarchical giant-circuit generator (the out-of-core / plan-cache
// scaling workload).
//
// build_paper_suite() emits FLAT netlists sized like the paper's suite;
// this generator instead emits a deck with explicit `.subckt` templates so
// the parser's instance provenance (circuit/hierarchy.h) and the plan
// cache (gnn/plan_cache.h) have real repetition to exploit:
//
//   .subckt hg_cell  in out   - a buffered RC delay line of
//                               `stages_per_cell` stages (2 MOS + R + C
//                               per stage); deep enough that the cell
//                               middle is interior at the paper's L = 5
//   .subckt hg_col   a b      - `cells_per_column` cells chained in series
//   top level                 - `columns` column instances bridged by a
//                               small amount of unique glue
//
// Every cell instance shares one template (one structural hash), as does
// every column, so a PlanCache run memoizes one representative per level
// and assembles the other `columns * cells_per_column - 1` interiors from
// it. At full_scale() the deck exceeds 100k graph nodes (devices + nets).
//
// Deterministic: the deck text depends only on the spec (the seed perturbs
// element values in the template bodies and glue, never the topology), so
// two builds of the same spec are byte-identical.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/netlist.h"

namespace paragraph::circuitgen {

struct HierGiantSpec {
  std::string name = "hier_giant";
  std::uint64_t seed = 1;
  int columns = 8;           // hg_col instances at top level
  int cells_per_column = 8;  // hg_cell instances per column
  int stages_per_cell = 10;  // inverter+RC stages per cell (interior depth)

  // Approximate graph-node count (devices + nets) of the built netlist.
  std::size_t approx_nodes() const;
};

// Spec presets keyed by the bench profile scale knob: smoke stays in the
// low thousands of nodes, 1.0 ("full") exceeds 100k.
HierGiantSpec hier_giant_spec(double scale, std::uint64_t seed = 1);

// The SPICE deck text (templates + instances + glue).
std::string hier_giant_deck(const HierGiantSpec& spec);

// Parses the deck into a netlist named spec.name, with subckt instance
// provenance populated by the parser.
circuit::Netlist build_hier_giant(const HierGiantSpec& spec);

}  // namespace paragraph::circuitgen
