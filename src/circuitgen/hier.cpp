#include "circuitgen/hier.h"

#include <algorithm>
#include <cmath>

#include "circuit/spice_parser.h"
#include "util/rng.h"

namespace paragraph::circuitgen {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// One buffered RC delay-line template. Each stage is an inverter (pmos +
// nmos) driving an RC segment; element values vary per stage (same text in
// every instance, so every instance keeps the same structural hash). The
// chain is `stages` nets deep end to end, which puts the middle stages at
// graph depth >> L+1 from the {in, out} boundary — the interior the plan
// cache memoizes.
std::string cell_template(const HierGiantSpec& spec, util::Rng& rng) {
  std::string s = ".subckt hg_cell in out\n";
  std::string prev = "in";
  for (int i = 1; i <= spec.stages_per_cell; ++i) {
    const bool last = i == spec.stages_per_cell;
    const std::string mid = "s" + std::to_string(i);
    const std::string next = last ? "out" : "n" + std::to_string(i);
    const std::string idx = std::to_string(i);
    const int nfin = 1 + static_cast<int>(rng.uniform_int(0, 3));
    s += "Mp" + idx + " " + mid + " " + prev + " vdd vdd pmos L=16n NFIN=" +
         std::to_string(2 * nfin) + "\n";
    s += "Mn" + idx + " " + mid + " " + prev + " vss vss nmos L=16n NFIN=" +
         std::to_string(nfin) + "\n";
    s += "R" + idx + " " + mid + " " + next + " " + fmt(rng.uniform(500.0, 5000.0)) + "\n";
    s += "C" + idx + " " + next + " vss " + fmt(rng.uniform(0.5, 4.0)) + "f\n";
    prev = next;
  }
  s += ".ends\n";
  return s;
}

// A column chains `cells_per_column` cell instances in series.
std::string column_template(const HierGiantSpec& spec) {
  std::string s = ".subckt hg_col a b\n";
  std::string prev = "a";
  for (int i = 1; i <= spec.cells_per_column; ++i) {
    const std::string next =
        i == spec.cells_per_column ? "b" : "c" + std::to_string(i);
    s += "Xc" + std::to_string(i) + " " + prev + " " + next + " hg_cell\n";
    prev = next;
  }
  s += ".ends\n";
  return s;
}

}  // namespace

std::size_t HierGiantSpec::approx_nodes() const {
  // Per stage: 4 devices + 2 nets; per cell: +1 boundary net; glue ~2/col.
  const std::size_t per_cell = static_cast<std::size_t>(stages_per_cell) * 6 + 1;
  return static_cast<std::size_t>(columns) * cells_per_column * per_cell +
         static_cast<std::size_t>(columns) * 2;
}

HierGiantSpec hier_giant_spec(double scale, std::uint64_t seed) {
  HierGiantSpec spec;
  spec.seed = seed;
  if (scale >= 1.0) {
    spec.columns = 48;
    spec.cells_per_column = 40;
    spec.stages_per_cell = 12;  // ~140k nodes
  } else if (scale >= 0.2) {
    spec.columns = 16;
    spec.cells_per_column = 16;
    spec.stages_per_cell = 10;  // ~16k nodes
  } else {
    spec.columns = 6;
    spec.cells_per_column = 6;
    spec.stages_per_cell = 10;  // ~2k nodes
  }
  return spec;
}

std::string hier_giant_deck(const HierGiantSpec& spec) {
  util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x68696572ULL);
  std::string deck = "* hier_giant: " + std::to_string(spec.columns) + " cols x " +
                     std::to_string(spec.cells_per_column) + " cells x " +
                     std::to_string(spec.stages_per_cell) + " stages\n";
  deck += cell_template(spec, rng);
  deck += column_template(spec);
  // Top level: columns driven from a shared source rail, each with its own
  // sense load — a little unique glue so the top itself never hashes like
  // a template.
  for (int k = 1; k <= spec.columns; ++k) {
    const std::string idx = std::to_string(k);
    deck += "Xcol" + idx + " drv" + idx + " sense" + idx + " hg_col\n";
    deck += "Rdrv" + idx + " src drv" + idx + " " + fmt(rng.uniform(80.0, 300.0)) + "\n";
    deck += "Csense" + idx + " sense" + idx + " vss " + fmt(rng.uniform(1.0, 9.0)) + "f\n";
  }
  deck += "Rsrc src vss " + fmt(rng.uniform(1e4, 5e4)) + "\n";
  return deck;
}

circuit::Netlist build_hier_giant(const HierGiantSpec& spec) {
  circuit::Netlist nl = circuit::parse_spice_string(hier_giant_deck(spec), spec.name);
  return nl;
}

}  // namespace paragraph::circuitgen
