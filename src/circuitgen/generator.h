// Synthetic circuit-suite generator.
//
// Substitutes the paper's proprietary industrial dataset (Table IV) with
// generated analog/mixed-signal circuits. Each CircuitSpec controls the
// block mix; build_paper_suite() instantiates 18 training circuits
// (t1..t18) and 4 testing circuits (e1..e4) whose device-type profiles
// mirror the paper's Table IV at a CPU-friendly scale. Test circuits reuse
// the same structural vocabulary with different compositions and seeds,
// matching the paper's designer-recommended train/test split.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace paragraph::circuitgen {

struct CircuitSpec {
  std::string name = "ckt";
  std::uint64_t seed = 1;

  // analog
  int opamps = 0;
  int otas = 0;
  int comparators = 0;
  int mirrors = 0;
  int bandgaps = 0;
  int rc_filters = 0;
  int ladders = 0;
  int cap_dacs = 0;
  // digital (core devices)
  int glue_gates = 0;
  int dffs = 0;
  int ring_oscs = 0;
  int inv_chains = 0;
  // I/O (thick-gate devices)
  int level_shifters = 0;
  int io_drivers = 0;
  int esd_pads = 0;
  int thick_inv_chains = 0;

  // Scales every block count (rounded, keeping nonzero counts >= 1).
  CircuitSpec scaled(double factor) const;
};

// Generates one flat circuit from the spec. Deterministic in spec.seed.
circuit::Netlist generate_circuit(const CircuitSpec& spec);

struct Suite {
  std::vector<circuit::Netlist> train;  // t1..t18
  std::vector<circuit::Netlist> test;   // e1..e4
};

// The 22 specs mirroring Table IV (relative mixes) at `scale`.
std::vector<CircuitSpec> paper_suite_specs(std::uint64_t seed, double scale = 1.0);

// Builds the full suite. `scale` multiplies block counts; 1.0 gives a suite
// of roughly 10k devices total (about 1/80 of the paper's).
Suite build_paper_suite(std::uint64_t seed, double scale = 1.0);

}  // namespace paragraph::circuitgen
