// Parametric circuit-structure library.
//
// These are the recurring schematic structures the paper's premise rests on
// ("similar circuit structures produce similar parasitics", Fig 1): analog
// cells (differential pairs, mirrors, op-amps, comparators, bandgaps),
// digital cells (inverters, NAND/NOR, DFFs), and I/O structures built from
// thick-gate devices. The suite generator (generator.h) composes them into
// full circuits.
//
// Every builder appends devices to a Netlist through a BlockContext that
// supplies fresh net/device names, supply rails, and randomised-but-
// discrete device sizing (foundry-like L/NFIN/NF menus).
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "util/rng.h"

namespace paragraph::circuitgen {

using circuit::DeviceId;
using circuit::DeviceKind;
using circuit::NetId;
using circuit::Netlist;

// Discrete sizing menus mimicking a sub-10nm FinFET PDK.
struct SizingMenu {
  std::vector<double> lengths = {16e-9, 20e-9, 28e-9, 36e-9, 60e-9, 100e-9, 150e-9, 240e-9};
  std::vector<int> fins = {1, 2, 3, 4, 6, 8, 12};
  std::vector<int> fingers = {1, 2, 4, 8};
  std::vector<int> multipliers = {1, 1, 1, 2, 4};
  // Thick-gate (I/O) devices use longer channels.
  std::vector<double> thick_lengths = {150e-9, 240e-9, 400e-9, 600e-9};
};

struct Sizing {
  double length = 16e-9;
  int num_fingers = 1;
  int num_fins = 2;
  int multiplier = 1;
};

// Shared state threaded through all block builders.
class BlockContext {
 public:
  BlockContext(Netlist& nl, util::Rng& rng, std::string prefix);

  Netlist& netlist() { return nl_; }
  util::Rng& rng() { return rng_; }

  NetId vdd() const { return vdd_; }
  NetId vss() const { return vss_; }
  NetId vddio() const { return vddio_; }

  // Fresh internal net named <prefix>/n<k>.
  NetId fresh_net(const std::string& hint = "n");

  // Random sizing from the menu; `analog` biases toward longer channels.
  Sizing random_sizing(bool analog = false);
  Sizing random_thick_sizing();

  // Device emitters. Bulk is tied to the appropriate rail automatically.
  DeviceId nmos(NetId d, NetId g, NetId s, const Sizing& sz, bool thick = false);
  DeviceId pmos(NetId d, NetId g, NetId s, const Sizing& sz, bool thick = false);
  DeviceId resistor(NetId a, NetId b, double ohms, double length_m);
  DeviceId capacitor(NetId a, NetId b, double farads, int multi = 1);
  DeviceId diode(NetId anode, NetId cathode, int nf = 1);
  DeviceId bjt(NetId c, NetId b, NetId e, int multi = 1);

  const SizingMenu& menu() const { return menu_; }

 private:
  std::string fresh_name(const char* kind);

  Netlist& nl_;
  util::Rng& rng_;
  std::string prefix_;
  SizingMenu menu_;
  NetId vdd_, vss_, vddio_;
  int net_counter_ = 0;
  int dev_counter_ = 0;
};

// ---- digital cells (returns the output net unless stated otherwise) ----
NetId inverter(BlockContext& ctx, NetId in, NetId out = circuit::kInvalidNet,
               bool thick = false);
NetId nand2(BlockContext& ctx, NetId a, NetId b);
NetId nor2(BlockContext& ctx, NetId a, NetId b);
NetId xor2(BlockContext& ctx, NetId a, NetId b);
NetId mux2(BlockContext& ctx, NetId a, NetId b, NetId sel);
// Transmission-gate D flip-flop; returns Q.
NetId dff(BlockContext& ctx, NetId d, NetId clk);
// Chain of `stages` inverters; returns the final output net.
NetId inverter_chain(BlockContext& ctx, NetId in, int stages, bool thick = false);
// Ring oscillator with an enable NAND; returns the oscillation node.
NetId ring_oscillator(BlockContext& ctx, NetId enable, int stages);
// Random combinational cloud of `num_gates` gates over the given inputs;
// returns the set of "output" nets (gates nothing else consumes).
std::vector<NetId> glue_logic(BlockContext& ctx, const std::vector<NetId>& inputs,
                              int num_gates);

// ---- analog cells ----
// Diode-connected reference + resistor from vdd; returns the bias net.
NetId bias_generator(BlockContext& ctx);
// N-output NMOS (or PMOS) current mirror driven by bias; returns outputs.
std::vector<NetId> current_mirror(BlockContext& ctx, NetId bias, int outputs, bool pmos_mirror);
// 5-transistor OTA; returns the output net.
NetId ota_5t(BlockContext& ctx, NetId inp, NetId inn, NetId bias);
// Two-stage Miller-compensated op-amp; returns the output net.
NetId two_stage_opamp(BlockContext& ctx, NetId inp, NetId inn, NetId bias);
// StrongARM comparator; returns {outp, outn}.
std::pair<NetId, NetId> strongarm_comparator(BlockContext& ctx, NetId clk, NetId inp, NetId inn);
// Series resistor ladder with `taps` interior taps between vdd and vss.
std::vector<NetId> resistor_ladder(BlockContext& ctx, int taps);
// Single-pole RC low-pass stages; returns the final output.
NetId rc_filter(BlockContext& ctx, NetId in, int stages);
// Binary-weighted capacitor DAC on a shared top plate; returns the top net.
NetId cap_dac(BlockContext& ctx, const std::vector<NetId>& bit_drivers);
// Brokaw-style bandgap core (BJTs + resistors + mirror); returns vref.
NetId bandgap_core(BlockContext& ctx, NetId bias);

// ---- memory / mixed-signal macros ----
// 6T SRAM bit cell; returns {bit, bitb} storage nodes.
std::pair<NetId, NetId> sram_cell(BlockContext& ctx, NetId wordline, NetId bitline,
                                  NetId bitline_b);
// rows x cols SRAM array with shared word/bit lines (the classic source of
// very-high-fanout nets); returns the wordline nets.
std::vector<NetId> sram_array(BlockContext& ctx, int rows, int cols);
// Low-dropout regulator: error amplifier + pass PMOS + feedback divider;
// returns the regulated output net.
NetId ldo(BlockContext& ctx, NetId vref, NetId bias);
// Dickson-style 2-phase charge pump with `stages` pump capacitors;
// returns the pumped output net.
NetId charge_pump(BlockContext& ctx, NetId clk, NetId clkb, int stages);
// Divide-by-2^stages ripple clock divider from DFFs; returns the slowest
// output.
NetId clock_divider(BlockContext& ctx, NetId clk, int stages);
// Voltage-controlled delay line: current-starved inverters; returns the
// delayed output.
NetId delay_line(BlockContext& ctx, NetId in, NetId vctrl, int stages);

// ---- I/O structures (thick-gate) ----
// Core-to-IO level shifter; returns the shifted output.
NetId level_shifter(BlockContext& ctx, NetId in);
// Tapered thick-gate pad driver; returns the pad net.
NetId io_driver(BlockContext& ctx, NetId in, int stages);
// ESD protection diodes pad->rails.
void esd_clamp(BlockContext& ctx, NetId pad);

}  // namespace paragraph::circuitgen
