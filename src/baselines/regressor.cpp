#include "baselines/regressor.h"

#include <cmath>
#include <stdexcept>

namespace paragraph::baselines {

void LinearRegression::fit(const nn::Matrix& x, const std::vector<float>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("LinearRegression::fit: size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("LinearRegression::fit: empty data");
  const std::size_t f = x.cols() + 1;  // + intercept
  std::vector<double> xtx(f * f, 0.0);
  std::vector<double> xty(f, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::vector<double> row(f);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] = x(r, c);
    row[f - 1] = 1.0;
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = 0; j < f; ++j) xtx[i * f + j] += row[i] * row[j];
      xty[i] += row[i] * y[r];
    }
  }
  for (std::size_t i = 0; i + 1 < f; ++i) xtx[i * f + i] += l2_;

  // Gaussian elimination with partial pivoting.
  coef_.assign(f, 0.0);
  std::vector<double> a = xtx;
  std::vector<double> b = xty;
  for (std::size_t col = 0; col < f; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < f; ++r)
      if (std::abs(a[r * f + col]) > std::abs(a[piv * f + col])) piv = r;
    if (std::abs(a[piv * f + col]) < 1e-12) continue;  // singular column -> coef 0
    if (piv != col) {
      for (std::size_t c = 0; c < f; ++c) std::swap(a[piv * f + c], a[col * f + c]);
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < f; ++r) {
      const double m = a[r * f + col] / a[col * f + col];
      for (std::size_t c = col; c < f; ++c) a[r * f + c] -= m * a[col * f + c];
      b[r] -= m * b[col];
    }
  }
  for (std::size_t col = f; col-- > 0;) {
    double s = b[col];
    for (std::size_t c = col + 1; c < f; ++c) s -= a[col * f + c] * coef_[c];
    coef_[col] = std::abs(a[col * f + col]) < 1e-12 ? 0.0 : s / a[col * f + col];
  }
}

std::vector<float> LinearRegression::predict(const nn::Matrix& x) const {
  if (coef_.empty()) throw std::logic_error("LinearRegression::predict before fit");
  if (x.cols() + 1 != coef_.size())
    throw std::invalid_argument("LinearRegression::predict: feature count mismatch");
  std::vector<float> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double s = coef_.back();
    for (std::size_t c = 0; c < x.cols(); ++c) s += coef_[c] * x(r, c);
    out[r] = static_cast<float>(s);
  }
  return out;
}

}  // namespace paragraph::baselines
