// Classical ML baselines operating on node features alone (paper Fig 6:
// "XGBoost and Linear Regression based on node features alone").
#pragma once

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace paragraph::baselines {

class Regressor {
 public:
  virtual ~Regressor() = default;
  // X: one row per sample. y.size() must equal X.rows().
  virtual void fit(const nn::Matrix& x, const std::vector<float>& y) = 0;
  virtual std::vector<float> predict(const nn::Matrix& x) const = 0;
};

// Ridge regression solved by normal equations (feature dims here are <= 4).
class LinearRegression final : public Regressor {
 public:
  explicit LinearRegression(double l2 = 1e-6) : l2_(l2) {}
  void fit(const nn::Matrix& x, const std::vector<float>& y) override;
  std::vector<float> predict(const nn::Matrix& x) const override;

  const std::vector<double>& coefficients() const { return coef_; }  // last = intercept

 private:
  double l2_;
  std::vector<double> coef_;
};

}  // namespace paragraph::baselines
