#include "baselines/gbrt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace paragraph::baselines {

float Gbrt::Tree::predict_one(const float* row) const {
  std::int32_t n = 0;
  while (nodes[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& node = nodes[static_cast<std::size_t>(n)];
    n = row[node.feature] < node.threshold ? node.left : node.right;
  }
  return nodes[static_cast<std::size_t>(n)].value;
}

void Gbrt::fit(const nn::Matrix& x, const std::vector<float>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("Gbrt::fit: size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("Gbrt::fit: empty data");
  trees_.clear();
  const std::size_t n = x.rows();

  base_score_ = 0.0;
  for (const float v : y) base_score_ += v;
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);
  std::vector<std::uint32_t> indices(n);

  for (int t = 0; t < params_.num_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) grad[i] = pred[i] - y[i];
    std::iota(indices.begin(), indices.end(), 0u);
    Tree tree;
    tree.nodes.push_back(Node{});
    build_node(x, grad, tree, 0, indices, 0, n, 0);
    trees_.push_back(std::move(tree));
    const Tree& tr = trees_.back();
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += params_.learning_rate * tr.predict_one(x.row(i));
  }
}

void Gbrt::build_node(const nn::Matrix& x, const std::vector<double>& grad, Tree& tree,
                      std::int32_t node_idx, std::vector<std::uint32_t>& indices,
                      std::size_t begin, std::size_t end, int depth) {
  const double count = static_cast<double>(end - begin);
  double g_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) g_sum += grad[indices[i]];
  const double h_sum = count;  // squared loss: hessian = 1 per sample

  auto make_leaf = [&] {
    tree.nodes[static_cast<std::size_t>(node_idx)].feature = -1;
    tree.nodes[static_cast<std::size_t>(node_idx)].value =
        static_cast<float>(-g_sum / (h_sum + params_.lambda));
  };

  if (depth >= params_.max_depth || count < 2 * params_.min_child_weight) {
    make_leaf();
    return;
  }

  const double parent_score = g_sum * g_sum / (h_sum + params_.lambda);
  double best_gain = 0.0;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::uint32_t> sorted(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                    indices.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t f = 0; f < x.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
      return x(a, f) < x(b, f);
    });
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      gl += grad[sorted[k]];
      hl += 1.0;
      const float cur = x(sorted[k], f);
      const float nxt = x(sorted[k + 1], f);
      if (cur == nxt) continue;  // can't split between equal values
      const double hr = h_sum - hl;
      if (hl < params_.min_child_weight || hr < params_.min_child_weight) continue;
      const double gr = g_sum - gl;
      const double gain = gl * gl / (hl + params_.lambda) + gr * gr / (hr + params_.lambda) -
                          parent_score - params_.gamma;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (cur + nxt) * 0.5f;
      }
    }
  }

  if (best_feature < 0) {
    make_leaf();
    return;
  }

  // Partition indices in place.
  const auto mid_it = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::uint32_t i) {
        return x(i, static_cast<std::size_t>(best_feature)) < best_threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {  // numerically degenerate split
    make_leaf();
    return;
  }

  Node& node = tree.nodes[static_cast<std::size_t>(node_idx)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  const auto left_idx = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  const auto right_idx = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  // Re-fetch: push_back may have reallocated.
  tree.nodes[static_cast<std::size_t>(node_idx)].left = left_idx;
  tree.nodes[static_cast<std::size_t>(node_idx)].right = right_idx;

  build_node(x, grad, tree, left_idx, indices, begin, mid, depth + 1);
  build_node(x, grad, tree, right_idx, indices, mid, end, depth + 1);
}

std::vector<float> Gbrt::predict(const nn::Matrix& x) const {
  std::vector<float> out(x.rows(), static_cast<float>(base_score_));
  for (const Tree& t : trees_) {
    for (std::size_t r = 0; r < x.rows(); ++r)
      out[r] += static_cast<float>(params_.learning_rate) * t.predict_one(x.row(r));
  }
  return out;
}

}  // namespace paragraph::baselines
