// Gradient-boosted regression trees in the XGBoost formulation:
// second-order (here: squared loss, hessian = 1) leaf weights
// w = -G/(H + lambda), exact greedy splits maximising the XGBoost gain,
// shrinkage, depth/min-child limits.
//
// Stands in for the paper's XGBoost baseline; like the paper it sees node
// features only (no graph context).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/regressor.h"

namespace paragraph::baselines {

struct GbrtParams {
  int num_trees = 200;
  int max_depth = 6;
  double learning_rate = 0.1;
  double lambda = 1.0;       // L2 on leaf weights
  double gamma = 0.0;        // split gain threshold
  double min_child_weight = 2.0;
};

class Gbrt final : public Regressor {
 public:
  explicit Gbrt(GbrtParams params = {}) : params_(params) {}

  void fit(const nn::Matrix& x, const std::vector<float>& y) override;
  std::vector<float> predict(const nn::Matrix& x) const override;

  std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 for a leaf
    float threshold = 0.0;  // go left if x[feature] < threshold
    float value = 0.0;      // leaf output
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    float predict_one(const float* row) const;
  };

  void build_node(const nn::Matrix& x, const std::vector<double>& grad, Tree& tree,
                  std::int32_t node_idx, std::vector<std::uint32_t>& indices, std::size_t begin,
                  std::size_t end, int depth);

  GbrtParams params_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
};

}  // namespace paragraph::baselines
