#include "nn/ops.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace paragraph::nn {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.value().same_shape(b.value()))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.value().shape_str() +
                                " vs " + b.value().shape_str());
}

// Chunk grains for elementwise (flat index) and per-row loops. Chunks write
// disjoint ranges, so every op here is bit-identical at any thread count.
constexpr std::size_t kEltGrain = 16384;
constexpr std::size_t kRowGrain = 256;

template <typename F>
void par_elements(std::size_t n, F&& body) {
  runtime::parallel_for("nn.elt", n, kEltGrain, std::forward<F>(body));
}

template <typename F>
void par_rows(std::size_t n, F&& body) {
  runtime::parallel_for("nn.rows", n, kRowGrain, std::forward<F>(body));
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (obs::enabled()) {
    static obs::Counter& calls = obs::MetricsRegistry::instance().counter("nn.matmul.calls");
    static obs::Counter& flops = obs::MetricsRegistry::instance().counter("nn.matmul.flops");
    calls.add();
    flops.add(2ull * a.rows() * a.cols() * b.cols());
  }
  Matrix out = gemm(a.value(), b.value());
  return Tensor::from_op(std::move(out), {a, b}, [a, b](const Matrix& g) {
    a.accumulate_grad(gemm_nt(g, b.value()));
    b.accumulate_grad(gemm_tn(a.value(), g));
  });
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Matrix out = a.value();
  add_inplace(out, b.value());
  return Tensor::from_op(std::move(out), {a, b}, [a, b](const Matrix& g) {
    a.accumulate_grad(g);
    b.accumulate_grad(g);
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Matrix out = a.value();
  axpy_inplace(out, -1.0f, b.value());
  return Tensor::from_op(std::move(out), {a, b}, [a, b](const Matrix& g) {
    a.accumulate_grad(g);
    Matrix ng = g;
    par_elements(ng.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ng.data()[i] = -ng.data()[i];
    });
    b.accumulate_grad(ng);
  });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out.data()[i] *= b.value().data()[i];
  });
  return Tensor::from_op(std::move(out), {a, b}, [a, b](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ga.data()[i] *= b.value().data()[i];
    });
    a.accumulate_grad(ga);
    Matrix gb = g;
    par_elements(gb.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) gb.data()[i] *= a.value().data()[i];
    });
    b.accumulate_grad(gb);
  });
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  if (bias.rows() != 1 || bias.cols() != a.cols())
    throw std::invalid_argument("add_bias: bias must be 1 x cols of input");
  Matrix out = a.value();
  par_rows(out.rows(), [&](std::size_t lo, std::size_t hi) {
    const float* b = bias.value().row(0);
    for (std::size_t i = lo; i < hi; ++i) {
      float* r = out.row(i);
      for (std::size_t j = 0; j < out.cols(); ++j) r[j] += b[j];
    }
  });
  return Tensor::from_op(std::move(out), {a, bias}, [a, bias](const Matrix& g) {
    a.accumulate_grad(g);
    Matrix gb(1, g.cols(), 0.0f);
    // Column chunks: each chunk reduces its own columns over all rows in
    // ascending row order, matching the serial accumulation per element.
    runtime::parallel_for("nn.add_bias_grad", g.cols(), 16, [&](std::size_t jlo, std::size_t jhi) {
      for (std::size_t i = 0; i < g.rows(); ++i) {
        const float* r = g.row(i);
        for (std::size_t j = jlo; j < jhi; ++j) gb(0, j) += r[j];
      }
    });
    bias.accumulate_grad(gb);
  });
}

Tensor scale(const Tensor& a, float alpha) {
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out.data()[i] *= alpha;
  });
  return Tensor::from_op(std::move(out), {a}, [a, alpha](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ga.data()[i] *= alpha;
    });
    a.accumulate_grad(ga);
  });
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("concat_cols: row counts differ: " + a.value().shape_str() +
                                " vs " + b.value().shape_str());
  const std::size_t ca = a.cols();
  const std::size_t cb = b.cols();
  Matrix out(a.rows(), ca + cb);
  par_rows(a.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* r = out.row(i);
      const float* ra = a.value().row(i);
      const float* rb = b.value().row(i);
      for (std::size_t j = 0; j < ca; ++j) r[j] = ra[j];
      for (std::size_t j = 0; j < cb; ++j) r[ca + j] = rb[j];
    }
  });
  return Tensor::from_op(std::move(out), {a, b}, [a, b, ca, cb](const Matrix& g) {
    Matrix ga(g.rows(), ca);
    Matrix gb(g.rows(), cb);
    par_rows(g.rows(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const float* r = g.row(i);
        for (std::size_t j = 0; j < ca; ++j) ga(i, j) = r[j];
        for (std::size_t j = 0; j < cb; ++j) gb(i, j) = r[ca + j];
      }
    });
    a.accumulate_grad(ga);
    b.accumulate_grad(gb);
  });
}

Tensor concat_rows(const std::vector<Tensor>& ts) {
  std::vector<Tensor> inputs;
  for (const Tensor& t : ts)
    if (t.defined()) inputs.push_back(t);
  if (inputs.empty()) throw std::invalid_argument("concat_rows: no defined inputs");
  const std::size_t cols = inputs[0].cols();
  std::size_t rows = 0;
  for (const Tensor& t : inputs) {
    if (t.cols() != cols) throw std::invalid_argument("concat_rows: column mismatch");
    rows += t.rows();
  }
  Matrix out(rows, cols);
  std::size_t r = 0;
  for (const Tensor& t : inputs) {
    for (std::size_t i = 0; i < t.rows(); ++i, ++r) {
      const float* s = t.value().row(i);
      float* d = out.row(r);
      for (std::size_t j = 0; j < cols; ++j) d[j] = s[j];
    }
  }
  return Tensor::from_op(std::move(out), inputs, [inputs, cols](const Matrix& g) {
    std::size_t r = 0;
    for (const Tensor& t : inputs) {
      Matrix gt(t.rows(), cols);
      for (std::size_t i = 0; i < t.rows(); ++i, ++r) {
        const float* s = g.row(r);
        float* d = gt.row(i);
        for (std::size_t j = 0; j < cols; ++j) d[j] = s[j];
      }
      t.accumulate_grad(gt);
    }
  });
}

Tensor relu(const Tensor& a) {
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out.data()[i] = std::max(0.0f, out.data()[i]);
  });
  return Tensor::from_op(std::move(out), {a}, [a](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        if (a.value().data()[i] <= 0.0f) ga.data()[i] = 0.0f;
    });
    a.accumulate_grad(ga);
  });
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float v = out.data()[i];
      out.data()[i] = v > 0.0f ? v : negative_slope * v;
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, negative_slope](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        if (a.value().data()[i] <= 0.0f) ga.data()[i] *= negative_slope;
    });
    a.accumulate_grad(ga);
  });
}

Tensor sigmoid(const Tensor& a) {
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  });
  Matrix y = out;  // backward needs the output value
  return Tensor::from_op(std::move(out), {a}, [a, y = std::move(y)](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        ga.data()[i] *= y.data()[i] * (1.0f - y.data()[i]);
    });
    a.accumulate_grad(ga);
  });
}

Tensor tanh_op(const Tensor& a) {
  Matrix out = a.value();
  par_elements(out.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out.data()[i] = std::tanh(out.data()[i]);
  });
  Matrix y = out;
  return Tensor::from_op(std::move(out), {a}, [a, y = std::move(y)](const Matrix& g) {
    Matrix ga = g;
    par_elements(ga.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        ga.data()[i] *= 1.0f - y.data()[i] * y.data()[i];
    });
    a.accumulate_grad(ga);
  });
}

Tensor row_l2_normalize(const Tensor& a, float eps) {
  const Matrix& x = a.value();
  std::vector<float> norms(x.rows());
  Matrix out(x.rows(), x.cols());
  par_rows(x.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float* r = x.row(i);
      float s = 0.0f;
      for (std::size_t j = 0; j < x.cols(); ++j) s += r[j] * r[j];
      const float n = std::sqrt(s);
      norms[i] = n;
      const float inv = n < eps ? 1.0f : 1.0f / n;
      float* o = out.row(i);
      for (std::size_t j = 0; j < x.cols(); ++j) o[j] = r[j] * inv;
    }
  });
  return Tensor::from_op(std::move(out), {a},
                         [a, norms = std::move(norms), eps](const Matrix& g) {
    // d/dx (x/||x||) = (I - y y^T)/||x|| with y = x/||x||.
    const Matrix& x = a.value();
    Matrix ga(g.rows(), g.cols());
    par_rows(g.rows(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const float n = norms[i];
        const float* gr = g.row(i);
        const float* xr = x.row(i);
        float* gar = ga.row(i);
        if (n < eps) {
          for (std::size_t j = 0; j < g.cols(); ++j) gar[j] = gr[j];
          continue;
        }
        float dot = 0.0f;  // g . y
        for (std::size_t j = 0; j < g.cols(); ++j) dot += gr[j] * xr[j] / n;
        for (std::size_t j = 0; j < g.cols(); ++j)
          gar[j] = (gr[j] - dot * xr[j] / n) / n;
      }
    });
    a.accumulate_grad(ga);
  });
}

Tensor scale_rows(const Tensor& a, const std::vector<float>& coeffs) {
  if (coeffs.size() != a.rows())
    throw std::invalid_argument("scale_rows: coeff count must equal row count");
  Matrix out = a.value();
  par_rows(out.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* r = out.row(i);
      for (std::size_t j = 0; j < out.cols(); ++j) r[j] *= coeffs[i];
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, coeffs](const Matrix& g) {
    Matrix ga = g;
    par_rows(ga.rows(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        float* r = ga.row(i);
        for (std::size_t j = 0; j < ga.cols(); ++j) r[j] *= coeffs[i];
      }
    });
    a.accumulate_grad(ga);
  });
}

Tensor sum_tensors(const std::vector<Tensor>& ts) {
  if (ts.empty()) throw std::invalid_argument("sum_tensors: empty list");
  Tensor acc = ts[0];
  for (std::size_t i = 1; i < ts.size(); ++i) acc = add(acc, ts[i]);
  return acc;
}

Tensor mse_loss(const Tensor& pred, const Matrix& target) {
  if (!pred.value().same_shape(target))
    throw std::invalid_argument("mse_loss: shape mismatch " + pred.value().shape_str() + " vs " +
                                target.shape_str());
  const std::size_t n = pred.value().size();
  if (n == 0) throw std::invalid_argument("mse_loss: empty prediction");
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred.value().data()[i] - target.data()[i];
    acc += d * d;
  }
  Matrix out(1, 1, std::vector<float>{static_cast<float>(acc / static_cast<double>(n))});
  return Tensor::from_op(std::move(out), {pred}, [pred, target, n](const Matrix& g) {
    const float go = g(0, 0);
    Matrix gp(pred.rows(), pred.cols());
    const float c = 2.0f * go / static_cast<float>(n);
    par_elements(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        gp.data()[i] = c * (pred.value().data()[i] - target.data()[i]);
    });
    pred.accumulate_grad(gp);
  });
}

Tensor l1_loss(const Tensor& pred, const Matrix& target) {
  if (!pred.value().same_shape(target)) throw std::invalid_argument("l1_loss: shape mismatch");
  const std::size_t n = pred.value().size();
  if (n == 0) throw std::invalid_argument("l1_loss: empty prediction");
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    acc += std::abs(pred.value().data()[i] - target.data()[i]);
  Matrix out(1, 1, std::vector<float>{static_cast<float>(acc / static_cast<double>(n))});
  return Tensor::from_op(std::move(out), {pred}, [pred, target, n](const Matrix& g) {
    const float go = g(0, 0);
    Matrix gp(pred.rows(), pred.cols());
    const float c = go / static_cast<float>(n);
    par_elements(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const float d = pred.value().data()[i] - target.data()[i];
        gp.data()[i] = d > 0.0f ? c : (d < 0.0f ? -c : 0.0f);
      }
    });
    pred.accumulate_grad(gp);
  });
}

}  // namespace paragraph::nn
