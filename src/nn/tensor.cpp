#include "nn/tensor.h"

#include <stdexcept>
#include <unordered_set>

namespace paragraph::nn {

Tensor::Tensor(Matrix value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->needs_backward = requires_grad;
}

Tensor Tensor::from_op(Matrix value, std::vector<Tensor> parents,
                       std::function<void(const Matrix&)> backward) {
  Tensor t;
  t.node_ = std::make_shared<Node>();
  t.node_->value = std::move(value);
  bool needs = false;
  for (const auto& p : parents) {
    if (p.defined() && p.node_->needs_backward) needs = true;
  }
  t.node_->needs_backward = needs;
  if (needs) {
    t.node_->parents = std::move(parents);
    t.node_->backward_fn = std::move(backward);
  }
  return t;
}

const Matrix& Tensor::grad() const {
  if (node_->grad.empty() && !node_->value.empty()) {
    node_->grad = Matrix(node_->value.rows(), node_->value.cols(), 0.0f);
  }
  return node_->grad;
}

void Tensor::zero_grad() {
  if (!node_->grad.empty()) node_->grad.fill(0.0f);
}

void Tensor::accumulate_grad(const Matrix& g) const {
  // Constants (and subgraphs no parameter feeds) don't participate in
  // backprop; dropping their gradients here prunes the sweep.
  if (!node_->needs_backward) return;
  if (node_->grad.empty()) {
    node_->grad = g;
  } else {
    add_inplace(node_->grad, g);
  }
}

void Tensor::backward() const {
  if (!defined()) throw std::logic_error("backward() on undefined tensor");
  if (node_->value.rows() != 1 || node_->value.cols() != 1)
    throw std::logic_error("backward() requires a scalar (1x1) tensor");

  // Iterative post-order DFS to get a topological order of the DAG.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].node_.get();
      if (p != nullptr && !visited.contains(p) && p->needs_backward) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed d(loss)/d(loss) = 1 and sweep in reverse topological order.
  node_->grad = Matrix(1, 1, std::vector<float>{1.0f});
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && !n->grad.empty()) n->backward_fn(n->grad);
  }
}

float Tensor::item() const {
  if (node_->value.rows() != 1 || node_->value.cols() != 1)
    throw std::logic_error("item() requires a scalar (1x1) tensor");
  return node_->value(0, 0);
}

}  // namespace paragraph::nn
