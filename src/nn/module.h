// Minimal module system: a Module owns trainable parameters (Tensors with
// requires_grad) and can contain child modules; parameters() flattens the
// tree for the optimiser.
#pragma once

#include <memory>
#include <vector>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace paragraph::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its children.
  std::vector<Tensor> parameters() const {
    std::vector<Tensor> out;
    collect_parameters(out);
    return out;
  }

  std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const auto& p : parameters()) n += p.value().size();
    return n;
  }

 protected:
  Tensor register_parameter(Matrix init) {
    Tensor t(std::move(init), /*requires_grad=*/true);
    params_.push_back(t);
    return t;
  }

  void register_module(Module* child) { children_.push_back(child); }

  virtual void collect_parameters(std::vector<Tensor>& out) const {
    out.insert(out.end(), params_.begin(), params_.end());
    for (const Module* c : children_) c->collect_parameters(out);
  }

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;  // non-owning; children are members
};

// Fully-connected layer: y = x W + b.
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

// Stack of Linear layers with ReLU between them (none after the last).
// Matches the paper's FC regression heads: all hidden layers have the
// embedding dimension F; the final layer has 1 output.
class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}; at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

  std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace paragraph::nn
