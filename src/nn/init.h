// Weight initialisers.
#pragma once

#include "nn/matrix.h"
#include "util/rng.h"

namespace paragraph::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix xavier_uniform(std::size_t rows, std::size_t cols, util::Rng& rng);

// Kaiming/He normal for ReLU-family activations: N(0, sqrt(2 / fan_in)).
Matrix kaiming_normal(std::size_t rows, std::size_t cols, util::Rng& rng);

Matrix zeros(std::size_t rows, std::size_t cols);

}  // namespace paragraph::nn
