// Differentiable graph kernels: the message-passing primitives every GNN
// in src/gnn is assembled from.
//
// Edge lists are index vectors into node-embedding matrices. For attention
// normalisation, edges of a relation are kept sorted by destination and a
// CSR-style SegmentIndex delimits each destination's incoming edges.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace paragraph::nn {

// Contiguous segments over an edge array (edges sorted by destination):
// segment s covers [offsets[s], offsets[s+1]).
struct SegmentIndex {
  std::vector<std::int32_t> offsets;  // size = num_segments + 1

  std::size_t num_segments() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::size_t num_elements() const { return offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back()); }
};

// out[e] = a[idx[e]]  (E x F from N x F).
Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx);

// out[idx[e]] += a[e]  (N x F from E x F). Rows never indexed stay zero.
Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::size_t num_out_rows);

// Per-segment softmax over a column vector of logits (E x 1).
// Numerically stabilised by per-segment max subtraction.
Tensor segment_softmax(const Tensor& logits, const SegmentIndex& seg);

// Rows of `a` (E x F) scaled by the scalar weight w[e] (E x 1 tensor);
// both sides receive gradients. This is the attention-weighting step.
Tensor scale_rows_by(const Tensor& a, const Tensor& w);

// Utility (non-differentiable): counts occurrences of each index value.
std::vector<float> index_counts(const std::vector<std::int32_t>& idx, std::size_t n);

}  // namespace paragraph::nn
