// Differentiable graph kernels: the message-passing primitives every GNN
// in src/gnn is assembled from.
//
// Edge lists are index vectors into node-embedding matrices. For attention
// normalisation, edges of a relation are kept sorted by destination and a
// CSR-style SegmentIndex delimits each destination's incoming edges.
//
// Index buffers are passed as shared handles (IndexHandle): a kernel's
// autograd closure captures the handle, not a deep copy of the vector, so
// a training step over a large graph no longer clones every edge list once
// per op. gnn::GraphPlan builds the handles once per graph; the
// std::vector overloads remain for tests and one-off callers (they wrap
// the vector into a fresh handle, costing the single copy the old API
// always paid).
//
// Three fused kernels collapse the hot composed chains with hand-derived
// gradients (verified against the composed ops in
// tests/graph_ops_fused_test.cpp):
//   scatter_mean_rows  = scatter_add_rows + per-destination 1/deg scaling
//   gather_matmul      = gather_rows(matmul(a, w), idx), transforming each
//                        distinct source row once instead of all rows
//   edge_attention     = gather + add + leaky-relu + segment-softmax +
//                        scale + scatter in one forward/backward pair
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace paragraph::nn {

// Contiguous segments over an edge array (edges sorted by destination):
// segment s covers [offsets[s], offsets[s+1]).
struct SegmentIndex {
  std::vector<std::int32_t> offsets;  // size = num_segments + 1

  std::size_t num_segments() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::size_t num_elements() const { return offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back()); }
};

// Shared, immutable index/coefficient buffers. Built once per graph (see
// gnn::GraphPlan) and captured by reference count in autograd closures.
using IndexHandle = std::shared_ptr<const std::vector<std::int32_t>>;
using CoeffHandle = std::shared_ptr<const std::vector<float>>;
using SegmentHandle = std::shared_ptr<const SegmentIndex>;

IndexHandle make_index(std::vector<std::int32_t> idx);
CoeffHandle make_coeffs(std::vector<float> coeffs);
SegmentHandle make_segments(SegmentIndex seg);

// out[e] = a[idx[e]]  (E x F from N x F).
Tensor gather_rows(const Tensor& a, const IndexHandle& idx);
Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx);

// out[idx[e]] += a[e]  (N x F from E x F). Rows never indexed stay zero.
Tensor scatter_add_rows(const Tensor& a, const IndexHandle& idx, std::size_t num_out_rows);
Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::size_t num_out_rows);

// Per-segment softmax over a column vector of logits (E x 1).
// Numerically stabilised by per-segment max subtraction.
Tensor segment_softmax(const Tensor& logits, const SegmentIndex& seg);

// Rows of `a` (E x F) scaled by the scalar weight w[e] (E x 1 tensor);
// both sides receive gradients. This is the attention-weighting step.
Tensor scale_rows_by(const Tensor& a, const Tensor& w);

// Handle-based variant of nn::scale_rows (ops.h): per-row constant scaling
// where the autograd closure captures the shared buffer, not a copy.
Tensor scale_rows(const Tensor& a, const CoeffHandle& coeffs);

// Fused mean aggregation: out[i] = inv[i] * sum_{e : idx[e] == i} a[e].
// `inv` holds the precomputed inverse in-degree per output row (0 for
// isolated rows); numerically identical to scatter_add_rows followed by
// scale_rows(inv) but with one kernel and one autograd node.
Tensor scatter_mean_rows(const Tensor& a, const IndexHandle& idx, const CoeffHandle& inv,
                         std::size_t num_out_rows);

// The distinct rows an edge list touches, plus the per-edge remap into
// them. Lets gather_matmul transform each touched row exactly once.
struct CompactIndex {
  IndexHandle rows;   // ascending unique values of the edge list (size U)
  IndexHandle remap;  // remap[e] = position of edges[e] within rows (size E)
};
CompactIndex build_compact_index(const std::vector<std::int32_t>& edges, std::size_t num_rows);

// out[e] = a[edges[e]] * w — numerically identical per row to
// gather_rows(matmul(a, w), edges), but the GEMM runs over the U distinct
// touched rows instead of all rows of `a`.
Tensor gather_matmul(const Tensor& a, const CompactIndex& ci, const Tensor& w);

// Fused GAT-style attention aggregation over one destination-sorted edge
// block:
//   logit[e] = el[el_idx ? el_idx[e] : e] + er[er_idx ? er_idx[e] : e]
//   alpha    = segment_softmax(leaky_relu(logit, slope), seg)
//   out[dst[e]] += alpha[e] * msg[e]
// el / er are column vectors of per-node (with a gather index) or per-edge
// (index handle nullptr) attention logits; msg is the E x F message block.
// When `alpha_out` is non-null the softmax output is copied there for
// attention-statistics probes. Numerically identical to the composed
// gather/add/leaky_relu/segment_softmax/scale_rows_by/scatter_add chain.
Tensor edge_attention(const Tensor& el, const Tensor& er, const Tensor& msg,
                      const IndexHandle& el_idx, const IndexHandle& er_idx,
                      const IndexHandle& dst, const SegmentHandle& seg,
                      std::size_t num_out_rows, float negative_slope = 0.2f,
                      Matrix* alpha_out = nullptr);

// Utility (non-differentiable): counts occurrences of each index value.
std::vector<float> index_counts(const std::vector<std::int32_t>& idx, std::size_t n);

// Utility (non-differentiable): inverse counts, 0 where a row is never
// indexed. This is the mean-aggregation coefficient vector.
std::vector<float> inverse_index_counts(const std::vector<std::int32_t>& idx, std::size_t n);

}  // namespace paragraph::nn
