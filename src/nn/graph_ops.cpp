#include "nn/graph_ops.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace paragraph::nn {

namespace {

void check_index_bounds(const std::vector<std::int32_t>& idx, std::size_t n, const char* op) {
  for (const auto i : idx) {
    if (i < 0 || static_cast<std::size_t>(i) >= n)
      throw std::out_of_range(std::string(op) + ": index out of range");
  }
}

}  // namespace

Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx) {
  check_index_bounds(idx, a.rows(), "gather_rows");
  if (obs::enabled()) {
    static obs::Counter& calls = obs::MetricsRegistry::instance().counter("nn.gather_rows.calls");
    static obs::Counter& rows = obs::MetricsRegistry::instance().counter("nn.gather_rows.rows");
    calls.add();
    rows.add(idx.size());
  }
  const std::size_t f = a.cols();
  Matrix out(idx.size(), f);
  for (std::size_t e = 0; e < idx.size(); ++e) {
    const float* src = a.value().row(static_cast<std::size_t>(idx[e]));
    float* dst = out.row(e);
    for (std::size_t j = 0; j < f; ++j) dst[j] = src[j];
  }
  return Tensor::from_op(std::move(out), {a}, [a, idx, f](const Matrix& g) {
    Matrix ga(a.rows(), f, 0.0f);
    for (std::size_t e = 0; e < idx.size(); ++e) {
      float* dst = ga.row(static_cast<std::size_t>(idx[e]));
      const float* src = g.row(e);
      for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
    }
    a.accumulate_grad(ga);
  });
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::size_t num_out_rows) {
  if (idx.size() != a.rows())
    throw std::invalid_argument("scatter_add_rows: index count must equal input rows");
  check_index_bounds(idx, num_out_rows, "scatter_add_rows");
  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::instance().counter("nn.scatter_add_rows.calls");
    static obs::Counter& rows =
        obs::MetricsRegistry::instance().counter("nn.scatter_add_rows.rows");
    calls.add();
    rows.add(idx.size());
  }
  const std::size_t f = a.cols();
  Matrix out(num_out_rows, f, 0.0f);
  for (std::size_t e = 0; e < idx.size(); ++e) {
    float* dst = out.row(static_cast<std::size_t>(idx[e]));
    const float* src = a.value().row(e);
    for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
  }
  return Tensor::from_op(std::move(out), {a}, [a, idx, f](const Matrix& g) {
    Matrix ga(idx.size(), f);
    for (std::size_t e = 0; e < idx.size(); ++e) {
      const float* src = g.row(static_cast<std::size_t>(idx[e]));
      float* dst = ga.row(e);
      for (std::size_t j = 0; j < f; ++j) dst[j] = src[j];
    }
    a.accumulate_grad(ga);
  });
}

Tensor segment_softmax(const Tensor& logits, const SegmentIndex& seg) {
  if (logits.cols() != 1)
    throw std::invalid_argument("segment_softmax: logits must be a column vector");
  if (seg.num_elements() != logits.rows())
    throw std::invalid_argument("segment_softmax: segment index does not cover logits");
  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::instance().counter("nn.segment_softmax.calls");
    static obs::Counter& edges =
        obs::MetricsRegistry::instance().counter("nn.segment_softmax.edges");
    calls.add();
    edges.add(logits.rows());
  }
  const std::size_t e_total = logits.rows();
  Matrix out(e_total, 1);
  for (std::size_t s = 0; s < seg.num_segments(); ++s) {
    const auto begin = static_cast<std::size_t>(seg.offsets[s]);
    const auto end = static_cast<std::size_t>(seg.offsets[s + 1]);
    if (begin == end) continue;
    float mx = logits.value()(begin, 0);
    for (std::size_t e = begin; e < end; ++e) mx = std::max(mx, logits.value()(e, 0));
    float denom = 0.0f;
    for (std::size_t e = begin; e < end; ++e) {
      const float v = std::exp(logits.value()(e, 0) - mx);
      out(e, 0) = v;
      denom += v;
    }
    for (std::size_t e = begin; e < end; ++e) out(e, 0) /= denom;
  }
  Matrix alpha = out;  // backward needs the outputs
  return Tensor::from_op(std::move(out), {logits},
                         [logits, seg, alpha = std::move(alpha)](const Matrix& g) {
    // d logit_e = alpha_e * (g_e - sum_k alpha_k g_k) within each segment.
    Matrix gl(alpha.rows(), 1);
    for (std::size_t s = 0; s < seg.num_segments(); ++s) {
      const auto begin = static_cast<std::size_t>(seg.offsets[s]);
      const auto end = static_cast<std::size_t>(seg.offsets[s + 1]);
      float dot = 0.0f;
      for (std::size_t e = begin; e < end; ++e) dot += alpha(e, 0) * g(e, 0);
      for (std::size_t e = begin; e < end; ++e)
        gl(e, 0) = alpha(e, 0) * (g(e, 0) - dot);
    }
    logits.accumulate_grad(gl);
  });
}

Tensor scale_rows_by(const Tensor& a, const Tensor& w) {
  if (w.cols() != 1 || w.rows() != a.rows())
    throw std::invalid_argument("scale_rows_by: weights must be (rows x 1)");
  const std::size_t f = a.cols();
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const float c = w.value()(i, 0);
    float* r = out.row(i);
    for (std::size_t j = 0; j < f; ++j) r[j] *= c;
  }
  return Tensor::from_op(std::move(out), {a, w}, [a, w, f](const Matrix& g) {
    Matrix ga(g.rows(), f);
    Matrix gw(g.rows(), 1);
    for (std::size_t i = 0; i < g.rows(); ++i) {
      const float c = w.value()(i, 0);
      const float* gr = g.row(i);
      const float* ar = a.value().row(i);
      float* gar = ga.row(i);
      float acc = 0.0f;
      for (std::size_t j = 0; j < f; ++j) {
        gar[j] = gr[j] * c;
        acc += gr[j] * ar[j];
      }
      gw(i, 0) = acc;
    }
    a.accumulate_grad(ga);
    w.accumulate_grad(gw);
  });
}

std::vector<float> index_counts(const std::vector<std::int32_t>& idx, std::size_t n) {
  std::vector<float> counts(n, 0.0f);
  check_index_bounds(idx, n, "index_counts");
  for (const auto i : idx) counts[static_cast<std::size_t>(i)] += 1.0f;
  return counts;
}

}  // namespace paragraph::nn
