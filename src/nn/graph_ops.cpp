#include "nn/graph_ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace paragraph::nn {

namespace {

// Chunk grains (pure functions of the problem size — see DESIGN.md §7).
constexpr std::size_t kEdgeGrain = 1024;   // per-edge gather/scatter loops
constexpr std::size_t kRowGrain = 256;     // per-row loops
constexpr std::size_t kSegmentGrain = 256; // per-segment loops

void check_index_bounds(const std::vector<std::int32_t>& idx, std::size_t n, const char* op) {
  for (const auto i : idx) {
    if (i < 0 || static_cast<std::size_t>(i) >= n)
      throw std::out_of_range(std::string(op) + ": index out of range");
  }
}

void count_op(const char* calls_name, const char* rows_name, std::size_t rows) {
  if (!obs::enabled()) return;
  obs::MetricsRegistry::instance().counter(calls_name).add();
  obs::MetricsRegistry::instance().counter(rows_name).add(rows);
}

// Per-segment softmax shared by segment_softmax and edge_attention; the
// fused kernel must be bitwise-identical to the composed op. Segments own
// disjoint edge ranges, so the segment loop parallelizes bit-identically.
void softmax_over_segments(const Matrix& z, const SegmentIndex& seg, Matrix& alpha) {
  runtime::parallel_for("graph.segment_softmax", seg.num_segments(), kSegmentGrain,
                        [&](std::size_t slo, std::size_t shi) {
    for (std::size_t s = slo; s < shi; ++s) {
      const auto begin = static_cast<std::size_t>(seg.offsets[s]);
      const auto end = static_cast<std::size_t>(seg.offsets[s + 1]);
      if (begin == end) continue;
      float mx = z(begin, 0);
      for (std::size_t e = begin; e < end; ++e) mx = std::max(mx, z(e, 0));
      float denom = 0.0f;
      for (std::size_t e = begin; e < end; ++e) {
        const float v = std::exp(z(e, 0) - mx);
        alpha(e, 0) = v;
        denom += v;
      }
      for (std::size_t e = begin; e < end; ++e) alpha(e, 0) /= denom;
    }
  });
}

// Deterministic scatter-accumulate: body(begin, end, target) adds edges
// [begin, end) into `target`, indexing rows through the scatter index. With
// one effective thread the body runs once against `out` — the pre-runtime
// serial loop. Ascending indices (GraphPlan edges are dst-sorted) take a
// sorted-span path whose chunks own disjoint output rows, bit-identical to
// serial at any thread count; unsorted indices accumulate per-chunk partial
// buffers merged in ascending chunk order (deterministic for every thread
// count >= 2, within FP-reorder epsilon of serial).
template <typename Body>
void scatter_into(Matrix& out, const std::vector<std::int32_t>& idx, Body&& body) {
  const std::size_t n = idx.size();
  if (n == 0) return;
  if (runtime::chunk_count(n, kEdgeGrain) == 1 || runtime::num_threads() == 1 ||
      runtime::in_parallel_region()) {
    body(0, n, out);
    return;
  }
  if (runtime::is_ascending(idx)) {
    runtime::parallel_for_sorted_spans(
        idx, kEdgeGrain, [&](std::size_t b, std::size_t e) { body(b, e, out); },
        "graph.scatter");
    return;
  }
  runtime::parallel_reduce<Matrix>(
      n, runtime::bounded_grain(n, kEdgeGrain),
      [&] { return Matrix(out.rows(), out.cols(), 0.0f); },
      [&](std::size_t b, std::size_t e, Matrix& p) { body(b, e, p); },
      [&](Matrix& p) { add_inplace(out, p); }, "graph.scatter");
}

}  // namespace

IndexHandle make_index(std::vector<std::int32_t> idx) {
  return std::make_shared<const std::vector<std::int32_t>>(std::move(idx));
}

CoeffHandle make_coeffs(std::vector<float> coeffs) {
  return std::make_shared<const std::vector<float>>(std::move(coeffs));
}

SegmentHandle make_segments(SegmentIndex seg) {
  return std::make_shared<const SegmentIndex>(std::move(seg));
}

Tensor gather_rows(const Tensor& a, const IndexHandle& idx) {
  if (idx == nullptr) throw std::invalid_argument("gather_rows: null index handle");
  check_index_bounds(*idx, a.rows(), "gather_rows");
  count_op("nn.gather_rows.calls", "nn.gather_rows.rows", idx->size());
  const std::size_t f = a.cols();
  Matrix out(idx->size(), f);
  runtime::parallel_for("graph.edges", idx->size(), kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const float* src = a.value().row(static_cast<std::size_t>((*idx)[e]));
      float* dst = out.row(e);
      for (std::size_t j = 0; j < f; ++j) dst[j] = src[j];
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, idx, f](const Matrix& g) {
    Matrix ga(a.rows(), f, 0.0f);
    scatter_into(ga, *idx, [&](std::size_t lo, std::size_t hi, Matrix& t) {
      for (std::size_t e = lo; e < hi; ++e) {
        float* dst = t.row(static_cast<std::size_t>((*idx)[e]));
        const float* src = g.row(e);
        for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
      }
    });
    a.accumulate_grad(ga);
  });
}

Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx) {
  return gather_rows(a, make_index(idx));
}

Tensor scatter_add_rows(const Tensor& a, const IndexHandle& idx, std::size_t num_out_rows) {
  if (idx == nullptr) throw std::invalid_argument("scatter_add_rows: null index handle");
  if (idx->size() != a.rows())
    throw std::invalid_argument("scatter_add_rows: index count must equal input rows");
  check_index_bounds(*idx, num_out_rows, "scatter_add_rows");
  count_op("nn.scatter_add_rows.calls", "nn.scatter_add_rows.rows", idx->size());
  const std::size_t f = a.cols();
  Matrix out(num_out_rows, f, 0.0f);
  scatter_into(out, *idx, [&](std::size_t lo, std::size_t hi, Matrix& t) {
    for (std::size_t e = lo; e < hi; ++e) {
      float* dst = t.row(static_cast<std::size_t>((*idx)[e]));
      const float* src = a.value().row(e);
      for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, idx, f](const Matrix& g) {
    Matrix ga(idx->size(), f);
    runtime::parallel_for("graph.edges", idx->size(), kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        const float* src = g.row(static_cast<std::size_t>((*idx)[e]));
        float* dst = ga.row(e);
        for (std::size_t j = 0; j < f; ++j) dst[j] = src[j];
      }
    });
    a.accumulate_grad(ga);
  });
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::size_t num_out_rows) {
  return scatter_add_rows(a, make_index(idx), num_out_rows);
}

Tensor segment_softmax(const Tensor& logits, const SegmentIndex& seg) {
  if (logits.cols() != 1)
    throw std::invalid_argument("segment_softmax: logits must be a column vector");
  if (seg.num_elements() != logits.rows())
    throw std::invalid_argument("segment_softmax: segment index does not cover logits");
  count_op("nn.segment_softmax.calls", "nn.segment_softmax.edges", logits.rows());
  Matrix out(logits.rows(), 1);
  softmax_over_segments(logits.value(), seg, out);
  Matrix alpha = out;  // backward needs the outputs
  return Tensor::from_op(std::move(out), {logits},
                         [logits, seg, alpha = std::move(alpha)](const Matrix& g) {
    // d logit_e = alpha_e * (g_e - sum_k alpha_k g_k) within each segment.
    Matrix gl(alpha.rows(), 1);
    runtime::parallel_for("graph.segments", seg.num_segments(), kSegmentGrain,
                          [&](std::size_t slo, std::size_t shi) {
      for (std::size_t s = slo; s < shi; ++s) {
        const auto begin = static_cast<std::size_t>(seg.offsets[s]);
        const auto end = static_cast<std::size_t>(seg.offsets[s + 1]);
        float dot = 0.0f;
        for (std::size_t e = begin; e < end; ++e) dot += alpha(e, 0) * g(e, 0);
        for (std::size_t e = begin; e < end; ++e)
          gl(e, 0) = alpha(e, 0) * (g(e, 0) - dot);
      }
    });
    logits.accumulate_grad(gl);
  });
}

Tensor scale_rows_by(const Tensor& a, const Tensor& w) {
  if (w.cols() != 1 || w.rows() != a.rows())
    throw std::invalid_argument("scale_rows_by: weights must be (rows x 1)");
  const std::size_t f = a.cols();
  Matrix out = a.value();
  runtime::parallel_for("graph.rows", out.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float c = w.value()(i, 0);
      float* r = out.row(i);
      for (std::size_t j = 0; j < f; ++j) r[j] *= c;
    }
  });
  return Tensor::from_op(std::move(out), {a, w}, [a, w, f](const Matrix& g) {
    Matrix ga(g.rows(), f);
    Matrix gw(g.rows(), 1);
    runtime::parallel_for("graph.rows", g.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const float c = w.value()(i, 0);
        const float* gr = g.row(i);
        const float* ar = a.value().row(i);
        float* gar = ga.row(i);
        float acc = 0.0f;
        for (std::size_t j = 0; j < f; ++j) {
          gar[j] = gr[j] * c;
          acc += gr[j] * ar[j];
        }
        gw(i, 0) = acc;
      }
    });
    a.accumulate_grad(ga);
    w.accumulate_grad(gw);
  });
}

Tensor scale_rows(const Tensor& a, const CoeffHandle& coeffs) {
  if (coeffs == nullptr) throw std::invalid_argument("scale_rows: null coefficient handle");
  if (coeffs->size() != a.rows())
    throw std::invalid_argument("scale_rows: coeff count must equal row count");
  Matrix out = a.value();
  runtime::parallel_for("graph.rows", out.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* r = out.row(i);
      for (std::size_t j = 0; j < out.cols(); ++j) r[j] *= (*coeffs)[i];
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, coeffs](const Matrix& g) {
    Matrix ga = g;
    runtime::parallel_for("graph.rows", ga.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        float* r = ga.row(i);
        for (std::size_t j = 0; j < ga.cols(); ++j) r[j] *= (*coeffs)[i];
      }
    });
    a.accumulate_grad(ga);
  });
}

Tensor scatter_mean_rows(const Tensor& a, const IndexHandle& idx, const CoeffHandle& inv,
                         std::size_t num_out_rows) {
  if (idx == nullptr || inv == nullptr)
    throw std::invalid_argument("scatter_mean_rows: null handle");
  if (idx->size() != a.rows())
    throw std::invalid_argument("scatter_mean_rows: index count must equal input rows");
  if (inv->size() != num_out_rows)
    throw std::invalid_argument("scatter_mean_rows: coefficient count must equal output rows");
  check_index_bounds(*idx, num_out_rows, "scatter_mean_rows");
  count_op("nn.scatter_mean_rows.calls", "nn.scatter_mean_rows.rows", idx->size());
  const std::size_t f = a.cols();
  Matrix out(num_out_rows, f, 0.0f);
  scatter_into(out, *idx, [&](std::size_t lo, std::size_t hi, Matrix& t) {
    for (std::size_t e = lo; e < hi; ++e) {
      float* dst = t.row(static_cast<std::size_t>((*idx)[e]));
      const float* src = a.value().row(e);
      for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
    }
  });
  runtime::parallel_for("graph.rows", num_out_rows, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float c = (*inv)[i];
      float* r = out.row(i);
      for (std::size_t j = 0; j < f; ++j) r[j] *= c;
    }
  });
  return Tensor::from_op(std::move(out), {a}, [a, idx, inv, f](const Matrix& g) {
    // d a[e] = g[idx[e]] * inv[idx[e]]: the scatter's gradient copy and the
    // mean's scaling folded into one pass.
    Matrix ga(idx->size(), f);
    runtime::parallel_for("graph.edges", idx->size(), kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        const auto i = static_cast<std::size_t>((*idx)[e]);
        const float c = (*inv)[i];
        const float* src = g.row(i);
        float* dst = ga.row(e);
        for (std::size_t j = 0; j < f; ++j) dst[j] = src[j] * c;
      }
    });
    a.accumulate_grad(ga);
  });
}

CompactIndex build_compact_index(const std::vector<std::int32_t>& edges, std::size_t num_rows) {
  check_index_bounds(edges, num_rows, "build_compact_index");
  // position[r] = slot of row r among the touched rows, ascending.
  std::vector<std::int32_t> position(num_rows, -1);
  for (const auto e : edges) position[static_cast<std::size_t>(e)] = 0;
  std::vector<std::int32_t> rows;
  for (std::size_t r = 0; r < num_rows; ++r) {
    if (position[r] < 0) continue;
    position[r] = static_cast<std::int32_t>(rows.size());
    rows.push_back(static_cast<std::int32_t>(r));
  }
  std::vector<std::int32_t> remap(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e)
    remap[e] = position[static_cast<std::size_t>(edges[e])];
  CompactIndex ci;
  ci.rows = make_index(std::move(rows));
  ci.remap = make_index(std::move(remap));
  return ci;
}

Tensor gather_matmul(const Tensor& a, const CompactIndex& ci, const Tensor& w) {
  if (ci.rows == nullptr || ci.remap == nullptr)
    throw std::invalid_argument("gather_matmul: null compact index");
  if (a.cols() != w.rows())
    throw std::invalid_argument("gather_matmul: inner dimensions differ");
  check_index_bounds(*ci.rows, a.rows(), "gather_matmul");
  check_index_bounds(*ci.remap, ci.rows->size(), "gather_matmul");
  count_op("nn.gather_matmul.calls", "nn.gather_matmul.rows", ci.remap->size());
  if (obs::enabled()) {
    obs::MetricsRegistry::instance()
        .counter("nn.gather_matmul.flops")
        .add(2ull * ci.rows->size() * a.cols() * w.cols());
  }
  const std::size_t fin = a.cols();
  const std::size_t fout = w.cols();
  const std::size_t u = ci.rows->size();
  Matrix compact(u, fin);
  runtime::parallel_for("graph.rows", u, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const float* src = a.value().row(static_cast<std::size_t>((*ci.rows)[k]));
      float* dst = compact.row(k);
      for (std::size_t j = 0; j < fin; ++j) dst[j] = src[j];
    }
  });
  Matrix tmp = gemm(compact, w.value());  // U x fout, each touched row once
  Matrix out(ci.remap->size(), fout);
  runtime::parallel_for("graph.edges", ci.remap->size(), kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const float* src = tmp.row(static_cast<std::size_t>((*ci.remap)[e]));
      float* dst = out.row(e);
      for (std::size_t j = 0; j < fout; ++j) dst[j] = src[j];
    }
  });
  return Tensor::from_op(
      std::move(out), {a, w},
      [a, w, ci, compact = std::move(compact), fin, fout, u](const Matrix& g) {
        Matrix gtmp(u, fout, 0.0f);
        scatter_into(gtmp, *ci.remap, [&](std::size_t lo, std::size_t hi, Matrix& t) {
          for (std::size_t e = lo; e < hi; ++e) {
            float* dst = t.row(static_cast<std::size_t>((*ci.remap)[e]));
            const float* src = g.row(e);
            for (std::size_t j = 0; j < fout; ++j) dst[j] += src[j];
          }
        });
        w.accumulate_grad(gemm_tn(compact, gtmp));
        const Matrix gcompact = gemm_nt(gtmp, w.value());
        Matrix ga(a.rows(), fin, 0.0f);
        // ci.rows entries are unique, so chunks write disjoint rows of ga.
        runtime::parallel_for("graph.rows", u, kRowGrain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            float* dst = ga.row(static_cast<std::size_t>((*ci.rows)[k]));
            const float* src = gcompact.row(k);
            for (std::size_t j = 0; j < fin; ++j) dst[j] = src[j];
          }
        });
        a.accumulate_grad(ga);
      });
}

Tensor edge_attention(const Tensor& el, const Tensor& er, const Tensor& msg,
                      const IndexHandle& el_idx, const IndexHandle& er_idx,
                      const IndexHandle& dst, const SegmentHandle& seg,
                      std::size_t num_out_rows, float negative_slope, Matrix* alpha_out) {
  if (dst == nullptr || seg == nullptr)
    throw std::invalid_argument("edge_attention: null dst/segment handle");
  const std::size_t e_total = dst->size();
  if (msg.rows() != e_total)
    throw std::invalid_argument("edge_attention: message rows must equal edge count");
  if (el.cols() != 1 || er.cols() != 1)
    throw std::invalid_argument("edge_attention: logits must be column vectors");
  if (el_idx == nullptr && el.rows() != e_total)
    throw std::invalid_argument("edge_attention: per-edge el must have one row per edge");
  if (er_idx == nullptr && er.rows() != e_total)
    throw std::invalid_argument("edge_attention: per-edge er must have one row per edge");
  if (el_idx != nullptr) {
    if (el_idx->size() != e_total)
      throw std::invalid_argument("edge_attention: el index must have one entry per edge");
    check_index_bounds(*el_idx, el.rows(), "edge_attention");
  }
  if (er_idx != nullptr) {
    if (er_idx->size() != e_total)
      throw std::invalid_argument("edge_attention: er index must have one entry per edge");
    check_index_bounds(*er_idx, er.rows(), "edge_attention");
  }
  if (seg->num_elements() != e_total)
    throw std::invalid_argument("edge_attention: segment index does not cover edges");
  check_index_bounds(*dst, num_out_rows, "edge_attention");
  count_op("nn.edge_attention.calls", "nn.edge_attention.edges", e_total);

  const std::size_t f = msg.cols();
  // logit -> leaky-relu -> per-segment softmax, all in one pass over E.
  Matrix logit(e_total, 1);
  Matrix z(e_total, 1);
  runtime::parallel_for("graph.edges", e_total, kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      const std::size_t li = el_idx ? static_cast<std::size_t>((*el_idx)[e]) : e;
      const std::size_t ri = er_idx ? static_cast<std::size_t>((*er_idx)[e]) : e;
      const float v = el.value()(li, 0) + er.value()(ri, 0);
      logit(e, 0) = v;
      z(e, 0) = v > 0.0f ? v : negative_slope * v;
    }
  });
  Matrix alpha(e_total, 1);
  softmax_over_segments(z, *seg, alpha);
  if (alpha_out != nullptr) *alpha_out = alpha;

  Matrix out(num_out_rows, f, 0.0f);
  scatter_into(out, *dst, [&](std::size_t lo, std::size_t hi, Matrix& t) {
    for (std::size_t e = lo; e < hi; ++e) {
      const float c = alpha(e, 0);
      float* d = t.row(static_cast<std::size_t>((*dst)[e]));
      const float* m = msg.value().row(e);
      for (std::size_t j = 0; j < f; ++j) d[j] += c * m[j];
    }
  });

  return Tensor::from_op(
      std::move(out), {el, er, msg},
      [el, er, msg, el_idx, er_idx, dst, seg, negative_slope, f, e_total,
       logit = std::move(logit), alpha = std::move(alpha)](const Matrix& g) {
        // Reverse of the fused chain:
        //   d msg[e]  = alpha_e * g[dst[e]]
        //   d alpha_e = <g[dst[e]], msg[e]>
        //   d z_e     = alpha_e * (d alpha_e - sum_k alpha_k d alpha_k)   (softmax)
        //   d logit_e = d z_e * (logit_e > 0 ? 1 : slope)                 (leaky relu)
        //   d el[i]  += d logit_e over edges with el_idx[e] == i (resp. er).
        Matrix gmsg(e_total, f);
        Matrix galpha(e_total, 1);
        runtime::parallel_for("graph.edges", e_total, kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t e = lo; e < hi; ++e) {
            const float* gr = g.row(static_cast<std::size_t>((*dst)[e]));
            const float* mr = msg.value().row(e);
            float* gm = gmsg.row(e);
            const float c = alpha(e, 0);
            float acc = 0.0f;
            for (std::size_t j = 0; j < f; ++j) {
              gm[j] = gr[j] * c;
              acc += gr[j] * mr[j];
            }
            galpha(e, 0) = acc;
          }
        });
        Matrix glogit(e_total, 1);
        runtime::parallel_for("graph.segments", seg->num_segments(), kSegmentGrain,
                              [&](std::size_t slo, std::size_t shi) {
          for (std::size_t s = slo; s < shi; ++s) {
            const auto begin = static_cast<std::size_t>(seg->offsets[s]);
            const auto end = static_cast<std::size_t>(seg->offsets[s + 1]);
            float dot = 0.0f;
            for (std::size_t e = begin; e < end; ++e) dot += alpha(e, 0) * galpha(e, 0);
            for (std::size_t e = begin; e < end; ++e) {
              const float gz = alpha(e, 0) * (galpha(e, 0) - dot);
              glogit(e, 0) = logit(e, 0) > 0.0f ? gz : gz * negative_slope;
            }
          }
        });
        Matrix gel(el.rows(), 1, 0.0f);
        Matrix ger(er.rows(), 1, 0.0f);
        if (el_idx) {
          scatter_into(gel, *el_idx, [&](std::size_t lo, std::size_t hi, Matrix& t) {
            for (std::size_t e = lo; e < hi; ++e)
              t(static_cast<std::size_t>((*el_idx)[e]), 0) += glogit(e, 0);
          });
        } else {
          runtime::parallel_for("graph.edges", e_total, kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t e = lo; e < hi; ++e) gel(e, 0) = glogit(e, 0);
          });
        }
        if (er_idx) {
          scatter_into(ger, *er_idx, [&](std::size_t lo, std::size_t hi, Matrix& t) {
            for (std::size_t e = lo; e < hi; ++e)
              t(static_cast<std::size_t>((*er_idx)[e]), 0) += glogit(e, 0);
          });
        } else {
          runtime::parallel_for("graph.edges", e_total, kEdgeGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t e = lo; e < hi; ++e) ger(e, 0) = glogit(e, 0);
          });
        }
        el.accumulate_grad(gel);
        er.accumulate_grad(ger);
        msg.accumulate_grad(gmsg);
      });
}

std::vector<float> index_counts(const std::vector<std::int32_t>& idx, std::size_t n) {
  std::vector<float> counts(n, 0.0f);
  check_index_bounds(idx, n, "index_counts");
  for (const auto i : idx) counts[static_cast<std::size_t>(i)] += 1.0f;
  return counts;
}

std::vector<float> inverse_index_counts(const std::vector<std::int32_t>& idx, std::size_t n) {
  std::vector<float> inv = index_counts(idx, n);
  for (auto& v : inv)
    if (v > 0.0f) v = 1.0f / v;
  return inv;
}

}  // namespace paragraph::nn
