#include "nn/init.h"

#include <cmath>

namespace paragraph::nn {

Matrix xavier_uniform(std::size_t rows, std::size_t cols, util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.uniform(-a, a));
  return m;
}

Matrix kaiming_normal(std::size_t rows, std::size_t cols, util::Rng& rng) {
  const double s = std::sqrt(2.0 / static_cast<double>(rows));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal(0.0, s));
  return m;
}

Matrix zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0f); }

}  // namespace paragraph::nn
