// Reverse-mode automatic differentiation over Matrix values.
//
// A Tensor is a cheap shared handle to a node in an implicit compute DAG.
// Every differentiable op (see ops.h / graph_ops.h) creates a fresh node
// whose backward closure scatters the incoming gradient to its parents.
// Training builds a new DAG per step; calling backward() on the (scalar)
// loss runs a topological sweep and accumulates gradients into every node
// with requires_grad set (typically the Parameters of a Module).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace paragraph::nn {

class Tensor {
 public:
  Tensor() = default;

  // Leaf tensor. `requires_grad` marks trainable parameters.
  explicit Tensor(Matrix value, bool requires_grad = false);

  // Interior node produced by an op. `backward` receives the gradient
  // w.r.t. this node's value and must push gradients into the parents via
  // accumulate_grad(). Pass an empty function for non-differentiable ops.
  static Tensor from_op(Matrix value, std::vector<Tensor> parents,
                        std::function<void(const Matrix& grad_out)> backward);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }
  std::size_t rows() const { return node_->value.rows(); }
  std::size_t cols() const { return node_->value.cols(); }

  bool requires_grad() const { return node_->requires_grad; }

  // Gradient accumulated by the last backward(); zero matrix if untouched.
  const Matrix& grad() const;
  Matrix& mutable_grad() { return const_cast<Matrix&>(grad()); }
  void zero_grad();

  // Adds `g` into this node's gradient buffer (used by op backward closures).
  void accumulate_grad(const Matrix& g) const;

  // Runs reverse-mode AD from this node. Requires a 1x1 value (a loss).
  void backward() const;

  // Scalar convenience accessor; requires a 1x1 tensor.
  float item() const;

  // Identity comparison (same underlying node).
  bool is(const Tensor& other) const { return node_ == other.node_; }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // empty until first accumulation
    bool requires_grad = false;
    bool needs_backward = false;  // true if this or any ancestor requires grad
    std::vector<Tensor> parents;
    std::function<void(const Matrix&)> backward_fn;
  };

  std::shared_ptr<Node> node_;
};

}  // namespace paragraph::nn
