// Dense row-major float32 matrix plus the handful of BLAS-like kernels the
// autograd engine is built on. Kernels run on the deterministic parallel
// runtime (src/runtime): row chunks are a pure function of the shape, so
// results are bit-identical at any thread count, and with --threads 1 the
// loops run inline exactly as the original serial code (see DESIGN.md §7).
// Compiled with -O3 -march=native the inner loops auto-vectorise.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/memory.h"

namespace paragraph::nn {

// Matrix buffers dominate the process heap (tensor values, gradients,
// optimizer state), so every construction/destruction reports its bytes
// to obs::MemTracker when instrumentation is on. `tracked_bytes_`
// remembers what this object registered, so a buffer allocated while
// tracking was enabled is un-counted exactly once even if the flag flips
// before the free; when disabled the hooks cost one relaxed load plus a
// branch and perform no atomic RMW (guarded by tests/memory_obs_test.cpp).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    track_alloc();
  }
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    if (data_.size() != rows_ * cols_)
      throw std::invalid_argument("Matrix: data size does not match shape");
    track_alloc();
  }

  Matrix(const Matrix& o) : rows_(o.rows_), cols_(o.cols_), data_(o.data_) { track_alloc(); }
  Matrix(Matrix&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), data_(std::move(o.data_)),
        tracked_bytes_(o.tracked_bytes_) {
    o.rows_ = o.cols_ = 0;
    o.tracked_bytes_ = 0;
  }
  Matrix& operator=(const Matrix& o) {
    if (this != &o) {
      track_free();
      rows_ = o.rows_;
      cols_ = o.cols_;
      data_ = o.data_;
      track_alloc();
    }
    return *this;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this != &o) {
      track_free();
      rows_ = o.rows_;
      cols_ = o.cols_;
      data_ = std::move(o.data_);
      tracked_bytes_ = o.tracked_bytes_;
      o.rows_ = o.cols_ = 0;
      o.tracked_bytes_ = 0;
    }
    return *this;
  }
  ~Matrix() { track_free(); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  float operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t i) { return data_.data() + i * cols_; }
  const float* row(std::size_t i) const { return data_.data() + i * cols_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }
  std::string shape_str() const;

 private:
  void track_alloc() {
    if (!obs::enabled()) return;
    const std::size_t bytes = data_.capacity() * sizeof(float);
    if (bytes == 0) return;
    tracked_bytes_ = bytes;
    obs::matrix_alloc_hook(bytes);
  }
  void track_free() {
    if (tracked_bytes_ != 0) {
      obs::matrix_free_hook(tracked_bytes_);
      tracked_bytes_ = 0;
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
  std::size_t tracked_bytes_ = 0;  // bytes registered with MemTracker, 0 if none
};

// C = A(m×k) * B(k×n)
Matrix gemm(const Matrix& a, const Matrix& b);
// C = A(m×n) * B(k×n)^T  -> (m×k)
Matrix gemm_nt(const Matrix& a, const Matrix& b);
// C = A(m×k)^T * B(m×n)  -> (k×n)
Matrix gemm_tn(const Matrix& a, const Matrix& b);

// dst += src (same shape)
void add_inplace(Matrix& dst, const Matrix& src);
// dst += alpha * src
void axpy_inplace(Matrix& dst, float alpha, const Matrix& src);

Matrix transpose(const Matrix& a);

// Frobenius-norm helpers used by tests and gradient checking.
float max_abs_diff(const Matrix& a, const Matrix& b);
float frobenius_norm(const Matrix& a);

}  // namespace paragraph::nn
