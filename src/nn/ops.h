// Differentiable dense ops. Each returns a new Tensor whose backward
// closure propagates gradients to the inputs. Shapes are validated eagerly
// so graph-construction errors fail at the call site, not inside backward().
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace paragraph::nn {

// C = A * B.
Tensor matmul(const Tensor& a, const Tensor& b);
// Elementwise; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
// A + broadcast of row-vector bias (1 x cols).
Tensor add_bias(const Tensor& a, const Tensor& bias);
// alpha * A (alpha is a compile-time constant of the graph, not trained).
Tensor scale(const Tensor& a, float alpha);
// Horizontal concatenation [A | B]; row counts must match.
Tensor concat_cols(const Tensor& a, const Tensor& b);
// Vertical concatenation; column counts must match. Undefined tensors in
// the list are skipped; at least one defined input is required.
Tensor concat_rows(const std::vector<Tensor>& ts);

Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float negative_slope = 0.2f);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);

// Each row scaled to unit L2 norm (GraphSage's final normalisation).
// Rows with norm < eps pass through unscaled.
Tensor row_l2_normalize(const Tensor& a, float eps = 1e-12f);

// Row i scaled by the constant coeffs[i] (e.g. GCN 1/c_ij, RGCN 1/|N_r|).
Tensor scale_rows(const Tensor& a, const std::vector<float>& coeffs);

// Sum of a non-empty list of same-shaped tensors.
Tensor sum_tensors(const std::vector<Tensor>& ts);

// Mean squared error against a constant target; returns a 1x1 tensor.
Tensor mse_loss(const Tensor& pred, const Matrix& target);
// Mean absolute error (L1) against a constant target; returns 1x1.
Tensor l1_loss(const Tensor& pred, const Matrix& target);

}  // namespace paragraph::nn
