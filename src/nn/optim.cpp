#include "nn/optim.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace paragraph::nn {

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value().rows(), p.value().cols(), 0.0f);
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    const Matrix& g = p.grad();
    Matrix& vel = velocity_[k];
    float* w = p.mutable_value().data();
    const float* gd = g.data();
    float* vd = vel.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      vd[i] = momentum_ * vd[i] - lr_ * gd[i];
      w[i] += vd[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols(), 0.0f);
    v_.emplace_back(p.value().rows(), p.value().cols(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    const Matrix& g = p.grad();
    float* w = p.mutable_value().data();
    const float* gd = g.data();
    float* md = m_[k].data();
    float* vd = v_[k].data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      md[i] = beta1_ * md[i] + (1.0f - beta1_) * gd[i];
      vd[i] = beta2_ * vd[i] + (1.0f - beta2_) * gd[i] * gd[i];
      const float mhat = md[i] / bc1;
      const float vhat = vd[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::set_state(std::vector<Matrix> m, std::vector<Matrix> v, long t) {
  if (m.size() != params_.size() || v.size() != params_.size() || t < 0)
    throw std::invalid_argument("Adam::set_state: state does not match parameter list");
  for (std::size_t k = 0; k < params_.size(); ++k) {
    if (m[k].rows() != params_[k].value().rows() || m[k].cols() != params_[k].value().cols() ||
        v[k].rows() != params_[k].value().rows() || v[k].cols() != params_[k].value().cols())
      throw std::invalid_argument("Adam::set_state: moment shape mismatch at parameter " +
                                  std::to_string(k));
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

float clip_grad_norm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0.0;
  for (const auto& p : params) {
    const Matrix& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i) total += static_cast<double>(g.data()[i]) * g.data()[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float s = max_norm / norm;
    for (auto p : params) {
      Matrix& g = p.mutable_grad();
      for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] *= s;
    }
  }
  return norm;
}

}  // namespace paragraph::nn
