#include "nn/matrix.h"

#include <cmath>

#include "runtime/thread_pool.h"
#include "util/strings.h"

namespace paragraph::nn {

namespace {
// Row-chunk grains: boundaries are a pure function of the matrix shape, so
// results are identical at any thread count (each chunk owns disjoint
// output rows). GEMM rows carry k*n flops each; elementwise rows are cheap.
constexpr std::size_t kGemmRowGrain = 32;
constexpr std::size_t kEltGrain = 16384;
}  // namespace

std::string Matrix::shape_str() const {
  return util::format("(%zu x %zu)", rows_, cols_);
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("gemm: inner dims mismatch " + a.shape_str() + " * " +
                                b.shape_str());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0f);
  // ikj order: the innermost loop is a contiguous axpy over B's row, which
  // the compiler vectorises. Chunks own disjoint rows of C.
  runtime::parallel_for("gemm", m, kGemmRowGrain, [&](std::size_t ib, std::size_t ie) {
    for (std::size_t i = ib; i < ie; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b.row(p);
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Matrix gemm_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("gemm_nt: inner dims mismatch " + a.shape_str() + " * " +
                                b.shape_str() + "^T");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = b.rows();
  Matrix c(m, k, 0.0f);
  runtime::parallel_for("gemm_nt", m, kGemmRowGrain, [&](std::size_t ib, std::size_t ie) {
    for (std::size_t i = ib; i < ie; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float* brow = b.row(p);
        float acc = 0.0f;
        for (std::size_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
        crow[p] = acc;
      }
    }
  });
  return c;
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("gemm_tn: inner dims mismatch " + a.shape_str() + "^T * " +
                                b.shape_str());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  Matrix c(k, n, 0.0f);
  // Loop order is (p, i) so chunks own disjoint rows of C; per output
  // element the i-accumulation order matches the serial (i, p) loop, so the
  // result is bit-identical at any thread count.
  runtime::parallel_for("gemm_tn", k, kGemmRowGrain, [&](std::size_t pb, std::size_t pe) {
    for (std::size_t p = pb; p < pe; ++p) {
      float* crow = c.row(p);
      for (std::size_t i = 0; i < m; ++i) {
        const float av = a(i, p);
        if (av == 0.0f) continue;
        const float* brow = b.row(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

void add_inplace(Matrix& dst, const Matrix& src) {
  if (!dst.same_shape(src))
    throw std::invalid_argument("add_inplace: shape mismatch " + dst.shape_str() + " += " +
                                src.shape_str());
  float* d = dst.data();
  const float* s = src.data();
  runtime::parallel_for("add", dst.size(), kEltGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) d[i] += s[i];
  });
}

void axpy_inplace(Matrix& dst, float alpha, const Matrix& src) {
  if (!dst.same_shape(src)) throw std::invalid_argument("axpy_inplace: shape mismatch");
  float* d = dst.data();
  const float* s = src.data();
  runtime::parallel_for("axpy", dst.size(), kEltGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) d[i] += alpha * s[i];
  });
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

float frobenius_norm(const Matrix& a) {
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.data()[i] * a.data()[i];
  return std::sqrt(s);
}

}  // namespace paragraph::nn
