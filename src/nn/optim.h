// First-order optimisers over a fixed parameter list.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace paragraph::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the gradients accumulated by backward().
  virtual void step() = 0;

  virtual void set_learning_rate(float lr) = 0;

  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

// ADAM (Kingma & Ba). The paper trains with Adam(lr = 0.01).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 0.01f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }

  // Moment/step-count access for checkpointing: a resumed run restores
  // the exact optimiser state, so its updates are bit-identical to an
  // uninterrupted run. set_state validates shapes against the parameter
  // list and throws std::invalid_argument on mismatch.
  const std::vector<Matrix>& moments1() const { return m_; }
  const std::vector<Matrix>& moments2() const { return v_; }
  long steps() const { return t_; }
  void set_state(std::vector<Matrix> m, std::vector<Matrix> v, long t);

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Matrix> m_, v_;
  long t_ = 0;
};

// Global gradient-norm clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Tensor>& params, float max_norm);

}  // namespace paragraph::nn
