#include "nn/module.h"

#include <stdexcept>

#include "nn/init.h"

namespace paragraph::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : weight_(register_parameter(xavier_uniform(in_features, out_features, rng))),
      bias_(register_parameter(zeros(1, out_features))) {}

Tensor Linear::forward(const Tensor& x) const { return add_bias(matmul(x, weight_), bias_); }

Mlp::Mlp(const std::vector<std::size_t>& dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    register_module(layers_.back().get());
  }
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) h = relu(h);
  }
  return h;
}

}  // namespace paragraph::nn
