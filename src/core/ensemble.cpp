#include "core/ensemble.h"

#include <sstream>
#include <stdexcept>

#include "core/serialize.h"
#include "gnn/plan.h"
#include "gnn/plan_cache.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "runtime/thread_pool.h"
#include "util/atomic_file.h"
#include "util/errors.h"

namespace paragraph::core {

using dataset::Sample;
using dataset::SuiteDataset;

namespace {

constexpr std::size_t kMaxMembers = 64;

std::string member_path(const std::string& manifest_path, std::size_t i) {
  return manifest_path + ".m" + std::to_string(i);
}

}  // namespace

CapEnsemble::CapEnsemble(const EnsembleConfig& config) : config_(config) {
  if (config_.max_vs_ff.size() < 2)
    throw std::invalid_argument("CapEnsemble: need at least two max_v values");
  for (std::size_t i = 1; i < config_.max_vs_ff.size(); ++i) {
    if (config_.max_vs_ff[i] <= config_.max_vs_ff[i - 1])
      throw std::invalid_argument("CapEnsemble: max_v values must be strictly ascending");
  }
  for (std::size_t i = 0; i < config_.max_vs_ff.size(); ++i) {
    PredictorConfig pc = config_.base;
    pc.target = dataset::TargetKind::kCap;
    pc.max_v_ff = config_.max_vs_ff[i];
    pc.seed = config_.base.seed + i * 101;
    models_.push_back(std::make_unique<GnnPredictor>(pc));
  }
}

void CapEnsemble::train(const SuiteDataset& ds) {
  PARAGRAPH_TIMED_SCOPE("ensemble_train");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    PARAGRAPH_TIMED_SCOPE("member");
    obs::log_debug("ensemble", "training member",
                   {{"member", i}, {"max_v_ff", config_.max_vs_ff[i]}});
    models_[i]->train(ds);
  }
}

std::vector<float> CapEnsemble::predict(const SuiteDataset& ds, const Sample& sample) const {
  // All members share a model kind, so one plan serves every member.
  const gnn::GraphPlan plan = gnn::GraphPlan::build(sample.graph, models_[0]->needs_homo());
  return predict_with_plan(ds, sample, plan);
}

template <typename PredictMemberFn>
std::vector<float> CapEnsemble::cascade(const PredictMemberFn& predict_member,
                                        MemberAttribution* attribution) const {
  PARAGRAPH_TIMED_SCOPE("ensemble_combine");
  // Algorithm 2: start from the lowest-range model M1; move to model Mi
  // whenever Mi's prediction exceeds M(i-1)'s max prediction value.
  std::vector<float> p = predict_member(0);
  if (attribution != nullptr) {
    attribution->member.assign(p.size(), 0);
    attribution->pairs.assign(models_.size() - 1, {});
  }
  for (std::size_t i = 1; i < models_.size(); ++i) {
    const std::vector<float> pi = predict_member(i);
    const double prev_max = config_.max_vs_ff[i - 1];
    for (std::size_t n = 0; n < p.size(); ++n) {
      if (attribution != nullptr) {
        // The boundary hand-off: the lower cascade keeps the net inside
        // the previous range while the upper member escalates it out (or
        // vice versa).
        auto& pair = attribution->pairs[i - 1];
        ++pair.checked;
        if ((p[n] > prev_max) != (pi[n] > prev_max)) ++pair.disagreements;
      }
      if (pi[n] > prev_max) {
        p[n] = pi[n];
        if (attribution != nullptr) attribution->member[n] = static_cast<std::uint8_t>(i);
      }
    }
  }
  return p;
}

std::vector<float> CapEnsemble::predict_with_plan(const SuiteDataset& ds, const Sample& sample,
                                                  const gnn::GraphPlan& plan,
                                                  MemberAttribution* attribution) const {
  return cascade([&](std::size_t i) { return models_[i]->predict_all(ds, sample, plan); },
                 attribution);
}

std::vector<float> CapEnsemble::predict_with_cache(const SuiteDataset& ds, const Sample& sample,
                                                   gnn::PlanCache& cache) const {
  return cascade([&](std::size_t i) { return models_[i]->predict_all(ds, sample, cache); },
                 nullptr);
}

void CapEnsemble::save(const std::string& path) const {
  // Members first, manifest last: the manifest is the commit point.
  for (std::size_t i = 0; i < models_.size(); ++i)
    save_predictor(*models_[i], member_path(path, i));
  std::ostringstream manifest;
  manifest << "paragraph-ensemble 1\n";
  manifest << "members " << models_.size() << "\n";
  util::write_file_atomic(path, manifest.str());
}

CapEnsemble CapEnsemble::load(const std::string& path) {
  const std::string text = read_artifact_file(path, "CapEnsemble::load", std::uint64_t{1} << 20);
  const std::string context = "CapEnsemble::load: '" + path + "'";
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  std::string members_word;
  std::size_t count = 0;
  if (!(in >> tag >> version >> members_word >> count) || tag != "paragraph-ensemble" ||
      members_word != "members")
    throw util::CorruptArtifactError(context + ": not an ensemble manifest");
  if (version != 1)
    throw util::CorruptArtifactError(context + ": unsupported manifest version " +
                                     std::to_string(version));
  if (count < 1 || count > kMaxMembers)
    throw util::CorruptArtifactError(context + ": implausible member count " +
                                     std::to_string(count));

  CapEnsemble e;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string mp = member_path(path, i);
    try {
      auto model = std::make_unique<GnnPredictor>(load_predictor(mp));
      if (model->config().target != dataset::TargetKind::kCap)
        throw util::CorruptArtifactError("member '" + mp + "' is not a CAP model");
      e.models_.push_back(std::move(model));
    } catch (const util::IoError& ex) {
      obs::log_warn("ensemble", "member unreadable, skipping",
                    {{"member", i}, {"path", mp}, {"error", ex.what()}});
      e.degraded_ = true;
      e.dropped_.push_back({i, mp, ex.what()});
    } catch (const util::CorruptArtifactError& ex) {
      obs::log_warn("ensemble", "member corrupt, skipping",
                    {{"member", i}, {"path", mp}, {"error", ex.what()}});
      e.degraded_ = true;
      e.dropped_.push_back({i, mp, ex.what()});
    }
  }
  if (e.models_.empty())
    throw util::CorruptArtifactError(context + ": no usable member models");
  // The Algorithm 2 cascade needs strictly ascending ranges; rebuild the
  // range list from the survivors so a degraded ensemble stays coherent.
  e.config_.max_vs_ff.clear();
  for (const auto& m : e.models_) {
    const double mv = m->config().max_v_ff;
    if (!e.config_.max_vs_ff.empty() && mv <= e.config_.max_vs_ff.back())
      throw util::CorruptArtifactError(context + ": member ranges not strictly ascending");
    e.config_.max_vs_ff.push_back(mv);
  }
  e.config_.base = e.models_.front()->config();
  if (e.degraded_) {
    // Name every file at fault, not just the survivor count: an operator
    // reading one warn line must know which artifact to replace.
    std::string dropped_paths;
    for (const auto& d : e.dropped_) {
      if (!dropped_paths.empty()) dropped_paths += ", ";
      dropped_paths += d.path;
    }
    obs::log_warn("ensemble", "loaded degraded",
                  {{"loaded", e.models_.size()},
                   {"expected", count},
                   {"dropped", dropped_paths}});
  }
  if (obs::enabled())
    obs::MetricsRegistry::instance().gauge("ensemble.degraded").set(e.degraded_ ? 1.0 : 0.0);
  return e;
}

EvalResult CapEnsemble::evaluate(const SuiteDataset& ds, const std::vector<Sample>& samples,
                                 std::vector<MemberAttribution>* attributions) const {
  EvalResult result;
  result.circuits.resize(samples.size());
  if (attributions != nullptr) attributions->resize(samples.size());
  // One circuit per pool chunk; the plan is built once per circuit and
  // shared across the K member models. Results land at their sample index,
  // so output order matches the serial loop.
  runtime::parallel_for(samples.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t si = lo; si < hi; ++si) {
      const Sample& s = samples[si];
      const gnn::GraphPlan plan = gnn::GraphPlan::build(s.graph, models_[0]->needs_homo());
      CircuitPrediction cp;
      cp.name = s.name;
      cp.truth = s.target_values(dataset::TargetKind::kCap);
      cp.pred = predict_with_plan(ds, s, plan,
                                  attributions != nullptr ? &(*attributions)[si] : nullptr);
      result.circuits[si] = std::move(cp);
    }
  });
  return result;
}

}  // namespace paragraph::core
