#include "core/ensemble.h"

#include <stdexcept>

#include "obs/log.h"
#include "obs/profile.h"

namespace paragraph::core {

using dataset::Sample;
using dataset::SuiteDataset;

CapEnsemble::CapEnsemble(const EnsembleConfig& config) : config_(config) {
  if (config_.max_vs_ff.size() < 2)
    throw std::invalid_argument("CapEnsemble: need at least two max_v values");
  for (std::size_t i = 1; i < config_.max_vs_ff.size(); ++i) {
    if (config_.max_vs_ff[i] <= config_.max_vs_ff[i - 1])
      throw std::invalid_argument("CapEnsemble: max_v values must be strictly ascending");
  }
  for (std::size_t i = 0; i < config_.max_vs_ff.size(); ++i) {
    PredictorConfig pc = config_.base;
    pc.target = dataset::TargetKind::kCap;
    pc.max_v_ff = config_.max_vs_ff[i];
    pc.seed = config_.base.seed + i * 101;
    models_.push_back(std::make_unique<GnnPredictor>(pc));
  }
}

void CapEnsemble::train(const SuiteDataset& ds) {
  PARAGRAPH_TIMED_SCOPE("ensemble_train");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    PARAGRAPH_TIMED_SCOPE("member");
    obs::log_debug("ensemble", "training member",
                   {{"member", i}, {"max_v_ff", config_.max_vs_ff[i]}});
    models_[i]->train(ds);
  }
}

std::vector<float> CapEnsemble::predict(const SuiteDataset& ds, const Sample& sample) const {
  PARAGRAPH_TIMED_SCOPE("ensemble_combine");
  // Algorithm 2: start from the lowest-range model M1; move to model Mi
  // whenever Mi's prediction exceeds M(i-1)'s max prediction value.
  std::vector<float> p = models_[0]->predict_all(ds, sample);
  for (std::size_t i = 1; i < models_.size(); ++i) {
    const std::vector<float> pi = models_[i]->predict_all(ds, sample);
    const double prev_max = config_.max_vs_ff[i - 1];
    for (std::size_t n = 0; n < p.size(); ++n) {
      if (pi[n] > prev_max) p[n] = pi[n];
    }
  }
  return p;
}

EvalResult CapEnsemble::evaluate(const SuiteDataset& ds,
                                 const std::vector<Sample>& samples) const {
  EvalResult result;
  for (const Sample& s : samples) {
    CircuitPrediction cp;
    cp.name = s.name;
    cp.truth = s.target_values(dataset::TargetKind::kCap);
    cp.pred = predict(ds, s);
    result.circuits.push_back(std::move(cp));
  }
  return result;
}

}  // namespace paragraph::core
