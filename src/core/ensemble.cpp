#include "core/ensemble.h"

#include <stdexcept>

#include "gnn/plan.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "runtime/thread_pool.h"

namespace paragraph::core {

using dataset::Sample;
using dataset::SuiteDataset;

CapEnsemble::CapEnsemble(const EnsembleConfig& config) : config_(config) {
  if (config_.max_vs_ff.size() < 2)
    throw std::invalid_argument("CapEnsemble: need at least two max_v values");
  for (std::size_t i = 1; i < config_.max_vs_ff.size(); ++i) {
    if (config_.max_vs_ff[i] <= config_.max_vs_ff[i - 1])
      throw std::invalid_argument("CapEnsemble: max_v values must be strictly ascending");
  }
  for (std::size_t i = 0; i < config_.max_vs_ff.size(); ++i) {
    PredictorConfig pc = config_.base;
    pc.target = dataset::TargetKind::kCap;
    pc.max_v_ff = config_.max_vs_ff[i];
    pc.seed = config_.base.seed + i * 101;
    models_.push_back(std::make_unique<GnnPredictor>(pc));
  }
}

void CapEnsemble::train(const SuiteDataset& ds) {
  PARAGRAPH_TIMED_SCOPE("ensemble_train");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    PARAGRAPH_TIMED_SCOPE("member");
    obs::log_debug("ensemble", "training member",
                   {{"member", i}, {"max_v_ff", config_.max_vs_ff[i]}});
    models_[i]->train(ds);
  }
}

std::vector<float> CapEnsemble::predict(const SuiteDataset& ds, const Sample& sample) const {
  // All members share a model kind, so one plan serves every member.
  const gnn::GraphPlan plan = gnn::GraphPlan::build(sample.graph, models_[0]->needs_homo());
  return predict_with_plan(ds, sample, plan);
}

std::vector<float> CapEnsemble::predict_with_plan(const SuiteDataset& ds, const Sample& sample,
                                                  const gnn::GraphPlan& plan) const {
  PARAGRAPH_TIMED_SCOPE("ensemble_combine");
  // Algorithm 2: start from the lowest-range model M1; move to model Mi
  // whenever Mi's prediction exceeds M(i-1)'s max prediction value.
  std::vector<float> p = models_[0]->predict_all(ds, sample, plan);
  for (std::size_t i = 1; i < models_.size(); ++i) {
    const std::vector<float> pi = models_[i]->predict_all(ds, sample, plan);
    const double prev_max = config_.max_vs_ff[i - 1];
    for (std::size_t n = 0; n < p.size(); ++n) {
      if (pi[n] > prev_max) p[n] = pi[n];
    }
  }
  return p;
}

EvalResult CapEnsemble::evaluate(const SuiteDataset& ds,
                                 const std::vector<Sample>& samples) const {
  EvalResult result;
  result.circuits.resize(samples.size());
  // One circuit per pool chunk; the plan is built once per circuit and
  // shared across the K member models. Results land at their sample index,
  // so output order matches the serial loop.
  runtime::parallel_for(samples.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t si = lo; si < hi; ++si) {
      const Sample& s = samples[si];
      const gnn::GraphPlan plan = gnn::GraphPlan::build(s.graph, models_[0]->needs_homo());
      CircuitPrediction cp;
      cp.name = s.name;
      cp.truth = s.target_values(dataset::TargetKind::kCap);
      cp.pred = predict_with_plan(ds, s, plan);
      result.circuits[si] = std::move(cp);
    }
  });
  return result;
}

}  // namespace paragraph::core
