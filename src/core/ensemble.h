// Ensemble modeling for net parasitic capacitance (paper Section IV,
// Algorithm 2): K models trained with ascending max prediction values;
// a net's prediction comes from the highest-range model whose prediction
// exceeds the next-lower model's range.
#pragma once

#include <memory>
#include <vector>

#include "core/predictor.h"

namespace paragraph::gnn {
class PlanCache;  // gnn/plan_cache.h
}

namespace paragraph::core {

// Which member answered each net under Algorithm 2, plus adjacent-member
// boundary statistics — the raw material for the quality report's
// per-member attribution and interval-overlap disagreement accounting.
struct MemberAttribution {
  // Winner per net, predict_all order (index into the member list).
  std::vector<std::uint8_t> member;
  // Per adjacent pair (k, k+1): over all nets, how often the two members
  // land on opposite sides of the k-th range boundary — i.e. the lower
  // member keeps the net inside its range while the upper one escalates
  // it past the boundary, or vice versa. High disagreement at a boundary
  // means the hand-off between those members is poorly calibrated.
  struct PairStats {
    std::uint64_t checked = 0;
    std::uint64_t disagreements = 0;
  };
  std::vector<PairStats> pairs;  // size num_models() - 1
};

struct EnsembleConfig {
  // Ascending max_v list in fF; paper: 1 fF, 10 fF, 100 fF, 10 pF.
  std::vector<double> max_vs_ff = {1.0, 10.0, 100.0, 1e4};
  // Template for the member models (target/max_v are overridden).
  PredictorConfig base;
};

class CapEnsemble {
 public:
  explicit CapEnsemble(const EnsembleConfig& config);

  // Trains all K member models on ds.train.
  void train(const dataset::SuiteDataset& ds);

  // Algorithm 2: per-net capacitance prediction [fF] for every net node.
  std::vector<float> predict(const dataset::SuiteDataset& ds,
                             const dataset::Sample& sample) const;

  // Same, reusing a caller-built GraphPlan shared across the K members.
  // `attribution`, when non-null, receives the Algorithm 2 winner per net
  // and the adjacent-member boundary statistics.
  std::vector<float> predict_with_plan(const dataset::SuiteDataset& ds,
                                       const dataset::Sample& sample, const gnn::GraphPlan& plan,
                                       MemberAttribution* attribution = nullptr) const;

  // Hierarchy-aware variant for long-lived callers (the serve worker):
  // each member runs through the shared PlanCache, so repeated subckt
  // templates hit memoized plans/embeddings across requests. Results are
  // bit-identical to predict(); samples without cacheable hierarchy fall
  // back to the plain per-member path inside GnnPredictor.
  std::vector<float> predict_with_cache(const dataset::SuiteDataset& ds,
                                        const dataset::Sample& sample,
                                        gnn::PlanCache& cache) const;

  // Evaluates over the full truth range (no max_v filtering).
  // `attributions`, when non-null, receives one MemberAttribution per
  // sample (same order) — capture is a few comparisons per net, so the
  // quality-accounting path costs essentially nothing over the plain one.
  EvalResult evaluate(const dataset::SuiteDataset& ds,
                      const std::vector<dataset::Sample>& samples,
                      std::vector<MemberAttribution>* attributions = nullptr) const;

  std::size_t num_models() const { return models_.size(); }
  const GnnPredictor& model(std::size_t i) const { return *models_.at(i); }
  const std::vector<double>& max_vs_ff() const { return config_.max_vs_ff; }

  // Persists the ensemble: each member model goes to `path`.m<i> (model
  // file format) and a small manifest to `path`. Members are written
  // before the manifest, and every write is atomic, so a crash mid-save
  // never publishes a manifest pointing at missing members. Throws
  // util::IoError on I/O failure.
  void save(const std::string& path) const;

  // Loads a saved ensemble. A member whose file is missing or corrupt is
  // skipped with a warning and Algorithm 2 runs over the surviving ranges
  // (graceful degradation; `degraded()` reports it). Throws
  // util::CorruptArtifactError when the manifest is damaged, a surviving
  // member is not a CAP model, the ranges are not strictly ascending, or
  // no member survives; util::IoError when the manifest is unreadable.
  static CapEnsemble load(const std::string& path);

  // True when load() had to drop at least one member.
  bool degraded() const { return degraded_; }

  // Which member files load() dropped and why — the degraded-mode warning
  // and the serve daemon's stats both name the exact artifact at fault.
  struct DroppedMember {
    std::size_t index = 0;  // manifest position
    std::string path;
    std::string error;
  };
  const std::vector<DroppedMember>& dropped_members() const { return dropped_; }

 private:
  CapEnsemble() = default;

  // The Algorithm 2 cascade over per-member prediction vectors;
  // `predict_member(i)` supplies member i's predict_all output.
  template <typename PredictMemberFn>
  std::vector<float> cascade(const PredictMemberFn& predict_member,
                             MemberAttribution* attribution) const;

  EnsembleConfig config_;
  std::vector<std::unique_ptr<GnnPredictor>> models_;  // ascending max_v
  bool degraded_ = false;
  std::vector<DroppedMember> dropped_;
};

}  // namespace paragraph::core
