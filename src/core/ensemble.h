// Ensemble modeling for net parasitic capacitance (paper Section IV,
// Algorithm 2): K models trained with ascending max prediction values;
// a net's prediction comes from the highest-range model whose prediction
// exceeds the next-lower model's range.
#pragma once

#include <memory>
#include <vector>

#include "core/predictor.h"

namespace paragraph::core {

struct EnsembleConfig {
  // Ascending max_v list in fF; paper: 1 fF, 10 fF, 100 fF, 10 pF.
  std::vector<double> max_vs_ff = {1.0, 10.0, 100.0, 1e4};
  // Template for the member models (target/max_v are overridden).
  PredictorConfig base;
};

class CapEnsemble {
 public:
  explicit CapEnsemble(const EnsembleConfig& config);

  // Trains all K member models on ds.train.
  void train(const dataset::SuiteDataset& ds);

  // Algorithm 2: per-net capacitance prediction [fF] for every net node.
  std::vector<float> predict(const dataset::SuiteDataset& ds,
                             const dataset::Sample& sample) const;

  // Same, reusing a caller-built GraphPlan shared across the K members.
  std::vector<float> predict_with_plan(const dataset::SuiteDataset& ds,
                                       const dataset::Sample& sample,
                                       const gnn::GraphPlan& plan) const;

  // Evaluates over the full truth range (no max_v filtering).
  EvalResult evaluate(const dataset::SuiteDataset& ds,
                      const std::vector<dataset::Sample>& samples) const;

  std::size_t num_models() const { return models_.size(); }
  const GnnPredictor& model(std::size_t i) const { return *models_.at(i); }

 private:
  EnsembleConfig config_;
  std::vector<std::unique_ptr<GnnPredictor>> models_;  // ascending max_v
};

}  // namespace paragraph::core
