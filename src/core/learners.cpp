#include "core/learners.h"

#include <stdexcept>

#include "baselines/gbrt.h"
#include "baselines/regressor.h"
#include "obs/profile.h"

namespace paragraph::core {

using dataset::Sample;
using dataset::SuiteDataset;
using dataset::TargetKind;
using graph::NodeType;
using nn::Matrix;

const char* learner_name(LearnerKind k) {
  switch (k) {
    case LearnerKind::kLinear: return "Linear";
    case LearnerKind::kXgb: return "XGB";
    case LearnerKind::kGcn: return "GCN";
    case LearnerKind::kGraphSage: return "GraphSage";
    case LearnerKind::kRgcn: return "RGCN";
    case LearnerKind::kGat: return "GAT";
    case LearnerKind::kParaGraph: return "ParaGraph";
  }
  return "unknown";
}

const std::vector<LearnerKind>& fig6_learners() {
  static const std::vector<LearnerKind> v = {
      LearnerKind::kLinear, LearnerKind::kXgb,  LearnerKind::kGcn,      LearnerKind::kRgcn,
      LearnerKind::kGat,    LearnerKind::kGraphSage, LearnerKind::kParaGraph};
  return v;
}

namespace {

gnn::ModelKind gnn_kind(LearnerKind k) {
  switch (k) {
    case LearnerKind::kGcn: return gnn::ModelKind::kGcn;
    case LearnerKind::kGraphSage: return gnn::ModelKind::kGraphSage;
    case LearnerKind::kRgcn: return gnn::ModelKind::kRgcn;
    case LearnerKind::kGat: return gnn::ModelKind::kGat;
    case LearnerKind::kParaGraph: return gnn::ModelKind::kParaGraph;
    default: throw std::invalid_argument("gnn_kind: not a GNN learner");
  }
}

std::vector<float> pooled_raw(const Sample& s, TargetKind target) {
  std::vector<float> out;
  const auto& types = dataset::target_node_types(target);
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const auto& v = s.target_values(target, slot);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

}  // namespace

Matrix baseline_feature_matrix(const Sample& s, TargetKind target) {
  const auto& types = dataset::target_node_types(target);
  std::size_t rows = 0;
  for (const NodeType t : types) rows += s.graph.num_nodes(t);
  const std::size_t base_dim = graph::feature_dim(types[0]);
  const bool add_type_flag = types.size() > 1;
  Matrix x(rows, base_dim + (add_type_flag ? 1 : 0), 0.0f);
  std::size_t r = 0;
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const Matrix& f = s.graph.features(types[slot]);
    for (std::size_t i = 0; i < f.rows(); ++i, ++r) {
      for (std::size_t c = 0; c < base_dim; ++c) x(r, c) = f(i, c);
      if (add_type_flag) x(r, base_dim) = static_cast<float>(slot);
    }
  }
  return x;
}

ClassicalPredictor::ClassicalPredictor(LearnerKind learner, TargetKind target, double max_v_ff)
    : learner_(learner), target_(target), max_v_ff_(max_v_ff) {
  if (learner != LearnerKind::kLinear && learner != LearnerKind::kXgb)
    throw std::invalid_argument("ClassicalPredictor: learner must be kLinear or kXgb");
}

void ClassicalPredictor::fit(const SuiteDataset& ds) {
  PARAGRAPH_TIMED_SCOPE("baseline_fit");
  if (target_ == TargetKind::kCap) {
    scaler_ = TargetScaler::for_cap(max_v_ff_);
  } else if (target_ == TargetKind::kRes) {
    scaler_ = TargetScaler::fit_log_zscore(SuiteDataset::pooled_targets(ds.train, target_));
  } else {
    scaler_ = TargetScaler::fit_zscore(SuiteDataset::pooled_targets(ds.train, target_));
  }
  std::vector<std::vector<float>> x_rows;
  std::vector<float> y;
  std::size_t dim = 0;
  for (const Sample& s : ds.train) {
    const Matrix x = baseline_feature_matrix(s, target_);
    const auto raw = pooled_raw(s, target_);
    dim = x.cols();
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (!scaler_.in_range(raw[i])) continue;
      x_rows.emplace_back(x.row(i), x.row(i) + x.cols());
      y.push_back(scaler_.transform(raw[i]));
    }
  }
  Matrix xtrain(x_rows.size(), dim);
  for (std::size_t i = 0; i < x_rows.size(); ++i)
    for (std::size_t c = 0; c < dim; ++c) xtrain(i, c) = x_rows[i][c];
  if (learner_ == LearnerKind::kLinear) {
    regressor_ = std::make_unique<baselines::LinearRegression>();
  } else {
    regressor_ = std::make_unique<baselines::Gbrt>();
  }
  regressor_->fit(xtrain, y);
}

std::vector<float> ClassicalPredictor::predict_all(const Sample& sample) const {
  PARAGRAPH_TIMED_SCOPE("baseline_predict");
  if (regressor_ == nullptr) throw std::logic_error("ClassicalPredictor: predict before fit");
  const Matrix x = baseline_feature_matrix(sample, target_);
  const auto pred = regressor_->predict(x);
  std::vector<float> out;
  out.reserve(pred.size());
  for (const float p : pred) out.push_back(scaler_.inverse(p));
  return out;
}

namespace {

EvalResult run_classical(const LearnerConfig& config, const SuiteDataset& ds) {
  // Scaling mirrors the GNN path so the comparison is apples-to-apples.
  ClassicalPredictor predictor(config.learner, config.target, config.max_v_ff);
  predictor.fit(ds);
  TargetScaler scaler;
  if (config.target == TargetKind::kCap) {
    scaler = TargetScaler::for_cap(config.max_v_ff);
  } else if (config.target == TargetKind::kRes) {
    scaler = TargetScaler::fit_log_zscore(SuiteDataset::pooled_targets(ds.train, config.target));
  } else {
    scaler = TargetScaler::fit_zscore(SuiteDataset::pooled_targets(ds.train, config.target));
  }
  EvalResult result;
  for (const Sample& s : ds.test) {
    const auto raw = pooled_raw(s, config.target);
    const auto pred = predictor.predict_all(s);
    CircuitPrediction cp;
    cp.name = s.name;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (!scaler.in_range(raw[i])) continue;
      cp.truth.push_back(raw[i]);
      cp.pred.push_back(pred[i]);
    }
    result.circuits.push_back(std::move(cp));
  }
  return result;
}

}  // namespace

EvalResult train_and_evaluate(const LearnerConfig& config, const SuiteDataset& ds) {
  if (config.learner == LearnerKind::kLinear || config.learner == LearnerKind::kXgb)
    return run_classical(config, ds);

  PredictorConfig pc;
  pc.model = gnn_kind(config.learner);
  pc.target = config.target;
  pc.max_v_ff = config.max_v_ff;
  pc.epochs = config.epochs;
  pc.seed = config.seed;
  pc.embed_dim = config.embed_dim;
  pc.num_layers = config.num_layers;
  GnnPredictor predictor(pc);
  predictor.train(ds);
  return predictor.evaluate(ds, ds.test);
}

}  // namespace paragraph::core
