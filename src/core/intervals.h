// Split-conformal prediction intervals.
//
// A point predictor tells the designer "this net will be 4.2 fF"; an
// interval tells them how much to guard-band. calibrate() takes held-out
// (truth, prediction) pairs and records absolute-residual quantiles per
// prediction decade (parasitics are heteroscedastic across their 6-decade
// range); half_width() then returns the +/- bound that covers `coverage`
// of calibration residuals for predictions of that magnitude.
#pragma once

#include <vector>

namespace paragraph::core {

class ConformalCalibrator {
 public:
  // decade_lo/decade_hi bound the log10 bucketing (values outside clamp).
  ConformalCalibrator(int decade_lo = -2, int decade_hi = 5);

  // Records per-decade residual quantiles from held-out pairs.
  // Throws std::invalid_argument on size mismatch or empty input,
  // and if coverage is outside (0, 1).
  void calibrate(const std::vector<float>& truth, const std::vector<float>& pred,
                 double coverage = 0.9);

  bool calibrated() const { return calibrated_; }

  // Interval half-width for a prediction of this magnitude.
  double half_width(float prediction) const;

  struct Interval {
    double lo;
    double hi;
  };
  Interval interval(float prediction) const;

  // Fraction of (truth, pred) pairs falling inside their intervals.
  double empirical_coverage(const std::vector<float>& truth,
                            const std::vector<float>& pred) const;

 private:
  int bucket_of(float prediction) const;

  int decade_lo_;
  int decade_hi_;
  bool calibrated_ = false;
  double global_q_ = 0.0;
  std::vector<double> per_decade_q_;  // index 0 = decade_lo
};

}  // namespace paragraph::core
