#include "core/report.h"

#include <cmath>
#include <cstdio>

#include "gnn/common.h"

namespace paragraph::core {

namespace {

using dataset::Sample;
using dataset::SuiteDataset;
using eval::QualityAccumulator;

// Object name for a node of `type` (net or device) via the graph's origin
// mapping back into the netlist.
std::string node_name(const Sample& s, graph::NodeType type, std::size_t local) {
  const std::int32_t origin = s.graph.origin(type, local);
  if (type == graph::NodeType::kNet)
    return s.netlist.net(static_cast<circuit::NetId>(origin)).name;
  return s.netlist.device(static_cast<circuit::DeviceId>(origin)).name;
}

void add_edge_type_buckets(QualityAccumulator& q, std::uint64_t mask, float truth, float pred) {
  const auto& registry = graph::edge_type_registry();
  for (std::size_t e = 0; e < registry.size() && e < 64; ++e) {
    if (mask & (std::uint64_t{1} << e)) q.add(eval::kDimEdgeType, registry[e].name, truth, pred);
  }
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

double num_or(const obs::JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

}  // namespace

eval::QualityAccumulator collect_quality(const CapEnsemble& ensemble, const SuiteDataset& ds,
                                         const std::vector<Sample>& samples,
                                         EvalResult* out_result) {
  std::vector<MemberAttribution> attributions;
  EvalResult result = ensemble.evaluate(ds, samples, &attributions);
  const auto& max_vs = ensemble.max_vs_ff();

  QualityAccumulator q;
  for (std::size_t ci = 0; ci < samples.size(); ++ci) {
    const Sample& s = samples[ci];
    const CircuitPrediction& cp = result.circuits[ci];
    const MemberAttribution& attr = attributions[ci];
    const std::vector<std::uint64_t> masks =
        gnn::incident_edge_type_masks(s.graph, graph::NodeType::kNet);
    // Ensemble evaluation covers every net node in order: position i is
    // net node i.
    for (std::size_t i = 0; i < cp.truth.size(); ++i) {
      const float t = cp.truth[i];
      const float p = cp.pred[i];
      q.count_pair();
      q.add(eval::kDimTarget, dataset::target_name(dataset::TargetKind::kCap), t, p);
      q.add(eval::kDimDecade, QualityAccumulator::cap_decade_key(t), t, p);
      if (i < attr.member.size()) {
        const int m = attr.member[i];
        q.add(eval::kDimMember, "m" + std::to_string(m), t, p);
        const double lo = m == 0 ? 0.0 : max_vs[static_cast<std::size_t>(m) - 1];
        const double hi = max_vs[static_cast<std::size_t>(m)];
        q.add_calibration(m, lo, hi, t, p);
      }
      if (i < masks.size()) add_edge_type_buckets(q, masks[i], t, p);
      q.note_net(s.name, node_name(s, graph::NodeType::kNet, i), t, p);
    }
    for (std::size_t k = 0; k < attr.pairs.size(); ++k)
      q.add_overlap_stats(static_cast<int>(k), attr.pairs[k].checked,
                          attr.pairs[k].disagreements);
  }
  if (out_result != nullptr) *out_result = std::move(result);
  return q;
}

eval::QualityAccumulator collect_quality(const GnnPredictor& model, const SuiteDataset& ds,
                                         const std::vector<Sample>& samples,
                                         EvalResult* out_result) {
  EvalResult result = model.evaluate(ds, samples);
  const auto& types = dataset::target_node_types(model.config().target);
  const char* target = dataset::target_name(model.config().target);
  const bool is_cap = model.config().target == dataset::TargetKind::kCap;

  QualityAccumulator q;
  for (std::size_t ci = 0; ci < samples.size(); ++ci) {
    const Sample& s = samples[ci];
    const CircuitPrediction& cp = result.circuits[ci];
    std::vector<std::vector<std::uint64_t>> masks(types.size());
    for (std::size_t slot = 0; slot < types.size(); ++slot)
      masks[slot] = gnn::incident_edge_type_masks(s.graph, types[slot]);
    for (std::size_t i = 0; i < cp.truth.size(); ++i) {
      const float t = cp.truth[i];
      const float p = cp.pred[i];
      q.count_pair();
      q.add(eval::kDimTarget, target, t, p);
      if (is_cap) q.add(eval::kDimDecade, QualityAccumulator::cap_decade_key(t), t, p);
      if (i < cp.type_slot.size()) {
        const auto slot = static_cast<std::size_t>(cp.type_slot[i]);
        const auto local = static_cast<std::size_t>(cp.node_index[i]);
        if (slot < masks.size() && local < masks[slot].size())
          add_edge_type_buckets(q, masks[slot][local], t, p);
        q.note_net(s.name, node_name(s, types[slot], local), t, p);
      }
    }
  }
  if (out_result != nullptr) *out_result = std::move(result);
  return q;
}

obs::JsonValue quality_report_json(const eval::QualityAccumulator& quality,
                                   const obs::DriftReport* drift, const std::string& model_path,
                                   const std::string& target_name, std::size_t num_circuits) {
  obs::JsonValue root = quality.to_json();
  obs::JsonValue meta = obs::JsonValue::object();
  meta.set("model", model_path);
  meta.set("target", target_name);
  meta.set("circuits", num_circuits);
  root.set("meta", std::move(meta));
  if (drift != nullptr) root.set("drift", drift->to_json());
  return root;
}

std::string render_quality_markdown(const obs::JsonValue& report, const obs::JsonValue* prior) {
  std::string md;
  md += "# ParaGraph quality report\n\n";
  if (const obs::JsonValue* meta = report.find("meta")) {
    if (const auto* m = meta->find("model")) md += "- model: `" + m->as_string() + "`\n";
    if (const auto* t = meta->find("target")) md += "- target: " + t->as_string() + "\n";
    if (const auto* c = meta->find("circuits"))
      md += "- circuits: " + std::to_string(c->as_int()) + "\n";
  }
  if (const obs::JsonValue* pairs = report.find("pairs"))
    md += "- prediction pairs: " + std::to_string(pairs->as_int()) + "\n";
  md += "\n";

  const obs::JsonValue* dims = report.find("dimensions");
  const auto render_dim = [&](const char* dim, const char* title, const char* key_header) {
    const obs::JsonValue* d = dims != nullptr ? dims->find(dim) : nullptr;
    if (d == nullptr || d->size() == 0) return;
    md += std::string("## ") + title + "\n\n";
    md += std::string("| ") + key_header + " | count | R2 | MAPE% | MAE |\n";
    md += "|---|---|---|---|---|\n";
    for (const auto& [key, m] : d->items()) {
      md += "| " + key + " | " + std::to_string(m.at("count").as_int()) + " | " +
            fmt(m.at("r2").as_double()) + " | " + fmt(m.at("mape").as_double()) + " | " +
            fmt(m.at("mae").as_double()) + " |\n";
    }
    md += "\n";
  };
  render_dim(eval::kDimDecade, "Accuracy per cap decade (fF)", "decade");
  render_dim(eval::kDimTarget, "Accuracy per target", "target");
  render_dim(eval::kDimMember, "Accuracy per answering ensemble member", "member");
  render_dim(eval::kDimEdgeType, "Accuracy per edge-type context", "edge type");

  if (const obs::JsonValue* calib = report.find("calibration"); calib != nullptr && calib->size() > 0) {
    md += "## Calibration: member interval vs realised answers\n\n";
    md += "| member | interval (fF] | answered | truth in interval | MAPE% |\n";
    md += "|---|---|---|---|---|\n";
    for (const obs::JsonValue& r : calib->elements()) {
      md += "| m" + std::to_string(r.at("member").as_int()) + " | (" +
            fmt(r.at("interval_lo_ff").as_double()) + ", " +
            fmt(r.at("interval_hi_ff").as_double()) + "] | " +
            std::to_string(r.at("count").as_int()) + " | " +
            fmt(r.at("in_interval_frac").as_double() * 100.0) + "% | " +
            fmt(r.at("metrics").at("mape").as_double()) + " |\n";
    }
    md += "\n";
  }

  if (const obs::JsonValue* ov = report.find("member_overlap"); ov != nullptr && ov->size() > 0) {
    md += "## Adjacent-member boundary disagreement\n\n";
    md += "| boundary | nets checked | disagreements | rate |\n";
    md += "|---|---|---|---|\n";
    for (const obs::JsonValue& r : ov->elements()) {
      const std::int64_t k = r.at("lower_member").as_int();
      md += "| m" + std::to_string(k) + "/m" + std::to_string(k + 1) + " | " +
            std::to_string(r.at("checked").as_int()) + " | " +
            std::to_string(r.at("disagreements").as_int()) + " | " +
            fmt(r.at("disagreement_frac").as_double() * 100.0) + "% |\n";
    }
    md += "\n";
  }

  if (const obs::JsonValue* worst = report.find("worst_nets"); worst != nullptr && worst->size() > 0) {
    md += "## Worst nets\n\n";
    md += "| circuit | net | truth | pred | rel err |\n";
    md += "|---|---|---|---|---|\n";
    for (const obs::JsonValue& w : worst->elements()) {
      md += "| " + w.at("circuit").as_string() + " | " + w.at("net").as_string() + " | " +
            fmt(w.at("truth").as_double()) + " | " + fmt(w.at("pred").as_double()) + " | " +
            fmt(w.at("rel_err").as_double()) + " |\n";
    }
    md += "\n";
  }

  if (const obs::JsonValue* drift = report.find("drift")) {
    md += "## Input drift vs training reference\n\n";
    md += "- max PSI: " + fmt(drift->at("max_psi").as_double());
    if (const auto* f = drift->find("max_feature"); f != nullptr && !f->as_string().empty())
      md += " (" + f->as_string() + ")";
    md += "\n\n";
    if (const obs::JsonValue* feats = drift->find("features"); feats != nullptr && feats->size() > 0) {
      md += "| feature | PSI | ref n | live n |\n";
      md += "|---|---|---|---|\n";
      for (const obs::JsonValue& f : feats->elements()) {
        md += "| " + f.at("feature").as_string() + " | " + fmt(f.at("psi").as_double()) + " | " +
              std::to_string(f.at("ref_count").as_int()) + " | " +
              std::to_string(f.at("live_count").as_int()) + " |\n";
      }
      md += "\n";
    }
  } else {
    md += "## Input drift\n\nNo drift reference (model predates format v5).\n\n";
  }

  // Prior comparison: match quality.<dim>.<key>.r2 gauges from a previous
  // run's --metrics-out dump against this report's buckets.
  if (prior != nullptr && dims != nullptr) {
    const obs::JsonValue* gauges = prior->find("gauges");
    if (gauges != nullptr && gauges->size() > 0) {
      std::string rows;
      for (const auto& [dim_name, dim] : dims->items()) {
        for (const auto& [key, m] : dim.items()) {
          const obs::JsonValue* prev = gauges->find("quality." + dim_name + "." + key + ".r2");
          if (prev == nullptr) continue;
          const double now = m.at("r2").as_double();
          const double then = num_or(prev, 0.0);
          rows += "| " + dim_name + "." + key + " | " + fmt(then) + " | " + fmt(now) + " | " +
                  fmt(now - then) + " |\n";
        }
      }
      if (!rows.empty()) {
        md += "## R2 vs prior run\n\n| bucket | prior | now | delta |\n|---|---|---|---|\n";
        md += rows;
        md += "\n";
      }
    }
  }
  return md;
}

}  // namespace paragraph::core
