// Quality-report assembly: joins a trained model (or CAP ensemble), a
// dataset, and optional prior metrics into the `paragraph-quality-v1`
// JSON block and its human-readable Markdown rendering.
//
// collect_quality walks an evaluation's predictions and buckets every
// (truth, pred) pair along the report dimensions — cap decade, target
// kind, edge-type context (which terminal relations the node touches),
// and answering ensemble member — plus the Algorithm 2 calibration table
// and worst-net provenance. The accounting is plain arithmetic over
// results the evaluation already produced, so enabling it adds almost
// nothing to evaluate wall time (guarded by tests/quality_test.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "core/predictor.h"
#include "eval/quality.h"
#include "obs/json.h"
#include "obs/sketch.h"

namespace paragraph::core {

// Ensemble path: per-member attribution, calibration, overlap accounting.
// `out_result`, when non-null, receives the underlying EvalResult so
// callers don't evaluate twice.
eval::QualityAccumulator collect_quality(const CapEnsemble& ensemble,
                                         const dataset::SuiteDataset& ds,
                                         const std::vector<dataset::Sample>& samples,
                                         EvalResult* out_result = nullptr);

// Single-model path (any target kind; no member dimensions).
eval::QualityAccumulator collect_quality(const GnnPredictor& model,
                                         const dataset::SuiteDataset& ds,
                                         const std::vector<dataset::Sample>& samples,
                                         EvalResult* out_result = nullptr);

// Wraps the accumulator's quality-v1 block with the drift report (when
// available) and run metadata.
obs::JsonValue quality_report_json(const eval::QualityAccumulator& quality,
                                   const obs::DriftReport* drift,
                                   const std::string& model_path, const std::string& target_name,
                                   std::size_t num_circuits);

// Renders the Markdown dashboard from a quality-v1 JSON value (freshly
// built or reloaded from disk). `prior`, when given, is a prior metrics
// JSON (`--metrics-out` format); matching `quality.*` gauges are shown as
// a then-vs-now comparison.
std::string render_quality_markdown(const obs::JsonValue& report, const obs::JsonValue* prior);

}  // namespace paragraph::core
