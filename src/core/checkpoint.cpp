#include "core/checkpoint.h"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "core/serialize.h"
#include "util/atomic_file.h"
#include "util/bytes.h"

namespace paragraph::core {

namespace {

constexpr std::uint32_t kMagic = 0x5047636b;  // "PGck"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxMatrixDim = 1 << 24;
constexpr std::uint64_t kMaxParams = 1 << 20;
constexpr std::uint64_t kMaxModelBytes = std::uint64_t{1} << 30;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void write_matrix(std::ostream& os, const nn::Matrix& m) {
  write_pod(os, static_cast<std::uint64_t>(m.rows()));
  write_pod(os, static_cast<std::uint64_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void write_matrices(std::ostream& os, const std::vector<nn::Matrix>& ms) {
  write_pod(os, static_cast<std::uint64_t>(ms.size()));
  for (const auto& m : ms) write_matrix(os, m);
}

nn::Matrix read_matrix(util::ByteReader& r) {
  const auto rows = static_cast<std::size_t>(
      r.bounded(r.pod<std::uint64_t>("matrix rows"), 0, kMaxMatrixDim, "matrix rows"));
  const auto cols = static_cast<std::size_t>(
      r.bounded(r.pod<std::uint64_t>("matrix cols"), 0, kMaxMatrixDim, "matrix cols"));
  // Length-check before allocating: a corrupt shape cannot drive an
  // allocation larger than the bytes actually present.
  if (rows != 0 && cols != 0 && r.remaining() / (cols * sizeof(float)) < rows)
    r.corrupt("matrix data longer than remaining file");
  const std::string_view data = r.bytes(rows * cols * sizeof(float), "matrix data");
  std::vector<float> values(rows * cols);
  std::memcpy(values.data(), data.data(), data.size());
  return nn::Matrix(rows, cols, std::move(values));
}

std::vector<nn::Matrix> read_matrices(util::ByteReader& r) {
  const auto count =
      r.bounded(r.pod<std::uint64_t>("matrix count"), 0, kMaxParams, "matrix count");
  std::vector<nn::Matrix> ms;
  ms.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) ms.push_back(read_matrix(r));
  return ms;
}

}  // namespace

void save_checkpoint(const TrainCheckpoint& ckpt, const std::string& path) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::int32_t>(ckpt.next_epoch));
  write_pod(os, ckpt.lr_scale);
  write_pod(os, static_cast<std::int32_t>(ckpt.nonfinite_streak));
  write_pod(os, ckpt.has_best);
  write_pod(os, ckpt.best_loss);
  write_matrices(os, ckpt.best_params);
  for (const std::uint64_t w : ckpt.shuffle_rng.words) write_pod(os, w);
  write_pod(os, ckpt.shuffle_rng.cached_normal);
  write_pod(os, ckpt.shuffle_rng.has_cached_normal);
  write_pod(os, static_cast<std::int64_t>(ckpt.adam_steps));
  write_matrices(os, ckpt.adam_m);
  write_matrices(os, ckpt.adam_v);
  write_pod(os, static_cast<std::uint64_t>(ckpt.model_bytes.size()));
  os.write(ckpt.model_bytes.data(), static_cast<std::streamsize>(ckpt.model_bytes.size()));

  std::string bytes = os.str();
  const std::uint64_t checksum = util::fnv1a64(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  util::write_file_atomic(path, bytes);
}

TrainCheckpoint load_checkpoint(const std::string& path) {
  const std::string bytes = read_artifact_file(path, "load_checkpoint");
  const std::string context = "load_checkpoint: '" + path + "'";
  util::ByteReader header(bytes, context);
  if (bytes.size() < sizeof(std::uint64_t)) header.corrupt("truncated before checksum");
  const std::string_view payload(bytes.data(), bytes.size() - sizeof(std::uint64_t));
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload.size(), sizeof(stored));
  if (stored != util::fnv1a64(payload)) header.corrupt("payload checksum mismatch");

  util::ByteReader r(payload, context);
  if (r.pod<std::uint32_t>("magic") != kMagic)
    r.corrupt("not a ParaGraph checkpoint file (bad magic)");
  const auto version = r.pod<std::uint32_t>("version");
  if (version != kVersion)
    r.corrupt("unsupported checkpoint version " + std::to_string(version));

  TrainCheckpoint ckpt;
  ckpt.next_epoch = static_cast<int>(
      r.bounded(static_cast<std::uint64_t>(r.pod<std::int32_t>("next_epoch")), 0,
                std::uint64_t{1} << 31, "next_epoch"));
  ckpt.lr_scale = r.pod<float>("lr_scale");
  if (!std::isfinite(ckpt.lr_scale) || ckpt.lr_scale <= 0.0f || ckpt.lr_scale > 1.0f)
    r.corrupt("lr_scale out of range");
  ckpt.nonfinite_streak = static_cast<int>(
      r.bounded(static_cast<std::uint64_t>(r.pod<std::int32_t>("nonfinite_streak")), 0, 1 << 20,
                "nonfinite_streak"));
  ckpt.has_best = r.pod<bool>("has_best");
  ckpt.best_loss = r.pod<double>("best_loss");
  ckpt.best_params = read_matrices(r);
  for (auto& w : ckpt.shuffle_rng.words) w = r.pod<std::uint64_t>("rng word");
  ckpt.shuffle_rng.cached_normal = r.pod<double>("rng cached normal");
  ckpt.shuffle_rng.has_cached_normal = r.pod<bool>("rng cache flag");
  ckpt.adam_steps = static_cast<long>(
      r.bounded(static_cast<std::uint64_t>(r.pod<std::int64_t>("adam steps")), 0,
                std::uint64_t{1} << 40, "adam steps"));
  ckpt.adam_m = read_matrices(r);
  ckpt.adam_v = read_matrices(r);
  const auto model_size =
      r.bounded(r.pod<std::uint64_t>("model blob size"), 0, kMaxModelBytes, "model blob size");
  ckpt.model_bytes = std::string(r.bytes(static_cast<std::size_t>(model_size), "model blob"));
  if (r.remaining() != 0)
    r.corrupt(std::to_string(r.remaining()) + " trailing bytes after model blob");
  if (ckpt.adam_m.size() != ckpt.adam_v.size())
    r.corrupt("Adam moment lists disagree in length");
  return ckpt;
}

}  // namespace paragraph::core
