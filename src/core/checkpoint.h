// Durable training checkpoints.
//
// A checkpoint captures everything GnnPredictor::train needs to continue a
// run as if it had never stopped: the model blob (config + scaler +
// current weights, in the model-file format), the Adam moments and step
// count, the shuffle RNG stream, the divergence-recovery state (best
// snapshot, learning-rate scale, non-finite streak), and the next epoch
// index. A resumed run is bit-identical to an uninterrupted one — proved
// by tests/checkpoint_test.cpp, which kills training mid-run.
//
// Files are written atomically (temp + fsync + rename) and carry a
// trailing FNV-1a-64 checksum; loads are length-checked and bounded like
// model files, raising util::CorruptArtifactError on any damage.
#pragma once

#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace paragraph::core {

struct TrainCheckpoint {
  // Epoch to run next (i.e. epochs completed so far).
  int next_epoch = 0;
  // Divergence-recovery state (see GnnPredictor::train).
  float lr_scale = 1.0f;
  int nonfinite_streak = 0;
  bool has_best = false;
  double best_loss = 0.0;
  std::vector<nn::Matrix> best_params;
  // Exact shuffle stream position.
  util::Rng::State shuffle_rng;
  // Adam state.
  long adam_steps = 0;
  std::vector<nn::Matrix> adam_m;
  std::vector<nn::Matrix> adam_v;
  // Model-file bytes (core/serialize format) holding config, scaler, and
  // the current (not best) weights.
  std::string model_bytes;
};

// Atomic write; throws util::IoError on I/O failure.
void save_checkpoint(const TrainCheckpoint& ckpt, const std::string& path);

// Throws util::IoError (unreadable) or util::CorruptArtifactError
// (truncated / checksum mismatch / out-of-bounds counts).
TrainCheckpoint load_checkpoint(const std::string& path);

}  // namespace paragraph::core
