// Uniform train-and-evaluate interface over every learner compared in the
// paper's Fig 6: the two classical baselines (feature-only linear
// regression and XGBoost-style GBT) and the five GNN models.
#pragma once

#include <memory>
#include <string>

#include "baselines/regressor.h"
#include "core/predictor.h"

namespace paragraph::core {

enum class LearnerKind {
  kLinear,
  kXgb,
  kGcn,
  kGraphSage,
  kRgcn,
  kGat,
  kParaGraph,
};

const char* learner_name(LearnerKind k);
// All seven learners in the paper's Fig 6 order.
const std::vector<LearnerKind>& fig6_learners();

struct LearnerConfig {
  LearnerKind learner = LearnerKind::kParaGraph;
  dataset::TargetKind target = dataset::TargetKind::kCap;
  double max_v_ff = 10.0;  // Fig 6 uses the max_v = 10 fF CAP model
  int epochs = 150;
  std::uint64_t seed = 1;
  std::size_t embed_dim = 32;
  std::size_t num_layers = 5;
};

// Trains the learner on ds.train and evaluates on ds.test. For CAP,
// training and evaluation are restricted to nets with truth <= max_v.
EvalResult train_and_evaluate(const LearnerConfig& config, const dataset::SuiteDataset& ds);

// Feature matrix a classical (feature-only) learner sees for a target:
// the node's Table II features, plus a thick-gate flag when both
// transistor types are pooled.
nn::Matrix baseline_feature_matrix(const dataset::Sample& s, dataset::TargetKind target);

// Classical baseline with the GnnPredictor-style predict_all interface
// (used by the Table V study to annotate netlists with XGB predictions).
class ClassicalPredictor {
 public:
  // learner must be kLinear or kXgb.
  ClassicalPredictor(LearnerKind learner, dataset::TargetKind target, double max_v_ff = 1e7);

  void fit(const dataset::SuiteDataset& ds);
  // Raw-unit predictions for all nodes of the target's node types.
  std::vector<float> predict_all(const dataset::Sample& sample) const;

 private:
  LearnerKind learner_;
  dataset::TargetKind target_;
  double max_v_ff_;
  TargetScaler scaler_;
  std::unique_ptr<baselines::Regressor> regressor_;
};

}  // namespace paragraph::core
