// ParaGraph predictor: embedding model + FC regression head, target
// scaling, and the training/evaluation loop. This is the paper's primary
// contribution assembled from the substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dataset/dataset.h"
#include "eval/metrics.h"
#include "gnn/models.h"
#include "obs/sketch.h"

namespace paragraph::gnn {
class PlanCache;  // gnn/plan_cache.h
}
namespace paragraph::dataset {
class ShardStore;  // dataset/shards.h
}

namespace paragraph::core {

struct PredictorConfig {
  gnn::ModelKind model = gnn::ModelKind::kParaGraph;
  dataset::TargetKind target = dataset::TargetKind::kCap;
  std::size_t embed_dim = 32;  // paper: F = 32
  std::size_t num_layers = 5;  // paper: L = 5
  // Attention heads for the ParaGraph variants. The paper used 1 (GPU
  // memory bound) and conjectured more would help; see
  // bench_ext_multihead.
  std::size_t attention_heads = 1;
  // FC head depth; the paper uses 4 for CAP and 2 for device parameters.
  // 0 = pick the paper default for the target.
  std::size_t fc_layers = 0;
  // CAP only: maximum prediction value in fF. Training points above it are
  // dropped (Section IV); evaluation is restricted to truth <= max_v.
  double max_v_ff = 1e7;  // 10 pF
  int epochs = 150;
  float learning_rate = 0.01f;  // paper: ADAM with lr = 0.01
  // Global gradient-norm clip; stabilises the attention models on full-
  // graph batches (0 disables).
  float grad_clip = 1.0f;
  // Cosine learning-rate decay to lr * lr_final_fraction over the run;
  // locks in the good optimum instead of bouncing out of it late.
  float lr_final_fraction = 0.02f;
  std::uint64_t seed = 1;
  // Dataset-generation scale the model was trained against. Persisted by
  // core/serialize so predict/evaluate can rebuild the exact normaliser
  // statistics without the caller re-supplying --scale.
  double scale = 0.25;
  // Graph-level data parallelism: number of circuits whose forward/backward
  // run concurrently per optimiser step, with gradients merged in circuit
  // order and averaged before Adam. 1 (default) keeps the classic
  // one-step-per-graph schedule bit-for-bit; >1 is a different (batched)
  // schedule whose results are deterministic for any thread count.
  std::size_t batch_size = 1;
  // Runtime thread count recorded at training time (model-file metadata;
  // 0 = unrecorded). Purely informational — results don't depend on it.
  std::size_t train_threads = 0;

  std::size_t effective_fc_layers() const {
    if (fc_layers != 0) return fc_layers;
    return target == dataset::TargetKind::kCap ? 4 : 2;
  }
};

// Maps raw target values to training space and back.
// CAP: y' = y / max_v (training points with y > max_v are excluded).
// Device parameters: z-score fit on the training pool.
class TargetScaler {
 public:
  static TargetScaler for_cap(double max_v_ff);
  static TargetScaler fit_zscore(const std::vector<float>& train_values);
  // z-score in log10 space; used for the wide-range RES extension target.
  static TargetScaler fit_log_zscore(const std::vector<float>& train_values);

  float transform(float raw) const;
  float inverse(float scaled) const;
  // False for training points outside the scaler's valid range (CAP > max_v).
  bool in_range(float raw) const;
  double max_v() const { return max_v_; }

  // Plain-data view for persistence (core/serialize.h).
  struct State {
    bool zscore = false;
    bool log_space = false;
    double mean = 0.0;
    double stdev = 1.0;
    double max_v = 0.0;
  };
  State state() const { return {zscore_, log_space_, mean_, stdev_, max_v_}; }
  static TargetScaler from_state(const State& s);

 private:
  bool zscore_ = false;
  bool log_space_ = false;
  double mean_ = 0.0;
  double stdev_ = 1.0;
  double max_v_ = 0.0;  // 0 when z-scoring
};

// Per-circuit prediction in raw units, restricted to in-range nodes.
// `type_slot`/`node_index` (parallel to truth/pred) locate each prediction
// back in the sample's graph: slot within target_node_types(target) and
// local node index of that type — the provenance `paragraph report` uses
// to name the worst nets. Producers that cover every node in order (e.g.
// CapEnsemble::evaluate over net nodes) may leave them empty, meaning
// "position i is node i of slot 0".
struct CircuitPrediction {
  std::string name;
  std::vector<float> truth;
  std::vector<float> pred;
  std::vector<std::int32_t> type_slot;
  std::vector<std::int32_t> node_index;
  eval::RegressionMetrics metrics() const;
};

struct EvalResult {
  std::vector<CircuitPrediction> circuits;
  // Metrics pooled over every node of every circuit.
  eval::RegressionMetrics pooled() const;
};

// Per-epoch training telemetry handed to the optional train() callback
// and mirrored into the obs metrics registry when instrumentation is on.
struct EpochRecord {
  int epoch = 0;          // 0-based
  double loss = 0.0;      // mean loss over the epoch's batches
  double grad_norm = 0.0; // pre-clip global gradient norm of the last step
  double wall_ms = 0.0;   // epoch wall time
  double lr = 0.0;        // effective learning rate this epoch
  std::uint64_t rss_kb = 0;  // resident set at epoch end (0 off-Linux)
};
using EpochCallback = std::function<void(const EpochRecord&)>;

struct TrainCheckpoint;  // core/checkpoint.h

// Fault-tolerance knobs for train().
struct TrainOptions {
  // Write a checkpoint to `checkpoint_path` after every N completed
  // epochs (0 = off). Writes are atomic, so an interrupted run always
  // finds the last complete checkpoint.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  // Resume state from core::load_checkpoint. The predictor itself must
  // have been reconstructed from the checkpoint's model bytes
  // (predictor_from_bytes), so weights/scaler/config already match; train
  // restores the optimiser moments, shuffle stream, and recovery state,
  // making the resumed run bit-identical to an uninterrupted one.
  const TrainCheckpoint* resume = nullptr;
};

class GnnPredictor {
 public:
  GnnPredictor(const PredictorConfig& config);

  const PredictorConfig& config() const { return config_; }

  // Trains on ds.train; returns per-epoch mean losses (resumed runs:
  // losses of the epochs this call ran). `on_epoch`, when set, fires
  // after every epoch with that epoch's telemetry.
  //
  // Numeric guardrails: a step whose loss or gradient norm is non-finite
  // is skipped (weights and Adam state untouched), the best-snapshot
  // weights are restored, and the learning rate is backed off (bounded);
  // after 5 consecutive non-finite steps train throws
  // util::DivergenceError. Counters: train.nonfinite_steps,
  // train.lr_backoffs.
  std::vector<double> train(const dataset::SuiteDataset& ds,
                            const EpochCallback& on_epoch = nullptr,
                            const TrainOptions& options = {});

  // Out-of-core training: samples stream from `store` through its
  // LRU-bounded working set instead of residing wholly in memory (the
  // prepared plans/batches are bounded by the same byte budget).
  // Bit-identical to the in-memory overload on the same dataset —
  // per-sample preparation is deterministic, the shuffle stream depends
  // only on the eligible-sample count, and the streamed drift sketches
  // reproduce eval::sketch_graphs exactly (eval::SketchBuilder).
  std::vector<double> train(dataset::ShardStore& store, const EpochCallback& on_epoch = nullptr,
                            const TrainOptions& options = {});

  // Predicts raw-unit values for in-range nodes of each sample.
  EvalResult evaluate(const dataset::SuiteDataset& ds,
                      const std::vector<dataset::Sample>& samples) const;

  // Out-of-core evaluation over the store's test (default) or train
  // split. Serial over circuits so peak memory stays bounded by the
  // store's working set; per-circuit predictions are bit-identical to
  // the in-memory overload.
  EvalResult evaluate(dataset::ShardStore& store, bool test_split = true) const;

  // Raw-unit predictions for ALL nodes of the target's node types,
  // concatenated in (type slot, node) order. Used by Algorithm 2.
  std::vector<float> predict_all(const dataset::SuiteDataset& ds,
                                 const dataset::Sample& sample) const;

  // Same, reusing a caller-built GraphPlan (batched inference paths build
  // the plan once per circuit and share it across models/calls).
  std::vector<float> predict_all(const dataset::SuiteDataset& ds, const dataset::Sample& sample,
                                 const gnn::GraphPlan& plan) const;

  // Hierarchy-aware variant: memoizes per-subckt-template plans and
  // interior embeddings in `cache`, running the model only on the reduced
  // graph. Bit-identical to the plain overloads (gnn/plan_cache.h explains
  // why); falls back to them when the sample has no cacheable hierarchy.
  std::vector<float> predict_all(const dataset::SuiteDataset& ds, const dataset::Sample& sample,
                                 gnn::PlanCache& cache) const;

  // Identity of the current weights; reassigned whenever train() completes
  // so memoized embeddings keyed by it are never stale.
  std::uint64_t model_key() const { return model_key_; }

  // True when this model's plans need the homogenised edge view; callers
  // building shared GraphPlans pass this to gnn::GraphPlan::build.
  bool needs_homo() const;

  // Final-layer embeddings for one node type (e.g. for the t-SNE study).
  nn::Matrix embeddings(const dataset::SuiteDataset& ds, const dataset::Sample& sample,
                        graph::NodeType type) const;

  // Per-layer, per-edge-type attention statistics on one circuit
  // (interpretability study; only the attention-based models fill it).
  gnn::AttentionRecord attention_analysis(const dataset::SuiteDataset& ds,
                                          const dataset::Sample& sample) const;

  std::size_t num_parameters() const;
  const TargetScaler& scaler() const { return scaler_; }
  void set_scaler(const TargetScaler& s) { scaler_ = s; }

  // Training-set feature-distribution sketches (drift reference). Filled
  // by train(), persisted by core/serialize as format v5; empty for models
  // loaded from pre-v5 files.
  const std::vector<obs::FeatureSketch>& feature_sketches() const { return sketches_; }
  void set_feature_sketches(std::vector<obs::FeatureSketch> s) { sketches_ = std::move(s); }

  // Trainable parameters in deterministic construction order (embedding
  // model first, then the FC head); used by the optimiser and by
  // save/load_predictor.
  std::vector<nn::Tensor> parameters() const;

 private:
  // One sample staged for training: plan, normalised batch, per-slot
  // in-range indices and scaled targets (defined in predictor.cpp). The
  // streamed path additionally owns the Sample backing the batch.
  struct Prepared;
  // Indexable source of prepared samples. The in-memory path serves a
  // prebuilt vector; the streamed path materialises through an LRU so the
  // same train_impl drives both without knowing which it has.
  struct PreparedSource {
    std::size_t count = 0;
    std::function<std::shared_ptr<const Prepared>(std::size_t)> get;
  };
  std::vector<double> train_impl(const PreparedSource& src, const EpochCallback& on_epoch,
                                 const TrainOptions& options);
  // nullptr when no target of the sample is in the scaler's range (the
  // sample contributes nothing to training).
  std::shared_ptr<const Prepared> prepare_sample(const dataset::FeatureNormalizer& norm,
                                                 const dataset::Sample& s,
                                                 std::shared_ptr<const dataset::Sample> owned) const;
  gnn::GraphBatch make_batch(const dataset::FeatureNormalizer& norm,
                             const dataset::Sample& sample, const gnn::GraphPlan* plan) const;
  CircuitPrediction evaluate_circuit(const dataset::FeatureNormalizer& norm,
                                     const dataset::Sample& s) const;
  nn::Tensor forward_predictions(const gnn::GraphBatch& batch, std::size_t type_slot) const;

  PredictorConfig config_;
  std::uint64_t model_key_ = 0;
  TargetScaler scaler_;
  std::vector<obs::FeatureSketch> sketches_;
  std::unique_ptr<gnn::EmbeddingModel> embedding_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace paragraph::core
