#include "core/predictor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/serialize.h"
#include "dataset/shards.h"
#include "eval/drift.h"
#include "gnn/plan.h"
#include "gnn/plan_cache.h"
#include "nn/optim.h"
#include "obs/log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "runtime/thread_pool.h"
#include "util/errors.h"
#include "util/faultinject.h"
#include "util/rng.h"
#include "util/stats.h"

namespace paragraph::core {

using dataset::Sample;
using dataset::SuiteDataset;
using dataset::TargetKind;
using graph::NodeType;
using gnn::GraphBatch;
using nn::Matrix;
using nn::Tensor;

// ------------------------------------------------------ TargetScaler ----

TargetScaler TargetScaler::for_cap(double max_v_ff) {
  TargetScaler s;
  s.zscore_ = false;
  s.max_v_ = max_v_ff;
  return s;
}

TargetScaler TargetScaler::fit_zscore(const std::vector<float>& train_values) {
  TargetScaler s;
  s.zscore_ = true;
  if (!train_values.empty()) {
    double sum = 0.0, sum2 = 0.0;
    for (const float v : train_values) {
      sum += v;
      sum2 += static_cast<double>(v) * v;
    }
    s.mean_ = sum / static_cast<double>(train_values.size());
    const double var =
        std::max(sum2 / static_cast<double>(train_values.size()) - s.mean_ * s.mean_, 1e-12);
    s.stdev_ = std::sqrt(var);
  }
  return s;
}

TargetScaler TargetScaler::fit_log_zscore(const std::vector<float>& train_values) {
  std::vector<float> logs;
  logs.reserve(train_values.size());
  for (const float v : train_values)
    logs.push_back(std::log10(std::max(v, 1e-6f)));
  TargetScaler s = fit_zscore(logs);
  s.log_space_ = true;
  return s;
}

float TargetScaler::transform(float raw) const {
  if (zscore_) {
    const double v = log_space_ ? std::log10(std::max(raw, 1e-6f)) : raw;
    return static_cast<float>((v - mean_) / stdev_);
  }
  return static_cast<float>(raw / max_v_);
}

float TargetScaler::inverse(float scaled) const {
  if (zscore_) {
    const double v = scaled * stdev_ + mean_;
    return static_cast<float>(log_space_ ? std::pow(10.0, v) : v);
  }
  return static_cast<float>(scaled * max_v_);
}

bool TargetScaler::in_range(float raw) const { return zscore_ || raw <= max_v_; }

TargetScaler TargetScaler::from_state(const State& s) {
  TargetScaler t;
  t.zscore_ = s.zscore;
  t.log_space_ = s.log_space;
  t.mean_ = s.mean;
  t.stdev_ = s.stdev;
  t.max_v_ = s.max_v;
  return t;
}

// --------------------------------------------------- result plumbing ----

eval::RegressionMetrics CircuitPrediction::metrics() const {
  return eval::evaluate(truth, pred);
}

eval::RegressionMetrics EvalResult::pooled() const {
  std::vector<float> t, p;
  for (const auto& c : circuits) {
    t.insert(t.end(), c.truth.begin(), c.truth.end());
    p.insert(p.end(), c.pred.begin(), c.pred.end());
  }
  return eval::evaluate(t, p);
}

// ------------------------------------------------------ GnnPredictor ----

namespace {
// Process-unique weight identities; every construction or completed train
// gets a fresh one, so PlanCache embeddings keyed by it cannot go stale.
std::uint64_t next_model_key() {
  static std::atomic<std::uint64_t> next{0};
  return ++next;
}
}  // namespace

GnnPredictor::GnnPredictor(const PredictorConfig& config)
    : config_(config), model_key_(next_model_key()) {
  util::Rng rng(config.seed * 0x9e3779b9ULL + 17);
  embedding_ = gnn::make_model(config.model, config.embed_dim, config.num_layers, rng,
                               config.attention_heads);
  std::vector<std::size_t> dims(config.effective_fc_layers(), config.embed_dim);
  dims.push_back(1);
  head_ = std::make_unique<nn::Mlp>(dims, rng);
  if (config.target == TargetKind::kCap) scaler_ = TargetScaler::for_cap(config.max_v_ff);
}

bool GnnPredictor::needs_homo() const {
  switch (config_.model) {
    case gnn::ModelKind::kGcn:
    case gnn::ModelKind::kGraphSage:
    case gnn::ModelKind::kGat: return true;
    default: return false;
  }
}

GraphBatch GnnPredictor::make_batch(const dataset::FeatureNormalizer& norm, const Sample& sample,
                                    const gnn::GraphPlan* plan) const {
  GraphBatch b;
  b.graph = &sample.graph;
  b.plan = plan;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    if (sample.graph.num_nodes(nt) == 0) continue;
    b.features[t] = Tensor(norm.apply(sample.graph, nt));
  }
  return b;
}

struct GnnPredictor::Prepared {
  std::unique_ptr<gnn::GraphPlan> plan;
  GraphBatch batch;                  // points into the sample's graph
  std::vector<nn::IndexHandle> idx;  // per type slot, in-range node ids
  std::vector<Matrix> target;        // per type slot, scaled targets
  // Streamed path: the materialised sample the batch references. The
  // in-memory path leaves it null (the SuiteDataset owns its samples).
  std::shared_ptr<const Sample> owned;
};

std::shared_ptr<const GnnPredictor::Prepared> GnnPredictor::prepare_sample(
    const dataset::FeatureNormalizer& norm, const Sample& s,
    std::shared_ptr<const Sample> owned) const {
  const auto& types = dataset::target_node_types(config_.target);
  auto p = std::make_shared<Prepared>();
  p->owned = std::move(owned);
  p->plan = std::make_unique<gnn::GraphPlan>(gnn::GraphPlan::build(s.graph, needs_homo()));
  p->batch = make_batch(norm, s, p->plan.get());
  bool any = false;
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const auto& raw = s.target_values(config_.target, slot);
    std::vector<std::int32_t> idx;
    std::vector<float> scaled;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (!scaler_.in_range(raw[i])) continue;
      idx.push_back(static_cast<std::int32_t>(i));
      scaled.push_back(scaler_.transform(raw[i]));
    }
    p->idx.push_back(nn::make_index(std::move(idx)));
    p->target.emplace_back(scaled.size(), 1, std::move(scaled));
    if (!p->idx.back()->empty()) any = true;
  }
  return any ? p : nullptr;
}

Tensor GnnPredictor::forward_predictions(const GraphBatch& batch, std::size_t type_slot) const {
  const auto& types = dataset::target_node_types(config_.target);
  const NodeType nt = types.at(type_slot);
  gnn::TypeTensors emb = embedding_->embed(batch);
  const Tensor& z = emb[static_cast<std::size_t>(nt)];
  if (!z.defined()) return Tensor();
  return head_->forward(z);
}

namespace {

double global_grad_norm(const std::vector<Tensor>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    const Matrix& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i)
      total += static_cast<double>(g.data()[i]) * g.data()[i];
  }
  return std::sqrt(total);
}

}  // namespace

std::vector<double> GnnPredictor::train(const SuiteDataset& ds, const EpochCallback& on_epoch,
                                        const TrainOptions& options) {
  PARAGRAPH_TIMED_SCOPE("train");

  // Drift reference: what "inputs like the training set" looks like.
  // Persisted with the model (format v5) and compared against live
  // inference inputs by eval::check_drift.
  sketches_ = eval::sketch_graphs(ds.train);

  if (config_.target == TargetKind::kRes) {
    scaler_ = TargetScaler::fit_log_zscore(SuiteDataset::pooled_targets(ds.train, config_.target));
  } else if (config_.target != TargetKind::kCap) {
    scaler_ = TargetScaler::fit_zscore(SuiteDataset::pooled_targets(ds.train, config_.target));
  }

  // Precompute the graph plan, batch, per-slot training indices, and
  // scaled targets once per sample; every epoch's forward reuses them.
  std::vector<std::shared_ptr<const Prepared>> prepared;
  {
    PARAGRAPH_TIMED_SCOPE("prepare");
    for (const Sample& s : ds.train)
      if (auto p = prepare_sample(ds.normalizer, s, nullptr)) prepared.push_back(std::move(p));
  }
  PreparedSource src;
  src.count = prepared.size();
  src.get = [&prepared](std::size_t i) { return prepared[i]; };
  return train_impl(src, on_epoch, options);
}

std::vector<double> GnnPredictor::train(dataset::ShardStore& store, const EpochCallback& on_epoch,
                                        const TrainOptions& options) {
  PARAGRAPH_TIMED_SCOPE("train");
  const std::size_t n = store.num_train();
  const auto& types = dataset::target_node_types(config_.target);

  // Drift sketches in two streaming passes (range fit, then fill) —
  // bit-identical to eval::sketch_graphs over the materialised set.
  {
    PARAGRAPH_TIMED_SCOPE("sketch");
    eval::SketchBuilder sb;
    for (std::size_t i = 0; i < n; ++i) sb.observe_range(*store.train(i));
    sb.begin_fill();
    for (std::size_t i = 0; i < n; ++i) sb.observe_values(*store.train(i));
    sketches_ = sb.finish();
  }

  if (config_.target != TargetKind::kCap) {
    // Same pooling order as SuiteDataset::pooled_targets.
    std::vector<float> pooled;
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = store.train(i);
      for (const auto& vec : s->targets[static_cast<std::size_t>(config_.target)])
        pooled.insert(pooled.end(), vec.begin(), vec.end());
    }
    scaler_ = config_.target == TargetKind::kRes ? TargetScaler::fit_log_zscore(pooled)
                                                 : TargetScaler::fit_zscore(pooled);
  }

  // Eligible samples (any in-range target) in train order — the same
  // filter the in-memory path applies while preparing.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = store.train(i);
    bool any = false;
    for (std::size_t slot = 0; slot < types.size() && !any; ++slot)
      for (const float raw : s->target_values(config_.target, slot))
        if (scaler_.in_range(raw)) {
          any = true;
          break;
        }
    if (any) eligible.push_back(i);
  }

  // LRU over prepared samples: plans/batches roughly double the
  // materialised sample, so price entries at 2x the store's estimator
  // and cap at the same byte budget the store enforces for raw samples.
  struct Pin {
    std::shared_ptr<const Prepared> p;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;
  };
  auto cache = std::make_shared<std::unordered_map<std::size_t, Pin>>();
  auto state = std::make_shared<std::pair<std::size_t, std::uint64_t>>(0, 0);  // bytes, tick

  PreparedSource src;
  src.count = eligible.size();
  src.get = [this, &store, eligible, cache, state](std::size_t k) {
    auto& [cache_bytes, tick] = *state;
    ++tick;
    if (const auto it = cache->find(k); it != cache->end()) {
      it->second.tick = tick;
      return it->second.p;
    }
    const std::shared_ptr<const Sample> s = store.train(eligible[k]);
    auto p = prepare_sample(store.normalizer(), *s, s);
    if (!p)
      throw std::logic_error("GnnPredictor::train: sample lost its in-range targets mid-run");
    const std::size_t bytes = dataset::ShardStore::sample_bytes(*s) * 2;
    cache_bytes += bytes;
    (*cache)[k] = Pin{p, bytes, tick};
    while (cache_bytes > store.config().max_resident_bytes && cache->size() > 1) {
      auto victim = cache->end();
      for (auto it = cache->begin(); it != cache->end(); ++it)
        if (it->first != k && (victim == cache->end() || it->second.tick < victim->second.tick))
          victim = it;
      if (victim == cache->end()) break;
      cache_bytes -= victim->second.bytes;
      cache->erase(victim);
    }
    if (obs::enabled())
      obs::MetricsRegistry::instance().gauge("shards.prepared_bytes").set(
          static_cast<double>(cache_bytes));
    return p;
  };
  return train_impl(src, on_epoch, options);
}

std::vector<double> GnnPredictor::train_impl(const PreparedSource& src,
                                             const EpochCallback& on_epoch,
                                             const TrainOptions& options) {
  const auto& types = dataset::target_node_types(config_.target);
  if (src.count == 0) throw std::logic_error("GnnPredictor::train: no training data in range");

  std::vector<Tensor> params = parameters();
  nn::Adam opt(params, config_.learning_rate);
  util::Rng shuffle_rng(config_.seed ^ 0xfeedface1234ULL);

  // Graph-level data parallelism (batch_size > 1): each of the B circuits
  // in a step runs forward/backward against its own replica of the model
  // (identical construction seed -> identical parameter layout), and the
  // replica gradients are merged in circuit order and averaged before the
  // single Adam step. Replica forward/backward runs one circuit per pool
  // chunk; kernels inside a chunk execute inline, so per-circuit results
  // match the serial computation exactly and the merged gradient is
  // identical at any thread count.
  struct Replica {
    std::unique_ptr<gnn::EmbeddingModel> embedding;
    std::unique_ptr<nn::Mlp> head;
    std::vector<Tensor> params;
  };
  const std::size_t batch =
      std::min<std::size_t>(std::max<std::size_t>(config_.batch_size, 1), src.count);
  std::vector<Replica> replicas;
  if (batch > 1) {
    for (std::size_t r = 0; r < batch; ++r) {
      util::Rng rng(config_.seed * 0x9e3779b9ULL + 17);
      Replica rep;
      rep.embedding = gnn::make_model(config_.model, config_.embed_dim, config_.num_layers, rng,
                                      config_.attention_heads);
      std::vector<std::size_t> dims(config_.effective_fc_layers(), config_.embed_dim);
      dims.push_back(1);
      rep.head = std::make_unique<nn::Mlp>(dims, rng);
      rep.params = rep.embedding->parameters();
      const auto hp = rep.head->parameters();
      rep.params.insert(rep.params.end(), hp.begin(), hp.end());
      if (rep.params.size() != params.size())
        throw std::logic_error("GnnPredictor::train: replica parameter layout mismatch");
      replicas.push_back(std::move(rep));
    }
  }
  const auto& type_list = types;
  auto circuit_loss = [&](gnn::EmbeddingModel& emb_model, nn::Mlp& head,
                          const Prepared& p) -> Tensor {
    std::vector<Tensor> losses;
    gnn::TypeTensors emb = emb_model.embed(p.batch);
    for (std::size_t slot = 0; slot < type_list.size(); ++slot) {
      if (p.idx[slot]->empty()) continue;
      const Tensor& z = emb[static_cast<std::size_t>(type_list[slot])];
      if (!z.defined()) continue;
      Tensor zsel = nn::gather_rows(z, p.idx[slot]);
      Tensor pred = head.forward(zsel);
      losses.push_back(nn::mse_loss(pred, p.target[slot]));
    }
    if (losses.empty()) return Tensor();
    Tensor loss = losses.size() == 1 ? losses[0] : nn::sum_tensors(losses);
    if (losses.size() > 1) loss = nn::scale(loss, 1.0f / static_cast<float>(losses.size()));
    return loss;
  };

  // Divergence recovery: keep a snapshot of the best-so-far parameters.
  // Full-range MSE targets occasionally blow a step up so badly that Adam
  // never recovers (the loss parks at the predict-the-mean plateau); on a
  // blow-up we roll back to the snapshot and continue at a reduced
  // learning rate. The best snapshot is also restored at the end.
  std::vector<Matrix> best_params;
  double best_loss = std::numeric_limits<double>::infinity();
  float lr_scale = 1.0f;
  auto snapshot = [&] {
    best_params.clear();
    for (const auto& p : params) best_params.push_back(p.value());
  };
  auto restore = [&] {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_params[i];
  };

  // Per-step numeric guardrail state. A non-finite loss or gradient norm
  // skips the step (weights and Adam moments untouched), restores the
  // best-snapshot weights, and halves the learning rate (bounded below);
  // kMaxNonfiniteStreak consecutive failures abort the run cleanly.
  constexpr int kMaxNonfiniteStreak = 5;
  constexpr float kMinLrScale = 0.05f;
  int nonfinite_streak = 0;

  int start_epoch = 0;
  if (options.resume != nullptr) {
    const TrainCheckpoint& ck = *options.resume;
    if (ck.next_epoch > config_.epochs)
      throw util::CorruptArtifactError(
          "resume: checkpoint has completed " + std::to_string(ck.next_epoch) +
          " epochs but the configured budget is " + std::to_string(config_.epochs));
    if (ck.has_best && ck.best_params.size() != params.size())
      throw util::CorruptArtifactError("resume: best-snapshot parameter count mismatch");
    opt.set_state(ck.adam_m, ck.adam_v, ck.adam_steps);
    start_epoch = ck.next_epoch;
    lr_scale = ck.lr_scale;
    nonfinite_streak = ck.nonfinite_streak;
    if (ck.has_best) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (ck.best_params[i].rows() != params[i].value().rows() ||
            ck.best_params[i].cols() != params[i].value().cols())
          throw util::CorruptArtifactError("resume: best-snapshot shape mismatch at parameter " +
                                           std::to_string(i));
      }
      best_params = ck.best_params;
      best_loss = ck.best_loss;
    }
    obs::log_info("train", "resumed from checkpoint",
                  {{"next_epoch", start_epoch}, {"lr_scale", static_cast<double>(lr_scale)}});
  }

  auto on_nonfinite = [&](int epoch, float epoch_lr, double loss_val, double grad_norm) {
    ++nonfinite_streak;
    const float prev_scale = lr_scale;
    lr_scale = std::max(lr_scale * 0.5f, kMinLrScale);
    opt.set_learning_rate(epoch_lr * lr_scale);
    if (!best_params.empty()) restore();
    if (obs::enabled()) {
      obs::MetricsRegistry::instance().counter("train.nonfinite_steps").add();
      if (lr_scale != prev_scale)
        obs::MetricsRegistry::instance().counter("train.lr_backoffs").add();
    }
    obs::log_warn("train", "non-finite step skipped",
                  {{"epoch", epoch},
                   {"loss", loss_val},
                   {"grad_norm", grad_norm},
                   {"streak", nonfinite_streak},
                   {"lr_scale", static_cast<double>(lr_scale)}});
    if (nonfinite_streak >= kMaxNonfiniteStreak)
      throw util::DivergenceError("training diverged: " + std::to_string(nonfinite_streak) +
                                  " consecutive non-finite steps (epoch " +
                                  std::to_string(epoch) + ")");
  };

  // Per-epoch telemetry is cheap (one clock read per epoch) so it is
  // collected unconditionally; the obs sinks below are gated.
  const bool want_telemetry =
      on_epoch != nullptr || obs::enabled() ||
      obs::Logger::instance().should_log(obs::LogLevel::kDebug);

  std::vector<double> epoch_losses;
  std::vector<std::size_t> order(src.count);
  std::iota(order.begin(), order.end(), 0);
  if (options.resume != nullptr) {
    // The shuffle permutation is cumulative (each epoch shuffles the
    // previous epoch's order), so replay the interrupted run's shuffles.
    // This also reproduces the RNG stream position; the checkpoint's
    // stored state then acts as an integrity check that the dataset (and
    // so the shuffle stream) matches the interrupted run.
    for (int e = 0; e < start_epoch; ++e) shuffle_rng.shuffle(order);
    const util::Rng::State got = shuffle_rng.state();
    const util::Rng::State& want = options.resume->shuffle_rng;
    if (got.words[0] != want.words[0] || got.words[1] != want.words[1] ||
        got.words[2] != want.words[2] || got.words[3] != want.words[3] ||
        got.has_cached_normal != want.has_cached_normal)
      throw util::CorruptArtifactError(
          "resume: shuffle stream mismatch (checkpoint was taken against a "
          "different dataset or seed)");
  }
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    PARAGRAPH_TIMED_SCOPE("epoch");
    const auto epoch_start = std::chrono::steady_clock::now();
    float lr = config_.learning_rate;
    if (config_.lr_final_fraction < 1.0f && config_.epochs > 1) {
      const float progress = static_cast<float>(epoch) / static_cast<float>(config_.epochs - 1);
      const float cosine = 0.5f * (1.0f + std::cos(progress * static_cast<float>(M_PI)));
      const float lo = config_.learning_rate * config_.lr_final_fraction;
      lr = lo + (config_.learning_rate - lo) * cosine;
    }
    opt.set_learning_rate(lr * lr_scale);
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    double last_grad_norm = 0.0;
    if (batch == 1) {
      for (const std::size_t k : order) {
        const std::shared_ptr<const Prepared> pinned = src.get(k);
        const Prepared& p = *pinned;
        Tensor loss;
        {
          PARAGRAPH_TIMED_SCOPE("forward");
          loss = circuit_loss(*embedding_, *head_, p);
          if (!loss.defined()) continue;
        }
        double loss_val = loss.item();
        if (util::fault::should_fail("train.loss"))
          loss_val = std::numeric_limits<double>::quiet_NaN();
        if (!std::isfinite(loss_val)) {
          on_nonfinite(epoch, lr, loss_val, 0.0);
          continue;
        }
        {
          PARAGRAPH_TIMED_SCOPE("backward");
          opt.zero_grad();
          loss.backward();
        }
        {
          PARAGRAPH_TIMED_SCOPE("optimizer");
          if (config_.grad_clip > 0.0f) {
            last_grad_norm = nn::clip_grad_norm(params, config_.grad_clip);
          } else {
            last_grad_norm = global_grad_norm(params);
          }
          if (!std::isfinite(last_grad_norm)) {
            on_nonfinite(epoch, lr, loss_val, last_grad_norm);
            continue;
          }
          opt.step();
        }
        nonfinite_streak = 0;
        loss_sum += loss_val;
        ++loss_count;
      }
    } else {
      for (std::size_t start = 0; start < order.size(); start += batch) {
        const std::size_t gcount = std::min(batch, order.size() - start);
        {
          PARAGRAPH_TIMED_SCOPE("stage");
          for (std::size_t r = 0; r < gcount; ++r)
            for (std::size_t pi = 0; pi < params.size(); ++pi)
              replicas[r].params[pi].mutable_value() = params[pi].value();
        }
        // Pin the whole group on this thread before fanning out — the
        // source (and a streamed store behind it) is not thread-safe.
        std::vector<std::shared_ptr<const Prepared>> group(gcount);
        for (std::size_t r = 0; r < gcount; ++r) group[r] = src.get(order[start + r]);
        std::vector<double> circuit_losses(gcount, -1.0);
        {
          PARAGRAPH_TIMED_SCOPE("forward_backward");
          runtime::parallel_for("train.batch", gcount, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
              Replica& rep = replicas[r];
              const Prepared& p = *group[r];
              for (auto& t : rep.params) t.zero_grad();
              Tensor loss = circuit_loss(*rep.embedding, *rep.head, p);
              if (!loss.defined()) continue;
              loss.backward();
              double lv = loss.item();
              if (util::fault::should_fail("train.loss"))
                lv = std::numeric_limits<double>::quiet_NaN();
              circuit_losses[r] = lv;
            }
          });
        }
        // -1 marks a circuit with no in-range loss; a non-finite entry
        // means the whole merged step would be poisoned, so skip it.
        std::size_t used = 0;
        bool poisoned = false;
        for (const double l : circuit_losses) {
          if (!std::isfinite(l)) poisoned = true;
          else if (l >= 0.0) ++used;
        }
        if (poisoned) {
          on_nonfinite(epoch, lr, std::numeric_limits<double>::quiet_NaN(), 0.0);
          continue;
        }
        if (used == 0) continue;
        bool stepped = false;
        {
          PARAGRAPH_TIMED_SCOPE("optimizer");
          opt.zero_grad();
          const float inv = 1.0f / static_cast<float>(used);
          for (std::size_t pi = 0; pi < params.size(); ++pi) {
            Matrix merged(params[pi].value().rows(), params[pi].value().cols(), 0.0f);
            for (std::size_t r = 0; r < gcount; ++r) {
              if (circuit_losses[r] < 0.0) continue;
              nn::axpy_inplace(merged, inv, replicas[r].params[pi].grad());
            }
            params[pi].accumulate_grad(merged);
          }
          if (config_.grad_clip > 0.0f) {
            last_grad_norm = nn::clip_grad_norm(params, config_.grad_clip);
          } else {
            last_grad_norm = global_grad_norm(params);
          }
          if (std::isfinite(last_grad_norm)) {
            opt.step();
            stepped = true;
          }
        }
        if (!stepped) {
          on_nonfinite(epoch, lr, 0.0, last_grad_norm);
          continue;
        }
        nonfinite_streak = 0;
        for (const double l : circuit_losses)
          if (l >= 0.0) loss_sum += l;
        loss_count += used;
      }
    }
    const double epoch_loss = loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0;
    epoch_losses.push_back(epoch_loss);
    if (want_telemetry) {
      EpochRecord rec;
      rec.epoch = epoch;
      rec.loss = epoch_loss;
      rec.grad_norm = last_grad_norm;
      rec.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - epoch_start)
                        .count();
      rec.lr = static_cast<double>(lr * lr_scale);
      // One /proc read per epoch (~µs against ≥ms epochs); VmRSS tracks
      // resident growth across the run, VmHWM the high-water mark.
      if (const obs::ProcMemory pm = obs::sample_process_memory(); pm.ok)
        rec.rss_kb = pm.vm_rss_kb;
      obs::log_debug("train", "epoch",
                     {{"epoch", rec.epoch},
                      {"loss", rec.loss},
                      {"grad_norm", rec.grad_norm},
                      {"wall_ms", rec.wall_ms},
                      {"lr", rec.lr}});
      if (obs::enabled()) {
        obs::JsonValue r = obs::JsonValue::object();
        r.set("epoch", rec.epoch);
        r.set("loss", rec.loss);
        r.set("grad_norm", rec.grad_norm);
        r.set("wall_ms", rec.wall_ms);
        r.set("lr", rec.lr);
        r.set("rss_kb", rec.rss_kb);
        r.set("matrix_peak_bytes", obs::MemTracker::instance().peak_bytes());
        obs::MetricsRegistry::instance().append_record("train.epochs", std::move(r));
        obs::MetricsRegistry::instance().histogram("train.epoch_ms").record(rec.wall_ms);
        obs::MetricsRegistry::instance().gauge("train.loss").set(rec.loss);
      }
      if (on_epoch) on_epoch(rec);
    }
    if (epoch_loss < best_loss) {
      best_loss = epoch_loss;
      snapshot();
    } else if (!best_params.empty() && epoch_loss > 10.0 * best_loss) {
      restore();
      lr_scale = std::max(lr_scale * 0.5f, 0.05f);
      obs::log_debug("train", "divergence rollback",
                     {{"epoch", epoch},
                      {"loss", epoch_loss},
                      {"lr_scale", static_cast<double>(lr_scale)}});
    }
    if (options.checkpoint_every > 0 && !options.checkpoint_path.empty() &&
        (epoch + 1) % options.checkpoint_every == 0) {
      TrainCheckpoint ck;
      ck.next_epoch = epoch + 1;
      ck.lr_scale = lr_scale;
      ck.nonfinite_streak = nonfinite_streak;
      ck.has_best = !best_params.empty();
      ck.best_loss = ck.has_best ? best_loss : 0.0;
      ck.best_params = best_params;
      ck.shuffle_rng = shuffle_rng.state();
      ck.adam_steps = opt.steps();
      ck.adam_m = opt.moments1();
      ck.adam_v = opt.moments2();
      ck.model_bytes = predictor_to_bytes(*this);
      save_checkpoint(ck, options.checkpoint_path);
      obs::log_debug("train", "checkpoint written",
                     {{"epoch", epoch}, {"path", options.checkpoint_path}});
    }
    // Test hook: simulate the process dying between epochs (see
    // tests/checkpoint_test.cpp kill-and-resume).
    if (util::fault::should_fail("train.epoch"))
      throw util::IoError("fault injected: training interrupted after epoch " +
                          std::to_string(epoch));
    // Test hook: a genuine crash (no exception, no cleanup) so the flight
    // recorder's fatal-signal dump path can be exercised end to end.
    if (util::fault::should_fail("train.crash")) std::abort();
  }
  if (!best_params.empty()) restore();
  model_key_ = next_model_key();  // weights changed: retire memoized embeddings
  return epoch_losses;
}

EvalResult GnnPredictor::evaluate(const SuiteDataset& ds,
                                  const std::vector<Sample>& samples) const {
  PARAGRAPH_TIMED_SCOPE("evaluate");
  EvalResult result;
  result.circuits.resize(samples.size());
  // Inference is read-only on the model, so circuits run one per pool
  // chunk; results land at their sample index, keeping output order (and
  // values — per-circuit kernels execute inline) identical to serial.
  runtime::parallel_for("eval.circuits", samples.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t si = lo; si < hi; ++si)
      result.circuits[si] = evaluate_circuit(ds.normalizer, samples[si]);
  });
  return result;
}

CircuitPrediction GnnPredictor::evaluate_circuit(const dataset::FeatureNormalizer& norm,
                                                 const Sample& s) const {
  const auto& types = dataset::target_node_types(config_.target);
  const gnn::GraphPlan plan = gnn::GraphPlan::build(s.graph, needs_homo());
  const GraphBatch batch = make_batch(norm, s, &plan);
  CircuitPrediction cp;
  cp.name = s.name;
  gnn::TypeTensors emb = embedding_->embed(batch);
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const Tensor& z = emb[static_cast<std::size_t>(types[slot])];
    if (!z.defined()) continue;
    const Tensor pred = head_->forward(z);
    const auto& raw = s.target_values(config_.target, slot);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (!scaler_.in_range(raw[i])) continue;
      cp.truth.push_back(raw[i]);
      cp.pred.push_back(scaler_.inverse(pred.value()(i, 0)));
      cp.type_slot.push_back(static_cast<std::int32_t>(slot));
      cp.node_index.push_back(static_cast<std::int32_t>(i));
    }
  }
  return cp;
}

EvalResult GnnPredictor::evaluate(dataset::ShardStore& store, bool test_split) const {
  PARAGRAPH_TIMED_SCOPE("evaluate");
  const std::size_t n = test_split ? store.num_test() : store.num_train();
  EvalResult result;
  result.circuits.resize(n);
  // Serial over circuits so peak memory stays bounded by the store's
  // working set; each circuit's math is the same inline computation the
  // in-memory overload runs, so predictions match it bit for bit.
  for (std::size_t si = 0; si < n; ++si) {
    const std::shared_ptr<const Sample> sp = test_split ? store.test(si) : store.train(si);
    result.circuits[si] = evaluate_circuit(store.normalizer(), *sp);
  }
  return result;
}

std::vector<float> GnnPredictor::predict_all(const SuiteDataset& ds,
                                             const Sample& sample) const {
  const gnn::GraphPlan plan = gnn::GraphPlan::build(sample.graph, needs_homo());
  return predict_all(ds, sample, plan);
}

std::vector<float> GnnPredictor::predict_all(const SuiteDataset& ds, const Sample& sample,
                                             const gnn::GraphPlan& plan) const {
  PARAGRAPH_TIMED_SCOPE("predict");
  const auto& types = dataset::target_node_types(config_.target);
  const GraphBatch batch = make_batch(ds.normalizer, sample, &plan);
  gnn::TypeTensors emb = embedding_->embed(batch);
  std::vector<float> out;
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const Tensor& z = emb[static_cast<std::size_t>(types[slot])];
    if (!z.defined()) {
      // Keep positional alignment with target_values by emitting zeros.
      out.resize(out.size() + sample.target_values(config_.target, slot).size(), 0.0f);
      continue;
    }
    const Tensor pred = head_->forward(z);
    for (std::size_t i = 0; i < pred.rows(); ++i)
      out.push_back(scaler_.inverse(pred.value()(i, 0)));
  }
  return out;
}

std::vector<float> GnnPredictor::predict_all(const SuiteDataset& ds, const Sample& sample,
                                             gnn::PlanCache& cache) const {
  PARAGRAPH_TIMED_SCOPE("predict");
  std::array<nn::Matrix, graph::kNumNodeTypes> z;
  const auto embed_fn = [&](const graph::HeteroGraph& g,
                            const gnn::GraphPlan& plan) -> gnn::TypeTensors {
    GraphBatch b;
    b.graph = &g;
    b.plan = &plan;
    for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
      const auto nt = static_cast<NodeType>(t);
      if (g.num_nodes(nt) == 0) continue;
      b.features[t] = Tensor(ds.normalizer.apply(g, nt));
    }
    return embedding_->embed(b);
  };
  // Memoized embeddings depend on the weights AND the normalisation the
  // batch builder applies, so both feed the cache key.
  const std::uint64_t key = model_key_ ^ (ds.normalizer.fingerprint() * 0x9e3779b97f4a7c15ULL);
  if (!cache.embed_hierarchical(sample.netlist, sample.graph, config_.num_layers, needs_homo(),
                                key, embed_fn, &z))
    return predict_all(ds, sample);

  const auto& types = dataset::target_node_types(config_.target);
  std::vector<float> out;
  for (std::size_t slot = 0; slot < types.size(); ++slot) {
    const nn::Matrix& m = z[static_cast<std::size_t>(types[slot])];
    if (m.rows() == 0) {
      // Keep positional alignment with target_values by emitting zeros.
      out.resize(out.size() + sample.target_values(config_.target, slot).size(), 0.0f);
      continue;
    }
    const Tensor pred = head_->forward(Tensor(m));
    for (std::size_t i = 0; i < pred.rows(); ++i)
      out.push_back(scaler_.inverse(pred.value()(i, 0)));
  }
  return out;
}

nn::Matrix GnnPredictor::embeddings(const SuiteDataset& ds, const Sample& sample,
                                    NodeType type) const {
  const gnn::GraphPlan plan = gnn::GraphPlan::build(sample.graph, needs_homo());
  const GraphBatch batch = make_batch(ds.normalizer, sample, &plan);
  gnn::TypeTensors emb = embedding_->embed(batch);
  const Tensor& z = emb[static_cast<std::size_t>(type)];
  if (!z.defined()) return Matrix();
  return z.value();
}

gnn::AttentionRecord GnnPredictor::attention_analysis(const SuiteDataset& ds,
                                                      const Sample& sample) const {
  const gnn::GraphPlan plan = gnn::GraphPlan::build(sample.graph, needs_homo());
  GraphBatch batch = make_batch(ds.normalizer, sample, &plan);
  gnn::AttentionRecord record;
  batch.attention_out = &record;
  embedding_->embed(batch);
  return record;
}

std::size_t GnnPredictor::num_parameters() const {
  return embedding_->num_parameters() + head_->num_parameters();
}

std::vector<Tensor> GnnPredictor::parameters() const {
  std::vector<Tensor> params = embedding_->parameters();
  const auto head_params = head_->parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  return params;
}

}  // namespace paragraph::core
