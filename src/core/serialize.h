// Binary persistence for trained predictors.
//
// A trained GnnPredictor is stored as its PredictorConfig (so the exact
// architecture can be reconstructed), the fitted TargetScaler state, and
// every parameter matrix in deterministic construction order. Files carry
// a magic header and a format version; loads validate shapes against the
// freshly constructed model.
#pragma once

#include <string>

#include "core/predictor.h"

namespace paragraph::core {

void save_predictor(const GnnPredictor& predictor, const std::string& path);

// Reconstructs the architecture from the stored config and restores the
// trained weights and scaler. Throws std::runtime_error on corrupt or
// incompatible files.
GnnPredictor load_predictor(const std::string& path);

}  // namespace paragraph::core
