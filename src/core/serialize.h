// Binary persistence for trained predictors.
//
// A trained GnnPredictor is stored as its PredictorConfig (so the exact
// architecture can be reconstructed), the fitted TargetScaler state, and
// every parameter matrix in deterministic construction order. Files carry
// a magic header and a format version; loads validate shapes against the
// freshly constructed model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/predictor.h"

namespace paragraph::core {

// Atomically writes the model file (temp + fsync + rename); a crash or
// full disk mid-save leaves any previous file intact. Throws
// util::IoError on I/O failure.
void save_predictor(const GnnPredictor& predictor, const std::string& path);

// Reconstructs the architecture from the stored config and restores the
// trained weights and scaler. Every read is length-checked, dims/counts
// are bounded against sane maxima, and (format >= 4) the trailing payload
// checksum is verified; corrupt files raise util::CorruptArtifactError,
// unreadable ones util::IoError. Formats 1-5 load (pre-v5 files simply
// carry no drift-reference sketches).
GnnPredictor load_predictor(const std::string& path);

// In-memory forms of the same format; the checkpoint writer embeds the
// model blob alongside its optimiser/RNG state.
std::string predictor_to_bytes(const GnnPredictor& predictor);
GnnPredictor predictor_from_bytes(std::string_view bytes, const std::string& context);

// Slurps an artifact file with a size sanity bound. Throws util::IoError
// (unreadable) or util::CorruptArtifactError (implausibly large).
std::string read_artifact_file(const std::string& path, const char* what,
                               std::uint64_t max_bytes = std::uint64_t{1} << 30);

}  // namespace paragraph::core
