#include "core/serialize.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "obs/sketch.h"
#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/faultinject.h"

namespace paragraph::core {

namespace {

constexpr std::uint32_t kMagic = 0x50477230;  // "PGr0"
// Version history:
//   1: initial format
//   2: adds PredictorConfig::scale after the seed (the dataset-generation
//      scale used at training time, so predict/evaluate rebuild the same
//      normaliser statistics)
//   3: adds PredictorConfig::batch_size and train_threads after the scale
//      (the graph-level data-parallel batch and the runtime thread count
//      the model was trained with)
//   4: appends an FNV-1a-64 checksum of the whole payload as the trailing
//      8 bytes, and the loader rejects trailing garbage. Field layout is
//      unchanged from v3.
//   5: appends the training-set feature-distribution sketches (drift
//      reference, eval/drift.h) after the parameter data and before the
//      checksum. Everything up to the parameter data keeps its v3/v4
//      byte offsets.
constexpr std::uint32_t kVersion = 5;

// Sane maxima for decoded dims/counts. A corrupt or adversarial file must
// not be able to drive multi-gigabyte allocations before the shape check
// against the freshly constructed model runs; these bounds comfortably
// contain every real configuration (paper: embed_dim 32, 5 layers).
constexpr std::uint64_t kMaxEmbedDim = 1024;
constexpr std::uint64_t kMaxLayers = 64;
constexpr std::uint64_t kMaxParams = 1 << 20;
constexpr std::uint64_t kMaxMatrixDim = 1 << 24;
constexpr std::uint64_t kMaxBatch = 1 << 16;
constexpr std::uint64_t kMaxThreads = 1 << 16;
constexpr std::uint64_t kMaxSketches = 4096;
constexpr std::uint64_t kMaxSketchBins = 1024;
constexpr std::uint64_t kMaxSketchName = 256;
constexpr std::uint32_t kMaxModelKind = static_cast<std::uint32_t>(gnn::ModelKind::kParaGraphNoConcat);
constexpr std::uint32_t kMaxTargetKind = static_cast<std::uint32_t>(dataset::kNumTargets) - 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

double finite_or_corrupt(double v, util::ByteReader& r, const char* what) {
  if (!std::isfinite(v)) r.corrupt(std::string("non-finite ") + what);
  return v;
}

}  // namespace

std::string predictor_to_bytes(const GnnPredictor& predictor) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, kMagic);
  write_pod(os, kVersion);

  const PredictorConfig& c = predictor.config();
  write_pod(os, static_cast<std::uint32_t>(c.model));
  write_pod(os, static_cast<std::uint32_t>(c.target));
  write_pod(os, static_cast<std::uint64_t>(c.embed_dim));
  write_pod(os, static_cast<std::uint64_t>(c.num_layers));
  write_pod(os, static_cast<std::uint64_t>(c.fc_layers));
  write_pod(os, c.max_v_ff);
  write_pod(os, c.epochs);
  write_pod(os, c.learning_rate);
  write_pod(os, c.grad_clip);
  write_pod(os, c.lr_final_fraction);
  write_pod(os, c.seed);
  write_pod(os, c.scale);
  write_pod(os, static_cast<std::uint64_t>(c.batch_size));
  write_pod(os, static_cast<std::uint64_t>(c.train_threads));

  const TargetScaler::State s = predictor.scaler().state();
  write_pod(os, s.zscore);
  write_pod(os, s.log_space);
  write_pod(os, s.mean);
  write_pod(os, s.stdev);
  write_pod(os, s.max_v);

  const auto params = predictor.parameters();
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    const nn::Matrix& m = p.value();
    write_pod(os, static_cast<std::uint64_t>(m.rows()));
    write_pod(os, static_cast<std::uint64_t>(m.cols()));
    os.write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
  }
  // v5 sketch block (drift reference). Placed after the parameter data so
  // everything before it keeps its historical byte offsets.
  const auto& sketches = predictor.feature_sketches();
  write_pod(os, static_cast<std::uint64_t>(sketches.size()));
  for (const auto& sk : sketches) {
    const obs::FeatureSketch::State st = sk.state();
    write_pod(os, static_cast<std::uint64_t>(st.name.size()));
    os.write(st.name.data(), static_cast<std::streamsize>(st.name.size()));
    write_pod(os, st.count);
    write_pod(os, st.mean);
    write_pod(os, st.m2);
    write_pod(os, st.lo);
    write_pod(os, st.hi);
    write_pod(os, st.underflow);
    write_pod(os, st.overflow);
    write_pod(os, static_cast<std::uint64_t>(st.bins.size()));
    for (const std::uint64_t b : st.bins) write_pod(os, b);
  }

  std::string bytes = os.str();
  const std::uint64_t checksum = util::fnv1a64(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

GnnPredictor predictor_from_bytes(std::string_view bytes, const std::string& context) {
  util::ByteReader header(bytes, context);
  if (header.pod<std::uint32_t>("magic") != kMagic)
    header.corrupt("not a ParaGraph model file (bad magic)");
  const auto version = header.pod<std::uint32_t>("version");
  if (version < 1 || version > kVersion)
    header.corrupt("unsupported format version " + std::to_string(version) + " (this build reads 1.." +
                   std::to_string(kVersion) + ")");

  // v4 carries a trailing checksum over everything before it; verify it
  // first so every later parse error means "malformed", not "bit rot".
  std::string_view payload = bytes;
  if (version >= 4) {
    if (bytes.size() < sizeof(std::uint64_t)) header.corrupt("truncated before checksum");
    payload = bytes.substr(0, bytes.size() - sizeof(std::uint64_t));
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload.size(), sizeof(stored));
    if (stored != util::fnv1a64(payload)) header.corrupt("payload checksum mismatch");
  }

  util::ByteReader r(payload, context);
  r.pod<std::uint32_t>("magic");
  r.pod<std::uint32_t>("version");

  if (util::fault::should_fail("model.load")) r.corrupt("fault injected (model.load)");

  PredictorConfig c;
  c.model = static_cast<gnn::ModelKind>(
      r.bounded(r.pod<std::uint32_t>("model kind"), 0, kMaxModelKind, "model kind"));
  c.target = static_cast<dataset::TargetKind>(
      r.bounded(r.pod<std::uint32_t>("target kind"), 0, kMaxTargetKind, "target kind"));
  c.embed_dim = static_cast<std::size_t>(
      r.bounded(r.pod<std::uint64_t>("embed_dim"), 1, kMaxEmbedDim, "embed_dim"));
  c.num_layers = static_cast<std::size_t>(
      r.bounded(r.pod<std::uint64_t>("num_layers"), 1, kMaxLayers, "num_layers"));
  c.fc_layers = static_cast<std::size_t>(
      r.bounded(r.pod<std::uint64_t>("fc_layers"), 0, kMaxLayers, "fc_layers"));
  c.max_v_ff = finite_or_corrupt(r.pod<double>("max_v_ff"), r, "max_v_ff");
  c.epochs = r.pod<int>("epochs");
  c.learning_rate =
      static_cast<float>(finite_or_corrupt(r.pod<float>("learning_rate"), r, "learning_rate"));
  c.grad_clip = static_cast<float>(finite_or_corrupt(r.pod<float>("grad_clip"), r, "grad_clip"));
  c.lr_final_fraction = static_cast<float>(
      finite_or_corrupt(r.pod<float>("lr_final_fraction"), r, "lr_final_fraction"));
  c.seed = r.pod<std::uint64_t>("seed");
  // Version 1 predates the scale field; keep the PredictorConfig default
  // (which matches the CLI's historical --scale default).
  if (version >= 2) c.scale = finite_or_corrupt(r.pod<double>("scale"), r, "scale");
  // Version 2 predates the parallel runtime; defaults (batch 1, threads
  // unrecorded) reproduce the serial training schedule those models used.
  if (version >= 3) {
    c.batch_size = static_cast<std::size_t>(
        r.bounded(r.pod<std::uint64_t>("batch_size"), 1, kMaxBatch, "batch_size"));
    c.train_threads = static_cast<std::size_t>(
        r.bounded(r.pod<std::uint64_t>("train_threads"), 0, kMaxThreads, "train_threads"));
  }

  TargetScaler::State s;
  s.zscore = r.pod<bool>("scaler.zscore");
  s.log_space = r.pod<bool>("scaler.log_space");
  s.mean = finite_or_corrupt(r.pod<double>("scaler.mean"), r, "scaler.mean");
  s.stdev = finite_or_corrupt(r.pod<double>("scaler.stdev"), r, "scaler.stdev");
  if (s.zscore && !(s.stdev > 0.0)) r.corrupt("non-positive scaler.stdev");
  s.max_v = finite_or_corrupt(r.pod<double>("scaler.max_v"), r, "scaler.max_v");

  GnnPredictor predictor(c);
  predictor.set_scaler(TargetScaler::from_state(s));

  const auto params = predictor.parameters();
  const auto count = r.bounded(r.pod<std::uint64_t>("parameter count"), 0, kMaxParams,
                               "parameter count");
  if (count != params.size())
    r.corrupt("parameter count mismatch (file has " + std::to_string(count) + ", model expects " +
              std::to_string(params.size()) + ")");
  for (auto p : params) {
    const auto rows =
        static_cast<std::size_t>(r.bounded(r.pod<std::uint64_t>("rows"), 0, kMaxMatrixDim, "rows"));
    const auto cols =
        static_cast<std::size_t>(r.bounded(r.pod<std::uint64_t>("cols"), 0, kMaxMatrixDim, "cols"));
    nn::Matrix& m = p.mutable_value();
    if (rows != m.rows() || cols != m.cols())
      r.corrupt("parameter shape mismatch (file has " + std::to_string(rows) + "x" +
                std::to_string(cols) + ", model expects " + std::to_string(m.rows()) + "x" +
                std::to_string(m.cols()) + ")");
    const std::string_view data = r.bytes(m.size() * sizeof(float), "parameter data");
    std::memcpy(m.data(), data.data(), data.size());
  }
  // v5 sketch block: the drift reference the model was trained against.
  // Earlier formats simply have no sketches (drift checks are skipped).
  if (version >= 5) {
    const auto num_sketches = r.bounded(r.pod<std::uint64_t>("sketch count"), 0, kMaxSketches,
                                        "sketch count");
    std::vector<obs::FeatureSketch> sketches;
    sketches.reserve(static_cast<std::size_t>(num_sketches));
    for (std::uint64_t i = 0; i < num_sketches; ++i) {
      obs::FeatureSketch::State st;
      const auto name_len = r.bounded(r.pod<std::uint64_t>("sketch name length"), 0,
                                      kMaxSketchName, "sketch name length");
      st.name = std::string(r.bytes(static_cast<std::size_t>(name_len), "sketch name"));
      st.count = r.pod<std::uint64_t>("sketch count field");
      st.mean = finite_or_corrupt(r.pod<double>("sketch mean"), r, "sketch mean");
      st.m2 = finite_or_corrupt(r.pod<double>("sketch m2"), r, "sketch m2");
      st.lo = finite_or_corrupt(r.pod<double>("sketch lo"), r, "sketch lo");
      st.hi = finite_or_corrupt(r.pod<double>("sketch hi"), r, "sketch hi");
      st.underflow = r.pod<std::uint64_t>("sketch underflow");
      st.overflow = r.pod<std::uint64_t>("sketch overflow");
      const auto nbins = r.bounded(r.pod<std::uint64_t>("sketch bin count"), 0, kMaxSketchBins,
                                   "sketch bin count");
      st.bins.resize(static_cast<std::size_t>(nbins));
      for (auto& b : st.bins) b = r.pod<std::uint64_t>("sketch bin");
      sketches.push_back(obs::FeatureSketch::from_state(std::move(st)));
    }
    predictor.set_feature_sketches(std::move(sketches));
  }
  // v1-v3 files may carry trailing bytes (historical tools appended
  // nothing, but the loader never policed it); from v4 on the checksum
  // covers the exact payload, so leftovers mean corruption.
  if (version >= 4 && r.remaining() != 0)
    r.corrupt(std::to_string(r.remaining()) + " trailing bytes after parameter data");
  return predictor;
}

void save_predictor(const GnnPredictor& predictor, const std::string& path) {
  // AtomicFile publishes with temp + fsync + rename, so a crash or full
  // disk mid-save leaves any previous model file intact.
  util::write_file_atomic(path, predictor_to_bytes(predictor));
}

std::string read_artifact_file(const std::string& path, const char* what,
                               std::uint64_t max_bytes) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw util::IoError(std::string(what) + ": cannot open '" + path + "'");
  const auto end = is.tellg();
  if (end < 0) throw util::IoError(std::string(what) + ": cannot stat '" + path + "'");
  const auto size = static_cast<std::uint64_t>(end);
  if (size > max_bytes)
    throw util::CorruptArtifactError(std::string(what) + ": '" + path + "' is implausibly large (" +
                                     std::to_string(size) + " bytes)");
  is.seekg(0);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is) throw util::IoError(std::string(what) + ": short read from '" + path + "'");
  return bytes;
}

GnnPredictor load_predictor(const std::string& path) {
  const std::string bytes = read_artifact_file(path, "load_predictor");
  return predictor_from_bytes(bytes, "load_predictor: '" + path + "'");
}

}  // namespace paragraph::core
