#include "core/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace paragraph::core {

namespace {

constexpr std::uint32_t kMagic = 0x50477230;  // "PGr0"
// Version history:
//   1: initial format
//   2: adds PredictorConfig::scale after the seed (the dataset-generation
//      scale used at training time, so predict/evaluate rebuild the same
//      normaliser statistics)
//   3: adds PredictorConfig::batch_size and train_threads after the scale
//      (the graph-level data-parallel batch and the runtime thread count
//      the model was trained with)
constexpr std::uint32_t kVersion = 3;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_predictor: truncated file");
  return v;
}

}  // namespace

void save_predictor(const GnnPredictor& predictor, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_predictor: cannot open '" + path + "'");
  write_pod(os, kMagic);
  write_pod(os, kVersion);

  const PredictorConfig& c = predictor.config();
  write_pod(os, static_cast<std::uint32_t>(c.model));
  write_pod(os, static_cast<std::uint32_t>(c.target));
  write_pod(os, static_cast<std::uint64_t>(c.embed_dim));
  write_pod(os, static_cast<std::uint64_t>(c.num_layers));
  write_pod(os, static_cast<std::uint64_t>(c.fc_layers));
  write_pod(os, c.max_v_ff);
  write_pod(os, c.epochs);
  write_pod(os, c.learning_rate);
  write_pod(os, c.grad_clip);
  write_pod(os, c.lr_final_fraction);
  write_pod(os, c.seed);
  write_pod(os, c.scale);
  write_pod(os, static_cast<std::uint64_t>(c.batch_size));
  write_pod(os, static_cast<std::uint64_t>(c.train_threads));

  const TargetScaler::State s = predictor.scaler().state();
  write_pod(os, s.zscore);
  write_pod(os, s.log_space);
  write_pod(os, s.mean);
  write_pod(os, s.stdev);
  write_pod(os, s.max_v);

  const auto params = predictor.parameters();
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    const nn::Matrix& m = p.value();
    write_pod(os, static_cast<std::uint64_t>(m.rows()));
    write_pod(os, static_cast<std::uint64_t>(m.cols()));
    os.write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_predictor: write failed for '" + path + "'");
}

GnnPredictor load_predictor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_predictor: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(is) != kMagic)
    throw std::runtime_error("load_predictor: '" + path + "' is not a ParaGraph model file");
  const auto version = read_pod<std::uint32_t>(is);
  if (version < 1 || version > kVersion)
    throw std::runtime_error("load_predictor: unsupported format version in '" + path + "'");

  PredictorConfig c;
  c.model = static_cast<gnn::ModelKind>(read_pod<std::uint32_t>(is));
  c.target = static_cast<dataset::TargetKind>(read_pod<std::uint32_t>(is));
  c.embed_dim = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  c.num_layers = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  c.fc_layers = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  c.max_v_ff = read_pod<double>(is);
  c.epochs = read_pod<int>(is);
  c.learning_rate = read_pod<float>(is);
  c.grad_clip = read_pod<float>(is);
  c.lr_final_fraction = read_pod<float>(is);
  c.seed = read_pod<std::uint64_t>(is);
  // Version 1 predates the scale field; keep the PredictorConfig default
  // (which matches the CLI's historical --scale default).
  if (version >= 2) c.scale = read_pod<double>(is);
  // Version 2 predates the parallel runtime; defaults (batch 1, threads
  // unrecorded) reproduce the serial training schedule those models used.
  if (version >= 3) {
    c.batch_size = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    c.train_threads = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  }

  TargetScaler::State s;
  s.zscore = read_pod<bool>(is);
  s.log_space = read_pod<bool>(is);
  s.mean = read_pod<double>(is);
  s.stdev = read_pod<double>(is);
  s.max_v = read_pod<double>(is);

  GnnPredictor predictor(c);
  predictor.set_scaler(TargetScaler::from_state(s));

  const auto params = predictor.parameters();
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size())
    throw std::runtime_error("load_predictor: parameter count mismatch in '" + path + "'");
  for (auto p : params) {
    const auto rows = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    const auto cols = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    nn::Matrix& m = p.mutable_value();
    if (rows != m.rows() || cols != m.cols())
      throw std::runtime_error("load_predictor: parameter shape mismatch in '" + path + "'");
    is.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_predictor: truncated parameter data");
  }
  return predictor;
}

}  // namespace paragraph::core
