#include "core/intervals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paragraph::core {

namespace {

// Conformal quantile: the ceil((n+1) * coverage)-th order statistic.
double conformal_quantile(std::vector<double> residuals, double coverage) {
  if (residuals.empty()) return 0.0;
  std::sort(residuals.begin(), residuals.end());
  const auto n = residuals.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil((static_cast<double>(n) + 1.0) * coverage));
  return residuals[std::min(rank == 0 ? 0 : rank - 1, n - 1)];
}

}  // namespace

ConformalCalibrator::ConformalCalibrator(int decade_lo, int decade_hi)
    : decade_lo_(decade_lo), decade_hi_(decade_hi) {
  if (decade_hi_ <= decade_lo_)
    throw std::invalid_argument("ConformalCalibrator: decade_hi must exceed decade_lo");
}

int ConformalCalibrator::bucket_of(float prediction) const {
  const double mag = std::max(static_cast<double>(std::abs(prediction)), 1e-12);
  const int dec = static_cast<int>(std::floor(std::log10(mag)));
  return std::clamp(dec, decade_lo_, decade_hi_) - decade_lo_;
}

void ConformalCalibrator::calibrate(const std::vector<float>& truth,
                                    const std::vector<float>& pred, double coverage) {
  if (truth.size() != pred.size())
    throw std::invalid_argument("ConformalCalibrator::calibrate: size mismatch");
  if (truth.empty()) throw std::invalid_argument("ConformalCalibrator::calibrate: empty data");
  if (!(coverage > 0.0 && coverage < 1.0))
    throw std::invalid_argument("ConformalCalibrator::calibrate: coverage must be in (0,1)");

  const std::size_t num_buckets = static_cast<std::size_t>(decade_hi_ - decade_lo_) + 1;
  std::vector<std::vector<double>> buckets(num_buckets);
  std::vector<double> all;
  all.reserve(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double r = std::abs(static_cast<double>(truth[i]) - pred[i]);
    buckets[static_cast<std::size_t>(bucket_of(pred[i]))].push_back(r);
    all.push_back(r);
  }
  global_q_ = conformal_quantile(std::move(all), coverage);
  per_decade_q_.assign(num_buckets, -1.0);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    // Sparse buckets fall back to the global quantile.
    if (buckets[b].size() >= 20)
      per_decade_q_[b] = conformal_quantile(std::move(buckets[b]), coverage);
  }
  calibrated_ = true;
}

double ConformalCalibrator::half_width(float prediction) const {
  if (!calibrated_) throw std::logic_error("ConformalCalibrator: not calibrated");
  const double q = per_decade_q_[static_cast<std::size_t>(bucket_of(prediction))];
  return q >= 0.0 ? q : global_q_;
}

ConformalCalibrator::Interval ConformalCalibrator::interval(float prediction) const {
  const double w = half_width(prediction);
  return {prediction - w, prediction + w};
}

double ConformalCalibrator::empirical_coverage(const std::vector<float>& truth,
                                               const std::vector<float>& pred) const {
  if (truth.size() != pred.size())
    throw std::invalid_argument("ConformalCalibrator::empirical_coverage: size mismatch");
  if (truth.empty()) return 0.0;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const Interval iv = interval(pred[i]);
    if (truth[i] >= iv.lo && truth[i] <= iv.hi) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(truth.size());
}

}  // namespace paragraph::core
