#include "dataset/shards.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/errors.h"

namespace paragraph::dataset {

namespace {

using circuit::Device;
using circuit::Netlist;

constexpr std::uint32_t kShardMagic = 0x64734750;  // "PGsd"
constexpr std::uint32_t kShardVersion = 1;

// Sane maxima for decoded counts: a corrupt shard must not drive huge
// allocations before the structural checks run. hier_giant tops out near
// 10^6 nets/devices; these bounds leave generous headroom.
constexpr std::uint64_t kMaxName = 1 << 20;
constexpr std::uint64_t kMaxNets = 1 << 26;
constexpr std::uint64_t kMaxDevices = 1 << 26;
constexpr std::uint64_t kMaxConns = 64;
constexpr std::uint64_t kMaxInstances = 1 << 22;
constexpr std::uint64_t kMaxBoundary = 1 << 16;

template <typename T>
void put_pod(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_str(std::string& buf, const std::string& s) {
  put_pod(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

std::string read_str(util::ByteReader& r, const char* what) {
  const auto n = r.bounded(r.pod<std::uint32_t>(what), 0, kMaxName, what);
  return std::string(r.bytes(static_cast<std::size_t>(n), what));
}

void put_netlist(std::string& buf, const Netlist& nl) {
  put_str(buf, nl.name());
  put_pod(buf, static_cast<std::uint64_t>(nl.num_nets()));
  for (const circuit::Net& n : nl.nets()) {
    put_str(buf, n.name);
    put_pod(buf, static_cast<std::uint8_t>(n.is_supply ? 1 : 0));
    put_pod(buf, static_cast<std::uint8_t>(n.ground_truth_cap.has_value() ? 1 : 0));
    if (n.ground_truth_cap) put_pod(buf, *n.ground_truth_cap);
    put_pod(buf, static_cast<std::uint8_t>(n.ground_truth_res.has_value() ? 1 : 0));
    if (n.ground_truth_res) put_pod(buf, *n.ground_truth_res);
  }
  put_pod(buf, static_cast<std::uint64_t>(nl.num_devices()));
  for (const Device& d : nl.devices()) {
    put_str(buf, d.name);
    put_pod(buf, static_cast<std::uint8_t>(d.kind));
    put_pod(buf, static_cast<std::uint32_t>(d.conns.size()));
    for (const circuit::NetId c : d.conns) put_pod(buf, c);
    put_pod(buf, d.params.length);
    put_pod(buf, static_cast<std::int32_t>(d.params.num_fingers));
    put_pod(buf, static_cast<std::int32_t>(d.params.num_fins));
    put_pod(buf, static_cast<std::int32_t>(d.params.multiplier));
    put_pod(buf, d.params.value);
    put_pod(buf, static_cast<std::uint8_t>(d.layout.has_value() ? 1 : 0));
    if (d.layout) {
      put_pod(buf, d.layout->source_area);
      put_pod(buf, d.layout->drain_area);
      put_pod(buf, d.layout->source_perimeter);
      put_pod(buf, d.layout->drain_perimeter);
      for (const double v : d.layout->lde) put_pod(buf, v);
    }
    put_str(buf, d.instance_path);
  }
  put_pod(buf, static_cast<std::uint64_t>(nl.instances().size()));
  for (const circuit::SubcktInstance& inst : nl.instances()) {
    put_str(buf, inst.path);
    put_pod(buf, static_cast<std::int32_t>(inst.parent));
    put_str(buf, inst.ref.name);
    put_pod(buf, inst.ref.structural_hash);
    put_pod(buf, static_cast<std::uint32_t>(inst.ref.boundary_nets.size()));
    for (const circuit::NetId c : inst.ref.boundary_nets) put_pod(buf, c);
    put_pod(buf, inst.first_device);
    put_pod(buf, inst.device_end);
    put_pod(buf, inst.first_net);
    put_pod(buf, inst.net_end);
  }
}

Netlist read_netlist(util::ByteReader& r) {
  Netlist nl(read_str(r, "netlist name"));
  const auto num_nets = r.bounded(r.pod<std::uint64_t>("net count"), 0, kMaxNets, "net count");
  for (std::uint64_t i = 0; i < num_nets; ++i) {
    const std::string name = read_str(r, "net name");
    const bool is_supply = r.pod<std::uint8_t>("net supply flag") != 0;
    const circuit::NetId id = nl.add_net(name, is_supply);
    if (id != static_cast<circuit::NetId>(i)) r.corrupt("duplicate net name '" + name + "'");
    if (r.pod<std::uint8_t>("cap flag") != 0)
      nl.net(id).ground_truth_cap = r.pod<double>("ground-truth cap");
    if (r.pod<std::uint8_t>("res flag") != 0)
      nl.net(id).ground_truth_res = r.pod<double>("ground-truth res");
  }
  const auto num_devices =
      r.bounded(r.pod<std::uint64_t>("device count"), 0, kMaxDevices, "device count");
  for (std::uint64_t i = 0; i < num_devices; ++i) {
    Device d;
    d.name = read_str(r, "device name");
    const auto kind = r.bounded(r.pod<std::uint8_t>("device kind"), 0,
                                circuit::kNumDeviceKinds - 1, "device kind");
    d.kind = static_cast<circuit::DeviceKind>(kind);
    const auto nconns =
        r.bounded(r.pod<std::uint32_t>("conn count"), 0, kMaxConns, "conn count");
    for (std::uint32_t c = 0; c < nconns; ++c) {
      const auto net = r.pod<circuit::NetId>("conn");
      if (net < 0 || static_cast<std::uint64_t>(net) >= num_nets)
        r.corrupt("device connection references missing net " + std::to_string(net));
      d.conns.push_back(net);
    }
    d.params.length = r.pod<double>("param length");
    d.params.num_fingers = r.pod<std::int32_t>("param nf");
    d.params.num_fins = r.pod<std::int32_t>("param nfin");
    d.params.multiplier = r.pod<std::int32_t>("param multi");
    d.params.value = r.pod<double>("param value");
    if (r.pod<std::uint8_t>("layout flag") != 0) {
      circuit::TransistorLayout lay;
      lay.source_area = r.pod<double>("layout sa");
      lay.drain_area = r.pod<double>("layout da");
      lay.source_perimeter = r.pod<double>("layout sp");
      lay.drain_perimeter = r.pod<double>("layout dp");
      for (double& v : lay.lde) v = r.pod<double>("layout lde");
      d.layout = lay;
    }
    d.instance_path = read_str(r, "instance path");
    try {
      if (nl.add_device(std::move(d)) != static_cast<circuit::DeviceId>(i))
        r.corrupt("device id out of order");
    } catch (const std::invalid_argument& e) {
      r.corrupt(e.what());
    }
  }
  const auto num_inst =
      r.bounded(r.pod<std::uint64_t>("instance count"), 0, kMaxInstances, "instance count");
  for (std::uint64_t i = 0; i < num_inst; ++i) {
    circuit::SubcktInstance inst;
    inst.path = read_str(r, "instance path");
    inst.parent = r.pod<std::int32_t>("instance parent");
    if (inst.parent < -1 || inst.parent >= static_cast<int>(i))
      r.corrupt("instance parent out of range");
    inst.ref.name = read_str(r, "subckt name");
    inst.ref.structural_hash = r.pod<std::uint64_t>("structural hash");
    const auto nb = r.bounded(r.pod<std::uint32_t>("boundary count"), 0, kMaxBoundary,
                              "boundary count");
    for (std::uint32_t b = 0; b < nb; ++b) {
      const auto net = r.pod<circuit::NetId>("boundary net");
      if (net < 0 || static_cast<std::uint64_t>(net) >= num_nets)
        r.corrupt("boundary net out of range");
      inst.ref.boundary_nets.push_back(net);
    }
    inst.first_device = r.pod<circuit::DeviceId>("first_device");
    inst.device_end = r.pod<circuit::DeviceId>("device_end");
    inst.first_net = r.pod<circuit::NetId>("first_net");
    inst.net_end = r.pod<circuit::NetId>("net_end");
    if (inst.first_device < 0 || inst.first_device > inst.device_end ||
        static_cast<std::uint64_t>(inst.device_end) > num_devices)
      r.corrupt("instance device range out of bounds");
    if (inst.first_net < 0 || inst.first_net > inst.net_end ||
        static_cast<std::uint64_t>(inst.net_end) > num_nets)
      r.corrupt("instance net range out of bounds");
    nl.add_instance(std::move(inst));
  }
  return nl;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Read-only view of a shard file: mmap when possible (the kernel pages
// only what the decode touches), plain read as the fallback.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                         fd, 0);
        if (p != MAP_FAILED) {
          data_ = static_cast<const char*>(p);
          size_ = static_cast<std::size_t>(st.st_size);
        }
      }
      ::close(fd);  // the mapping survives the descriptor
      if (data_ != nullptr) return;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) throw util::IoError("cannot open shard file '" + path + "'");
    fallback_.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
  }

  std::string_view view() const {
    return data_ != nullptr ? std::string_view(data_, size_) : std::string_view(fallback_);
  }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::string fallback_;
};

std::string serialize_sample(const Sample& s) {
  std::string buf;
  put_pod(buf, kShardMagic);
  put_pod(buf, kShardVersion);
  put_str(buf, s.name);
  put_netlist(buf, s.netlist);
  const std::uint64_t checksum = util::fnv1a64(buf);
  put_pod(buf, checksum);
  return buf;
}

}  // namespace

ShardWriteResult write_shards(const SuiteDataset& ds, const std::string& dir) {
  PARAGRAPH_TIMED_SCOPE("shards_write");
  std::filesystem::create_directories(dir);
  ShardWriteResult result;

  obs::JsonValue manifest = obs::JsonValue::object();
  manifest.set("format", kShardFormat);

  const auto pack_split = [&](const std::vector<Sample>& samples, const char* prefix) {
    obs::JsonValue arr = obs::JsonValue::array();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      char fname[64];
      std::snprintf(fname, sizeof fname, "%s_%05zu.shard", prefix, i);
      const std::string payload = serialize_sample(samples[i]);
      util::write_file_atomic(dir + "/" + fname, payload);
      obs::JsonValue e = obs::JsonValue::object();
      e.set("file", fname);
      e.set("name", samples[i].name);
      e.set("bytes", payload.size());
      // Checksum of everything before the trailing 8 checksum bytes —
      // the same value the shard itself carries.
      e.set("checksum", hex64(util::fnv1a64(std::string_view(payload)
                                                .substr(0, payload.size() - sizeof(std::uint64_t)))));
      arr.push_back(std::move(e));
      result.bytes += payload.size();
      ++result.files;
    }
    return arr;
  };
  manifest.set("train", pack_split(ds.train, "train"));
  manifest.set("test", pack_split(ds.test, "test"));

  obs::JsonValue norm = obs::JsonValue::array();
  for (const FeatureNormalizer::TypeStats& ts : ds.normalizer.state()) {
    obs::JsonValue t = obs::JsonValue::object();
    obs::JsonValue mean = obs::JsonValue::array();
    obs::JsonValue stdev = obs::JsonValue::array();
    // float -> double is exact and JsonValue emits shortest-round-trip
    // doubles, so the reconstructed normaliser is bit-identical.
    for (const float v : ts.mean) mean.push_back(static_cast<double>(v));
    for (const float v : ts.stdev) stdev.push_back(static_cast<double>(v));
    t.set("mean", std::move(mean));
    t.set("stdev", std::move(stdev));
    norm.push_back(std::move(t));
  }
  manifest.set("normalizer", std::move(norm));

  result.manifest_path = dir + "/" + kShardManifestName;
  util::write_file_atomic(result.manifest_path, manifest.dump() + '\n');
  obs::log_debug("shards", "packed dataset",
                 {{"dir", dir},
                  {"files", result.files},
                  {"bytes", result.bytes}});
  return result;
}

ShardStore::ShardStore(const std::string& dir, Config cfg) : dir_(dir), cfg_(cfg) {
  const std::string manifest_path = dir_ + "/" + kShardManifestName;
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) throw util::IoError("cannot open shard manifest '" + manifest_path + "'");
  const std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::string err;
  const auto doc = obs::JsonValue::parse(text, &err);
  if (!doc) throw util::CorruptArtifactError(manifest_path + ": " + err);
  const obs::JsonValue* format = doc->find("format");
  if (format == nullptr || !format->is_string() || format->as_string() != kShardFormat)
    throw util::CorruptArtifactError(manifest_path + ": not a " + std::string(kShardFormat) +
                                     " manifest");

  const auto parse_split = [&](const char* key, std::vector<Entry>& out) {
    const obs::JsonValue* arr = doc->find(key);
    if (arr == nullptr || !arr->is_array())
      throw util::CorruptArtifactError(manifest_path + ": missing '" + key + "' array");
    for (const obs::JsonValue& e : arr->elements()) {
      if (!e.is_object()) throw util::CorruptArtifactError(manifest_path + ": bad entry");
      Entry entry;
      entry.file = e.at("file").as_string();
      entry.name = e.at("name").as_string();
      entry.bytes = static_cast<std::uint64_t>(e.at("bytes").as_int());
      const std::string& hex = e.at("checksum").as_string();
      entry.checksum = std::strtoull(hex.c_str(), nullptr, 16);
      if (entry.file.find('/') != std::string::npos || entry.file.find("..") != std::string::npos)
        throw util::CorruptArtifactError(manifest_path + ": shard path escapes directory: '" +
                                         entry.file + "'");
      out.push_back(std::move(entry));
    }
  };
  parse_split("train", train_);
  parse_split("test", test_);

  const obs::JsonValue* norm = doc->find("normalizer");
  if (norm == nullptr || !norm->is_array() || norm->size() != graph::kNumNodeTypes)
    throw util::CorruptArtifactError(manifest_path + ": missing/short normalizer block");
  std::array<FeatureNormalizer::TypeStats, graph::kNumNodeTypes> state;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const obs::JsonValue& ts = (*norm)[t];
    for (const obs::JsonValue& v : ts.at("mean").elements())
      state[t].mean.push_back(static_cast<float>(v.as_double()));
    for (const obs::JsonValue& v : ts.at("stdev").elements())
      state[t].stdev.push_back(static_cast<float>(v.as_double()));
  }
  normalizer_ = FeatureNormalizer::from_state(state);
}

const std::string& ShardStore::train_name(std::size_t i) const { return train_.at(i).name; }
const std::string& ShardStore::test_name(std::size_t i) const { return test_.at(i).name; }

std::shared_ptr<const Sample> ShardStore::train(std::size_t i) { return load(false, i); }
std::shared_ptr<const Sample> ShardStore::test(std::size_t i) { return load(true, i); }

std::size_t ShardStore::sample_bytes(const Sample& s) {
  std::size_t b = sizeof(Sample);
  for (const circuit::Net& n : s.netlist.nets()) b += sizeof(circuit::Net) + n.name.size();
  for (const Device& d : s.netlist.devices())
    b += sizeof(Device) + d.name.size() + d.instance_path.size() +
         d.conns.size() * sizeof(circuit::NetId);
  for (const circuit::SubcktInstance& inst : s.netlist.instances())
    b += sizeof(circuit::SubcktInstance) + inst.path.size() +
         inst.ref.boundary_nets.size() * sizeof(circuit::NetId);
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<graph::NodeType>(t);
    b += s.graph.num_nodes(nt) * sizeof(std::int32_t);
    b += s.graph.features(nt).size() * sizeof(float);
  }
  b += s.graph.total_edges() * 2 * sizeof(std::int32_t);
  for (const auto& per_target : s.targets)
    for (const auto& vec : per_target) b += vec.size() * sizeof(float);
  return b;
}

std::shared_ptr<const Sample> ShardStore::load(bool is_test, std::size_t i) {
  const std::vector<Entry>& split = is_test ? test_ : train_;
  const Entry& entry = split.at(i);
  const std::uint64_t key = (is_test ? (1ull << 63) : 0ull) | static_cast<std::uint64_t>(i);

  static obs::Counter& hits = obs::MetricsRegistry::instance().counter("shards.hits");
  static obs::Counter& misses = obs::MetricsRegistry::instance().counter("shards.misses");
  static obs::Gauge& resident = obs::MetricsRegistry::instance().gauge("shards.resident_bytes");

  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    hits.add();
    return lru_.front().sample;
  }
  misses.add();

  const std::string path = dir_ + "/" + entry.file;
  Sample sample;
  {
    PARAGRAPH_TIMED_SCOPE("shard_load");
    const MappedFile file(path);
    const std::string_view bytes = file.view();
    util::ByteReader r(bytes, "shard '" + path + "'");
    if (bytes.size() < sizeof(std::uint64_t)) r.corrupt("file shorter than its checksum");
    const std::string_view payload = bytes.substr(0, bytes.size() - sizeof(std::uint64_t));
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload.size(), sizeof stored);
    const std::uint64_t actual = util::fnv1a64(payload);
    if (stored != actual) r.corrupt("checksum mismatch (corrupt or truncated shard)");
    if (entry.checksum != actual) r.corrupt("checksum disagrees with the manifest");

    util::ByteReader pr(payload, "shard '" + path + "'");
    if (pr.pod<std::uint32_t>("magic") != kShardMagic) pr.corrupt("bad magic");
    const auto version = pr.pod<std::uint32_t>("version");
    if (version != kShardVersion)
      pr.corrupt("unsupported shard version " + std::to_string(version));
    const std::string name = read_str(pr, "sample name");
    if (name != entry.name) pr.corrupt("sample name disagrees with the manifest");
    circuit::Netlist nl = read_netlist(pr);
    if (pr.remaining() != 0) pr.corrupt("trailing bytes after netlist");
    try {
      nl.validate();
    } catch (const std::exception& e) {
      pr.corrupt(std::string("reconstructed netlist invalid: ") + e.what());
    }
    sample = make_sample(std::move(nl));
  }

  auto sp = std::make_shared<const Sample>(std::move(sample));
  Resident res;
  res.sample = sp;
  res.bytes = sample_bytes(*sp);
  res.key = key;
  resident_bytes_ += res.bytes;
  lru_.push_front(std::move(res));
  index_[key] = lru_.begin();
  evict_to_budget();
  resident.set(static_cast<double>(resident_bytes_));
  return sp;
}

void ShardStore::evict_to_budget() {
  // Always keep the newest entry so one oversized sample is still served.
  while (resident_bytes_ > cfg_.max_resident_bytes && lru_.size() > 1) {
    const Resident& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

void ShardStore::clear() {
  lru_.clear();
  index_.clear();
  resident_bytes_ = 0;
  obs::MetricsRegistry::instance().gauge("shards.resident_bytes").set(0.0);
}

}  // namespace paragraph::dataset
