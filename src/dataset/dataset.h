// Training/evaluation dataset assembly.
//
// Pairs each generated circuit with its heterogeneous graph, normalised
// input features, and the 13 regression targets of Table I (CAP on net
// nodes; SA/DA/SP/DP and LDE1..8 on transistor nodes). Feature and target
// statistics are fit on the training circuits only and applied to the test
// circuits, mirroring the paper's designer-recommended split.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "circuitgen/generator.h"
#include "graph/hetero_graph.h"

namespace paragraph::dataset {

enum class TargetKind : std::uint8_t {
  kCap,  // net parasitic capacitance [fF]
  kLde1,
  kLde2,
  kLde3,
  kLde4,
  kLde5,
  kLde6,
  kLde7,
  kLde8,
  kSourceArea,
  kDrainArea,
  kSourcePerimeter,
  kDrainPerimeter,
  // Extension beyond the paper (its stated future work): lumped net
  // parasitic resistance [ohm].
  kRes,
};
constexpr std::size_t kNumTargets = 14;

const char* target_name(TargetKind t);
// All 14 targets in canonical order (the paper's 13 plus kRes).
const std::vector<TargetKind>& all_targets();
// The device-parameter subset (LDE1..8, SA, DA, SP, DP).
const std::vector<TargetKind>& device_targets();

// Node types a target lives on: {kNet} for CAP, both transistor types
// otherwise.
const std::vector<graph::NodeType>& target_node_types(TargetKind t);

// Raw target values for every node of `type` in the graph, in display
// units: fF for CAP, nm for LDE/perimeters, 1e3 nm^2 for areas.
std::vector<float> extract_targets(const circuit::Netlist& nl, const graph::HeteroGraph& g,
                                   graph::NodeType type, TargetKind target);

// Per-node-type feature standardisation: log1p followed by z-scoring with
// statistics fit on the training set.
class FeatureNormalizer {
 public:
  void fit(const std::vector<const graph::HeteroGraph*>& graphs);
  // Returns a normalised copy of the graph's features for one node type.
  nn::Matrix apply(const graph::HeteroGraph& g, graph::NodeType t) const;
  bool fitted() const { return fitted_; }

  // Plain-data view for persistence (dataset/shards.h): per node type, the
  // fitted mean/stdev vectors (empty when unfitted).
  struct TypeStats {
    std::vector<float> mean;
    std::vector<float> stdev;
  };
  std::array<TypeStats, graph::kNumNodeTypes> state() const;
  static FeatureNormalizer from_state(const std::array<TypeStats, graph::kNumNodeTypes>& s);

  // Hash of the fitted statistics; changes whenever normalisation output
  // would. Used to key memoized embeddings (gnn::PlanCache).
  std::uint64_t fingerprint() const;

 private:
  struct Stats {
    std::vector<float> mean;
    std::vector<float> stdev;
  };
  std::array<Stats, graph::kNumNodeTypes> stats_{};
  bool fitted_ = false;
};

// One circuit ready for training/evaluation.
struct Sample {
  std::string name;
  circuit::Netlist netlist;
  graph::HeteroGraph graph;
  // Raw targets: indexed [target][node type index within target_node_types].
  std::array<std::vector<std::vector<float>>, kNumTargets> targets;

  const std::vector<float>& target_values(TargetKind t, std::size_t type_slot = 0) const {
    return targets[static_cast<std::size_t>(t)].at(type_slot);
  }
};

struct SuiteDataset {
  std::vector<Sample> train;
  std::vector<Sample> test;
  FeatureNormalizer normalizer;

  // Pooled raw target values over a set of samples (for target scaling).
  static std::vector<float> pooled_targets(const std::vector<Sample>& samples, TargetKind t);
};

// Builds one Sample from an annotated netlist: graph construction plus
// target extraction. Deterministic in the netlist alone — the shard store
// relies on this to rebuild samples from persisted netlists.
Sample make_sample(circuit::Netlist nl);

// Full pipeline: generate suite -> annotate layout -> build graphs ->
// extract targets -> fit normaliser. Deterministic in `seed`.
SuiteDataset build_dataset(std::uint64_t seed, double scale = 1.0);

// Same pipeline for an externally supplied suite (e.g. custom circuits).
SuiteDataset build_dataset_from_suite(circuitgen::Suite suite, std::uint64_t layout_seed);

}  // namespace paragraph::dataset
