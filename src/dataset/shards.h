// Out-of-core dataset shards (format `paragraph-shard-v1`).
//
// A packed dataset is a directory holding one binary shard file per
// sample plus a `manifest.json`. Each shard serialises the ANNOTATED
// netlist only (nets with ground-truth cap/res, devices with layout and
// instance provenance, subckt instance records) — the graph and the 14
// target vectors are rebuilt on load via dataset::make_sample, which is
// deterministic in the netlist alone. Persisting the smallest artefact
// keeps shards compact and guarantees a loaded sample is bit-identical
// to the in-memory original (graph construction is the same code path).
//
// The manifest carries the format tag, the per-file checksums, and the
// fitted FeatureNormalizer statistics (exact: doubles are emitted with
// shortest-round-trip formatting), so a ShardStore reconstructs the same
// normalisation the pack-time dataset used without touching any shard.
//
// Durability/integrity: every file is published with
// util::write_file_atomic (temp + fsync + rename), shard payloads end in
// an FNV-1a-64 checksum, and the reader (mmap-backed, bounded
// ByteReader) rejects truncated or bit-flipped files with
// util::CorruptArtifactError instead of propagating garbage.
//
// Memory bound: ShardStore materialises samples on demand through an LRU
// working set capped at Config::max_resident_bytes (CLI --max-resident-mb).
// Counters `shards.hits` / `shards.misses` and gauge
// `shards.resident_bytes` account for every materialisation. Loads hand
// out shared_ptrs, so eviction never invalidates a sample a caller still
// holds; the budget bounds what the STORE keeps alive. Not thread-safe —
// callers serialise access (the streamed train/eval paths fetch on the
// orchestrating thread only).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"

namespace paragraph::dataset {

inline constexpr const char* kShardFormat = "paragraph-shard-v1";
inline constexpr const char* kShardManifestName = "manifest.json";

struct ShardWriteResult {
  std::string manifest_path;
  std::size_t files = 0;       // shard files written (manifest excluded)
  std::uint64_t bytes = 0;     // total shard payload bytes
};

// Packs `ds` into `dir` (created if needed), overwriting any previous
// pack. Throws util::IoError on write failure.
ShardWriteResult write_shards(const SuiteDataset& ds, const std::string& dir);

class ShardStore {
 public:
  struct Config {
    // LRU budget for materialised samples. The default comfortably holds
    // the paper suite; hier_giant runs shrink it to prove the bound.
    std::size_t max_resident_bytes = 512ull << 20;
  };

  // Opens `dir`/manifest.json. Throws util::IoError (unreadable) or
  // util::CorruptArtifactError (malformed manifest).
  ShardStore(const std::string& dir, Config cfg);
  explicit ShardStore(const std::string& dir) : ShardStore(dir, Config()) {}

  std::size_t num_train() const { return train_.size(); }
  std::size_t num_test() const { return test_.size(); }
  const FeatureNormalizer& normalizer() const { return normalizer_; }
  const Config& config() const { return cfg_; }

  // Sample names without materialising anything (manifest metadata).
  const std::string& train_name(std::size_t i) const;
  const std::string& test_name(std::size_t i) const;

  // Materialises (or returns the resident) sample. The returned pointer
  // stays valid for as long as the caller holds it, independent of
  // eviction.
  std::shared_ptr<const Sample> train(std::size_t i);
  std::shared_ptr<const Sample> test(std::size_t i);

  std::size_t resident_bytes() const { return resident_bytes_; }
  std::size_t resident_count() const { return lru_.size(); }

  // Drops the working set (pinned samples survive via their shared_ptrs).
  void clear();

  // Working-set cost estimate of one materialised sample: netlist,
  // graph (nodes, features, edges), and target vectors. The same
  // estimator prices entries into the LRU budget.
  static std::size_t sample_bytes(const Sample& s);

 private:
  struct Entry {
    std::string file;       // path relative to dir_
    std::string name;       // sample/netlist name
    std::uint64_t checksum = 0;
    std::uint64_t bytes = 0;  // on-disk payload size
  };

  std::shared_ptr<const Sample> load(bool is_test, std::size_t i);
  void evict_to_budget();

  std::string dir_;
  Config cfg_;
  FeatureNormalizer normalizer_;
  std::vector<Entry> train_, test_;

  // LRU over materialised samples, keyed by (split, index).
  struct Resident {
    std::shared_ptr<const Sample> sample;
    std::size_t bytes = 0;
    std::uint64_t key = 0;
  };
  std::list<Resident> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Resident>::iterator> index_;
  std::size_t resident_bytes_ = 0;
};

}  // namespace paragraph::dataset
