#include "dataset/dataset.h"

#include <cmath>
#include <stdexcept>

#include "layout/annotator.h"
#include "obs/log.h"
#include "obs/profile.h"
#include "util/bytes.h"

namespace paragraph::dataset {

using circuit::Netlist;
using graph::HeteroGraph;
using graph::NodeType;

const char* target_name(TargetKind t) {
  switch (t) {
    case TargetKind::kCap: return "CAP";
    case TargetKind::kLde1: return "LDE1";
    case TargetKind::kLde2: return "LDE2";
    case TargetKind::kLde3: return "LDE3";
    case TargetKind::kLde4: return "LDE4";
    case TargetKind::kLde5: return "LDE5";
    case TargetKind::kLde6: return "LDE6";
    case TargetKind::kLde7: return "LDE7";
    case TargetKind::kLde8: return "LDE8";
    case TargetKind::kSourceArea: return "SA";
    case TargetKind::kDrainArea: return "DA";
    case TargetKind::kSourcePerimeter: return "SP";
    case TargetKind::kDrainPerimeter: return "DP";
    case TargetKind::kRes: return "RES";
  }
  return "unknown";
}

const std::vector<TargetKind>& all_targets() {
  static const std::vector<TargetKind> v = {
      TargetKind::kCap,        TargetKind::kLde1,          TargetKind::kLde2,
      TargetKind::kLde3,       TargetKind::kLde4,          TargetKind::kLde5,
      TargetKind::kLde6,       TargetKind::kLde7,          TargetKind::kLde8,
      TargetKind::kSourceArea, TargetKind::kDrainArea,     TargetKind::kSourcePerimeter,
      TargetKind::kDrainPerimeter, TargetKind::kRes};
  return v;
}

const std::vector<TargetKind>& device_targets() {
  static const std::vector<TargetKind> v(all_targets().begin() + 1, all_targets().end() - 1);
  return v;
}

const std::vector<NodeType>& target_node_types(TargetKind t) {
  static const std::vector<NodeType> net_types = {NodeType::kNet};
  static const std::vector<NodeType> mos_types = {NodeType::kTransistor,
                                                  NodeType::kTransistorThick};
  return (t == TargetKind::kCap || t == TargetKind::kRes) ? net_types : mos_types;
}

std::vector<float> extract_targets(const Netlist& nl, const HeteroGraph& g, NodeType type,
                                   TargetKind target) {
  const auto& origins = g.origins(type);
  std::vector<float> out;
  out.reserve(origins.size());
  if (target == TargetKind::kCap || target == TargetKind::kRes) {
    if (type != NodeType::kNet)
      throw std::invalid_argument("extract_targets: CAP/RES live on net nodes");
    for (const auto nid : origins) {
      if (target == TargetKind::kCap) {
        const auto& cap = nl.net(nid).ground_truth_cap;
        if (!cap.has_value())
          throw std::logic_error(
              "extract_targets: net lacks ground-truth cap (run annotate_layout)");
        out.push_back(static_cast<float>(*cap * 1e15));  // farad -> fF
      } else {
        const auto& res = nl.net(nid).ground_truth_res;
        if (!res.has_value())
          throw std::logic_error(
              "extract_targets: net lacks ground-truth res (run annotate_layout)");
        out.push_back(static_cast<float>(*res));  // ohm
      }
    }
    return out;
  }
  if (type != NodeType::kTransistor && type != NodeType::kTransistorThick)
    throw std::invalid_argument("extract_targets: device parameters live on transistor nodes");
  for (const auto did : origins) {
    const auto& lay = nl.device(did).layout;
    if (!lay.has_value())
      throw std::logic_error("extract_targets: transistor lacks layout (run annotate_layout)");
    double v = 0.0;
    switch (target) {
      case TargetKind::kSourceArea: v = lay->source_area * 1e15; break;       // m^2 -> 1e3 nm^2
      case TargetKind::kDrainArea: v = lay->drain_area * 1e15; break;
      case TargetKind::kSourcePerimeter: v = lay->source_perimeter * 1e9; break;  // m -> nm
      case TargetKind::kDrainPerimeter: v = lay->drain_perimeter * 1e9; break;
      default: {
        const auto idx = static_cast<std::size_t>(target) - static_cast<std::size_t>(TargetKind::kLde1);
        v = lay->lde[idx] * 1e9;  // m -> nm
        break;
      }
    }
    out.push_back(static_cast<float>(v));
  }
  return out;
}

void FeatureNormalizer::fit(const std::vector<const HeteroGraph*>& graphs) {
  for (std::size_t ti = 0; ti < graph::kNumNodeTypes; ++ti) {
    const auto t = static_cast<NodeType>(ti);
    const std::size_t dim = graph::feature_dim(t);
    std::vector<double> sum(dim, 0.0), sum2(dim, 0.0);
    std::size_t count = 0;
    for (const HeteroGraph* g : graphs) {
      const nn::Matrix& f = g->features(t);
      for (std::size_t r = 0; r < f.rows(); ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
          const double v = std::log1p(static_cast<double>(f(r, c)));
          sum[c] += v;
          sum2[c] += v * v;
        }
        ++count;
      }
    }
    Stats& st = stats_[ti];
    st.mean.assign(dim, 0.0f);
    st.stdev.assign(dim, 1.0f);
    if (count > 0) {
      for (std::size_t c = 0; c < dim; ++c) {
        const double m = sum[c] / static_cast<double>(count);
        const double var = std::max(sum2[c] / static_cast<double>(count) - m * m, 1e-12);
        st.mean[c] = static_cast<float>(m);
        st.stdev[c] = static_cast<float>(std::sqrt(var));
      }
    }
  }
  fitted_ = true;
}

nn::Matrix FeatureNormalizer::apply(const HeteroGraph& g, NodeType t) const {
  if (!fitted_) throw std::logic_error("FeatureNormalizer::apply before fit");
  const Stats& st = stats_[static_cast<std::size_t>(t)];
  nn::Matrix f = g.features(t);
  for (std::size_t r = 0; r < f.rows(); ++r) {
    for (std::size_t c = 0; c < f.cols(); ++c) {
      const float v = std::log1p(f(r, c));
      f(r, c) = (v - st.mean[c]) / (st.stdev[c] > 1e-6f ? st.stdev[c] : 1.0f);
    }
  }
  return f;
}

std::array<FeatureNormalizer::TypeStats, graph::kNumNodeTypes> FeatureNormalizer::state() const {
  std::array<TypeStats, graph::kNumNodeTypes> out;
  if (!fitted_) return out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t)
    out[t] = TypeStats{stats_[t].mean, stats_[t].stdev};
  return out;
}

FeatureNormalizer FeatureNormalizer::from_state(
    const std::array<TypeStats, graph::kNumNodeTypes>& s) {
  FeatureNormalizer n;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    n.stats_[t].mean = s[t].mean;
    n.stats_[t].stdev = s[t].stdev;
    if (!s[t].mean.empty()) n.fitted_ = true;
  }
  return n;
}

std::uint64_t FeatureNormalizer::fingerprint() const {
  std::string buf;
  buf.push_back(fitted_ ? 1 : 0);
  for (const Stats& st : stats_) {
    for (const float v : st.mean)
      buf.append(reinterpret_cast<const char*>(&v), sizeof(float));
    for (const float v : st.stdev)
      buf.append(reinterpret_cast<const char*>(&v), sizeof(float));
  }
  return util::fnv1a64(buf);
}

Sample make_sample(Netlist nl) {
  PARAGRAPH_TIMED_SCOPE("sample");
  Sample s;
  s.name = nl.name();
  {
    PARAGRAPH_TIMED_SCOPE("graph_build");
    s.graph = graph::build_graph(nl);
  }
  for (const TargetKind t : all_targets()) {
    auto& per_type = s.targets[static_cast<std::size_t>(t)];
    for (const NodeType nt : target_node_types(t))
      per_type.push_back(extract_targets(nl, s.graph, nt, t));
  }
  s.netlist = std::move(nl);
  return s;
}

std::vector<float> SuiteDataset::pooled_targets(const std::vector<Sample>& samples,
                                                TargetKind t) {
  std::vector<float> out;
  for (const Sample& s : samples)
    for (const auto& vec : s.targets[static_cast<std::size_t>(t)])
      out.insert(out.end(), vec.begin(), vec.end());
  return out;
}

SuiteDataset build_dataset(std::uint64_t seed, double scale) {
  PARAGRAPH_TIMED_SCOPE("dataset_build");
  circuitgen::Suite suite;
  {
    PARAGRAPH_TIMED_SCOPE("generate_suite");
    suite = circuitgen::build_paper_suite(seed, scale);
  }
  return build_dataset_from_suite(std::move(suite), seed ^ 0x1234567);
}

SuiteDataset build_dataset_from_suite(circuitgen::Suite suite, std::uint64_t layout_seed) {
  PARAGRAPH_TIMED_SCOPE("dataset_from_suite");
  SuiteDataset ds;
  std::uint64_t k = 0;
  for (auto& nl : suite.train) {
    {
      PARAGRAPH_TIMED_SCOPE("annotate_layout");
      layout::annotate_layout(nl, layout_seed + 1000 + k++);
    }
    ds.train.push_back(make_sample(std::move(nl)));
  }
  for (auto& nl : suite.test) {
    {
      PARAGRAPH_TIMED_SCOPE("annotate_layout");
      layout::annotate_layout(nl, layout_seed + 2000 + k++);
    }
    ds.test.push_back(make_sample(std::move(nl)));
  }
  std::vector<const HeteroGraph*> train_graphs;
  for (const Sample& s : ds.train) train_graphs.push_back(&s.graph);
  {
    PARAGRAPH_TIMED_SCOPE("fit_normalizer");
    ds.normalizer.fit(train_graphs);
  }
  if (obs::Logger::instance().should_log(obs::LogLevel::kDebug)) {
    std::size_t nodes = 0, edges = 0;
    for (const Sample& s : ds.train) {
      nodes += s.graph.total_nodes();
      edges += s.graph.total_edges();
    }
    obs::log_debug("dataset", "built",
              {{"train_circuits", ds.train.size()},
               {"test_circuits", ds.test.size()},
               {"train_nodes", nodes},
               {"train_edges", edges}});
  }
  return ds;
}

}  // namespace paragraph::dataset
