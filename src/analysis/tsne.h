// Exact t-SNE (van der Maaten & Hinton, JMLR 2008) for the paper's Fig 8
// embedding-visualisation study, plus a quantitative separation score
// (kNN regression R^2 in the 2-D embedding) so benches can report a number
// instead of a picture.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace paragraph::analysis {

struct TsneConfig {
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 125;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 125;
  std::uint64_t seed = 1;
};

// Embeds the rows of `x` (n x d) into n x 2. Throws on n < 4.
nn::Matrix tsne(const nn::Matrix& x, const TsneConfig& config = {});

// Leave-one-out kNN regression R^2 of `values` over an embedding of any
// dimensionality (the 2-D t-SNE output, or the raw GNN embedding space):
// close to 1 when nearby points carry similar values (well-separated
// colour bands in Fig 8), near 0 when the embedding carries no signal.
double knn_separation_score(const nn::Matrix& embedding, const std::vector<float>& values,
                            int k = 10);

}  // namespace paragraph::analysis
