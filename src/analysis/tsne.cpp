#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "eval/metrics.h"
#include "util/rng.h"

namespace paragraph::analysis {

using nn::Matrix;

namespace {

// Row-stochastic conditional P with per-row sigma found by binary search on
// the Shannon perplexity.
std::vector<double> conditional_p(const std::vector<double>& d2, std::size_t n,
                                  double perplexity) {
  std::vector<double> p(n * n, 0.0);
  const double log_perp = std::log(perplexity);
  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0.0;
      double dot = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double v = std::exp(-beta * d2[i * n + j]);
        p[i * n + j] = v;
        sum += v;
        dot += v * d2[i * n + j];
      }
      if (sum <= 0.0) {
        beta /= 2.0;
        continue;
      }
      // Shannon entropy H = log(sum) + beta * <d2>.
      const double h = std::log(sum) + beta * dot / sum;
      if (std::abs(h - log_perp) < 1e-5) break;
      if (h > log_perp) {
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) sum += p[i * n + j];
    if (sum > 0.0)
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) p[i * n + j] /= sum;
  }
  return p;
}

}  // namespace

Matrix tsne(const Matrix& x, const TsneConfig& config) {
  const std::size_t n = x.rows();
  if (n < 4) throw std::invalid_argument("tsne: need at least 4 points");
  const std::size_t d = x.cols();

  // Pairwise squared distances in the input space.
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double diff = x(i, c) - x(j, c);
        s += diff * diff;
      }
      d2[i * n + j] = s;
      d2[j * n + i] = s;
    }
  }

  // Symmetrised joint P.
  std::vector<double> p = conditional_p(d2, n, std::min(config.perplexity,
                                                        static_cast<double>(n - 1) / 3.0));
  std::vector<double> pij(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      pij[i * n + j] = std::max((p[i * n + j] + p[j * n + i]) / (2.0 * n), 1e-12);

  util::Rng rng(config.seed);
  std::vector<double> y(n * 2);
  for (auto& v : y) v = rng.normal(0.0, 1e-4);
  std::vector<double> dy(n * 2, 0.0);
  std::vector<double> vel(n * 2, 0.0);
  std::vector<double> q(n * n, 0.0);

  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration = iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    // Student-t affinities.
    double qsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = y[2 * i] - y[2 * j];
        const double dyy = y[2 * i + 1] - y[2 * j + 1];
        const double v = 1.0 / (1.0 + dx * dx + dyy * dyy);
        q[i * n + j] = v;
        q[j * n + i] = v;
        qsum += 2.0 * v;
      }
    }
    qsum = std::max(qsum, 1e-12);

    std::fill(dy.begin(), dy.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double qij = std::max(q[i * n + j] / qsum, 1e-12);
        const double mult = (exaggeration * pij[i * n + j] - qij) * q[i * n + j];
        dy[2 * i] += 4.0 * mult * (y[2 * i] - y[2 * j]);
        dy[2 * i + 1] += 4.0 * mult * (y[2 * i + 1] - y[2 * j + 1]);
      }
    }

    const double momentum =
        iter < config.momentum_switch_iter ? config.initial_momentum : config.final_momentum;
    for (std::size_t k = 0; k < n * 2; ++k) {
      vel[k] = momentum * vel[k] - config.learning_rate * dy[k];
      y[k] += vel[k];
    }
    // Re-centre.
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mx += y[2 * i];
      my += y[2 * i + 1];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[2 * i] -= mx;
      y[2 * i + 1] -= my;
    }
  }

  Matrix out(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, 0) = static_cast<float>(y[2 * i]);
    out(i, 1) = static_cast<float>(y[2 * i + 1]);
  }
  return out;
}

double knn_separation_score(const Matrix& embedding, const std::vector<float>& values, int k) {
  const std::size_t n = embedding.rows();
  if (n != values.size()) throw std::invalid_argument("knn_separation_score: size mismatch");
  if (n < static_cast<std::size_t>(k) + 1)
    throw std::invalid_argument("knn_separation_score: too few points for k");
  std::vector<float> pred(n, 0.0f);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::iota(idx.begin(), idx.end(), 0);
    auto dist2 = [&](std::size_t j) {
      double s = 0.0;
      for (std::size_t c = 0; c < embedding.cols(); ++c) {
        const double d = embedding(i, c) - embedding(j, c);
        s += d * d;
      }
      return s;
    };
    // Leave self out by treating it as infinitely far.
    std::nth_element(idx.begin(), idx.begin() + k, idx.end(), [&](std::size_t a, std::size_t b) {
      const double da = a == i ? std::numeric_limits<double>::infinity() : dist2(a);
      const double db = b == i ? std::numeric_limits<double>::infinity() : dist2(b);
      return da < db;
    });
    double s = 0.0;
    for (int m = 0; m < k; ++m) s += values[idx[static_cast<std::size_t>(m)]];
    pred[i] = static_cast<float>(s / k);
  }
  return eval::r_squared(values, pred);
}

}  // namespace paragraph::analysis
