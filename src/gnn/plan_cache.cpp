#include "gnn/plan_cache.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace paragraph::gnn {

namespace {

using circuit::DeviceId;
using circuit::Netlist;
using circuit::NetId;
using circuit::SubcktInstance;
using graph::HeteroGraph;
using graph::kNumNodeTypes;
using graph::NodeType;

// Netlist id -> graph-local index (-1 when the id has no node, i.e. supply
// nets). Device locals are within the device's own node type.
struct FullIndex {
  std::vector<std::int32_t> net;
  std::vector<std::int32_t> dev;
};

FullIndex build_full_index(const HeteroGraph& g, const Netlist& nl) {
  FullIndex fx;
  fx.net.assign(nl.num_nets(), -1);
  fx.dev.assign(nl.num_devices(), -1);
  const auto& no = g.origins(NodeType::kNet);
  for (std::size_t l = 0; l < no.size(); ++l)
    fx.net[static_cast<std::size_t>(no[l])] = static_cast<std::int32_t>(l);
  for (std::size_t t = 1; t < kNumNodeTypes; ++t) {
    const auto& o = g.origins(static_cast<NodeType>(t));
    for (std::size_t l = 0; l < o.size(); ++l)
      fx.dev[static_cast<std::size_t>(o[l])] = static_cast<std::int32_t>(l);
  }
  return fx;
}

NodeType node_type_of_device(const circuit::Device& d) {
  switch (d.kind) {
    case circuit::DeviceKind::kNmos:
    case circuit::DeviceKind::kPmos: return NodeType::kTransistor;
    case circuit::DeviceKind::kNmosThick:
    case circuit::DeviceKind::kPmosThick: return NodeType::kTransistorThick;
    case circuit::DeviceKind::kResistor: return NodeType::kResistor;
    case circuit::DeviceKind::kCapacitor: return NodeType::kCapacitor;
    case circuit::DeviceKind::kDiode: return NodeType::kDiode;
    case circuit::DeviceKind::kBjt: return NodeType::kBjt;
  }
  throw std::logic_error("plan_cache: unknown device kind");
}

std::size_t matrix_bytes(const nn::Matrix& m) { return m.size() * sizeof(float); }

std::size_t graph_bytes(const HeteroGraph& g) {
  std::size_t b = 0;
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    b += g.num_nodes(nt) * sizeof(std::int32_t) + matrix_bytes(g.features(nt));
  }
  for (const auto& te : g.edges())
    b += te.num_edges() * 2 * sizeof(std::int32_t) +
         te.dst_segments.offsets.size() * sizeof(std::int32_t);
  return b;
}

// One cached instance occurrence in the sample being embedded: the rep
// subgraph local each interior subtree node corresponds to, per node type,
// as (full graph local, rep local) pairs.
struct NodeCorrespondence {
  std::array<std::vector<std::pair<std::int32_t, std::int32_t>>, kNumNodeTypes> nodes;
};

}  // namespace

void PlanCache::clear() {
  entries_.clear();
  bytes_ = 0;
  refresh_bytes_gauge();
}

void PlanCache::refresh_bytes_gauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("plancache.bytes");
  gauge.set(static_cast<double>(bytes_));
}

PlanCache::Entry* PlanCache::find_or_build(const Netlist& nl, const HeteroGraph& g,
                                           const SubcktInstance& inst, bool with_homo) {
  static obs::Counter& misses = obs::MetricsRegistry::instance().counter("plancache.misses");

  auto it = entries_.find(inst.ref.structural_hash);
  if (it != entries_.end()) {
    Entry& e = *it->second;
    if (with_homo && !e.with_homo) {
      // A homo-needing model joined later: upgrade the plan in place (the
      // typed part is unchanged, so existing embeddings stay valid).
      e.plan = GraphPlan::build(e.rep.graph, true);
      e.with_homo = true;
    }
    return &e;
  }

  const FullIndex fx = build_full_index(g, nl);
  auto entry = std::make_unique<Entry>();
  entry->hash = inst.ref.structural_hash;
  entry->with_homo = with_homo;

  // Keep mask: subtree devices, created non-supply nets, and the distinct
  // non-supply boundary nets. Boundary nets are materialised before the
  // subtree's net range opens, so their graph locals precede every created
  // net's — they occupy the leading net-type positions of the subgraph.
  std::array<std::vector<char>, kNumNodeTypes> keep;
  for (std::size_t t = 0; t < kNumNodeTypes; ++t)
    keep[t].assign(g.num_nodes(static_cast<NodeType>(t)), 0);
  std::unordered_set<NetId> boundary_ids(inst.ref.boundary_nets.begin(),
                                         inst.ref.boundary_nets.end());
  for (const NetId b : boundary_ids) {
    const std::int32_t l = fx.net[static_cast<std::size_t>(b)];
    if (l >= 0) {
      if (keep[0][static_cast<std::size_t>(l)] == 0) ++entry->boundary_net_nodes;
      keep[0][static_cast<std::size_t>(l)] = 1;
    }
  }
  for (NetId n = inst.first_net; n < inst.net_end; ++n) {
    const std::int32_t l = fx.net[static_cast<std::size_t>(n)];
    if (l >= 0) keep[0][static_cast<std::size_t>(l)] = 1;
  }
  for (DeviceId d = inst.first_device; d < inst.device_end; ++d) {
    const auto t = static_cast<std::size_t>(node_type_of_device(nl.device(d)));
    keep[t][static_cast<std::size_t>(fx.dev[static_cast<std::size_t>(d)])] = 1;
  }
  entry->rep = graph::induced_subgraph(g, keep);

  // Multi-source BFS for the distance to the instance boundary: boundary
  // net nodes seed at depth 0, devices with any boundary-listed connection
  // (supply-bound ports included — in another instance of this template
  // that port may carry a signal, and the depth must be valid for every
  // instance sharing the hash) seed at depth 1.
  std::array<std::size_t, kNumNodeTypes + 1> off{};
  for (std::size_t t = 0; t < kNumNodeTypes; ++t)
    off[t + 1] = off[t] + entry->rep.graph.num_nodes(static_cast<NodeType>(t));
  const std::size_t total = off[kNumNodeTypes];
  std::vector<std::vector<std::int32_t>> adj(total);
  const auto& registry = graph::edge_type_registry();
  for (const auto& te : entry->rep.graph.edges()) {
    const auto st = static_cast<std::size_t>(registry[te.type_index].src_type);
    const auto dt = static_cast<std::size_t>(registry[te.type_index].dst_type);
    for (std::size_t e = 0; e < te.num_edges(); ++e) {
      const auto gs = static_cast<std::int32_t>(off[st] + static_cast<std::size_t>(te.src[e]));
      const auto gd = static_cast<std::int32_t>(off[dt] + static_cast<std::size_t>(te.dst[e]));
      adj[static_cast<std::size_t>(gs)].push_back(gd);
      adj[static_cast<std::size_t>(gd)].push_back(gs);
    }
  }
  std::vector<std::int32_t> dist(total, kUnreachable);
  std::deque<std::int32_t> queue;
  for (std::size_t l = 0; l < entry->boundary_net_nodes; ++l) {
    dist[off[0] + l] = 0;
    queue.push_back(static_cast<std::int32_t>(off[0] + l));
  }
  {
    std::array<std::int32_t, kNumNodeTypes> ordinal{};
    for (DeviceId d = inst.first_device; d < inst.device_end; ++d) {
      const auto t = static_cast<std::size_t>(node_type_of_device(nl.device(d)));
      const std::int32_t rep_local = ordinal[t]++;
      bool touches = false;
      for (const NetId c : nl.device(d).conns) touches = touches || boundary_ids.contains(c);
      if (!touches) continue;
      const std::size_t gl = off[t] + static_cast<std::size_t>(rep_local);
      if (dist[gl] > 1) {
        dist[gl] = 1;
        queue.push_back(static_cast<std::int32_t>(gl));
      }
    }
  }
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop_front();
    for (const std::int32_t w : adj[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(w)] <= dist[static_cast<std::size_t>(v)] + 1) continue;
      dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
      queue.push_back(w);
    }
  }
  for (std::size_t t = 0; t < kNumNodeTypes; ++t)
    entry->depth[t].assign(dist.begin() + static_cast<std::ptrdiff_t>(off[t]),
                           dist.begin() + static_cast<std::ptrdiff_t>(off[t + 1]));

  entry->plan = GraphPlan::build(entry->rep.graph, with_homo);
  entry->struct_bytes = graph_bytes(entry->rep.graph) * 3;  // graph + plan estimate
  bytes_ += entry->struct_bytes;
  misses.add(1);
  refresh_bytes_gauge();
  return entries_.emplace(entry->hash, std::move(entry)).first->second.get();
}

const PlanCache::Embed& PlanCache::embed_for(Entry& entry, std::uint64_t model_key,
                                             const EmbedFn& embed) {
  for (auto& em : entry.embeds) {
    if (em.key == model_key) {
      em.tick = ++tick_;
      return em;
    }
  }
  static obs::Counter& misses = obs::MetricsRegistry::instance().counter("plancache.misses");
  misses.add(1);
  if (entry.embeds.size() >= config_.max_embed_variants) {
    auto victim = std::min_element(entry.embeds.begin(), entry.embeds.end(),
                                   [](const Embed& a, const Embed& b) { return a.tick < b.tick; });
    bytes_ -= victim->bytes;
    entry.embeds.erase(victim);
  }
  Embed em;
  em.key = model_key;
  em.tick = ++tick_;
  const TypeTensors z = embed(entry.rep.graph, entry.plan);
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    if (!z[t].defined()) continue;
    em.z[t] = z[t].value();
    em.bytes += matrix_bytes(em.z[t]);
  }
  bytes_ += em.bytes;
  refresh_bytes_gauge();
  entry.embeds.push_back(std::move(em));
  return entry.embeds.back();
}

bool PlanCache::embed_hierarchical(const Netlist& nl, const HeteroGraph& g,
                                   std::size_t num_layers, bool with_homo,
                                   std::uint64_t model_key, const EmbedFn& embed,
                                   std::array<nn::Matrix, kNumNodeTypes>* out) {
  const auto& insts = nl.instances();
  if (insts.empty()) return false;

  // Greedy maximal selection: cache a profitable instance whole, descend
  // into unprofitable ones so repeated children under a unique parent
  // still hit.
  std::unordered_map<std::uint64_t, int> hash_count;
  for (const auto& inst : insts) ++hash_count[inst.ref.structural_hash];
  std::vector<std::vector<int>> children(insts.size());
  std::vector<int> top;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].parent < 0)
      top.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(insts[i].parent)].push_back(static_cast<int>(i));
  }
  std::vector<int> selected;
  const std::function<void(int)> visit = [&](int i) {
    const SubcktInstance& inst = insts[static_cast<std::size_t>(i)];
    if (static_cast<std::size_t>(inst.device_end - inst.first_device) <
        config_.min_subtree_devices)
      return;
    if (hash_count[inst.ref.structural_hash] >= 2 ||
        entries_.contains(inst.ref.structural_hash)) {
      selected.push_back(i);
      return;
    }
    for (const int c : children[static_cast<std::size_t>(i)]) visit(c);
  };
  for (const int t : top) visit(t);
  if (selected.empty()) return false;

  static obs::Counter& hits = obs::MetricsRegistry::instance().counter("plancache.hits");
  const auto L = static_cast<std::int32_t>(num_layers);

  struct Placed {
    int inst;
    Entry* entry;
  };
  std::vector<Placed> placed;
  for (const int i : selected) {
    Entry* e = find_or_build(nl, g, insts[static_cast<std::size_t>(i)], with_homo);
    // Templates that are all skin (no node deeper than L) have nothing to
    // memoize; leave their nodes to the reduced graph.
    bool interior = false;
    for (std::size_t t = 0; t < kNumNodeTypes && !interior; ++t)
      for (const std::int32_t d : e->depth[t])
        if (d > L) {
          interior = true;
          break;
        }
    if (interior) placed.push_back({i, e});
  }
  if (placed.empty()) return false;

  // Map each placed instance's subtree nodes onto the rep subgraph: the
  // k-th type-t subtree device corresponds to rep type-t local k; the j-th
  // created non-supply net to rep net local boundary_net_nodes + j. Both
  // correspondences follow from the structural hash covering device kinds
  // and canonicalised connections in id order.
  const FullIndex fx = build_full_index(g, nl);
  std::vector<NodeCorrespondence> maps(placed.size());
  for (std::size_t p = 0; p < placed.size(); ++p) {
    const SubcktInstance& inst = insts[static_cast<std::size_t>(placed[p].inst)];
    const Entry& e = *placed[p].entry;
    std::array<std::int32_t, kNumNodeTypes> ordinal{};
    for (DeviceId d = inst.first_device; d < inst.device_end; ++d) {
      const auto t = static_cast<std::size_t>(node_type_of_device(nl.device(d)));
      maps[p].nodes[t].emplace_back(fx.dev[static_cast<std::size_t>(d)], ordinal[t]++);
    }
    std::int32_t j = 0;
    for (NetId n = inst.first_net; n < inst.net_end; ++n) {
      const std::int32_t l = fx.net[static_cast<std::size_t>(n)];
      if (l < 0) continue;  // supply
      maps[p].nodes[0].emplace_back(
          l, static_cast<std::int32_t>(e.boundary_net_nodes) + j++);
    }
    for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
      const std::size_t expect = t == 0 ? e.boundary_net_nodes + static_cast<std::size_t>(j)
                                        : static_cast<std::size_t>(ordinal[t]);
      if (expect != e.rep.graph.num_nodes(static_cast<NodeType>(t)))
        throw std::logic_error("PlanCache: structural hash collision on instance '" + inst.path +
                               "'");
    }
  }

  // Reduced graph: drop every cached node deeper than 2L+1 (see header for
  // why the extra ring is kept).
  std::array<std::vector<char>, kNumNodeTypes> keep;
  for (std::size_t t = 0; t < kNumNodeTypes; ++t)
    keep[t].assign(g.num_nodes(static_cast<NodeType>(t)), 1);
  const std::int32_t keep_limit = 2 * L + 1;
  for (std::size_t p = 0; p < placed.size(); ++p) {
    const Entry& e = *placed[p].entry;
    for (std::size_t t = 0; t < kNumNodeTypes; ++t)
      for (const auto& [full, rep] : maps[p].nodes[t])
        if (e.depth[t][static_cast<std::size_t>(rep)] > keep_limit)
          keep[t][static_cast<std::size_t>(full)] = 0;
  }

  const graph::Subgraph reduced = graph::induced_subgraph(g, keep);
  const GraphPlan rplan = GraphPlan::build(reduced.graph, with_homo);
  const TypeTensors rz = embed(reduced.graph, rplan);

  // Memoized embeddings, counting one hit per instance that found its
  // template's embedding already present.
  std::vector<const Embed*> embeds(placed.size());
  for (std::size_t p = 0; p < placed.size(); ++p) {
    Entry& e = *placed[p].entry;
    const bool present = std::any_of(e.embeds.begin(), e.embeds.end(),
                                     [&](const Embed& em) { return em.key == model_key; });
    if (present) hits.add(1);
    embeds[p] = &embed_for(e, model_key, embed);
  }

  // Assemble: reduced-graph rows first, then interior rows (depth > L)
  // overwrite from the memoized template embedding.
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    const std::size_t n = g.num_nodes(nt);
    if (n == 0) {
      (*out)[t] = nn::Matrix();
      continue;
    }
    std::size_t dim = 0;
    if (rz[t].defined()) dim = rz[t].value().cols();
    for (std::size_t p = 0; p < placed.size() && dim == 0; ++p)
      dim = embeds[p]->z[t].cols();
    (*out)[t] = nn::Matrix(n, dim, 0.0f);
    if (rz[t].defined()) {
      const nn::Matrix& rm = rz[t].value();
      for (std::size_t r = 0; r < rm.rows(); ++r) {
        const auto full = static_cast<std::size_t>(reduced.to_full[t][r]);
        for (std::size_t c = 0; c < dim; ++c) (*out)[t](full, c) = rm(r, c);
      }
    }
    for (std::size_t p = 0; p < placed.size(); ++p) {
      const Entry& e = *placed[p].entry;
      const nn::Matrix& em = embeds[p]->z[t];
      for (const auto& [full, rep] : maps[p].nodes[t]) {
        if (e.depth[t][static_cast<std::size_t>(rep)] <= L) continue;
        for (std::size_t c = 0; c < dim; ++c)
          (*out)[t](static_cast<std::size_t>(full), c) = em(static_cast<std::size_t>(rep), c);
      }
    }
  }
  return true;
}

}  // namespace paragraph::gnn
