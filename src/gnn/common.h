// Shared infrastructure for all GNN models.
//
// Every model (naive GCN/GraphSage/GAT, RGCN, ParaGraph) first applies a
// node-type-specific linear transform to map heterogeneous feature spaces
// into the common embedding space (Algorithm 1, lines 1-2; the paper notes
// the same transform had to be added to the naive baselines).
//
// The homogeneous baselines then ignore edge types: HomoView flattens the
// typed node blocks into one global index space with a merged edge list
// (plus a self-loop-augmented variant with GCN symmetric-normalisation
// coefficients).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/hetero_graph.h"
#include "nn/graph_ops.h"
#include "nn/module.h"

namespace paragraph::gnn {

using TypeTensors = std::array<nn::Tensor, graph::kNumNodeTypes>;

// Flattened (type-blind) view of a HeteroGraph.
struct HomoView {
  std::size_t total_nodes = 0;
  std::array<std::size_t, graph::kNumNodeTypes> type_offset{};
  std::array<std::size_t, graph::kNumNodeTypes> type_count{};

  // All edges, global indices, sorted by destination.
  std::vector<std::int32_t> src;
  std::vector<std::int32_t> dst;
  nn::SegmentIndex dst_segments;
  std::vector<float> inv_in_degree;  // per node; 0 for isolated nodes

  // Self-loop-augmented edge list (sorted by destination, with segments)
  // and GCN coefficients 1/sqrt(d_i d_j) on the augmented graph. Used by
  // GCN (normalisation) and GAT (so attention can retain self features).
  std::vector<std::int32_t> sl_src;
  std::vector<std::int32_t> sl_dst;
  nn::SegmentIndex sl_dst_segments;
  std::vector<float> gcn_coeff;
};

HomoView build_homo_view(const graph::HeteroGraph& g);

// Per-edge-type attention statistics recorded during a forward pass
// (paper Section III: "Analyzing the learned attentional weights may also
// help model interpretability"). Entropy is averaged over destination
// segments with >= 2 incoming edges; low entropy = focused attention.
struct AttentionRecord {
  struct Entry {
    double mean_entropy = 0.0;  // nats
    double mean_max = 0.0;      // average of the per-segment max weight
    std::size_t segments = 0;
    std::size_t edges = 0;
  };
  // layers[l][edge type index] -> statistics for that relation at layer l.
  std::vector<std::map<std::size_t, Entry>> layers;
};

class GraphPlan;  // gnn/plan.h

// Everything a model needs for one circuit. Feature tensors are constant
// leaves (already normalised). `plan` is the preferred way to supply graph
// structure: built once per graph (gnn/plan.h) and reused across every
// forward. When it is null the model builds a transient plan from `graph`
// (and `homo`, for the homogeneous baselines) on each call.
struct GraphBatch {
  const graph::HeteroGraph* graph = nullptr;
  const HomoView* homo = nullptr;
  const GraphPlan* plan = nullptr;
  TypeTensors features;
  // When set, attention-based models append per-layer statistics here.
  AttentionRecord* attention_out = nullptr;
};

// Computes attention statistics for one relation's softmax output.
AttentionRecord::Entry summarize_attention(const nn::Matrix& alpha,
                                           const nn::SegmentIndex& segments);

// Per-node-type input projection into the common F-dimensional space.
class InputTransform : public nn::Module {
 public:
  InputTransform(std::size_t embed_dim, util::Rng& rng);

  // Projects each non-empty node type's features; empty types yield
  // undefined tensors (callers must check .defined()).
  TypeTensors forward(const GraphBatch& batch) const;

 private:
  std::vector<std::unique_ptr<nn::Linear>> per_type_;
};

// Concatenates per-type embeddings into the global (HomoView) row order.
nn::Tensor flatten_types(const TypeTensors& typed, const HomoView& homo, std::size_t embed_dim);

// Slices a global embedding matrix back into per-type blocks.
TypeTensors split_types(const nn::Tensor& global, const HomoView& homo);

// Per-node bitmask over edge_type_registry() indices: bit e is set when
// node i of `type` is an endpoint of at least one edge of type e. Used by
// the quality report to bucket prediction error by edge-type context
// (which terminal relations a net actually touches).
std::vector<std::uint64_t> incident_edge_type_masks(const graph::HeteroGraph& g,
                                                    graph::NodeType type);

}  // namespace paragraph::gnn
