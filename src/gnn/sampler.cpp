#include "gnn/sampler.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace paragraph::gnn {

using graph::HeteroGraph;
using graph::NodeType;

namespace {

// Per-node-type mapping from original local index to subgraph index;
// assigns new indices on first touch.
class NodeMap {
 public:
  // Returns subgraph index; marks the node live.
  std::int32_t touch(NodeType t, std::int32_t original) {
    auto& m = maps_[static_cast<std::size_t>(t)];
    const auto [it, inserted] = m.emplace(original, static_cast<std::int32_t>(m.size()));
    if (inserted) order_[static_cast<std::size_t>(t)].push_back(original);
    return it->second;
  }

  bool contains(NodeType t, std::int32_t original) const {
    return maps_[static_cast<std::size_t>(t)].contains(original);
  }
  std::int32_t at(NodeType t, std::int32_t original) const {
    return maps_[static_cast<std::size_t>(t)].at(original);
  }

  const std::vector<std::int32_t>& order(NodeType t) const {
    return order_[static_cast<std::size_t>(t)];
  }

 private:
  std::array<std::unordered_map<std::int32_t, std::int32_t>, graph::kNumNodeTypes> maps_;
  std::array<std::vector<std::int32_t>, graph::kNumNodeTypes> order_;
};

}  // namespace

SampledSubgraph sample_subgraph(const HeteroGraph& g, NodeType seed_type,
                                const std::vector<std::int32_t>& seeds,
                                const SamplerConfig& config, util::Rng& rng) {
  for (const auto s : seeds) {
    if (s < 0 || static_cast<std::size_t>(s) >= g.num_nodes(seed_type))
      throw std::out_of_range("sample_subgraph: seed out of range");
  }

  NodeMap node_map;
  // Frontier per node type (original indices discovered in the last hop).
  std::array<std::vector<std::int32_t>, graph::kNumNodeTypes> frontier;
  for (const auto s : seeds) {
    if (node_map.contains(seed_type, s)) continue;  // dedupe repeated seeds
    node_map.touch(seed_type, s);
    frontier[static_cast<std::size_t>(seed_type)].push_back(s);
  }

  struct SampledEdge {
    std::size_t type_index;
    std::int32_t src_original;
    std::int32_t dst_original;
  };
  std::vector<SampledEdge> sampled_edges;

  for (int hop = 0; hop < config.num_hops; ++hop) {
    std::array<std::vector<std::int32_t>, graph::kNumNodeTypes> next;
    for (const auto& te : g.edges()) {
      const auto& info = graph::edge_type_registry()[te.type_index];
      const auto dt = static_cast<std::size_t>(info.dst_type);
      if (frontier[dt].empty()) continue;
      for (const auto dst : frontier[dt]) {
        const auto begin = static_cast<std::size_t>(
            te.dst_segments.offsets[static_cast<std::size_t>(dst)]);
        const auto end = static_cast<std::size_t>(
            te.dst_segments.offsets[static_cast<std::size_t>(dst) + 1]);
        const auto deg = end - begin;
        if (deg == 0) continue;
        // Sample up to fanout incoming edges without replacement.
        std::vector<std::size_t> picks;
        if (deg <= static_cast<std::size_t>(config.fanout_per_relation)) {
          for (std::size_t e = begin; e < end; ++e) picks.push_back(e);
        } else {
          std::vector<std::size_t> all(deg);
          for (std::size_t k = 0; k < deg; ++k) all[k] = begin + k;
          rng.shuffle(all);
          picks.assign(all.begin(), all.begin() + config.fanout_per_relation);
          std::sort(picks.begin(), picks.end());  // deterministic ordering
        }
        for (const auto e : picks) {
          const auto src = te.src[e];
          const auto st = info.src_type;
          if (!node_map.contains(st, src)) {
            node_map.touch(st, src);
            next[static_cast<std::size_t>(st)].push_back(src);
          }
          sampled_edges.push_back({te.type_index, src, dst});
        }
      }
    }
    frontier = std::move(next);
  }

  // Build the subgraph: nodes with their original features, then edges.
  SampledSubgraph out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    const auto& order = node_map.order(nt);
    out.original_index[t] = order;
    nn::Matrix feats(order.size(), graph::feature_dim(nt), 0.0f);
    std::vector<std::int32_t> origin(order.size());
    const nn::Matrix& src_feats = g.features(nt);
    for (std::size_t i = 0; i < order.size(); ++i) {
      origin[i] = g.origin(nt, static_cast<std::size_t>(order[i]));
      for (std::size_t c = 0; c < feats.cols(); ++c)
        feats(i, c) = src_feats(static_cast<std::size_t>(order[i]), c);
    }
    out.graph.set_nodes(nt, std::move(origin), std::move(feats));
  }

  // Group edges by type.
  std::unordered_map<std::size_t, std::pair<std::vector<std::int32_t>, std::vector<std::int32_t>>>
      by_type;
  for (const auto& e : sampled_edges) {
    const auto& info = graph::edge_type_registry()[e.type_index];
    auto& bucket = by_type[e.type_index];
    bucket.first.push_back(node_map.at(info.src_type, e.src_original));
    bucket.second.push_back(node_map.at(info.dst_type, e.dst_original));
  }
  // Deterministic insertion order over type indices.
  std::vector<std::size_t> type_order;
  for (const auto& [k, v] : by_type) type_order.push_back(k);
  std::sort(type_order.begin(), type_order.end());
  for (const auto k : type_order) {
    auto& bucket = by_type[k];
    out.graph.add_edges(k, std::move(bucket.first), std::move(bucket.second));
  }
  out.graph.validate();

  out.seed_local.reserve(seeds.size());
  for (const auto s : seeds) out.seed_local.push_back(node_map.at(seed_type, s));
  return out;
}

}  // namespace paragraph::gnn
