#include "gnn/golden.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "circuitgen/generator.h"
#include "nn/ops.h"

namespace paragraph::gnn {

namespace {

constexpr std::uint32_t kGoldenMagic = 0x50474744;  // "PGGD"
constexpr std::uint32_t kGoldenVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("read_golden: truncated fixture");
  return v;
}

void write_matrix(std::ostream& os, const nn::Matrix& m) {
  write_pod(os, static_cast<std::uint64_t>(m.rows()));
  write_pod(os, static_cast<std::uint64_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

nn::Matrix read_matrix(std::istream& is) {
  const auto rows = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  const auto cols = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  nn::Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw std::runtime_error("read_golden: truncated matrix data");
  return m;
}

}  // namespace

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = [] {
    std::vector<GoldenCase> v;
    const auto add = [&v](ModelKind k, std::size_t heads, const char* stem) {
      v.push_back({k, /*embed_dim=*/16, /*num_layers=*/3, heads, /*model_seed=*/42, stem});
    };
    add(ModelKind::kGcn, 1, "gcn");
    add(ModelKind::kGraphSage, 1, "graphsage");
    add(ModelKind::kRgcn, 1, "rgcn");
    add(ModelKind::kGat, 1, "gat");
    add(ModelKind::kParaGraph, 1, "paragraph");
    add(ModelKind::kParaGraphNoAttention, 1, "paragraph_noattn");
    add(ModelKind::kParaGraphNoEdgeTypes, 1, "paragraph_noedgetypes");
    add(ModelKind::kParaGraphNoConcat, 1, "paragraph_noconcat");
    add(ModelKind::kParaGraph, 2, "paragraph_heads2");
    return v;
  }();
  return cases;
}

graph::HeteroGraph golden_graph() {
  // A mixed analog/digital circuit so every node type and a wide spread of
  // edge types (gate/source/drain, RC terminals, diode, BJT) is exercised.
  circuitgen::CircuitSpec spec;
  spec.name = "golden";
  spec.seed = 7;
  spec.opamps = 1;
  spec.mirrors = 1;
  spec.bandgaps = 1;  // brings in diodes/BJTs
  spec.rc_filters = 1;
  spec.glue_gates = 6;
  spec.dffs = 1;
  spec.level_shifters = 1;  // thick-gate devices
  spec.esd_pads = 1;
  return graph::build_graph(circuitgen::generate_circuit(spec));
}

GoldenResult run_golden_case(const GoldenCase& c) {
  const graph::HeteroGraph g = golden_graph();
  const HomoView homo = build_homo_view(g);

  util::Rng rng(c.model_seed);
  auto model = make_model(c.kind, c.embed_dim, c.num_layers, rng, c.num_heads);

  GraphBatch batch;
  batch.graph = &g;
  batch.homo = &homo;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const auto nt = static_cast<graph::NodeType>(t);
    if (g.num_nodes(nt) == 0) continue;
    // Per-column max-abs normalisation stands in for the dataset
    // normaliser: keeps activations O(1) so the 1e-5 max-abs-diff
    // equivalence criterion is meaningful.
    nn::Matrix f = g.features(nt);
    for (std::size_t j = 0; j < f.cols(); ++j) {
      float mx = 1.0f;
      for (std::size_t i = 0; i < f.rows(); ++i) mx = std::max(mx, std::abs(f(i, j)));
      for (std::size_t i = 0; i < f.rows(); ++i) f(i, j) /= mx;
    }
    batch.features[t] = nn::Tensor(std::move(f));
  }

  const TypeTensors emb = model->embed(batch);

  // Deterministic scalar loss touching every defined embedding so backward
  // reaches every parameter: mean squared activation per type, summed.
  std::vector<nn::Tensor> losses;
  GoldenResult r;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (!emb[t].defined()) {
      r.embeddings.emplace_back();
      continue;
    }
    r.embeddings.push_back(emb[t].value());
    losses.push_back(nn::mse_loss(emb[t], nn::Matrix(emb[t].rows(), emb[t].cols(), 0.0f)));
  }
  nn::Tensor loss = nn::sum_tensors(losses);

  auto params = model->parameters();
  for (auto& p : params) p.zero_grad();
  loss.backward();
  r.loss = static_cast<double>(loss.item());
  for (const auto& p : params) r.param_grads.push_back(p.grad());
  return r;
}

void write_golden(std::ostream& os, const GoldenResult& r) {
  write_pod(os, kGoldenMagic);
  write_pod(os, kGoldenVersion);
  write_pod(os, r.loss);
  write_pod(os, static_cast<std::uint64_t>(r.embeddings.size()));
  for (const auto& m : r.embeddings) write_matrix(os, m);
  write_pod(os, static_cast<std::uint64_t>(r.param_grads.size()));
  for (const auto& m : r.param_grads) write_matrix(os, m);
}

GoldenResult read_golden(std::istream& is) {
  if (read_pod<std::uint32_t>(is) != kGoldenMagic)
    throw std::runtime_error("read_golden: not a golden fixture");
  if (read_pod<std::uint32_t>(is) != kGoldenVersion)
    throw std::runtime_error("read_golden: unsupported fixture version");
  GoldenResult r;
  r.loss = read_pod<double>(is);
  const auto ne = read_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < ne; ++i) r.embeddings.push_back(read_matrix(is));
  const auto np = read_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < np; ++i) r.param_grads.push_back(read_matrix(is));
  return r;
}

}  // namespace paragraph::gnn
