// Golden equivalence harness for the model zoo.
//
// A GoldenCase pins every source of randomness (model seed, circuit spec)
// so a forward + backward pass is a pure function of the implementation.
// The fixtures committed under tests/golden/ were generated from the
// pre-engine per-model implementations; run_golden_case() replays the same
// computation through whatever make_model() currently builds, letting the
// test suite prove the refactored engine is numerically equivalent.
//
// Shared by tools/gen_golden.cpp (fixture writer) and
// tests/golden_equivalence_test.cpp (fixture checker).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gnn/models.h"
#include "nn/matrix.h"

namespace paragraph::gnn {

struct GoldenCase {
  ModelKind kind;
  std::size_t embed_dim;
  std::size_t num_layers;
  std::size_t num_heads;
  std::uint64_t model_seed;
  std::string file_stem;  // fixture file name without extension
};

// One case per ModelKind (F=16, L=3, paper-ish but CPU-cheap) plus a
// 2-head ParaGraph case exercising the multi-head average path.
const std::vector<GoldenCase>& golden_cases();

struct GoldenResult {
  // Per node type: the embedding matrix (empty Matrix for absent types).
  std::vector<nn::Matrix> embeddings;
  // Gradient of the scalar loss w.r.t. every parameter, in parameters()
  // order. Doubles as a check that the parameter layout is stable, which
  // is what core/serialize depends on.
  std::vector<nn::Matrix> param_grads;
  double loss = 0.0;
};

// Builds the deterministic evaluation circuit (shared by all cases).
graph::HeteroGraph golden_graph();

// Seed-fixed forward + backward on the golden graph.
GoldenResult run_golden_case(const GoldenCase& c);

// Binary fixture I/O (magic + version header; throws on mismatch).
void write_golden(std::ostream& os, const GoldenResult& r);
GoldenResult read_golden(std::istream& is);

}  // namespace paragraph::gnn
