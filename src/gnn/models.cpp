#include "gnn/models.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "gnn/mp_layer.h"
#include "gnn/plan.h"
#include "obs/profile.h"

namespace paragraph::gnn {

using nn::Tensor;

const char* model_kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::kGcn: return "GCN";
    case ModelKind::kGraphSage: return "GraphSage";
    case ModelKind::kRgcn: return "RGCN";
    case ModelKind::kGat: return "GAT";
    case ModelKind::kParaGraph: return "ParaGraph";
    case ModelKind::kParaGraphNoAttention: return "ParaGraph-noattn";
    case ModelKind::kParaGraphNoEdgeTypes: return "ParaGraph-noedgetypes";
    case ModelKind::kParaGraphNoConcat: return "ParaGraph-noconcat";
  }
  return "unknown";
}

namespace {

// Stable per-layer phase names for the scoped timers (ScopedTimer keeps the
// pointer alive past the scope). Interned on demand, so any depth works.
const char* layer_scope_name(std::size_t l) {
  static std::mutex mu;
  static std::map<std::size_t, std::string> names;
  const std::lock_guard<std::mutex> lock(mu);
  auto it = names.find(l);
  if (it == names.end()) it = names.emplace(l, "layer" + std::to_string(l)).first;
  return it->second.c_str();
}

// A model is a compute space (flattened or typed), a layer policy, and a
// timing-scope name. The MessagePassingLayer does the rest.
struct ModelSpec {
  LayerPolicy policy;
  const char* scope = "forward";
  bool homogeneous = false;
};

ModelSpec spec_for(ModelKind kind, std::size_t num_heads) {
  using Agg = LayerPolicy::Aggregator;
  using Upd = LayerPolicy::Update;
  ModelSpec s;
  switch (kind) {
    case ModelKind::kGcn:
      s.policy.aggregator = Agg::kGcnSum;
      s.policy.update = Upd::kBias;
      s.scope = "forward_gcn";
      s.homogeneous = true;
      return s;
    case ModelKind::kGraphSage:
      s.policy.aggregator = Agg::kMeanConcat;
      s.policy.update = Upd::kSageConcat;
      s.scope = "forward_graphsage";
      s.homogeneous = true;
      return s;
    case ModelKind::kGat:
      s.policy.aggregator = Agg::kAttention;
      s.policy.update = Upd::kBias;
      s.scope = "forward_gat";
      s.homogeneous = true;
      return s;
    case ModelKind::kRgcn:
      s.policy.aggregator = Agg::kTypedMean;
      s.policy.update = Upd::kSelfLoop;
      s.scope = "forward_rgcn";
      return s;
    case ModelKind::kParaGraph:
    case ModelKind::kParaGraphNoAttention:
    case ModelKind::kParaGraphNoEdgeTypes:
    case ModelKind::kParaGraphNoConcat:
      s.policy.aggregator = kind == ModelKind::kParaGraphNoAttention ? Agg::kTypedMean
                                                                     : Agg::kTypedAttention;
      s.policy.update =
          kind == ModelKind::kParaGraphNoConcat ? Upd::kDense : Upd::kConcat;
      s.policy.per_type_weights = kind != ModelKind::kParaGraphNoEdgeTypes;
      s.policy.num_heads = std::max<std::size_t>(num_heads, 1);
      s.policy.attention_params = true;
      s.policy.require_dst_features = true;
      s.scope = "forward_paragraph";
      return s;
  }
  throw std::invalid_argument("spec_for: unknown kind");
}

// The one concrete model: L policy-configured MessagePassingLayers behind
// the shared input transform, running on a GraphPlan (the batch's, or a
// transient one built from the raw graph for plan-less callers).
class UnifiedModel final : public EmbeddingModel {
 public:
  UnifiedModel(ModelKind kind, std::size_t f, std::size_t l, util::Rng& rng,
               std::size_t num_heads)
      : EmbeddingModel(f, l), kind_(kind), spec_(spec_for(kind, num_heads)), input_(f, rng) {
    for (std::size_t i = 0; i < l; ++i)
      layers_.push_back(std::make_unique<MessagePassingLayer>(f, spec_.policy, rng));
    // Registration order defines the serialized parameter layout: layer
    // parameters first, input transform last, matching the legacy classes
    // (which registered their own parameters after the input child module).
    for (auto& layer : layers_) register_module(layer.get());
    register_module(&input_);
  }

  ModelKind kind() const override { return kind_; }

  TypeTensors embed(const GraphBatch& batch) const override {
    if (spec_.homogeneous && batch.plan == nullptr && batch.homo == nullptr)
      throw std::invalid_argument(std::string(model_kind_name(kind_)) + " needs a HomoView");
    PARAGRAPH_TIMED_SCOPE(spec_.scope);
    GraphPlan local;
    const GraphPlan* plan = batch.plan;
    if (plan == nullptr) {
      local = GraphPlan::build(*batch.graph, batch.homo);
      plan = &local;
    }
    if (spec_.homogeneous) {
      if (!plan->has_homo())
        throw std::invalid_argument(std::string(model_kind_name(kind_)) + " needs a HomoView");
      const HomoPlan& hp = plan->homo();
      Tensor h = flatten_types(input_.forward(batch), hp, embed_dim_);
      for (std::size_t l = 0; l < num_layers_; ++l) {
        PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
        h = layers_[l]->forward(h, hp);
      }
      return split_types(h, hp);
    }
    TypeTensors h = input_.forward(batch);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      const AttentionProbe probe{batch.attention_out, l, num_layers_};
      h = layers_[l]->forward(h, *plan, probe);
    }
    return h;
  }

 private:
  ModelKind kind_;
  ModelSpec spec_;
  InputTransform input_;
  std::vector<std::unique_ptr<MessagePassingLayer>> layers_;
};

}  // namespace

std::unique_ptr<EmbeddingModel> make_model(ModelKind kind, std::size_t embed_dim,
                                           std::size_t num_layers, util::Rng& rng,
                                           std::size_t num_heads) {
  return std::make_unique<UnifiedModel>(kind, embed_dim, num_layers, rng, num_heads);
}

}  // namespace paragraph::gnn
