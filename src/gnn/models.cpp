#include "gnn/models.h"

#include <stdexcept>

#include "nn/graph_ops.h"
#include "nn/init.h"
#include "obs/profile.h"

namespace paragraph::gnn {

using graph::HeteroGraph;
using graph::NodeType;
using nn::Matrix;
using nn::Tensor;

const char* model_kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::kGcn: return "GCN";
    case ModelKind::kGraphSage: return "GraphSage";
    case ModelKind::kRgcn: return "RGCN";
    case ModelKind::kGat: return "GAT";
    case ModelKind::kParaGraph: return "ParaGraph";
    case ModelKind::kParaGraphNoAttention: return "ParaGraph-noattn";
    case ModelKind::kParaGraphNoEdgeTypes: return "ParaGraph-noedgetypes";
    case ModelKind::kParaGraphNoConcat: return "ParaGraph-noconcat";
  }
  return "unknown";
}

namespace {

// Model activation. LeakyReLU instead of plain ReLU keeps full-graph
// training alive: with ReLU a single bad step can zero every activation
// (dead network), which we observed with the attention models.
Tensor act(const Tensor& x) { return nn::leaky_relu(x, 0.1f); }

// Stable per-layer phase names for the scoped timers (ScopedTimer keeps
// the pointer alive past the scope).
const char* layer_scope_name(std::size_t l) {
  static const char* names[] = {"layer0", "layer1", "layer2", "layer3",
                                "layer4", "layer5", "layer6", "layer7"};
  return l < 8 ? names[l] : "layer8plus";
}

// ---------------------------------------------------------------- GCN ----
// h' = relu(b + sum_j 1/c_ij W h_j) over the self-loop-augmented graph.
class GcnModel final : public EmbeddingModel {
 public:
  GcnModel(std::size_t f, std::size_t l, util::Rng& rng)
      : EmbeddingModel(f, l), input_(f, rng) {
    register_module(&input_);
    for (std::size_t i = 0; i < l; ++i) {
      weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      biases_.push_back(register_parameter(nn::zeros(1, f)));
    }
  }

  ModelKind kind() const override { return ModelKind::kGcn; }

  TypeTensors embed(const GraphBatch& batch) const override {
    if (batch.homo == nullptr) throw std::invalid_argument("GCN needs a HomoView");
    PARAGRAPH_TIMED_SCOPE("forward_gcn");
    const HomoView& v = *batch.homo;
    Tensor h = flatten_types(input_.forward(batch), v, embed_dim_);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      Tensor m = nn::matmul(h, weights_[l]);
      Tensor msg = nn::gather_rows(m, v.sl_src);
      msg = nn::scale_rows(msg, v.gcn_coeff);
      Tensor agg = nn::scatter_add_rows(msg, v.sl_dst, v.total_nodes);
      h = act(nn::add_bias(agg, biases_[l]));
    }
    return split_types(h, v);
  }

 private:
  InputTransform input_;
  std::vector<Tensor> weights_;
  std::vector<Tensor> biases_;
};

// ---------------------------------------------------------- GraphSage ----
// h_N = mean(neighbors); h' = relu(W concat(h, h_N) + b); h' /= ||h'||.
class SageModel final : public EmbeddingModel {
 public:
  SageModel(std::size_t f, std::size_t l, util::Rng& rng)
      : EmbeddingModel(f, l), input_(f, rng) {
    register_module(&input_);
    for (std::size_t i = 0; i < l; ++i) {
      weights_.push_back(register_parameter(nn::xavier_uniform(2 * f, f, rng)));
      biases_.push_back(register_parameter(nn::zeros(1, f)));
    }
  }

  ModelKind kind() const override { return ModelKind::kGraphSage; }

  TypeTensors embed(const GraphBatch& batch) const override {
    if (batch.homo == nullptr) throw std::invalid_argument("GraphSage needs a HomoView");
    PARAGRAPH_TIMED_SCOPE("forward_graphsage");
    const HomoView& v = *batch.homo;
    Tensor h = flatten_types(input_.forward(batch), v, embed_dim_);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      Tensor msg = nn::gather_rows(h, v.src);
      Tensor agg = nn::scatter_add_rows(msg, v.dst, v.total_nodes);
      agg = nn::scale_rows(agg, v.inv_in_degree);  // mean aggregator
      Tensor cat = nn::concat_cols(h, agg);
      h = act(nn::add_bias(nn::matmul(cat, weights_[l]), biases_[l]));
      h = nn::row_l2_normalize(h);
    }
    return split_types(h, v);
  }

 private:
  InputTransform input_;
  std::vector<Tensor> weights_;
  std::vector<Tensor> biases_;
};

// --------------------------------------------------------------- RGCN ----
// h' = relu(W0 h + sum_r sum_{j in N_r} 1/|N_r| W_r h_j), per edge type.
class RgcnModel final : public EmbeddingModel {
 public:
  RgcnModel(std::size_t f, std::size_t l, util::Rng& rng)
      : EmbeddingModel(f, l), input_(f, rng) {
    register_module(&input_);
    const std::size_t num_rel = graph::edge_type_registry().size();
    for (std::size_t i = 0; i < l; ++i) {
      self_weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      biases_.push_back(register_parameter(nn::zeros(1, f)));
      rel_weights_.emplace_back();
      for (std::size_t r = 0; r < num_rel; ++r)
        rel_weights_.back().push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
    }
  }

  ModelKind kind() const override { return ModelKind::kRgcn; }

  TypeTensors embed(const GraphBatch& batch) const override {
    PARAGRAPH_TIMED_SCOPE("forward_rgcn");
    const HeteroGraph& g = *batch.graph;
    TypeTensors h = input_.forward(batch);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      // Per-destination-type accumulators.
      TypeTensors agg;
      for (const auto& te : g.edges()) {
        if (te.num_edges() == 0) continue;
        const auto& info = graph::edge_type_registry()[te.type_index];
        PARAGRAPH_TIMED_SCOPE(info.name.c_str());
        const auto st = static_cast<std::size_t>(info.src_type);
        const auto dt = static_cast<std::size_t>(info.dst_type);
        if (!h[st].defined()) continue;
        Tensor m = nn::matmul(h[st], rel_weights_[l][te.type_index]);
        Tensor msg = nn::gather_rows(m, te.src);
        Tensor a = nn::scatter_add_rows(msg, te.dst, g.num_nodes(info.dst_type));
        // Mean within the relation: scale by 1/|N_r(i)|.
        std::vector<float> inv(g.num_nodes(info.dst_type), 0.0f);
        for (std::size_t i = 0; i < inv.size(); ++i) {
          const auto deg = te.dst_segments.offsets[i + 1] - te.dst_segments.offsets[i];
          if (deg > 0) inv[i] = 1.0f / static_cast<float>(deg);
        }
        a = nn::scale_rows(a, inv);
        agg[dt] = agg[dt].defined() ? nn::add(agg[dt], a) : a;
      }
      for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
        if (!h[t].defined()) continue;
        Tensor self = nn::matmul(h[t], self_weights_[l]);
        Tensor combined = agg[t].defined() ? nn::add(agg[t], self) : self;
        h[t] = act(nn::add_bias(combined, biases_[l]));
      }
    }
    return h;
  }

 private:
  InputTransform input_;
  std::vector<Tensor> self_weights_;
  std::vector<Tensor> biases_;
  std::vector<std::vector<Tensor>> rel_weights_;  // [layer][edge type]
};

// ---------------------------------------------------------------- GAT ----
// alpha = softmax_i(LeakyReLU(a^T [Wh_i || Wh_j])); h' = relu(sum alpha Wh_j).
class GatModel final : public EmbeddingModel {
 public:
  GatModel(std::size_t f, std::size_t l, util::Rng& rng)
      : EmbeddingModel(f, l), input_(f, rng) {
    register_module(&input_);
    for (std::size_t i = 0; i < l; ++i) {
      weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      // Zero-init attention: layer starts as uniform (mean) aggregation and
      // learns to attend, which avoids early logit blow-ups.
      attn_dst_.push_back(register_parameter(nn::zeros(f, 1)));
      attn_src_.push_back(register_parameter(nn::zeros(f, 1)));
      biases_.push_back(register_parameter(nn::zeros(1, f)));
    }
  }

  ModelKind kind() const override { return ModelKind::kGat; }

  TypeTensors embed(const GraphBatch& batch) const override {
    if (batch.homo == nullptr) throw std::invalid_argument("GAT needs a HomoView");
    PARAGRAPH_TIMED_SCOPE("forward_gat");
    const HomoView& v = *batch.homo;
    Tensor h = flatten_types(input_.forward(batch), v, embed_dim_);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      // Attention over the self-loop-augmented edges, so a node can keep
      // its own features (standard practice when applying GAT).
      Tensor m = nn::matmul(h, weights_[l]);
      Tensor el = nn::matmul(m, attn_dst_[l]);  // contribution of h_i (dst)
      Tensor er = nn::matmul(m, attn_src_[l]);  // contribution of h_j (src)
      Tensor logits = nn::add(nn::gather_rows(el, v.sl_dst), nn::gather_rows(er, v.sl_src));
      Tensor alpha = nn::segment_softmax(nn::leaky_relu(logits), v.sl_dst_segments);
      Tensor msg = nn::scale_rows_by(nn::gather_rows(m, v.sl_src), alpha);
      Tensor agg = nn::scatter_add_rows(msg, v.sl_dst, v.total_nodes);
      h = act(nn::add_bias(agg, biases_[l]));
    }
    return split_types(h, v);
  }

 private:
  InputTransform input_;
  std::vector<Tensor> weights_;
  std::vector<Tensor> attn_dst_;
  std::vector<Tensor> attn_src_;
  std::vector<Tensor> biases_;
};

// ---------------------------------------------------------- ParaGraph ----
// Algorithm 1: per edge type t, GAT-style attention with weight W_t; sum
// the per-type aggregates; GraphSage-style concat update with shared W^l.
// Flags implement the ablation variants.
class ParaGraphModel final : public EmbeddingModel {
 public:
  ParaGraphModel(std::size_t f, std::size_t l, util::Rng& rng, bool use_attention,
                 bool use_edge_types, bool use_concat, ModelKind kind,
                 std::size_t num_heads = 1)
      : EmbeddingModel(f, l),
        input_(f, rng),
        use_attention_(use_attention),
        use_edge_types_(use_edge_types),
        use_concat_(use_concat),
        num_heads_(std::max<std::size_t>(num_heads, 1)),
        kind_(kind) {
    register_module(&input_);
    const std::size_t num_rel = use_edge_types_ ? graph::edge_type_registry().size() : 1;
    for (std::size_t i = 0; i < l; ++i) {
      rel_weights_.emplace_back();
      for (std::size_t r = 0; r < num_rel; ++r)
        rel_weights_.back().push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      attn_dst_.emplace_back();
      attn_src_.emplace_back();
      for (std::size_t h = 0; h < num_heads_; ++h) {
        attn_dst_.back().push_back(register_parameter(nn::zeros(f, 1)));
        attn_src_.back().push_back(register_parameter(nn::zeros(f, 1)));
      }
      update_weights_.push_back(
          register_parameter(nn::xavier_uniform(use_concat_ ? 2 * f : f, f, rng)));
      biases_.push_back(register_parameter(nn::zeros(1, f)));
    }
  }

  ModelKind kind() const override { return kind_; }

  TypeTensors embed(const GraphBatch& batch) const override {
    PARAGRAPH_TIMED_SCOPE("forward_paragraph");
    const HeteroGraph& g = *batch.graph;
    TypeTensors h = input_.forward(batch);
    for (std::size_t l = 0; l < num_layers_; ++l) {
      PARAGRAPH_TIMED_SCOPE(layer_scope_name(l));
      TypeTensors agg;
      for (const auto& te : g.edges()) {
        if (te.num_edges() == 0) continue;
        const auto& info = graph::edge_type_registry()[te.type_index];
        const auto st = static_cast<std::size_t>(info.src_type);
        const auto dt = static_cast<std::size_t>(info.dst_type);
        if (!h[st].defined() || !h[dt].defined()) continue;
        PARAGRAPH_TIMED_SCOPE(info.name.c_str());
        const Tensor& w = rel_weights_[l][use_edge_types_ ? te.type_index : 0];
        Tensor ms = nn::matmul(h[st], w);  // W_t h_j for sources
        Tensor msg = nn::gather_rows(ms, te.src);
        Tensor a;
        if (use_attention_) {
          PARAGRAPH_TIMED_SCOPE("attention");
          Tensor md = nn::matmul(h[dt], w);  // W_t h_i for destinations
          // One attention distribution per head; head outputs averaged.
          std::vector<Tensor> heads;
          for (std::size_t hd = 0; hd < num_heads_; ++hd) {
            Tensor el = nn::matmul(md, attn_dst_[l][hd]);
            Tensor er = nn::matmul(ms, attn_src_[l][hd]);
            Tensor logits =
                nn::add(nn::gather_rows(el, te.dst), nn::gather_rows(er, te.src));
            Tensor alpha = nn::segment_softmax(nn::leaky_relu(logits), te.dst_segments);
            if (batch.attention_out != nullptr && hd == 0) {
              if (batch.attention_out->layers.size() < num_layers_)
                batch.attention_out->layers.resize(num_layers_);
              batch.attention_out->layers[l][te.type_index] =
                  summarize_attention(alpha.value(), te.dst_segments);
            }
            heads.push_back(nn::scatter_add_rows(nn::scale_rows_by(msg, alpha), te.dst,
                                                 g.num_nodes(info.dst_type)));
          }
          a = heads.size() == 1
                  ? heads[0]
                  : nn::scale(nn::sum_tensors(heads), 1.0f / static_cast<float>(heads.size()));
        } else {
          // Ablation: mean aggregation within the edge-type group.
          a = nn::scatter_add_rows(msg, te.dst, g.num_nodes(info.dst_type));
          std::vector<float> inv(g.num_nodes(info.dst_type), 0.0f);
          for (std::size_t i = 0; i < inv.size(); ++i) {
            const auto deg = te.dst_segments.offsets[i + 1] - te.dst_segments.offsets[i];
            if (deg > 0) inv[i] = 1.0f / static_cast<float>(deg);
          }
          a = nn::scale_rows(a, inv);
        }
        agg[dt] = agg[dt].defined() ? nn::add(agg[dt], a) : a;
      }
      PARAGRAPH_TIMED_SCOPE("update");
      for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
        if (!h[t].defined()) continue;
        Tensor neigh = agg[t].defined()
                           ? agg[t]
                           : Tensor(Matrix(h[t].rows(), embed_dim_, 0.0f));
        Tensor pre = use_concat_ ? nn::concat_cols(h[t], neigh) : neigh;
        h[t] = act(nn::add_bias(nn::matmul(pre, update_weights_[l]), biases_[l]));
      }
    }
    return h;
  }

 private:
  InputTransform input_;
  bool use_attention_;
  bool use_edge_types_;
  bool use_concat_;
  std::size_t num_heads_;
  ModelKind kind_;
  std::vector<std::vector<Tensor>> rel_weights_;
  std::vector<std::vector<Tensor>> attn_dst_;  // [layer][head]
  std::vector<std::vector<Tensor>> attn_src_;
  std::vector<Tensor> update_weights_;
  std::vector<Tensor> biases_;
};

}  // namespace

std::unique_ptr<EmbeddingModel> make_model(ModelKind kind, std::size_t embed_dim,
                                           std::size_t num_layers, util::Rng& rng,
                                           std::size_t num_heads) {
  switch (kind) {
    case ModelKind::kGcn: return std::make_unique<GcnModel>(embed_dim, num_layers, rng);
    case ModelKind::kGraphSage: return std::make_unique<SageModel>(embed_dim, num_layers, rng);
    case ModelKind::kRgcn: return std::make_unique<RgcnModel>(embed_dim, num_layers, rng);
    case ModelKind::kGat: return std::make_unique<GatModel>(embed_dim, num_layers, rng);
    case ModelKind::kParaGraph:
      return std::make_unique<ParaGraphModel>(embed_dim, num_layers, rng, true, true, true,
                                              kind, num_heads);
    case ModelKind::kParaGraphNoAttention:
      return std::make_unique<ParaGraphModel>(embed_dim, num_layers, rng, false, true, true,
                                              kind, num_heads);
    case ModelKind::kParaGraphNoEdgeTypes:
      return std::make_unique<ParaGraphModel>(embed_dim, num_layers, rng, true, false, true,
                                              kind, num_heads);
    case ModelKind::kParaGraphNoConcat:
      return std::make_unique<ParaGraphModel>(embed_dim, num_layers, rng, true, true, false,
                                              kind, num_heads);
  }
  throw std::invalid_argument("make_model: unknown kind");
}

}  // namespace paragraph::gnn
