#include "gnn/common.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace paragraph::gnn {

using graph::HeteroGraph;
using graph::NodeType;
using nn::Tensor;

HomoView build_homo_view(const HeteroGraph& g) {
  HomoView v;
  std::size_t off = 0;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    v.type_offset[t] = off;
    v.type_count[t] = g.num_nodes(static_cast<NodeType>(t));
    off += v.type_count[t];
  }
  v.total_nodes = off;

  // Merge all typed edges into global indices.
  std::vector<std::int32_t> src;
  std::vector<std::int32_t> dst;
  for (const auto& te : g.edges()) {
    const auto& info = graph::edge_type_registry()[te.type_index];
    const auto so = static_cast<std::int32_t>(v.type_offset[static_cast<std::size_t>(info.src_type)]);
    const auto dofs = static_cast<std::int32_t>(v.type_offset[static_cast<std::size_t>(info.dst_type)]);
    for (std::size_t e = 0; e < te.num_edges(); ++e) {
      src.push_back(te.src[e] + so);
      dst.push_back(te.dst[e] + dofs);
    }
  }

  // Sort by destination.
  std::vector<std::size_t> order(src.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return dst[a] < dst[b]; });
  v.src.reserve(src.size());
  v.dst.reserve(dst.size());
  for (const std::size_t k : order) {
    v.src.push_back(src[k]);
    v.dst.push_back(dst[k]);
  }
  v.dst_segments.offsets.assign(v.total_nodes + 1, 0);
  for (const auto d : v.dst) ++v.dst_segments.offsets[static_cast<std::size_t>(d) + 1];
  for (std::size_t i = 1; i < v.dst_segments.offsets.size(); ++i)
    v.dst_segments.offsets[i] += v.dst_segments.offsets[i - 1];

  v.inv_in_degree.assign(v.total_nodes, 0.0f);
  for (std::size_t i = 0; i < v.total_nodes; ++i) {
    const auto deg = v.dst_segments.offsets[i + 1] - v.dst_segments.offsets[i];
    if (deg > 0) v.inv_in_degree[i] = 1.0f / static_cast<float>(deg);
  }

  // Self-loop-augmented list with symmetric GCN normalisation. The graph is
  // symmetric by construction (paired directed edges), so in-degree equals
  // out-degree. Kept destination-sorted with a segment index so GAT can run
  // its attention softmax over it.
  std::vector<float> deg(v.total_nodes, 1.0f);  // +1 self loop
  for (const auto d : v.dst) deg[static_cast<std::size_t>(d)] += 1.0f;
  std::vector<std::int32_t> sl_src = v.src;
  std::vector<std::int32_t> sl_dst = v.dst;
  for (std::size_t i = 0; i < v.total_nodes; ++i) {
    sl_src.push_back(static_cast<std::int32_t>(i));
    sl_dst.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::size_t> sl_order(sl_src.size());
  std::iota(sl_order.begin(), sl_order.end(), 0);
  std::stable_sort(sl_order.begin(), sl_order.end(),
                   [&](std::size_t a, std::size_t b) { return sl_dst[a] < sl_dst[b]; });
  v.sl_src.reserve(sl_src.size());
  v.sl_dst.reserve(sl_dst.size());
  v.gcn_coeff.reserve(sl_src.size());
  for (const std::size_t k : sl_order) {
    v.sl_src.push_back(sl_src[k]);
    v.sl_dst.push_back(sl_dst[k]);
    v.gcn_coeff.push_back(1.0f / std::sqrt(deg[static_cast<std::size_t>(sl_src[k])] *
                                           deg[static_cast<std::size_t>(sl_dst[k])]));
  }
  v.sl_dst_segments.offsets.assign(v.total_nodes + 1, 0);
  for (const auto d : v.sl_dst) ++v.sl_dst_segments.offsets[static_cast<std::size_t>(d) + 1];
  for (std::size_t i = 1; i < v.sl_dst_segments.offsets.size(); ++i)
    v.sl_dst_segments.offsets[i] += v.sl_dst_segments.offsets[i - 1];
  return v;
}

InputTransform::InputTransform(std::size_t embed_dim, util::Rng& rng) {
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    per_type_.push_back(std::make_unique<nn::Linear>(
        graph::feature_dim(static_cast<NodeType>(t)), embed_dim, rng));
    register_module(per_type_.back().get());
  }
}

TypeTensors InputTransform::forward(const GraphBatch& batch) const {
  TypeTensors out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    const Tensor& f = batch.features[t];
    if (!f.defined() || f.rows() == 0) continue;
    out[t] = per_type_[t]->forward(f);
  }
  return out;
}

Tensor flatten_types(const TypeTensors& typed, const HomoView& homo, std::size_t embed_dim) {
  std::vector<Tensor> blocks;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (typed[t].defined()) {
      if (typed[t].rows() != homo.type_count[t])
        throw std::logic_error("flatten_types: row count mismatch for node type");
      blocks.push_back(typed[t]);
    } else if (homo.type_count[t] != 0) {
      // Types with nodes but no features should not happen; guard anyway.
      blocks.push_back(Tensor(nn::Matrix(homo.type_count[t], embed_dim, 0.0f)));
    }
  }
  return nn::concat_rows(blocks);
}

TypeTensors split_types(const Tensor& global, const HomoView& homo) {
  TypeTensors out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (homo.type_count[t] == 0) continue;
    std::vector<std::int32_t> idx(homo.type_count[t]);
    std::iota(idx.begin(), idx.end(), static_cast<std::int32_t>(homo.type_offset[t]));
    out[t] = nn::gather_rows(global, idx);
  }
  return out;
}

AttentionRecord::Entry summarize_attention(const nn::Matrix& alpha,
                                            const nn::SegmentIndex& segments) {
  AttentionRecord::Entry e;
  double entropy_sum = 0.0;
  double max_sum = 0.0;
  for (std::size_t s = 0; s < segments.num_segments(); ++s) {
    const auto begin = static_cast<std::size_t>(segments.offsets[s]);
    const auto end = static_cast<std::size_t>(segments.offsets[s + 1]);
    if (end - begin < 2) continue;  // trivial softmax over one edge
    double h = 0.0;
    double mx = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double a = std::max(static_cast<double>(alpha(i, 0)), 1e-12);
      h -= a * std::log(a);
      mx = std::max(mx, a);
    }
    entropy_sum += h;
    max_sum += mx;
    ++e.segments;
    e.edges += end - begin;
  }
  if (e.segments > 0) {
    e.mean_entropy = entropy_sum / static_cast<double>(e.segments);
    e.mean_max = max_sum / static_cast<double>(e.segments);
  }
  return e;
}

std::vector<std::uint64_t> incident_edge_type_masks(const graph::HeteroGraph& g,
                                                    graph::NodeType type) {
  std::vector<std::uint64_t> masks(g.num_nodes(type), 0);
  for (const graph::TypedEdges& te : g.edges()) {
    if (te.type_index >= 64) continue;  // registry is far smaller; belt and braces
    const graph::EdgeTypeInfo& info = graph::edge_type_registry()[te.type_index];
    const std::uint64_t bit = std::uint64_t{1} << te.type_index;
    if (info.src_type == type)
      for (const std::int32_t s : te.src) masks[static_cast<std::size_t>(s)] |= bit;
    if (info.dst_type == type)
      for (const std::int32_t d : te.dst) masks[static_cast<std::size_t>(d)] |= bit;
  }
  return masks;
}

}  // namespace paragraph::gnn
