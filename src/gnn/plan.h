// Graph compute plans: everything the message-passing engine needs to run
// a forward pass over one graph, computed once and reused across every
// layer of every epoch.
//
// A GraphPlan is immutable after build(). It holds, per edge type, the
// shared index buffers (nn::IndexHandle) the kernels capture by reference
// count, the CSR destination segments, the precomputed inverse in-degree
// vector (previously recomputed inside the layer loop of RGCN/ParaGraph on
// every forward), and the compact (distinct-rows) indices that let
// gather_matmul transform only the rows an edge type touches. When built
// with a HomoView it additionally carries the flattened-graph buffers the
// homogeneous baselines (GCN / GraphSage / GAT) run on.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "gnn/common.h"
#include "graph/hetero_graph.h"
#include "nn/graph_ops.h"

namespace paragraph::gnn {

// One relation's share of the plan. Mirrors graph::TypedEdges but with
// shared buffers and the derived per-destination statistics.
struct EdgeTypePlan {
  std::size_t type_index = 0;  // into graph::edge_type_registry()
  std::size_t src_type = 0;    // NodeType as index
  std::size_t dst_type = 0;
  std::size_t num_src_nodes = 0;
  std::size_t num_dst_nodes = 0;

  nn::IndexHandle src;             // per-edge source rows (local to src_type)
  nn::IndexHandle dst;             // per-edge destination rows, ascending
  nn::SegmentHandle dst_segments;  // one segment per destination node
  nn::CoeffHandle inv_dst_degree;  // 1/|N_r(i)|, 0 for untouched nodes

  // Distinct rows each side touches; gather_matmul transforms only these.
  nn::CompactIndex src_compact;
  nn::CompactIndex dst_compact;

  std::size_t num_edges() const { return src ? src->size() : 0; }
};

// Flattened-graph (type-blind) share of the plan, for the homogeneous
// baselines. Buffer contents match gnn::HomoView exactly.
struct HomoPlan {
  std::size_t total_nodes = 0;
  std::array<std::size_t, graph::kNumNodeTypes> type_offset{};
  std::array<std::size_t, graph::kNumNodeTypes> type_count{};

  nn::IndexHandle src, dst;
  nn::SegmentHandle dst_segments;
  nn::CoeffHandle inv_in_degree;

  // Self-loop-augmented edge list with GCN symmetric-normalisation
  // coefficients (used by GCN and GAT).
  nn::IndexHandle sl_src, sl_dst;
  nn::SegmentHandle sl_dst_segments;
  nn::CoeffHandle gcn_coeff;

  // Per-type global row ranges, for slicing the flattened embedding matrix
  // back into typed blocks without rebuilding an index vector per call.
  std::array<nn::IndexHandle, graph::kNumNodeTypes> type_rows{};
};

class GraphPlan {
 public:
  GraphPlan() = default;

  // Builds the typed-edge plan; when `with_homo` is set the HomoView is
  // built internally and folded in.
  static GraphPlan build(const graph::HeteroGraph& g, bool with_homo = false);
  // As above but wrapping an existing HomoView (copied into shared
  // buffers once).
  static GraphPlan build(const graph::HeteroGraph& g, const HomoView* homo);

  const std::vector<EdgeTypePlan>& edge_types() const { return edge_types_; }
  std::size_t num_nodes(std::size_t node_type) const { return num_nodes_[node_type]; }

  bool has_homo() const { return homo_ != nullptr; }
  const HomoPlan& homo() const { return *homo_; }

 private:
  std::vector<EdgeTypePlan> edge_types_;
  std::array<std::size_t, graph::kNumNodeTypes> num_nodes_{};
  std::shared_ptr<const HomoPlan> homo_;
};

// Plan-based variants of gnn::flatten_types / split_types: identical
// semantics, but row slicing reuses the plan's shared index buffers.
nn::Tensor flatten_types(const TypeTensors& typed, const HomoPlan& homo, std::size_t embed_dim);
TypeTensors split_types(const nn::Tensor& global, const HomoPlan& homo);

}  // namespace paragraph::gnn
