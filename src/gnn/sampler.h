// Neighbourhood sampling for minibatch GNN training (the scalability idea
// at the heart of GraphSage, Hamilton et al. 2017).
//
// The paper trains full-graph on a 16 GB V100; circuits like t4 (500k+
// devices) are near that limit, and CPU reproduction needs something
// smaller still. sample_subgraph() extracts the L-hop neighbourhood of a
// set of seed nodes with a per-relation fanout cap, producing a standalone
// HeteroGraph plus the seed positions inside it, so any EmbeddingModel can
// train on minibatches without seeing the full circuit.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "util/rng.h"

namespace paragraph::gnn {

struct SamplerConfig {
  int num_hops = 5;          // matches the embedding depth L
  int fanout_per_relation = 8;  // incoming edges kept per node per relation
};

struct SampledSubgraph {
  graph::HeteroGraph graph;
  // Positions of the requested seeds inside `graph` (same node type as the
  // seeds, local indices).
  std::vector<std::int32_t> seed_local;
  // For every node type: subgraph-local index -> original local index.
  std::array<std::vector<std::int32_t>, graph::kNumNodeTypes> original_index;
};

// Samples the `config.num_hops`-hop in-neighbourhood of `seeds` (local
// indices of `seed_type` nodes). Edges are sampled without replacement up
// to `fanout_per_relation` per destination per relation. Deterministic in
// `rng`'s state.
SampledSubgraph sample_subgraph(const graph::HeteroGraph& g, graph::NodeType seed_type,
                                const std::vector<std::int32_t>& seeds,
                                const SamplerConfig& config, util::Rng& rng);

}  // namespace paragraph::gnn
