#include "gnn/plan.h"

#include <numeric>
#include <stdexcept>

#include "nn/ops.h"
#include "obs/metrics.h"

namespace paragraph::gnn {

namespace {

// Inverse in-degree from a destination-sorted CSR segment index. This is
// the buffer RGCN/ParaGraph used to rebuild inside the layer loop on every
// forward; the plan computes it exactly once per graph. The obs counter
// lets tests assert no per-forward rebuilds happen.
std::vector<float> inverse_degree_from_segments(const nn::SegmentIndex& seg) {
  if (obs::enabled())
    obs::MetricsRegistry::instance().counter("gnn.plan.degree_buffers").add();
  std::vector<float> inv(seg.num_segments(), 0.0f);
  for (std::size_t i = 0; i < inv.size(); ++i) {
    const auto deg = seg.offsets[i + 1] - seg.offsets[i];
    if (deg > 0) inv[i] = 1.0f / static_cast<float>(deg);
  }
  return inv;
}

}  // namespace

GraphPlan GraphPlan::build(const graph::HeteroGraph& g, bool with_homo) {
  if (!with_homo) return build(g, nullptr);
  const HomoView homo = build_homo_view(g);
  return build(g, &homo);
}

GraphPlan GraphPlan::build(const graph::HeteroGraph& g, const HomoView* homo) {
  if (obs::enabled()) obs::MetricsRegistry::instance().counter("gnn.plan.builds").add();
  GraphPlan p;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t)
    p.num_nodes_[t] = g.num_nodes(static_cast<graph::NodeType>(t));

  for (const auto& te : g.edges()) {
    if (te.num_edges() == 0) continue;
    const auto& info = graph::edge_type_registry()[te.type_index];
    EdgeTypePlan ep;
    ep.type_index = te.type_index;
    ep.src_type = static_cast<std::size_t>(info.src_type);
    ep.dst_type = static_cast<std::size_t>(info.dst_type);
    ep.num_src_nodes = g.num_nodes(info.src_type);
    ep.num_dst_nodes = g.num_nodes(info.dst_type);
    ep.src = nn::make_index(te.src);
    ep.dst = nn::make_index(te.dst);
    ep.dst_segments = nn::make_segments(te.dst_segments);
    ep.inv_dst_degree = nn::make_coeffs(inverse_degree_from_segments(te.dst_segments));
    ep.src_compact = nn::build_compact_index(te.src, ep.num_src_nodes);
    ep.dst_compact = nn::build_compact_index(te.dst, ep.num_dst_nodes);
    p.edge_types_.push_back(std::move(ep));
  }

  if (homo != nullptr) {
    auto hp = std::make_shared<HomoPlan>();
    hp->total_nodes = homo->total_nodes;
    hp->type_offset = homo->type_offset;
    hp->type_count = homo->type_count;
    hp->src = nn::make_index(homo->src);
    hp->dst = nn::make_index(homo->dst);
    hp->dst_segments = nn::make_segments(homo->dst_segments);
    hp->inv_in_degree = nn::make_coeffs(homo->inv_in_degree);
    hp->sl_src = nn::make_index(homo->sl_src);
    hp->sl_dst = nn::make_index(homo->sl_dst);
    hp->sl_dst_segments = nn::make_segments(homo->sl_dst_segments);
    hp->gcn_coeff = nn::make_coeffs(homo->gcn_coeff);
    for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
      if (hp->type_count[t] == 0) continue;
      std::vector<std::int32_t> idx(hp->type_count[t]);
      std::iota(idx.begin(), idx.end(), static_cast<std::int32_t>(hp->type_offset[t]));
      hp->type_rows[t] = nn::make_index(std::move(idx));
    }
    p.homo_ = std::move(hp);
  }
  return p;
}

nn::Tensor flatten_types(const TypeTensors& typed, const HomoPlan& homo,
                         std::size_t embed_dim) {
  std::vector<nn::Tensor> blocks;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (typed[t].defined()) {
      if (typed[t].rows() != homo.type_count[t])
        throw std::logic_error("flatten_types: row count mismatch for node type");
      blocks.push_back(typed[t]);
    } else if (homo.type_count[t] != 0) {
      // Types with nodes but no features should not happen; guard anyway.
      blocks.push_back(nn::Tensor(nn::Matrix(homo.type_count[t], embed_dim, 0.0f)));
    }
  }
  return nn::concat_rows(blocks);
}

TypeTensors split_types(const nn::Tensor& global, const HomoPlan& homo) {
  TypeTensors out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (homo.type_count[t] == 0) continue;
    out[t] = nn::gather_rows(global, homo.type_rows[t]);
  }
  return out;
}

}  // namespace paragraph::gnn
