// The unified message-passing layer: one layer class, parameterised by an
// aggregator policy (how neighbour messages are combined) and an update
// policy (how the aggregate is merged into the node state). Every model in
// models.cpp — GCN, GraphSage, RGCN, GAT and the ParaGraph family — is a
// thin configuration of this layer plus a compute-space choice.
//
// Parameter registration order is policy-driven and byte-compatible with
// the legacy per-model classes (core/serialize streams parameters
// positionally, so v1/v2 model files must keep loading unchanged):
//   GCN        W(f,f), b
//   GraphSage  W(2f,f), b
//   RGCN       self_W(f,f), b, rel_W[r](f,f) for every registry relation
//   GAT        W(f,f), attn_dst(f,1), attn_src(f,1), b
//   ParaGraph  rel_W[r](f,f), (attn_dst, attn_src) per head,
//              update_W(2f or f, f), b
// The ParaGraph no-attention ablation still registers its (zero) attention
// vectors so the serialized layout is identical across ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "gnn/plan.h"
#include "nn/module.h"

namespace paragraph::gnn {

struct LayerPolicy {
  enum class Aggregator {
    kGcnSum,          // homo: transform, 1/sqrt(di dj) coeffs, sum over self-loop edges
    kMeanConcat,      // homo: plain-edge mean of raw neighbour states (GraphSage)
    kAttention,       // homo: GAT attention over self-loop edges
    kTypedMean,       // typed: per-relation transform + mean, summed over relations
    kTypedAttention,  // typed: per-relation transform + attention, summed over relations
  };
  enum class Update {
    kBias,        // act(agg + b)                    (GCN, GAT)
    kSageConcat,  // l2norm(act(W [h || agg] + b))   (GraphSage)
    kSelfLoop,    // act(agg + W0 h + b)             (RGCN)
    kConcat,      // act(W [h || agg] + b)           (ParaGraph)
    kDense,       // act(W agg + b)                  (ParaGraph-noconcat)
  };

  Aggregator aggregator = Aggregator::kTypedAttention;
  Update update = Update::kConcat;
  bool per_type_weights = true;  // typed: one message transform per relation
  std::size_t num_heads = 1;     // typed attention heads (outputs averaged)
  // ParaGraph registers attention parameters even in the no-attention
  // ablation (stable serialized layout); RGCN registers none.
  bool attention_params = false;
  // ParaGraph skips a relation when the destination type has no features;
  // RGCN only requires the source side.
  bool require_dst_features = false;

  bool typed() const {
    return aggregator == Aggregator::kTypedMean || aggregator == Aggregator::kTypedAttention;
  }
};

// Destination for per-relation attention statistics (set only on typed
// attention layers when the caller wants the interpretability probe).
struct AttentionProbe {
  AttentionRecord* record = nullptr;
  std::size_t layer = 0;
  std::size_t num_layers = 0;
};

class MessagePassingLayer : public nn::Module {
 public:
  MessagePassingLayer(std::size_t embed_dim, const LayerPolicy& policy, util::Rng& rng);

  // Homogeneous-space forward over the flattened graph.
  nn::Tensor forward(const nn::Tensor& h, const HomoPlan& plan) const;

  // Typed-space forward (RGCN / ParaGraph family).
  TypeTensors forward(const TypeTensors& h, const GraphPlan& plan,
                      const AttentionProbe& probe = {}) const;

 private:
  nn::Tensor typed_attention(const nn::Tensor& h_src, const nn::Tensor& h_dst,
                             const EdgeTypePlan& ep, const AttentionProbe& probe) const;

  std::size_t embed_dim_;
  LayerPolicy policy_;
  // Which slots are populated depends on the policy (see the constructor).
  std::vector<nn::Tensor> rel_weights_;          // message transform(s)
  std::vector<nn::Tensor> attn_dst_, attn_src_;  // one pair per head
  nn::Tensor self_weight_;                       // RGCN W0
  nn::Tensor update_weight_;                     // Sage / ParaGraph update W
  nn::Tensor bias_;
};

}  // namespace paragraph::gnn
