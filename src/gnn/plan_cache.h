// Structural plan/embedding memoization for hierarchical circuits.
//
// A netlist that instantiates the same subckt template many times (SRAM
// columns, DAC slices, ...) repeats the same interior graph structure once
// per instance. PlanCache keys that structure by the parser's structural
// hash (circuit/hierarchy.h) and memoizes, per template:
//
//   * a representative induced subgraph (the instance subtree plus its
//     boundary net nodes) and its GraphPlan, and
//   * per model version, the representative's embedding matrix.
//
// The hierarchical embed then runs the model only on a *reduced* graph —
// the full graph minus every cached instance's deep interior — and stitches
// interior rows in from the cache.
//
// Exactness. After L message-passing layers a node's embedding depends
// only on its distance-<=L neighbourhood. Let depth(v) be v's graph
// distance to the instance boundary (boundary net nodes at depth 0,
// boundary-touching devices at depth 1). Interior nodes (depth >= L+1)
// cannot see anything outside the instance, so their rows computed on the
// representative subgraph are *bitwise* identical to the full-graph rows:
// every kernel in the forward pass is per-row (gemm, head MLP) or
// per-destination-segment (softmax, degree-normalised scatter), and
// graph::induced_subgraph preserves node order and per-segment edge order.
// Conversely every node of depth <= L has its complete distance-<=L
// neighbourhood inside the reduced graph, which keeps all nodes of depth
// <= 2L+1 (the +1 ring keeps degree-derived coefficients of ring <= 2L
// exact for the GCN-style models), so its reduced-graph row is bitwise
// identical too. Assembling interior rows from the cache and the rest from
// the reduced graph therefore reproduces the plain full-graph forward bit
// for bit.
//
// Instances whose hash repeats (in the netlist or across the cache) are
// selected greedily and maximally: a profitable instance is cached whole
// and its descendants skipped; an unprofitable one is descended into so
// repeated children (e.g. identical columns under a unique top bank) still
// hit.
//
// Not thread-safe: one PlanCache per inference thread, or external locking.
// Metrics: plancache.hits (instances assembled from a memoized embedding),
// plancache.misses (structural entries or embeddings computed), and gauge
// plancache.bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "circuit/netlist.h"
#include "gnn/common.h"
#include "gnn/plan.h"
#include "graph/subgraph.h"

namespace paragraph::gnn {

struct PlanCacheConfig {
  // Instances with fewer subtree devices are never cached (overhead would
  // beat the reuse win).
  std::size_t min_subtree_devices = 16;
  // Embedding variants retained per template (distinct model versions, e.g.
  // the members of an ensemble); least recently used is evicted.
  std::size_t max_embed_variants = 4;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config = {}) : config_(config) {}

  using EmbedFn =
      std::function<TypeTensors(const graph::HeteroGraph&, const GraphPlan&)>;

  // Per-node-type embedding values for every node of `g`, bit-identical to
  // running `embed` on the full graph. `nl` must be the netlist `g` was
  // built from; `num_layers` the model's message-passing depth; `model_key`
  // a value that changes whenever the model weights (or the feature
  // normalisation `embed` applies) change. Returns false — leaving `out`
  // untouched — when no instance qualifies for caching, in which case the
  // caller should run its plain path.
  bool embed_hierarchical(const circuit::Netlist& nl, const graph::HeteroGraph& g,
                          std::size_t num_layers, bool with_homo, std::uint64_t model_key,
                          const EmbedFn& embed,
                          std::array<nn::Matrix, graph::kNumNodeTypes>* out);

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  void clear();

 private:
  struct Embed {
    std::uint64_t key = 0;
    std::uint64_t tick = 0;  // LRU stamp
    std::array<nn::Matrix, graph::kNumNodeTypes> z;
    std::size_t bytes = 0;
  };

  struct Entry {
    std::uint64_t hash = 0;
    bool with_homo = false;
    graph::Subgraph rep;  // subtree + boundary net nodes of the template
    GraphPlan plan;
    // Leading net-type locals of `rep` that are boundary nets (they precede
    // the created-net block because boundary nets are materialised before
    // the subtree range opens).
    std::size_t boundary_net_nodes = 0;
    // Distance to the boundary per rep-subgraph node; kUnreachable when
    // disconnected from it (always interior).
    std::array<std::vector<std::int32_t>, graph::kNumNodeTypes> depth;
    std::vector<Embed> embeds;
    std::size_t struct_bytes = 0;
  };

  static constexpr std::int32_t kUnreachable = INT32_MAX;

  Entry* find_or_build(const circuit::Netlist& nl, const graph::HeteroGraph& g,
                       const circuit::SubcktInstance& inst, bool with_homo);
  const Embed& embed_for(Entry& entry, std::uint64_t model_key, const EmbedFn& embed);
  void refresh_bytes_gauge();

  PlanCacheConfig config_;
  std::map<std::uint64_t, std::unique_ptr<Entry>> entries_;
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace paragraph::gnn
