// GNN model zoo: the four literature baselines of Table III (GCN,
// GraphSage, RGCN, GAT) and the paper's ParaGraph model (Algorithm 1),
// plus ParaGraph ablation variants used by the component-ablation bench.
//
// Every model maps a GraphBatch (typed features + edges) to per-node-type
// embeddings of dimension F after L message-passing layers. The node-type
// input transform (Algorithm 1 lines 1-2) is applied in all models, as the
// paper did for the naive baselines.
#pragma once

#include <memory>
#include <string>

#include "gnn/common.h"

namespace paragraph::gnn {

enum class ModelKind {
  kGcn,
  kGraphSage,
  kRgcn,
  kGat,
  kParaGraph,
  // Ablations of ParaGraph's three ingredients:
  kParaGraphNoAttention,  // mean aggregation inside each edge-type group
  kParaGraphNoEdgeTypes,  // one weight/attention over all edges (GAT+concat)
  kParaGraphNoConcat,     // no self-concatenation in the update
};

const char* model_kind_name(ModelKind k);

class EmbeddingModel : public nn::Module {
 public:
  EmbeddingModel(std::size_t embed_dim, std::size_t num_layers)
      : embed_dim_(embed_dim), num_layers_(num_layers) {}

  virtual TypeTensors embed(const GraphBatch& batch) const = 0;
  virtual ModelKind kind() const = 0;

  std::size_t embed_dim() const { return embed_dim_; }
  std::size_t num_layers() const { return num_layers_; }

 protected:
  std::size_t embed_dim_;
  std::size_t num_layers_;
};

// Factory. F and L default to the paper's values (F=32, L=5).
// `num_heads` applies to the ParaGraph variants only (the paper used one
// attention head, limited by GPU memory, and conjectured more would help;
// heads > 1 averages several attention distributions per edge-type group).
std::unique_ptr<EmbeddingModel> make_model(ModelKind kind, std::size_t embed_dim,
                                           std::size_t num_layers, util::Rng& rng,
                                           std::size_t num_heads = 1);

}  // namespace paragraph::gnn
