#include "gnn/mp_layer.h"

#include <stdexcept>

#include "nn/init.h"
#include "nn/ops.h"
#include "obs/profile.h"

namespace paragraph::gnn {

using nn::Matrix;
using nn::Tensor;

namespace {

// Model activation. LeakyReLU instead of plain ReLU keeps full-graph
// training alive: with ReLU a single bad step can zero every activation
// (dead network), which we observed with the attention models.
Tensor act(const Tensor& x) { return nn::leaky_relu(x, 0.1f); }

}  // namespace

MessagePassingLayer::MessagePassingLayer(std::size_t embed_dim, const LayerPolicy& policy,
                                         util::Rng& rng)
    : embed_dim_(embed_dim), policy_(policy) {
  const std::size_t f = embed_dim;
  // Registration order is the serialized layout; see the header comment.
  switch (policy_.aggregator) {
    case LayerPolicy::Aggregator::kGcnSum:
      rel_weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      bias_ = register_parameter(nn::zeros(1, f));
      break;
    case LayerPolicy::Aggregator::kMeanConcat:
      update_weight_ = register_parameter(nn::xavier_uniform(2 * f, f, rng));
      bias_ = register_parameter(nn::zeros(1, f));
      break;
    case LayerPolicy::Aggregator::kAttention:
      rel_weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      // Zero-init attention: layer starts as uniform (mean) aggregation and
      // learns to attend, which avoids early logit blow-ups.
      attn_dst_.push_back(register_parameter(nn::zeros(f, 1)));
      attn_src_.push_back(register_parameter(nn::zeros(f, 1)));
      bias_ = register_parameter(nn::zeros(1, f));
      break;
    case LayerPolicy::Aggregator::kTypedMean:
    case LayerPolicy::Aggregator::kTypedAttention: {
      const std::size_t num_rel =
          policy_.per_type_weights ? graph::edge_type_registry().size() : 1;
      if (policy_.update == LayerPolicy::Update::kSelfLoop) {
        // RGCN layout: self transform and bias precede the relation bank.
        self_weight_ = register_parameter(nn::xavier_uniform(f, f, rng));
        bias_ = register_parameter(nn::zeros(1, f));
        for (std::size_t r = 0; r < num_rel; ++r)
          rel_weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
      } else {
        // ParaGraph layout: relation bank, attention heads, update, bias.
        for (std::size_t r = 0; r < num_rel; ++r)
          rel_weights_.push_back(register_parameter(nn::xavier_uniform(f, f, rng)));
        if (policy_.attention_params) {
          for (std::size_t hd = 0; hd < policy_.num_heads; ++hd) {
            attn_dst_.push_back(register_parameter(nn::zeros(f, 1)));
            attn_src_.push_back(register_parameter(nn::zeros(f, 1)));
          }
        }
        const bool concat = policy_.update == LayerPolicy::Update::kConcat;
        update_weight_ = register_parameter(nn::xavier_uniform(concat ? 2 * f : f, f, rng));
        bias_ = register_parameter(nn::zeros(1, f));
      }
      break;
    }
  }
}

Tensor MessagePassingLayer::forward(const Tensor& h, const HomoPlan& plan) const {
  switch (policy_.aggregator) {
    case LayerPolicy::Aggregator::kGcnSum: {
      Tensor m = nn::matmul(h, rel_weights_[0]);
      Tensor msg = nn::gather_rows(m, plan.sl_src);
      msg = nn::scale_rows(msg, plan.gcn_coeff);
      Tensor agg = nn::scatter_add_rows(msg, plan.sl_dst, plan.total_nodes);
      return act(nn::add_bias(agg, bias_));
    }
    case LayerPolicy::Aggregator::kMeanConcat: {
      Tensor msg = nn::gather_rows(h, plan.src);
      Tensor agg = nn::scatter_mean_rows(msg, plan.dst, plan.inv_in_degree, plan.total_nodes);
      Tensor cat = nn::concat_cols(h, agg);
      Tensor out = act(nn::add_bias(nn::matmul(cat, update_weight_), bias_));
      return nn::row_l2_normalize(out);
    }
    case LayerPolicy::Aggregator::kAttention: {
      // Attention over the self-loop-augmented edges, so a node can keep
      // its own features (standard practice when applying GAT). Node-level
      // logits are gathered per edge inside the fused kernel.
      Tensor m = nn::matmul(h, rel_weights_[0]);
      Tensor el = nn::matmul(m, attn_dst_[0]);  // contribution of h_i (dst)
      Tensor er = nn::matmul(m, attn_src_[0]);  // contribution of h_j (src)
      Tensor msg = nn::gather_rows(m, plan.sl_src);
      Tensor agg = nn::edge_attention(el, er, msg, plan.sl_dst, plan.sl_src, plan.sl_dst,
                                      plan.sl_dst_segments, plan.total_nodes);
      return act(nn::add_bias(agg, bias_));
    }
    default:
      throw std::logic_error("MessagePassingLayer: typed policy on homogeneous forward");
  }
}

Tensor MessagePassingLayer::typed_attention(const Tensor& h_src, const Tensor& h_dst,
                                            const EdgeTypePlan& ep,
                                            const AttentionProbe& probe) const {
  PARAGRAPH_TIMED_SCOPE("attention");
  const Tensor& w = rel_weights_[policy_.per_type_weights ? ep.type_index : 0];
  Tensor msg = nn::gather_matmul(h_src, ep.src_compact, w);  // W_t h_j per edge
  Tensor md = nn::gather_matmul(h_dst, ep.dst_compact, w);   // W_t h_i per edge
  // One attention distribution per head; head outputs averaged.
  std::vector<Tensor> heads;
  for (std::size_t hd = 0; hd < policy_.num_heads; ++hd) {
    Tensor el = nn::matmul(md, attn_dst_[hd]);
    Tensor er = nn::matmul(msg, attn_src_[hd]);
    const bool record = probe.record != nullptr && hd == 0;
    Matrix alpha;
    heads.push_back(nn::edge_attention(el, er, msg, nullptr, nullptr, ep.dst,
                                       ep.dst_segments, ep.num_dst_nodes, 0.2f,
                                       record ? &alpha : nullptr));
    if (record) {
      if (probe.record->layers.size() < probe.num_layers)
        probe.record->layers.resize(probe.num_layers);
      probe.record->layers[probe.layer][ep.type_index] =
          summarize_attention(alpha, *ep.dst_segments);
    }
  }
  return heads.size() == 1
             ? heads[0]
             : nn::scale(nn::sum_tensors(heads), 1.0f / static_cast<float>(heads.size()));
}

TypeTensors MessagePassingLayer::forward(const TypeTensors& h, const GraphPlan& plan,
                                         const AttentionProbe& probe) const {
  const bool attention = policy_.aggregator == LayerPolicy::Aggregator::kTypedAttention;
  // Per-destination-type accumulators.
  TypeTensors agg;
  for (const auto& ep : plan.edge_types()) {
    if (!h[ep.src_type].defined()) continue;
    if (policy_.require_dst_features && !h[ep.dst_type].defined()) continue;
    PARAGRAPH_TIMED_SCOPE(graph::edge_type_registry()[ep.type_index].name.c_str());
    Tensor a;
    if (attention) {
      a = typed_attention(h[ep.src_type], h[ep.dst_type], ep, probe);
    } else {
      // Mean aggregation within the edge-type group, transforming only the
      // source rows this relation touches.
      const Tensor& w = rel_weights_[policy_.per_type_weights ? ep.type_index : 0];
      Tensor msg = nn::gather_matmul(h[ep.src_type], ep.src_compact, w);
      a = nn::scatter_mean_rows(msg, ep.dst, ep.inv_dst_degree, ep.num_dst_nodes);
    }
    agg[ep.dst_type] = agg[ep.dst_type].defined() ? nn::add(agg[ep.dst_type], a) : a;
  }

  PARAGRAPH_TIMED_SCOPE("update");
  TypeTensors out;
  for (std::size_t t = 0; t < graph::kNumNodeTypes; ++t) {
    if (!h[t].defined()) continue;
    switch (policy_.update) {
      case LayerPolicy::Update::kSelfLoop: {
        Tensor self = nn::matmul(h[t], self_weight_);
        Tensor combined = agg[t].defined() ? nn::add(agg[t], self) : self;
        out[t] = act(nn::add_bias(combined, bias_));
        break;
      }
      case LayerPolicy::Update::kConcat:
      case LayerPolicy::Update::kDense: {
        Tensor neigh = agg[t].defined() ? agg[t]
                                        : Tensor(Matrix(h[t].rows(), embed_dim_, 0.0f));
        Tensor pre = policy_.update == LayerPolicy::Update::kConcat
                         ? nn::concat_cols(h[t], neigh)
                         : neigh;
        out[t] = act(nn::add_bias(nn::matmul(pre, update_weight_), bias_));
        break;
      }
      default:
        throw std::logic_error("MessagePassingLayer: homogeneous policy on typed forward");
    }
  }
  return out;
}

}  // namespace paragraph::gnn
