#include "graph/hetero_graph.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace paragraph::graph {

using circuit::Device;
using circuit::DeviceKind;
using circuit::Netlist;
using circuit::Terminal;

const char* node_type_name(NodeType t) {
  switch (t) {
    case NodeType::kNet: return "net";
    case NodeType::kTransistor: return "transistor";
    case NodeType::kTransistorThick: return "transistor_thick";
    case NodeType::kResistor: return "resistor";
    case NodeType::kCapacitor: return "capacitor";
    case NodeType::kDiode: return "dio";
    case NodeType::kBjt: return "bjt";
  }
  return "unknown";
}

std::size_t feature_dim(NodeType t) {
  switch (t) {
    case NodeType::kNet: return 1;              // fanout N
    case NodeType::kTransistor: return 4;       // L, NF, NFIN, MULTI
    case NodeType::kTransistorThick: return 4;  // L, NF, NFIN, MULTI
    case NodeType::kResistor: return 1;         // L
    case NodeType::kCapacitor: return 1;        // MULTI
    case NodeType::kDiode: return 1;            // NF
    case NodeType::kBjt: return 1;              // constant 1
  }
  throw std::logic_error("feature_dim: unknown node type");
}

const char* relation_name(Relation r) {
  switch (r) {
    case Relation::kGate: return "gate";
    case Relation::kSource: return "source";
    case Relation::kDrain: return "drain";
    case Relation::kRcTerm: return "term";
    case Relation::kAnode: return "anode";
    case Relation::kCathode: return "cathode";
    case Relation::kCollector: return "collector";
    case Relation::kBase: return "base";
    case Relation::kEmitter: return "emitter";
  }
  return "unknown";
}

namespace {

std::vector<EdgeTypeInfo> make_registry() {
  std::vector<EdgeTypeInfo> reg;
  auto both_dirs = [&reg](NodeType dev, Relation rel) {
    const std::string dev_term =
        std::string(node_type_name(dev)) + "." + relation_name(rel);
    reg.push_back({NodeType::kNet, dev, rel, "net->" + dev_term});
    reg.push_back({dev, NodeType::kNet, rel, dev_term + "->net"});
  };
  for (const NodeType t : {NodeType::kTransistor, NodeType::kTransistorThick}) {
    both_dirs(t, Relation::kGate);
    both_dirs(t, Relation::kSource);
    both_dirs(t, Relation::kDrain);
  }
  both_dirs(NodeType::kResistor, Relation::kRcTerm);
  both_dirs(NodeType::kCapacitor, Relation::kRcTerm);
  both_dirs(NodeType::kDiode, Relation::kAnode);
  both_dirs(NodeType::kDiode, Relation::kCathode);
  both_dirs(NodeType::kBjt, Relation::kCollector);
  both_dirs(NodeType::kBjt, Relation::kBase);
  both_dirs(NodeType::kBjt, Relation::kEmitter);
  return reg;
}

}  // namespace

const std::vector<EdgeTypeInfo>& edge_type_registry() {
  static const std::vector<EdgeTypeInfo> reg = make_registry();
  return reg;
}

std::size_t edge_type_index(NodeType src, NodeType dst, Relation rel) {
  const auto& reg = edge_type_registry();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    if (reg[i].src_type == src && reg[i].dst_type == dst && reg[i].relation == rel) return i;
  }
  throw std::invalid_argument("edge_type_index: unregistered edge type");
}

HeteroGraph::HeteroGraph() : node_origin_(kNumNodeTypes), features_(kNumNodeTypes) {}

std::size_t HeteroGraph::total_nodes() const {
  std::size_t n = 0;
  for (const auto& v : node_origin_) n += v.size();
  return n;
}

std::size_t HeteroGraph::total_edges() const {
  std::size_t n = 0;
  for (const auto& e : edges_) n += e.num_edges();
  return n;
}

void HeteroGraph::set_nodes(NodeType t, std::vector<std::int32_t> origin, nn::Matrix features) {
  if (origin.size() != features.rows())
    throw std::invalid_argument("HeteroGraph::set_nodes: origin/feature row mismatch");
  if (features.rows() > 0 && features.cols() != feature_dim(t))
    throw std::invalid_argument("HeteroGraph::set_nodes: wrong feature dim for type");
  node_origin_[static_cast<std::size_t>(t)] = std::move(origin);
  features_[static_cast<std::size_t>(t)] = std::move(features);
}

void HeteroGraph::add_edges(std::size_t type_index, std::vector<std::int32_t> src,
                            std::vector<std::int32_t> dst) {
  if (src.size() != dst.size())
    throw std::invalid_argument("HeteroGraph::add_edges: src/dst size mismatch");
  if (src.empty()) return;
  const EdgeTypeInfo& info = edge_type_registry().at(type_index);
  const std::size_t n_dst = num_nodes(info.dst_type);

  // Sort edges by destination (stable on source order for determinism).
  std::vector<std::size_t> order(src.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return dst[a] < dst[b]; });

  TypedEdges te;
  te.type_index = type_index;
  te.src.reserve(src.size());
  te.dst.reserve(dst.size());
  for (const std::size_t k : order) {
    te.src.push_back(src[k]);
    te.dst.push_back(dst[k]);
  }
  te.dst_segments.offsets.assign(n_dst + 1, 0);
  for (const auto d : te.dst) {
    if (d < 0 || static_cast<std::size_t>(d) >= n_dst)
      throw std::out_of_range("HeteroGraph::add_edges: dst index out of range");
    ++te.dst_segments.offsets[static_cast<std::size_t>(d) + 1];
  }
  for (std::size_t i = 1; i < te.dst_segments.offsets.size(); ++i)
    te.dst_segments.offsets[i] += te.dst_segments.offsets[i - 1];
  edges_.push_back(std::move(te));
}

void HeteroGraph::validate() const {
  for (const TypedEdges& te : edges_) {
    const EdgeTypeInfo& info = edge_type_registry().at(te.type_index);
    const std::size_t n_src = num_nodes(info.src_type);
    const std::size_t n_dst = num_nodes(info.dst_type);
    if (te.src.size() != te.dst.size())
      throw std::logic_error("HeteroGraph::validate: ragged edge arrays");
    for (const auto s : te.src)
      if (s < 0 || static_cast<std::size_t>(s) >= n_src)
        throw std::logic_error("HeteroGraph::validate: src out of range");
    std::int32_t prev = -1;
    for (const auto d : te.dst) {
      if (d < 0 || static_cast<std::size_t>(d) >= n_dst)
        throw std::logic_error("HeteroGraph::validate: dst out of range");
      if (d < prev) throw std::logic_error("HeteroGraph::validate: dst not sorted");
      prev = d;
    }
    if (te.dst_segments.num_segments() != n_dst)
      throw std::logic_error("HeteroGraph::validate: segment count mismatch");
    if (te.dst_segments.num_elements() != te.num_edges())
      throw std::logic_error("HeteroGraph::validate: segment coverage mismatch");
  }
}

namespace {

NodeType node_type_of(DeviceKind k) {
  switch (k) {
    case DeviceKind::kNmos:
    case DeviceKind::kPmos: return NodeType::kTransistor;
    case DeviceKind::kNmosThick:
    case DeviceKind::kPmosThick: return NodeType::kTransistorThick;
    case DeviceKind::kResistor: return NodeType::kResistor;
    case DeviceKind::kCapacitor: return NodeType::kCapacitor;
    case DeviceKind::kDiode: return NodeType::kDiode;
    case DeviceKind::kBjt: return NodeType::kBjt;
  }
  throw std::logic_error("node_type_of: unknown device kind");
}

// Relation for a device terminal, or nullopt for terminals that never map
// to edges (transistor bulk).
std::optional<Relation> relation_of(Terminal t) {
  switch (t) {
    case Terminal::kGate: return Relation::kGate;
    case Terminal::kSource: return Relation::kSource;
    case Terminal::kDrain: return Relation::kDrain;
    case Terminal::kBulk: return std::nullopt;
    case Terminal::kPos:
    case Terminal::kNeg: return Relation::kRcTerm;
    case Terminal::kAnode: return Relation::kAnode;
    case Terminal::kCathode: return Relation::kCathode;
    case Terminal::kCollector: return Relation::kCollector;
    case Terminal::kBase: return Relation::kBase;
    case Terminal::kEmitter: return Relation::kEmitter;
  }
  throw std::logic_error("relation_of: unknown terminal");
}

// Table II feature row for a device. Lengths are expressed in nanometres so
// every feature lands in a sane numeric range before normalisation.
void fill_device_features(const Device& d, float* row) {
  const auto& p = d.params;
  switch (node_type_of(d.kind)) {
    case NodeType::kTransistor:
    case NodeType::kTransistorThick:
      row[0] = static_cast<float>(p.length * 1e9);
      row[1] = static_cast<float>(p.num_fingers);
      row[2] = static_cast<float>(p.num_fins);
      row[3] = static_cast<float>(p.multiplier);
      break;
    case NodeType::kResistor: row[0] = static_cast<float>(p.length * 1e9); break;
    case NodeType::kCapacitor: row[0] = static_cast<float>(p.multiplier); break;
    case NodeType::kDiode: row[0] = static_cast<float>(p.num_fingers); break;
    case NodeType::kBjt: row[0] = 1.0f; break;
    case NodeType::kNet: throw std::logic_error("fill_device_features: net is not a device");
  }
}

}  // namespace

MergedGraph merge_graphs(const std::vector<const HeteroGraph*>& graphs) {
  if (graphs.empty()) throw std::invalid_argument("merge_graphs: empty input");
  MergedGraph out;
  out.offsets.resize(graphs.size());

  // Nodes: concatenate per type, tracking each circuit's base offset.
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    std::size_t total = 0;
    for (std::size_t k = 0; k < graphs.size(); ++k) {
      out.offsets[k][t] = static_cast<std::int32_t>(total);
      total += graphs[k]->num_nodes(nt);
    }
    std::vector<std::int32_t> origin;
    origin.reserve(total);
    nn::Matrix feats(total, feature_dim(nt), 0.0f);
    std::size_t row = 0;
    for (const HeteroGraph* g : graphs) {
      const auto& o = g->origins(nt);
      origin.insert(origin.end(), o.begin(), o.end());
      const nn::Matrix& f = g->features(nt);
      for (std::size_t r = 0; r < f.rows(); ++r, ++row)
        for (std::size_t c = 0; c < f.cols(); ++c) feats(row, c) = f(r, c);
    }
    out.graph.set_nodes(nt, std::move(origin), std::move(feats));
  }

  // Edges: shift each circuit's local indices by its type offsets.
  const std::size_t num_types = edge_type_registry().size();
  std::vector<std::vector<std::int32_t>> srcs(num_types);
  std::vector<std::vector<std::int32_t>> dsts(num_types);
  for (std::size_t k = 0; k < graphs.size(); ++k) {
    for (const TypedEdges& te : graphs[k]->edges()) {
      const auto& info = edge_type_registry()[te.type_index];
      const auto so = out.offsets[k][static_cast<std::size_t>(info.src_type)];
      const auto dofs = out.offsets[k][static_cast<std::size_t>(info.dst_type)];
      for (std::size_t e = 0; e < te.num_edges(); ++e) {
        srcs[te.type_index].push_back(te.src[e] + so);
        dsts[te.type_index].push_back(te.dst[e] + dofs);
      }
    }
  }
  for (std::size_t e = 0; e < num_types; ++e)
    out.graph.add_edges(e, std::move(srcs[e]), std::move(dsts[e]));
  out.graph.validate();
  return out;
}

HeteroGraph build_graph(const Netlist& nl) {
  HeteroGraph g;

  // --- nodes ---
  // Net nodes: every non-supply net.
  std::vector<std::int32_t> net_local(nl.num_nets(), -1);
  {
    std::vector<std::int32_t> origin;
    const auto fanout = nl.net_fanout();
    std::vector<float> feats;
    for (circuit::NetId id = 0; static_cast<std::size_t>(id) < nl.num_nets(); ++id) {
      if (nl.net(id).is_supply) continue;
      net_local[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(origin.size());
      origin.push_back(id);
      feats.push_back(static_cast<float>(fanout[static_cast<std::size_t>(id)]));
    }
    nn::Matrix f(origin.size(), 1, std::move(feats));
    g.set_nodes(NodeType::kNet, std::move(origin), std::move(f));
  }

  // Device nodes, grouped per node type.
  std::vector<std::int32_t> device_local(nl.num_devices(), -1);
  for (std::size_t ti = 1; ti < kNumNodeTypes; ++ti) {  // skip kNet (index 0)
    const auto t = static_cast<NodeType>(ti);
    std::vector<std::int32_t> origin;
    for (circuit::DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
      if (node_type_of(nl.device(id).kind) != t) continue;
      device_local[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(origin.size());
      origin.push_back(id);
    }
    nn::Matrix f(origin.size(), feature_dim(t), 0.0f);
    for (std::size_t r = 0; r < origin.size(); ++r)
      fill_device_features(nl.device(origin[r]), f.row(r));
    g.set_nodes(t, std::move(origin), std::move(f));
  }

  // --- edges, bucketed per edge type ---
  const auto& reg = edge_type_registry();
  std::vector<std::vector<std::int32_t>> srcs(reg.size());
  std::vector<std::vector<std::int32_t>> dsts(reg.size());
  for (circuit::DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
    const Device& d = nl.device(id);
    const NodeType dev_type = node_type_of(d.kind);
    const auto& terms = circuit::terminals_for(d.kind);
    const std::int32_t dev_idx = device_local[static_cast<std::size_t>(id)];
    for (std::size_t k = 0; k < terms.size(); ++k) {
      const auto rel = relation_of(terms[k]);
      if (!rel.has_value()) continue;  // bulk
      const std::int32_t net_idx = net_local[static_cast<std::size_t>(d.conns[k])];
      if (net_idx < 0) continue;  // supply net
      const std::size_t fwd = edge_type_index(NodeType::kNet, dev_type, *rel);
      const std::size_t bwd = edge_type_index(dev_type, NodeType::kNet, *rel);
      srcs[fwd].push_back(net_idx);
      dsts[fwd].push_back(dev_idx);
      srcs[bwd].push_back(dev_idx);
      dsts[bwd].push_back(net_idx);
    }
  }
  for (std::size_t e = 0; e < reg.size(); ++e)
    g.add_edges(e, std::move(srcs[e]), std::move(dsts[e]));

  g.validate();
  return g;
}

}  // namespace paragraph::graph
