#include "graph/subgraph.h"

#include <stdexcept>

namespace paragraph::graph {

Subgraph induced_subgraph(const HeteroGraph& g,
                          const std::array<std::vector<char>, kNumNodeTypes>& keep) {
  Subgraph out;

  // Monotone local remaps: full local index -> subgraph local index, -1 when
  // dropped.
  std::array<std::vector<std::int32_t>, kNumNodeTypes> remap;
  for (std::size_t t = 0; t < kNumNodeTypes; ++t) {
    const auto nt = static_cast<NodeType>(t);
    const std::size_t n = g.num_nodes(nt);
    if (!keep[t].empty() && keep[t].size() != n)
      throw std::invalid_argument("induced_subgraph: keep mask size mismatch");
    remap[t].assign(n, -1);
    std::vector<std::int32_t> origin;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[t].empty() || keep[t][i] == 0) continue;
      remap[t][i] = static_cast<std::int32_t>(out.to_full[t].size());
      out.to_full[t].push_back(static_cast<std::int32_t>(i));
      origin.push_back(g.origin(nt, i));
    }
    const nn::Matrix& full = g.features(nt);
    nn::Matrix feats(out.to_full[t].size(), feature_dim(nt), 0.0f);
    for (std::size_t r = 0; r < out.to_full[t].size(); ++r) {
      const auto fr = static_cast<std::size_t>(out.to_full[t][r]);
      for (std::size_t c = 0; c < feats.cols(); ++c) feats(r, c) = full(fr, c);
    }
    out.graph.set_nodes(nt, std::move(origin), std::move(feats));
  }

  // Edges survive when both endpoints do. Iteration follows the parent's
  // stored (dst-sorted) order and the remap is monotone, so add_edges'
  // stable sort leaves the order untouched.
  const auto& registry = edge_type_registry();
  for (const TypedEdges& te : g.edges()) {
    const EdgeTypeInfo& info = registry[te.type_index];
    const auto st = static_cast<std::size_t>(info.src_type);
    const auto dt = static_cast<std::size_t>(info.dst_type);
    std::vector<std::int32_t> src, dst;
    for (std::size_t e = 0; e < te.num_edges(); ++e) {
      const std::int32_t s = remap[st][static_cast<std::size_t>(te.src[e])];
      const std::int32_t d = remap[dt][static_cast<std::size_t>(te.dst[e])];
      if (s < 0 || d < 0) continue;
      src.push_back(s);
      dst.push_back(d);
    }
    if (!src.empty()) out.graph.add_edges(te.type_index, std::move(src), std::move(dst));
  }
  return out;
}

}  // namespace paragraph::graph
