// Heterogeneous circuit graph (paper Section II-B).
//
// Node types: one per device category plus `net`. Edge types are directed
// (net -> device_terminal and device_terminal -> net) so a relation exists
// for every (device type, terminal role, direction) triple; this is what
// lets ParaGraph distinguish a gate connection from a source connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "nn/graph_ops.h"
#include "nn/matrix.h"

namespace paragraph::graph {

enum class NodeType : std::uint8_t {
  kNet,
  kTransistor,
  kTransistorThick,
  kResistor,
  kCapacitor,
  kDiode,
  kBjt,
};
constexpr std::size_t kNumNodeTypes = 7;

const char* node_type_name(NodeType t);

// Input feature dimension per node type (Table II).
std::size_t feature_dim(NodeType t);

// Terminal relation classes used for edge typing. Resistor and capacitor
// terminals are electrically symmetric, so they collapse to one relation.
enum class Relation : std::uint8_t {
  kGate,
  kSource,
  kDrain,
  kRcTerm,    // resistor/capacitor terminal
  kAnode,
  kCathode,
  kCollector,
  kBase,
  kEmitter,
};

const char* relation_name(Relation r);

// A directed edge type: all edges from `src_type` nodes to `dst_type` nodes
// via terminal relation `relation`. Exactly one of src/dst is kNet.
struct EdgeTypeInfo {
  NodeType src_type;
  NodeType dst_type;
  Relation relation;
  std::string name;  // e.g. "net->transistor.gate"
};

// The fixed registry of all edge types in canonical order.
const std::vector<EdgeTypeInfo>& edge_type_registry();
// Index into the registry; throws if the triple is not registered.
std::size_t edge_type_index(NodeType src, NodeType dst, Relation rel);

// Edges of one type, stored sorted by destination with a CSR segment index
// (one segment per destination node) for O(E) attention softmax.
struct TypedEdges {
  std::size_t type_index = 0;  // into edge_type_registry()
  std::vector<std::int32_t> src;  // local node index within src_type
  std::vector<std::int32_t> dst;  // local node index within dst_type; ascending
  nn::SegmentIndex dst_segments;  // num_segments == #nodes of dst_type

  std::size_t num_edges() const { return src.size(); }
};

class HeteroGraph {
 public:
  HeteroGraph();

  std::size_t num_nodes(NodeType t) const {
    return node_origin_[static_cast<std::size_t>(t)].size();
  }
  std::size_t total_nodes() const;
  std::size_t total_edges() const;

  // Raw (unnormalised) input features, one row per node of the type.
  const nn::Matrix& features(NodeType t) const {
    return features_[static_cast<std::size_t>(t)];
  }
  nn::Matrix& mutable_features(NodeType t) { return features_[static_cast<std::size_t>(t)]; }

  // Maps a local node index back to the netlist object: NetId for kNet,
  // DeviceId otherwise.
  std::int32_t origin(NodeType t, std::size_t local) const {
    return node_origin_[static_cast<std::size_t>(t)].at(local);
  }
  const std::vector<std::int32_t>& origins(NodeType t) const {
    return node_origin_[static_cast<std::size_t>(t)];
  }

  // All edge-type blocks that have at least one edge.
  const std::vector<TypedEdges>& edges() const { return edges_; }

  // Construction API (used by the builder and by tests).
  void set_nodes(NodeType t, std::vector<std::int32_t> origin, nn::Matrix features);
  // Edges may be passed unsorted; they are sorted by dst and indexed.
  void add_edges(std::size_t type_index, std::vector<std::int32_t> src,
                 std::vector<std::int32_t> dst);

  // Consistency checks (indices in range, CSR well-formed). Throws on error.
  void validate() const;

 private:
  std::vector<std::vector<std::int32_t>> node_origin_;  // per node type
  std::vector<nn::Matrix> features_;                    // per node type
  std::vector<TypedEdges> edges_;
};

// Converts a netlist to its heterogeneous graph with Table II features.
// Supply nets produce no node; terminals tied to supply produce no edge.
// Transistor bulk terminals are never mapped (they are supply-tied).
HeteroGraph build_graph(const circuit::Netlist& nl);

// Merges several circuit graphs into one disjoint-union graph (DGL-style
// batching): per node type, nodes are concatenated in input order, so one
// forward pass covers every circuit. `offsets[k][t]` gives circuit k's
// starting local index for node type t in the merged graph. Note that
// origin() values of the merged graph refer to each circuit's own netlist.
struct MergedGraph {
  HeteroGraph graph;
  std::vector<std::array<std::int32_t, kNumNodeTypes>> offsets;
};
MergedGraph merge_graphs(const std::vector<const HeteroGraph*>& graphs);

}  // namespace paragraph::graph
