// Order-preserving induced subgraphs of a HeteroGraph.
//
// Given a per-type keep mask, the subgraph keeps the selected nodes in
// their original relative order (ascending local index) and every edge
// whose endpoints are both kept, in the original per-edge-type order.
// Because the parent graph stores each edge type sorted by destination and
// the remap is monotone, the extracted edge lists are already
// destination-sorted, so the kernels traverse them in exactly the order
// they traverse the corresponding full-graph edges. This is what makes
// subgraph forward passes bitwise-reproducible against the full graph on
// nodes whose neighbourhood is entirely kept (gnn::PlanCache relies on it).
#pragma once

#include <array>
#include <vector>

#include "graph/hetero_graph.h"

namespace paragraph::graph {

struct Subgraph {
  HeteroGraph graph;
  // Per node type: subgraph-local index -> parent-graph local index
  // (ascending). origin() values of `graph` still refer to the parent
  // graph's netlist.
  std::array<std::vector<std::int32_t>, kNumNodeTypes> to_full;
};

// keep[t][i] != 0 selects node i of type t. keep[t] may be empty (keeps
// nothing of that type) but must otherwise match the type's node count.
Subgraph induced_subgraph(const HeteroGraph& g,
                          const std::array<std::vector<char>, kNumNodeTypes>& keep);

}  // namespace paragraph::graph
