// Net routing-length estimation and pin capacitance models.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "layout/placer.h"
#include "layout/tech.h"

namespace paragraph::layout {

// Estimated routed wirelength for pins at the given positions:
// HPWL for few-pin nets, RISA-style Steiner scaling sqrt(n * bbox area)
// for many-pin nets, plus a per-sink local stub.
double estimate_wirelength(const std::vector<Point>& pins, const TechRules& tech);

// Capacitance contributed by one device terminal to the attached net.
// For transistor source/drain terminals this uses the device's ground-truth
// diffusion areas (so junction and wire components stay physically
// consistent); call after apply_chain_geometry.
double pin_capacitance(const circuit::Device& d, std::size_t terminal_index,
                       const TechRules& tech);

}  // namespace paragraph::layout
