#include "layout/placer.h"

#include <algorithm>
#include <cmath>

namespace paragraph::layout {

using circuit::Device;
using circuit::DeviceKind;

double device_footprint_width(const Device& d, const TechRules& tech) {
  switch (d.kind) {
    case DeviceKind::kNmos:
    case DeviceKind::kPmos:
    case DeviceKind::kNmosThick:
    case DeviceKind::kPmosThick: {
      // Thick-gate devices use a larger effective pitch (longer channel).
      const double pitch = std::max(tech.contacted_poly_pitch, d.params.length * 1.6);
      return (d.params.num_fingers * pitch + 2.0 * tech.diff_ext_end) * d.params.multiplier;
    }
    case DeviceKind::kResistor: {
      // Serpentine poly resistor; length folded into a squarish footprint.
      const double area = std::max(d.params.length, 0.5e-6) * 0.4e-6;
      return std::sqrt(area);
    }
    case DeviceKind::kCapacitor: {
      // MOM capacitor at ~2 fF/um^2.
      const double area = std::max(d.params.value / 2e-3, 0.04e-12);
      return std::sqrt(area);
    }
    case DeviceKind::kDiode: return std::sqrt(d.params.num_fingers * 0.5e-12);
    case DeviceKind::kBjt: return std::sqrt(d.params.multiplier * 4.0e-12);
  }
  return 1e-6;
}

double device_footprint_height(const Device& d, const TechRules& tech) {
  if (circuit::is_transistor(d.kind))
    return d.params.num_fins * tech.fin_pitch + tech.row_margin;
  return device_footprint_width(d, tech);  // non-MOS devices are squarish
}

Placement place(const circuit::Netlist& nl, const TechRules& tech) {
  Placement p;
  const std::size_t n = nl.num_devices();
  p.device_center.resize(n);
  p.device_width.resize(n);
  p.device_height.resize(n);

  double total_area = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Device& d = nl.device(static_cast<circuit::DeviceId>(i));
    p.device_width[i] = device_footprint_width(d, tech);
    p.device_height[i] = device_footprint_height(d, tech);
    total_area += p.device_width[i] * p.device_height[i];
  }
  // 75% utilisation, near-square die.
  const double row_width = std::sqrt(total_area / 0.75);

  double x = 0.0;
  double y = 0.0;
  double row_height = 0.0;
  double max_x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = p.device_width[i];
    const double h = p.device_height[i];
    if (x > 0.0 && x + w > row_width) {
      // Start the next row.
      y += row_height + tech.row_margin;
      x = 0.0;
      row_height = 0.0;
    }
    p.device_center[i] = Point{x + w / 2.0, y + h / 2.0};
    x += w;
    row_height = std::max(row_height, h);
    max_x = std::max(max_x, x);
  }
  p.chip_width = std::max(max_x, 1e-7);
  p.chip_height = std::max(y + row_height, 1e-7);
  return p;
}

}  // namespace paragraph::layout
