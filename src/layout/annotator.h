// Ground-truth annotation: the "post-layout extraction" of this
// reproduction.
//
// annotate_layout runs the full procedural flow — diffusion chaining,
// geometry, placement, wire estimation — and writes the results into the
// netlist: TransistorLayout (SA/DA/SP/DP, LDE1..8) on every transistor and
// ground_truth_cap on every non-supply net. Deterministic in `seed`.
#pragma once

#include <cstdint>

#include "circuit/netlist.h"
#include "layout/placer.h"
#include "layout/tech.h"

namespace paragraph::layout {

struct AnnotateResult {
  Placement placement;
  std::size_t num_chains = 0;
  std::size_t num_shared_boundaries = 0;  // diffusion boundaries fused by MTS
};

AnnotateResult annotate_layout(circuit::Netlist& nl, std::uint64_t seed,
                               const TechRules& tech = default_tech());

}  // namespace paragraph::layout
