#include "layout/annotator.h"

#include <algorithm>
#include <cmath>

#include "layout/diffusion.h"
#include "layout/wire_model.h"
#include "util/rng.h"

namespace paragraph::layout {

using circuit::Device;
using circuit::DeviceId;
using circuit::NetId;
using circuit::Netlist;

AnnotateResult annotate_layout(Netlist& nl, std::uint64_t seed, const TechRules& tech) {
  util::Rng rng(seed ^ 0xa5a5a5a55a5a5a5aULL);
  // Separate stream for the resistance extension so adding it does not
  // perturb the capacitance/geometry noise of existing experiments.
  util::Rng res_rng(seed ^ 0x5ee0f00ddeadbeefULL);
  AnnotateResult result;

  // 1) Diffusion chains (MTS) -> SA/DA/SP/DP and chain-local LDEs.
  const auto chains = build_diffusion_chains(nl);
  result.num_chains = chains.size();
  for (const auto& c : chains)
    for (const auto& s : c.slots)
      result.num_shared_boundaries +=
          static_cast<std::size_t>(s.shared_left) + static_cast<std::size_t>(s.shared_right);
  apply_chain_geometry(nl, chains, tech, rng);

  // 2) Placement -> positions and floorplan-dependent LDEs.
  result.placement = place(nl, tech);
  const Placement& pl = result.placement;
  for (DeviceId id = 0; static_cast<std::size_t>(id) < nl.num_devices(); ++id) {
    Device& d = nl.device(id);
    if (!d.layout.has_value()) continue;
    const Point& c = pl.device_center[static_cast<std::size_t>(id)];
    // LDE3/LDE4: horizontal distance to the nearest well edge. The *true*
    // value depends on the final floorplan, which is unknowable from the
    // schematic; sigma_floorplan makes these intrinsically noisy (the paper
    // reports MAPE > 100% on them).
    d.layout->lde[2] = (c.x + tech.well_margin) * rng.lognormal(0.0, tech.sigma_floorplan);
    d.layout->lde[3] =
        (pl.chip_width - c.x + tech.well_margin) * rng.lognormal(0.0, tech.sigma_floorplan);
    // LDE6: vertical distance to the diffusion-row edge.
    d.layout->lde[5] = (tech.row_margin / 2.0 +
                        pl.device_height[static_cast<std::size_t>(id)] / 2.0) *
                       rng.lognormal(0.0, tech.sigma_floorplan);
    // LDE7: OD-to-OD spacing to the neighbouring row.
    d.layout->lde[6] = tech.row_margin * rng.lognormal(0.0, tech.sigma_floorplan);
  }

  // 3) Net parasitic capacitance = wire + pins.
  const auto attachments = nl.net_attachments();
  for (NetId nid = 0; static_cast<std::size_t>(nid) < nl.num_nets(); ++nid) {
    circuit::Net& net = nl.net(nid);
    if (net.is_supply) continue;
    const auto& att = attachments[static_cast<std::size_t>(nid)];
    std::vector<Point> pins;
    pins.reserve(att.size());
    double pin_cap = 0.0;
    for (const auto& a : att) {
      pins.push_back(pl.device_center[static_cast<std::size_t>(a.device)]);
      pin_cap += pin_capacitance(nl.device(a.device), a.terminal_index, tech);
    }
    double wl = estimate_wirelength(pins, tech);
    const int extra_sinks = static_cast<int>(att.size()) - tech.global_fanout_onset;
    if (extra_sinks > 0) wl *= 1.0 + tech.global_detour * extra_sinks;
    const double wire_cap = wl * tech.cap_per_meter * rng.lognormal(0.0, tech.sigma_cap);
    // Even an unloaded net keeps a floor from its via stack / label shapes.
    net.ground_truth_cap = std::max(wire_cap + pin_cap, 0.01e-15);
    // Lumped resistance (future-work extension): trunk wire resistance plus
    // the average via stack, with the same routing uncertainty.
    const double wire_res = wl * tech.res_per_meter * res_rng.lognormal(0.0, tech.sigma_cap);
    net.ground_truth_res = std::max(wire_res + tech.via_resistance, 0.1);
  }
  return result;
}

}  // namespace paragraph::layout
